//! Shallow-document behaviour: the DBLP selectivity sweep.
//!
//! Generates the DBLP-like bibliography and sweeps the Q1d–Q3d year
//! constants from one match to ~10k matches (paper Fig. 11(b)), printing
//! how each strategy's cost scales with result cardinality.
//!
//! Run with: `cargo run --release --example bibliography [scale]`

use xtwig::core::engine::{EngineOptions, QueryEngine, Strategy};
use xtwig::datagen::{generate_dblp, DblpConfig};
use xtwig::xml::XmlForest;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(0.02);
    let mut forest = XmlForest::new();
    println!("generating DBLP-like data at scale {scale} …");
    let profile = generate_dblp(&mut forest, DblpConfig { scale, seed: 0xD0B5 });
    println!(
        "  {} nodes | {} inproceedings | {} articles | depth {} (shallow)",
        profile.nodes,
        profile.inproceedings,
        profile.articles,
        forest.max_depth()
    );

    let strategies = [
        Strategy::RootPaths,
        Strategy::DataPaths,
        Strategy::Edge,
        Strategy::DataGuideEdge,
        Strategy::IndexFabricEdge,
    ];
    let engine = QueryEngine::build(
        &forest,
        EngineOptions { strategies: strategies.to_vec(), pool_pages: 5120, ..Default::default() },
    );

    println!("\nFig. 11(b) shape: single-path query cost vs. result cardinality");
    for year in ["1950", "1979", "1998"] {
        let twig = xtwig::parse_xpath(&format!("/dblp/inproceedings/year[. = '{year}']")).unwrap();
        println!("\n--- year = {year} ---");
        println!(
            "{:<8} {:>8} {:>9} {:>12} {:>10}",
            "strategy", "results", "probes", "logical I/O", "time"
        );
        for s in strategies {
            let a = engine.answer(&twig, s);
            println!(
                "{:<8} {:>8} {:>9} {:>12} {:>9.2?}",
                s.label(),
                a.ids.len(),
                a.metrics.probes,
                a.metrics.logical_reads,
                a.metrics.elapsed
            );
        }
    }

    println!("\nExpected shape (paper §5.2.1): RP/DP/IF stay flat-ish in probes while");
    println!("Edge and DG+Edge degrade as the year becomes unselective, because they");
    println!("join the path step by step or join structure against values.");

    // A branching query on the bibliography.
    println!("\nBonus twig: //inproceedings[year = '1998'][crossref]/title");
    let twig = xtwig::parse_xpath("//inproceedings[year = '1998'][crossref]/title").unwrap();
    for s in strategies {
        let a = engine.answer(&twig, s);
        println!(
            "{:<8} {:>8} results {:>9} probes {:>12} logical reads",
            s.label(),
            a.ids.len(),
            a.metrics.probes,
            a.metrics.logical_reads
        );
    }
}
