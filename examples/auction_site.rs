//! Auction-site twig queries across all seven index configurations.
//!
//! Generates an XMark-like dataset and runs a slice of the paper's
//! workload (one query per experiment group), printing a per-strategy
//! comparison of probes, rows, logical I/O, and wall time — a miniature
//! of Figures 11–13.
//!
//! Run with: `cargo run --release --example auction_site [scale]`

use xtwig::core::engine::{EngineOptions, QueryEngine, Strategy};
use xtwig::datagen::{generate_xmark, xmark_queries, XmarkConfig};
use xtwig::xml::XmlForest;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(0.01);
    let mut forest = XmlForest::new();
    println!("generating XMark-like data at scale {scale} …");
    let profile = generate_xmark(&mut forest, XmarkConfig { scale, seed: 0xA0C });
    println!(
        "  {} nodes | {} items | {} persons | {} auctions | depth {}",
        profile.nodes,
        profile.items,
        profile.persons,
        profile.auctions,
        forest.max_depth()
    );

    println!("building all seven index configurations …");
    let engine =
        QueryEngine::build(&forest, EngineOptions { pool_pages: 5120, ..Default::default() });

    let picks = ["Q3x", "Q5x", "Q6x", "Q9x", "Q10x", "Q13x"];
    let queries = xmark_queries();
    for id in picks {
        let q = queries.iter().find(|q| q.id == id).unwrap();
        let twig = q.twig();
        println!("\n=== {} ({:?}) ===\n    {}", q.id, q.group, q.xpath);
        println!(
            "{:<8} {:>8} {:>9} {:>9} {:>12} {:>10}  plan",
            "strategy", "results", "probes", "rows", "logical I/O", "time"
        );
        for s in Strategy::ALL {
            let a = engine.answer(&twig, s);
            println!(
                "{:<8} {:>8} {:>9} {:>9} {:>12} {:>9.2?}  {:?}",
                s.label(),
                a.ids.len(),
                a.metrics.probes,
                a.metrics.rows_fetched,
                a.metrics.logical_reads,
                a.metrics.elapsed,
                a.plan
            );
        }
    }

    println!("\nNote the shape: RP/DP answer each branch in one probe and join on");
    println!("IdList-extracted branch ids; Edge/DG+Edge/IF+Edge pay one backward-link");
    println!("probe per candidate per step; ASR/JI open one table per matching schema");
    println!("path under `//` (six region paths for Q13x).");
}
