//! Space/time tuning: the §4 compression knobs, hands on.
//!
//! Builds ROOTPATHS/DATAPATHS variants (delta vs. plain IdLists,
//! dictionary-compressed schema paths, workload-driven HeadId pruning)
//! over the same dataset and prints a Fig.-9-style space table plus the
//! functionality each lossy variant gives up.
//!
//! Run with: `cargo run --release --example index_tuning [scale]`

use std::sync::Arc;
use xtwig::core::compress::{measure_idlist_bytes, workload_head_filter, DictDataPaths};
use xtwig::core::datapaths::{DataPaths, DataPathsOptions};
use xtwig::core::engine::{EngineOptions, QueryEngine, Strategy};
use xtwig::core::family::{FreeIndex, PathIndex, PcSubpathQuery};
use xtwig::core::rootpaths::{RootPaths, RootPathsOptions};
use xtwig::datagen::{generate_xmark, xmark_queries, XmarkConfig};
use xtwig::rel::codec::IdListCodec;
use xtwig::storage::BufferPool;
use xtwig::xml::XmlForest;

fn mb(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(0.01);
    let mut forest = XmlForest::new();
    let profile = generate_xmark(&mut forest, XmarkConfig { scale, seed: 1 });
    let data_mb = mb(forest.approx_text_bytes());
    println!("dataset: {} nodes (~{data_mb:.1} MB as text)\n", profile.nodes);

    let pool = || Arc::new(BufferPool::in_memory(65_536));

    // --- §4.1 lossless: delta vs plain IdLists --------------------------
    let rp_delta = RootPaths::build(
        &forest,
        pool(),
        RootPathsOptions { idlist: IdListCodec::Delta, ..Default::default() },
    );
    let rp_plain = RootPaths::build(
        &forest,
        pool(),
        RootPathsOptions { idlist: IdListCodec::Plain, ..Default::default() },
    );
    let dp_delta = DataPaths::build(
        &forest,
        pool(),
        DataPathsOptions { idlist: IdListCodec::Delta, ..Default::default() },
    );
    let dp_plain = DataPaths::build(
        &forest,
        pool(),
        DataPathsOptions { idlist: IdListCodec::Plain, ..Default::default() },
    );
    println!("== §4.1 differential IdList encoding (lossless) ==");
    println!(
        "ROOTPATHS: plain {:.2} MB -> delta {:.2} MB",
        mb(rp_plain.space_bytes()),
        mb(rp_delta.space_bytes())
    );
    println!(
        "DATAPATHS: plain {:.2} MB -> delta {:.2} MB",
        mb(dp_plain.space_bytes()),
        mb(dp_delta.space_bytes())
    );
    let ib = measure_idlist_bytes(&forest);
    println!(
        "IdList payload alone shrinks {:.0}% (paper reports ~30% total lossless saving)",
        ib.datapaths_saving() * 100.0
    );

    // --- §4.2 lossy: SchemaPath dictionary ------------------------------
    let dict_dp = DictDataPaths::build(&forest, pool());
    println!("\n== §4.2 SchemaPath dictionary compression (lossy) ==");
    println!(
        "DATAPATHS {:.2} MB -> dict variant {:.2} MB ({} distinct paths)",
        mb(dp_delta.space_bytes()),
        mb(dict_dp.space_bytes()),
        dict_dp.dict_len()
    );
    let suffix =
        PcSubpathQuery::resolve(forest.dict(), &["item", "quantity"], false, Some("2")).unwrap();
    println!(
        "  full DP answers //item/quantity=2 with {} matches in one probe;",
        dp_delta.lookup_free(&suffix).len()
    );
    println!("  the dict variant cannot express that probe at all (path ids are indivisible).");

    // --- §4.3 lossy: HeadId pruning --------------------------------------
    let workload: Vec<_> = xmark_queries().iter().map(|q| q.twig()).collect();
    let filter = workload_head_filter(&workload);
    println!("\n== §4.3 HeadId pruning (lossy, workload-driven) ==");
    println!("workload branch-point tags: {:?}", {
        let mut v: Vec<_> = filter.iter().cloned().collect();
        v.sort();
        v
    });
    let pruned_engine = QueryEngine::build(
        &forest,
        EngineOptions {
            strategies: vec![Strategy::DataPaths],
            pool_pages: 5120,
            head_filter_tags: Some(filter),
            ..Default::default()
        },
    );
    println!(
        "DATAPATHS {:.2} MB -> pruned {:.2} MB",
        mb(dp_delta.space_bytes()),
        mb(pruned_engine.space_bytes(Strategy::DataPaths))
    );
    let q10 = xmark_queries().into_iter().find(|q| q.id == "Q10x").unwrap();
    let a = pruned_engine.answer(&q10.twig(), Strategy::DataPaths);
    println!("  Q10x (in workload) still answers with {} results, plan {:?}", a.ids.len(), a.plan);
    let off = xtwig::parse_xpath("//person[name = 'Hagen Artosi']/emailaddress").unwrap();
    let a = pruned_engine.answer(&off, Strategy::DataPaths);
    println!(
        "  off-workload query still answers with {} results, but only via plan {:?}",
        a.ids.len(),
        a.plan
    );
}
