//! Quickstart: the paper's running example, end to end.
//!
//! Builds the Figure 1 book document, prints fragments of the 4-ary
//! relation and its ROOTPATHS/DATAPATHS adaptations (Figures 2, 4, 5),
//! then answers the introduction's twig query
//! `/book[title='XML']//author[fn='jane' and ln='doe']` with both novel
//! indexes and shows the single-lookup behaviour.
//!
//! Run with: `cargo run --example quickstart`

use xtwig::core::family::{BoundIndex, FreeIndex, PcSubpathQuery};
use xtwig::core::paths::{for_each_root_path, for_each_subpath};
use xtwig::prelude::*;
use xtwig::xml::tree::fig1_book_document;

fn main() {
    let forest = fig1_book_document();
    let dict = forest.dict();

    println!("== Figure 2: the 4-ary relation (fragment) ==");
    println!("{:<7} {:<28} {:<10} IdList", "HeadId", "SchemaPath", "LeafValue");
    let mut shown = 0;
    for_each_subpath(&forest, |head, tags, ids, value| {
        if head != 1 && head != 5 || shown >= 14 {
            return;
        }
        let path: Vec<&str> = tags.iter().map(|&t| dict.name(t)).collect();
        println!(
            "{:<7} {:<28} {:<10} {:?}",
            head,
            path.join("/"),
            value.unwrap_or("null"),
            &ids[1..]
        );
        shown += 1;
    });

    println!("\n== Figure 4: ROOTPATHS rows (fragment) ==");
    println!("{:<28} {:<10} IdList", "ReverseSchemaPath", "LeafValue");
    let mut shown = 0;
    for_each_root_path(&forest, |tags, ids, value| {
        if shown >= 8 {
            return;
        }
        let mut rev: Vec<&str> = tags.iter().map(|&t| dict.name(t)).collect();
        rev.reverse();
        println!("{:<28} {:<10} {:?}", rev.join("<-"), value.unwrap_or("null"), ids);
        shown += 1;
    });

    // Build the engine with the two novel indexes.
    let engine = QueryEngine::build(
        &forest,
        EngineOptions {
            strategies: vec![Strategy::RootPaths, Strategy::DataPaths],
            pool_pages: 512,
            ..Default::default()
        },
    );

    println!("\n== FreeIndex in one lookup (paper §3.2) ==");
    let q = PcSubpathQuery::resolve(forest.dict(), &["author", "fn"], false, Some("jane"))
        .expect("tags exist");
    let rp = engine.rootpaths().expect("built");
    for m in rp.lookup_free(&q) {
        let path: Vec<&str> = m.tags.iter().map(|&t| forest.dict().name(t)).collect();
        println!(
            "  //author[fn='jane'] -> path {} ids {:?} (author id = {}, book id = {})",
            path.join("/"),
            m.ids,
            m.id_from_end(1),
            m.ids[0]
        );
    }

    println!("\n== BoundIndex in one lookup (paper §3.3) ==");
    let dp = engine.datapaths().expect("built");
    let book_tag = forest.dict().lookup("book").unwrap();
    let q = PcSubpathQuery::resolve(forest.dict(), &["author", "ln"], false, Some("doe")).unwrap();
    for m in dp.lookup_bound(1, book_tag, &q) {
        println!(
            "  book(1)//author[ln='doe'] -> ids {:?} (author id = {})",
            m.ids,
            m.id_from_end(1)
        );
    }

    println!("\n== The introduction's twig query ==");
    let twig = parse_xpath("/book[title='XML']//author[fn='jane'][ln='doe']").unwrap();
    println!("twig: {twig}");
    for s in [Strategy::RootPaths, Strategy::DataPaths] {
        let a = engine.answer(&twig, s);
        println!(
            "  {:<3} -> author ids {:?} | plan {:?} | {} probes, {} rows, {} logical reads",
            s.label(),
            a.ids,
            a.plan,
            a.metrics.probes,
            a.metrics.rows_fetched,
            a.metrics.logical_reads
        );
        assert_eq!(a.ids.iter().copied().collect::<Vec<_>>(), vec![41]);
    }
    println!("\nauthor 41 is the one with fn='jane' AND ln='doe' — matching the paper.");
}
