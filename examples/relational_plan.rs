//! The paper's core claim, made concrete: twig matching as an ordinary
//! relational plan.
//!
//! "The proposed index structures … can thus be tightly coupled with a
//! relational optimizer and query evaluator" (§7). This example answers
//! the introduction's twig
//!
//! ```text
//! /book[title='XML']//author[fn='jane' and ln='doe']
//! ```
//!
//! by hand-assembling the relational plan a SQL optimizer would produce:
//! two ROOTPATHS index scans feeding a sort-merge join on the author id
//! extracted from the IdLists, then an ancestor unnest joined against the
//! book branch — all through the generic `xtwig_rel::exec` operators
//! (FromIter scans, MergeJoin, Sort, Distinct).
//!
//! Run with: `cargo run --example relational_plan`

use std::sync::Arc;
use xtwig::core::family::{FreeIndex, PcSubpathQuery};
use xtwig::core::rootpaths::{RootPaths, RootPathsOptions};
use xtwig::rel::exec::{from_iter, Distinct, MergeJoin, Project, Sort};
use xtwig::rel::value::{Tuple, Value};
use xtwig::storage::BufferPool;
use xtwig::xml::tree::fig1_book_document;

fn main() {
    let forest = fig1_book_document();
    let rp = RootPaths::build(
        &forest,
        Arc::new(BufferPool::in_memory(512)),
        RootPathsOptions::default(),
    );
    let dict = forest.dict();

    // --- Index scans: one FreeIndex probe per PCsubpath -----------------
    // Each probe returns rows (author_id, book_id) — the branch ids come
    // straight out of the IdList, no joins needed to find them (§3.2).
    let scan = |steps: &[&str], value: &str| -> Vec<Tuple> {
        let q = PcSubpathQuery::resolve(dict, steps, false, Some(value)).expect("tags exist");
        rp.lookup_free(&q)
            .into_iter()
            .map(|m| {
                vec![
                    Value::id(m.id_from_end(1)), // author id (penultimate)
                    Value::id(m.ids[0]),         // book id (root of the path)
                ]
            })
            .collect()
    };
    let fn_rows = scan(&["author", "fn"], "jane");
    let ln_rows = scan(&["author", "ln"], "doe");
    println!("index scan //author/fn='jane' -> {} rows", fn_rows.len());
    println!("index scan //author/ln='doe'  -> {} rows", ln_rows.len());

    // --- The relational plan -------------------------------------------
    // SELECT DISTINCT fn.author FROM fn_scan fn, ln_scan ln, title_scan t
    // WHERE fn.author = ln.author AND fn.book = t.book
    let key_author = |t: &Tuple| vec![t[0].clone()];
    let sorted_fn = Sort::new(from_iter(fn_rows), key_author);
    let sorted_ln = Sort::new(from_iter(ln_rows), key_author);
    let authors = MergeJoin::new(sorted_fn, sorted_ln, key_author, key_author);

    // The /book[title='XML'] branch: book ids from one more probe.
    let title_q =
        PcSubpathQuery::resolve(dict, &["book", "title"], true, Some("XML")).expect("tags");
    let books: Vec<Tuple> =
        rp.lookup_free(&title_q).into_iter().map(|m| vec![Value::id(m.ids[0])]).collect();
    println!("index scan /book[title='XML'] -> {} rows", books.len());

    // Join on the book id (column 1 of the author join output).
    let key_book_left = |t: &Tuple| vec![t[1].clone()];
    let key_book_right = |t: &Tuple| vec![t[0].clone()];
    let sorted_authors = Sort::new(authors, key_book_left);
    let sorted_books = Sort::new(from_iter(books), key_book_right);
    let joined = MergeJoin::new(sorted_authors, sorted_books, key_book_left, key_book_right);

    // Project the author id, dedup.
    let projected = Project::new(joined, |t| vec![t[0].clone()]);
    let mut plan = Distinct::new(projected);

    let result = plan.collect_all();
    println!("\nplan: Distinct(Project(MergeJoin(MergeJoin(fn, ln) on author, title) on book))");
    println!("result tuples: {result:?}");
    assert_eq!(result, vec![vec![Value::id(41)]]);
    println!("\nauthor 41 — same answer the QueryEngine produces, through plain");
    println!("relational operators a SQL optimizer could have scheduled.");
}
