//! End-to-end observability: traced execution must be purely
//! observational (identical answers and cost counters to the untraced
//! path, on every strategy and corpus), span shapes must be stable for
//! a fixed query, the service's Prometheus-style metrics text must
//! expose monotonic counters and well-formed histograms, the slow-query
//! log must evict at capacity, and traced runs must feed the
//! calibration log with value-elided shapes. Prometheus exposition
//! conformance rides here too: every family declares `# HELP`/`# TYPE`
//! before its samples, label values with quotes/backslashes/newlines
//! are escaped, and counters stay monotonic under concurrent scrapers.

use std::collections::{BTreeMap, BTreeSet};
use xtwig::core::engine::{EngineOptions, QueryEngine, Strategy};
use xtwig::parse_xpath;
use xtwig::service::{render_metrics, EventJournal, MetricsRegistry, ServiceOptions, TwigService};
use xtwig::xml::tree::fig1_book_document;
use xtwig::xml::XmlForest;

struct Corpus {
    name: &'static str,
    forest: XmlForest,
    queries: Vec<String>,
}

fn multi_book_forest() -> XmlForest {
    let mut f = XmlForest::new();
    for i in 0..6 {
        let mut b = f.builder();
        b.open("book");
        b.leaf("title", if i % 2 == 0 { "XML" } else { "SQL" });
        b.open("allauthors");
        b.open("author");
        b.leaf("fn", "jane");
        b.leaf("ln", if i == 3 { "doe" } else { "poe" });
        b.close();
        b.close();
        b.close();
        b.finish();
    }
    f
}

fn corpora() -> Vec<Corpus> {
    let mut out = Vec::new();
    out.push(Corpus {
        name: "fig1",
        forest: fig1_book_document(),
        queries: [
            "/book[title='XML']//author[fn='jane'][ln='doe']",
            "/book/allauthors/author/fn[. = 'jane']",
            "//section/head",
            "//title",
        ]
        .map(str::to_owned)
        .to_vec(),
    });
    out.push(Corpus {
        name: "books",
        forest: multi_book_forest(),
        queries: ["/book[title='XML']//author[fn='jane'][ln='doe']", "//author[fn = 'jane']/ln"]
            .map(str::to_owned)
            .to_vec(),
    });
    let mut xmark = XmlForest::new();
    xtwig::datagen::generate_xmark(
        &mut xmark,
        xtwig::datagen::XmarkConfig { scale: 0.002, seed: 7 },
    );
    out.push(Corpus {
        name: "xmark",
        forest: xmark,
        queries: xtwig::datagen::xmark_queries()
            .iter()
            .take(5)
            .map(|bq| bq.xpath.to_owned())
            .collect(),
    });
    out
}

fn engine(forest: &XmlForest) -> QueryEngine<&XmlForest> {
    QueryEngine::build(forest, EngineOptions { pool_pages: 2048, ..Default::default() })
}

/// Tracing is observation, not behavior: on every corpus, every query,
/// every concrete strategy plus `Auto`, the traced answer carries the
/// same ids, resolved strategy, probes, rows and logical reads as the
/// untraced one, and the trace actually covers the pipeline.
/// (Physical reads are deliberately not compared: the first of the two
/// runs warms the buffer pool for the second.)
#[test]
fn traced_answers_match_untraced_on_every_strategy_and_corpus() {
    for corpus in corpora() {
        let e = engine(&corpus.forest);
        for q in &corpus.queries {
            let twig = parse_xpath(q).unwrap();
            for s in Strategy::ALL.iter().copied().chain([Strategy::Auto]) {
                let plain = e.answer(&twig, s);
                let (traced, trace) = e.answer_traced(&twig, s);
                let ctx = format!("{} {q} [{}]", corpus.name, s.label());
                assert_eq!(plain.ids, traced.ids, "{ctx}: ids diverged");
                assert_eq!(plain.strategy, traced.strategy, "{ctx}: resolved strategy diverged");
                assert_eq!(plain.plan, traced.plan, "{ctx}: plan diverged");
                assert_eq!(plain.metrics.probes, traced.metrics.probes, "{ctx}: probes");
                assert_eq!(plain.metrics.rows_fetched, traced.metrics.rows_fetched, "{ctx}: rows");
                assert_eq!(
                    plain.metrics.logical_reads, traced.metrics.logical_reads,
                    "{ctx}: logical reads"
                );
                assert!(!trace.is_empty(), "{ctx}: no spans");
                for name in ["query", "plan", "resolve", "execute"] {
                    assert!(trace.find(name).is_some(), "{ctx}: missing span {name}");
                }
                // An empty-input step short-circuits before the final
                // collect, so materialize only appears on full runs.
                if !traced.ids.is_empty() {
                    assert!(trace.find("materialize").is_some(), "{ctx}: missing materialize");
                }
                // The execute span's counters must equal the answer's
                // own metrics — one source of truth, surfaced twice.
                let exec = trace.total("execute");
                assert_eq!(exec.probes, traced.metrics.probes, "{ctx}: span probes");
                assert_eq!(exec.logical_reads, traced.metrics.logical_reads, "{ctx}: span reads");
            }
        }
    }
}

/// The span *shape* (names, nesting, details — no timings) of a fixed
/// query is deterministic: identical across repeated runs and across
/// independently built engines, and pinned to a literal so accidental
/// pipeline-structure changes show up in review.
#[test]
fn span_shape_is_stable_for_a_fixed_query() {
    let forest = fig1_book_document();
    let e = engine(&forest);
    let twig = parse_xpath("/book[title='XML']//author[fn='jane'][ln='doe']").unwrap();
    let (_, first) = e.answer_traced(&twig, Strategy::RootPaths);
    let (_, again) = e.answer_traced(&twig, Strategy::RootPaths);
    assert_eq!(first.shape(), again.shape(), "same engine, same query: shape changed");

    let forest2 = fig1_book_document();
    let e2 = engine(&forest2);
    let (_, other) = e2.answer_traced(&twig, Strategy::RootPaths);
    assert_eq!(first.shape(), other.shape(), "independent engine: shape changed");

    assert_eq!(
        first.shape(),
        "query(RP)\n\
         \u{20}\u{20}plan(Merge, 3 steps)\n\
         \u{20}\u{20}resolve(RP)\n\
         \u{20}\u{20}execute(RP)\n\
         \u{20}\u{20}\u{20}\u{20}step(#0 subpath 0 probe)\n\
         \u{20}\u{20}\u{20}\u{20}step(#1 subpath 1 join)\n\
         \u{20}\u{20}\u{20}\u{20}step(#2 subpath 2 semi-join)\n\
         \u{20}\u{20}\u{20}\u{20}materialize(output node 2)\n",
    );
}

/// Splits Prometheus exposition text into (metric-with-labels, value)
/// samples, skipping `# HELP`/`# TYPE` comment lines.
fn parse_samples(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("sample line has a value");
        let value: f64 = value.parse().unwrap_or_else(|_| panic!("unparsable value: {line}"));
        assert!(out.insert(name.to_owned(), value).is_none(), "duplicate sample {name}");
    }
    out
}

/// `metrics_text` parses as one sample per line, counters never move
/// backwards between scrapes, and the latency histogram is well-formed
/// (cumulative buckets, `+Inf` == `_count`).
#[test]
fn metrics_text_parses_and_counters_are_monotonic() {
    let service = TwigService::build(
        fig1_book_document(),
        EngineOptions { pool_pages: 256, ..Default::default() },
        ServiceOptions { workers: 2, result_cache_capacity: 0, ..Default::default() },
    );
    let queries = ["/book[title='XML']//author[fn='jane'][ln='doe']", "//section/head", "//title"];
    for q in &queries[..2] {
        let twig = parse_xpath(q).unwrap();
        service.submit(&twig, Strategy::Auto).unwrap().wait().unwrap();
    }
    let first = parse_samples(&service.metrics_text());
    for q in &queries {
        let twig = parse_xpath(q).unwrap();
        service.submit(&twig, Strategy::RootPaths).unwrap().wait().unwrap();
    }
    let second = parse_samples(&service.metrics_text());

    assert!(first.keys().any(|k| k.starts_with("xtwig_queries_completed_total")));
    assert!(first.keys().any(|k| k.starts_with("xtwig_pool_page_reads_total{pool=")));
    for (name, &before) in &first {
        // Gauges (queue depth, admission in-flight) may legitimately
        // go down; everything else in the exposition is a counter or
        // histogram component.
        if name.starts_with("xtwig_queue_depth") || name.starts_with("xtwig_in_flight") {
            continue;
        }
        let after = *second.get(name).unwrap_or_else(|| panic!("{name} vanished from scrape"));
        assert!(after >= before, "{name} went backwards: {before} -> {after}");
    }
    assert_eq!(second["xtwig_queries_completed_total"], 5.0);

    // Histogram (per strategy): cumulative over le, +Inf == _count.
    let mut buckets: Vec<(f64, f64)> = second
        .iter()
        .filter_map(|(k, &v)| {
            let le = k.strip_prefix("xtwig_query_latency_micros_bucket{strategy=\"RP\",le=\"")?;
            let le = le.strip_suffix("\"}")?;
            Some((if le == "+Inf" { f64::INFINITY } else { le.parse().unwrap() }, v))
        })
        .collect();
    buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    assert!(!buckets.is_empty(), "no latency buckets emitted");
    for pair in buckets.windows(2) {
        assert!(pair[1].1 >= pair[0].1, "bucket counts not cumulative");
    }
    assert_eq!(
        buckets.last().unwrap().1,
        second["xtwig_query_latency_micros_count{strategy=\"RP\"}"]
    );
    service.shutdown();
}

/// The slow-query ring keeps the newest `slow_query_capacity` entries,
/// evicting the oldest, while the total counter keeps counting every
/// capture — and each entry carries a rendered span tree.
#[test]
fn slow_query_log_evicts_at_capacity() {
    let service = TwigService::build(
        fig1_book_document(),
        EngineOptions { pool_pages: 256, ..Default::default() },
        ServiceOptions {
            workers: 1,
            result_cache_capacity: 0,
            slow_query_micros: Some(0), // every execution is "slow"
            slow_query_capacity: 2,
            ..Default::default()
        },
    );
    let queries = ["//title", "//section/head", "//author[fn = 'jane']/ln", "/book/title"];
    for q in queries {
        let twig = parse_xpath(q).unwrap();
        service.submit(&twig, Strategy::RootPaths).unwrap().wait().unwrap();
    }
    let slow = service.slow_queries();
    assert_eq!(slow.len(), 2, "ring must hold exactly its capacity");
    // Newest two survive, oldest two were evicted.
    assert!(slow[0].query.contains("author"), "kept: {}", slow[0].query);
    assert!(slow[1].query.contains("title"), "kept: {}", slow[1].query);
    for entry in &slow {
        assert_eq!(entry.strategy, Strategy::RootPaths);
        assert!(entry.spans.contains("execute"), "entry lacks its span tree");
    }
    let samples = parse_samples(&service.metrics_text());
    assert_eq!(samples["xtwig_slow_queries_total"], 4.0, "total must count evicted captures too");
    service.shutdown();
}

/// Exposition conformance: every sample's family declares `# HELP` and
/// `# TYPE` (each exactly once, headers before the first sample), every
/// `TYPE` names a known kind, histogram `_bucket`/`_sum`/`_count`
/// samples resolve to their base family, and no declared family is
/// sample-less.
#[test]
fn exposition_declares_help_and_type_for_every_family_before_its_samples() {
    let service = TwigService::build(
        fig1_book_document(),
        EngineOptions { pool_pages: 256, ..Default::default() },
        ServiceOptions { workers: 1, slow_query_micros: Some(0), ..Default::default() },
    );
    // Populate the filtered families (per-strategy costs, latency
    // histograms, shapes, the slow-query counter).
    for q in ["//title", "/book[title='XML']//author[fn='jane'][ln='doe']"] {
        let twig = parse_xpath(q).unwrap();
        service.submit(&twig, Strategy::Auto).unwrap().wait().unwrap();
    }
    let text = service.metrics_text();

    let mut help: BTreeMap<String, usize> = BTreeMap::new();
    let mut kind: BTreeMap<String, (usize, String)> = BTreeMap::new();
    let mut sampled: BTreeSet<String> = BTreeSet::new();
    for (no, line) in text.lines().enumerate() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (family, text) = rest.split_once(' ').unwrap_or_else(|| panic!("bare: {line}"));
            assert!(!text.trim().is_empty(), "HELP without text: {line}");
            assert!(help.insert(family.to_owned(), no).is_none(), "HELP declared twice: {line}");
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (family, k) = rest.split_once(' ').unwrap_or_else(|| panic!("bare: {line}"));
            assert!(
                ["counter", "gauge", "histogram"].contains(&k),
                "unknown TYPE kind {k}: {line}"
            );
            assert!(
                kind.insert(family.to_owned(), (no, k.to_owned())).is_none(),
                "TYPE declared twice: {line}"
            );
        } else if !line.is_empty() {
            let name = line.split(['{', ' ']).next().unwrap_or(line);
            // Histogram component samples belong to the base family.
            let family = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suffix| {
                    let base = name.strip_suffix(suffix)?;
                    matches!(kind.get(base), Some((_, k)) if k == "histogram").then_some(base)
                })
                .unwrap_or(name);
            let (type_line, _) =
                kind.get(family).unwrap_or_else(|| panic!("sample without TYPE: {line}"));
            let help_line =
                help.get(family).unwrap_or_else(|| panic!("sample without HELP: {line}"));
            assert!(*type_line < no && *help_line < no, "headers must precede sample: {line}");
            sampled.insert(family.to_owned());
        }
    }
    assert_eq!(
        help.keys().collect::<Vec<_>>(),
        kind.keys().collect::<Vec<_>>(),
        "HELP and TYPE declarations must pair up"
    );
    for family in help.keys() {
        assert!(sampled.contains(family), "family {family} declared but never sampled");
    }
    service.shutdown();
}

/// Label values pass through `json_escape` on the way into the
/// exposition: a shape key carrying quotes, backslashes and a newline
/// must land on ONE sample line with the hostile characters escaped,
/// and the line must still split as `name{labels} value`.
#[test]
fn hostile_label_values_are_escaped_in_the_exposition() {
    let registry = MetricsRegistry::new(None, 0);
    let evil = "shape\"with\\hostile\nchars";
    registry.observe_shape(evil, std::time::Duration::from_micros(5));
    let journal = EventJournal::new(8);

    // A real snapshot (zeroed counters) from a throwaway service; the
    // renderer is a free function precisely so this test needs no pool.
    let service = TwigService::build(
        fig1_book_document(),
        EngineOptions { pool_pages: 256, ..Default::default() },
        ServiceOptions { workers: 1, ..Default::default() },
    );
    let snapshot = service.stats();
    service.shutdown();

    let text = render_metrics(&snapshot, &[], &registry, &journal);
    let lines: Vec<&str> =
        text.lines().filter(|l| l.starts_with("xtwig_shape_queries_total{")).collect();
    assert_eq!(lines.len(), 1, "the newline in the label must be escaped, not emitted: {lines:?}");
    let line = lines[0];
    // json_escape turns the quote into `\"`, the backslash into `\\`
    // and the newline into the two characters `\n`.
    assert!(
        line.contains("shape=\"shape\\\"with\\\\hostile\\nchars\""),
        "hostile characters not escaped: {line}"
    );
    // Still one well-formed sample: name{...} value.
    let (rest, value) = line.rsplit_once(' ').unwrap();
    assert_eq!(value.parse::<f64>().unwrap(), 1.0);
    assert!(rest.ends_with('}'), "labels not closed: {line}");
    // Unescaped interior quotes would break the quote parity of the
    // label section; escaped ones keep it even.
    let label_section = &rest["xtwig_shape_queries_total".len()..];
    let unescaped_quotes = label_section
        .as_bytes()
        .iter()
        .enumerate()
        .filter(|&(i, &b)| b == b'"' && (i == 0 || label_section.as_bytes()[i - 1] != b'\\'))
        .count();
    assert_eq!(unescaped_quotes % 2, 0, "unbalanced quotes: {line}");
}

/// Eight concurrent scrapers each see their own monotonic view of every
/// counter while a driver keeps the service busy — the exposition is
/// assembled from a coherent snapshot, not read piecemeal mid-update.
#[test]
fn counters_stay_monotonic_under_concurrent_scrapers() {
    let service = TwigService::build(
        fig1_book_document(),
        EngineOptions { pool_pages: 256, ..Default::default() },
        ServiceOptions { workers: 2, result_cache_capacity: 0, ..Default::default() },
    );
    std::thread::scope(|scope| {
        let svc = &service;
        let scrapers: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(move || {
                    let mut prev: BTreeMap<String, f64> = BTreeMap::new();
                    for _ in 0..20 {
                        let cur = parse_samples(&svc.metrics_text());
                        for (name, &before) in &prev {
                            if name.starts_with("xtwig_queue_depth")
                                || name.starts_with("xtwig_in_flight")
                                || name.starts_with("xtwig_generation")
                            {
                                continue;
                            }
                            let after = cur
                                .get(name)
                                .copied()
                                .unwrap_or_else(|| panic!("{name} vanished mid-scrape"));
                            assert!(
                                after >= before,
                                "{name} went backwards under concurrent scrape: {before} -> {after}"
                            );
                        }
                        prev = cur;
                    }
                })
            })
            .collect();
        let driver = scope.spawn(move || {
            let queries = ["//title", "//section/head", "/book/title"];
            for round in 0..30 {
                let twig = parse_xpath(queries[round % queries.len()]).unwrap();
                svc.submit(&twig, Strategy::RootPaths).unwrap().wait().unwrap();
            }
        });
        driver.join().unwrap();
        for s in scrapers {
            s.join().unwrap();
        }
    });
    service.shutdown();
}

/// Traced executions feed the engine's calibration log with
/// literal-elided shapes; untraced executions do not.
#[test]
fn traced_runs_feed_the_calibration_log() {
    let forest = fig1_book_document();
    let e = engine(&forest);
    let twig = parse_xpath("/book[title='XML']//author[fn='jane'][ln='doe']").unwrap();

    e.answer(&twig, Strategy::RootPaths);
    assert!(e.calibration_log().is_empty(), "untraced run must not record samples");

    e.answer_traced(&twig, Strategy::RootPaths);
    e.answer_traced(&twig, Strategy::DataPaths);
    let samples = e.calibration_log().samples();
    assert_eq!(samples.len(), 2);
    for s in &samples {
        // Literals elided, output node starred — two ways the shape key
        // proves it aggregates across constants.
        assert!(s.shape.contains("=?"), "literal not elided: {}", s.shape);
        assert!(s.shape.contains('*'), "output not starred: {}", s.shape);
        assert!(s.shape.contains("author"), "wrong shape: {}", s.shape);
    }
    let report = e.calibration_log().advise(5).to_string();
    assert!(report.contains("RP"), "advise must cover the traced strategies: {report}");
    assert!(report.contains("advisory"), "advise must declare itself advisory: {report}");
}
