//! Model-based property tests: the disk-format B+-tree against
//! `std::collections::BTreeMap` under arbitrary operation sequences.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use xtwig::btree::{bulk_build, BTree, BTreeOptions};
use xtwig::storage::BufferPool;

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Get(Vec<u8>),
    PrefixScan(Vec<u8>),
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Keys with heavy shared prefixes and zero bytes, the regime the
    // designator/codec layers produce.
    proptest::collection::vec(prop_oneof![Just(0u8), Just(1), Just(2), 97..=99u8], 1..12)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (key_strategy(), proptest::collection::vec(any::<u8>(), 0..20))
            .prop_map(|(k, v)| Op::Insert(k, v)),
        key_strategy().prop_map(Op::Delete),
        key_strategy().prop_map(Op::Get),
        proptest::collection::vec(97..=99u8, 0..3).prop_map(Op::PrefixScan),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn tree_matches_btreemap_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let pool = Arc::new(BufferPool::in_memory(256));
        let mut tree = BTree::new(pool);
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(&k, &v), model.insert(k, v));
                }
                Op::Delete(k) => {
                    prop_assert_eq!(tree.delete(&k), model.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(&k), model.get(&k).cloned());
                }
                Op::PrefixScan(p) => {
                    let got: Vec<_> = tree.scan_prefix(&p).collect();
                    let want: Vec<_> = model
                        .range(p.clone()..)
                        .take_while(|(k, _)| k.starts_with(&p))
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(tree.len(), model.len() as u64);
        }
        let scanned: Vec<_> = tree.scan_all().collect();
        let expected: Vec<_> = model.into_iter().collect();
        prop_assert_eq!(scanned, expected);
        tree.check_invariants();
    }

    #[test]
    fn bulk_build_equals_scan_of_sorted_input(
        entries in proptest::collection::btree_map(
            key_strategy(),
            proptest::collection::vec(any::<u8>(), 0..16),
            0..300,
        ),
    ) {
        let pool = Arc::new(BufferPool::in_memory(1024));
        let sorted: Vec<(Vec<u8>, Vec<u8>)> = entries.clone().into_iter().collect();
        let tree = bulk_build(pool, BTreeOptions::default(), sorted.clone());
        prop_assert_eq!(tree.len(), sorted.len() as u64);
        let scanned: Vec<_> = tree.scan_all().collect();
        prop_assert_eq!(scanned, sorted);
        tree.check_invariants();
        for (k, v) in entries.iter().take(20) {
            prop_assert_eq!(tree.get(k), Some(v.clone()));
        }
    }

    #[test]
    fn prefix_truncation_never_changes_results(
        entries in proptest::collection::btree_map(key_strategy(), Just(Vec::new()), 0..200),
        probe in proptest::collection::vec(97..=99u8, 0..4),
    ) {
        let sorted: Vec<(Vec<u8>, Vec<u8>)> = entries.into_iter().collect();
        let with = bulk_build(
            Arc::new(BufferPool::in_memory(1024)),
            BTreeOptions { prefix_truncation: true, ..Default::default() },
            sorted.clone(),
        );
        let without = bulk_build(
            Arc::new(BufferPool::in_memory(1024)),
            BTreeOptions { prefix_truncation: false, ..Default::default() },
            sorted,
        );
        let a: Vec<_> = with.scan_prefix(&probe).collect();
        let b: Vec<_> = without.scan_prefix(&probe).collect();
        prop_assert_eq!(a, b);
    }
}
