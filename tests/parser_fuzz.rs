//! Property tests for the XML parser/serializer pair.

use proptest::prelude::*;
use xtwig::xml::{parse_document, serialize, XmlForest};

/// Builds a random forest from a byte program, with names/values drawn
/// from pools that include XML-hostile characters.
fn forest_from_program(program: &[u8]) -> XmlForest {
    const TAGS: &[&str] = &["a", "b2", "long-name", "x_y", "ns:t"];
    const VALUES: &[&str] =
        &["plain", "a<b", "x & y", "\"quoted\"", "it's", "tab\there", "ünïcødé 中文", ""];
    let mut forest = XmlForest::new();
    let mut b = forest.builder();
    b.open("root");
    let mut depth = 1usize;
    let mut can_attr = true; // attributes must precede child elements
    for chunk in program.chunks(2) {
        let op = chunk[0] % 10;
        let sel = *chunk.get(1).unwrap_or(&0) as usize;
        match op {
            0..=3 => {
                if depth < 10 {
                    b.open(TAGS[sel % TAGS.len()]);
                    depth += 1;
                    can_attr = true;
                }
            }
            4 | 5 => {
                if depth > 1 {
                    b.close();
                    depth -= 1;
                    can_attr = false;
                }
            }
            6 | 7 => {
                let v = VALUES[sel % VALUES.len()];
                if !v.is_empty() {
                    b.text(v);
                }
            }
            _ => {
                if can_attr {
                    b.attr(TAGS[sel % TAGS.len()], VALUES[sel % VALUES.len()]);
                }
            }
        }
    }
    while depth > 0 {
        b.close();
        depth -= 1;
    }
    b.finish();
    forest
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn serialize_then_parse_is_identity(program in proptest::collection::vec(any::<u8>(), 0..200)) {
        let f1 = forest_from_program(&program);
        let text = serialize::serialize_subtree(&f1, f1.roots()[0]);
        let mut f2 = XmlForest::new();
        let r2 = parse_document(&mut f2, &text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        let n1: Vec<_> = f1.iter_subtree(f1.roots()[0]).collect();
        let n2: Vec<_> = f2.iter_subtree(r2).collect();
        prop_assert_eq!(n1.len(), n2.len(), "node count changed:\n{}", text);
        for (&a, &b) in n1.iter().zip(&n2) {
            prop_assert_eq!(f1.tag_name(a), f2.tag_name(b));
            prop_assert_eq!(f1.value_str(a), f2.value_str(b));
            prop_assert_eq!(f1.depth(a), f2.depth(b));
            prop_assert_eq!(f1.kind(a), f2.kind(b));
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,300}") {
        let mut f = XmlForest::new();
        let _ = parse_document(&mut f, &input);
    }

    #[test]
    fn parser_never_panics_on_tag_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<a>".to_owned()),
                Just("</a>".to_owned()),
                Just("<b x='1'>".to_owned()),
                Just("</b>".to_owned()),
                Just("text".to_owned()),
                Just("<!-- c -->".to_owned()),
                Just("<![CDATA[d]]>".to_owned()),
                Just("&amp;".to_owned()),
                Just("&bogus;".to_owned()),
                Just("<".to_owned()),
                Just(">".to_owned()),
                Just("<a".to_owned()),
            ],
            0..24,
        ),
    ) {
        let soup: String = parts.concat();
        let mut f = XmlForest::new();
        let _ = parse_document(&mut f, &soup);
    }
}

#[test]
fn pretty_printing_roundtrips_generated_datasets() {
    let mut forest = XmlForest::new();
    xtwig::datagen::generate_xmark(
        &mut forest,
        xtwig::datagen::XmarkConfig { scale: 0.002, seed: 2 },
    );
    let text = serialize::serialize_pretty(&forest, forest.roots()[0]);
    let mut f2 = XmlForest::new();
    let r2 = parse_document(&mut f2, &text).expect("generated XML must reparse");
    assert_eq!(forest.iter_subtree(forest.roots()[0]).count(), f2.iter_subtree(r2).count());
}
