//! End-to-end wire-protocol suite: a real TCP server over a persisted
//! multi-index catalog, exercised by real clients. The core assertion
//! is that answers over the wire are byte-identical to in-process
//! [`TwigService`] execution — for every built strategy, under
//! concurrent clients, and while maintenance transactions commit —
//! plus the failure paths: typed errors for malformed frames, unknown
//! indexes/tags, unbuilt strategies, and a graceful shutdown that
//! leaves nothing running.

use std::path::PathBuf;
use std::sync::Arc;
use xtwig::core::engine::{EngineOptions, QueryEngine, Strategy};
use xtwig::net::frame::{read_frame, write_frame};
use xtwig::net::{Client, ClientError, ErrorCode, Response, Server, ServerHandle, WireOp};
use xtwig::parse_xpath;
use xtwig::service::{Catalog, CatalogOptions, ServiceOptions, TwigService};
use xtwig::xml::tree::fig1_book_document;

struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "xtwig-network-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Persists a fig1 index under `name` with the given strategies.
fn persist_fig1(dir: &TempDir, name: &str, strategies: Vec<Strategy>) -> PathBuf {
    let engine = QueryEngine::build(
        fig1_book_document(),
        EngineOptions { strategies, pool_pages: 256, ..Default::default() },
    );
    let path = dir.path(&format!("{name}.xtwig"));
    engine.persist(&path).unwrap();
    path
}

/// Starts a server on an ephemeral port; returns its handle and the
/// thread running the accept loop.
fn start_server(catalog: Catalog) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", Arc::new(catalog)).unwrap();
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || server.run().unwrap());
    (handle, join)
}

fn connect(handle: &ServerHandle) -> Client {
    Client::connect_with_timeout(handle.addr(), Some(std::time::Duration::from_secs(30))).unwrap()
}

const QUERIES: [&str; 4] = [
    "/book[title='XML']//author[fn='jane'][ln='doe']",
    "//author[fn='jane']",
    "/book/title",
    "//allauthors/author[ln='doe']",
];

#[test]
fn wire_answers_are_byte_identical_to_in_process_for_every_strategy() {
    let dir = TempDir::new("identical");
    let path = persist_fig1(&dir, "fig1", Strategy::ALL.to_vec());

    // Independent in-process service over the same index file: the
    // reference the wire must match exactly.
    let reference = TwigService::open(&path, ServiceOptions::default()).unwrap();

    let catalog = Catalog::new(CatalogOptions::default());
    catalog.register("fig1", &path);
    let (handle, join) = start_server(catalog);
    let mut client = connect(&handle);

    for xpath in QUERIES {
        let twig = parse_xpath(xpath).unwrap();
        for strategy in Strategy::ALL {
            let expected: Vec<u64> =
                reference.execute(&twig, strategy).unwrap().ids.iter().copied().collect();
            let wire = client.query("fig1", xpath, strategy.label()).unwrap();
            assert_eq!(wire.ids, expected, "{xpath} under {}", strategy.label());
            assert_eq!(wire.strategy, strategy.label());
        }
        // `auto` resolves to a concrete strategy server-side and must
        // agree with the in-process optimizer's pick.
        let auto_expected = reference.execute(&twig, Strategy::Auto).unwrap();
        let wire = client.query("fig1", xpath, "auto").unwrap();
        assert_eq!(
            wire.ids,
            auto_expected.ids.iter().copied().collect::<Vec<u64>>(),
            "{xpath} under auto"
        );
        assert_ne!(wire.strategy, "auto", "answer reports the concrete pick");
    }

    handle.stop();
    join.join().unwrap();
}

#[test]
fn concurrent_clients_all_see_identical_answers() {
    let dir = TempDir::new("concurrent");
    let path = persist_fig1(&dir, "fig1", Strategy::ALL.to_vec());
    let reference = TwigService::open(&path, ServiceOptions::default()).unwrap();

    let catalog = Catalog::new(CatalogOptions::default());
    catalog.register("fig1", &path);
    let (handle, join) = start_server(catalog);

    let expected: Vec<Vec<u64>> = QUERIES
        .iter()
        .map(|q| {
            let twig = parse_xpath(q).unwrap();
            reference.execute(&twig, Strategy::RootPaths).unwrap().ids.iter().copied().collect()
        })
        .collect();
    let expected = Arc::new(expected);

    let clients: Vec<_> = (0..8)
        .map(|worker| {
            let handle = handle.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = connect(&handle);
                for round in 0..20 {
                    let qi = (worker + round) % QUERIES.len();
                    // Alternate labels so cache hits and misses mix.
                    let label = if round % 2 == 0 { "RP" } else { "auto" };
                    let wire = client.query("fig1", QUERIES[qi], label).unwrap();
                    assert_eq!(wire.ids, expected[qi], "{} under {label}", QUERIES[qi]);
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    handle.stop();
    join.join().unwrap();
}

#[test]
fn wire_updates_commit_while_concurrent_clients_read() {
    let dir = TempDir::new("update");
    // RP + DP only: the maintainable strategies, so the update applies
    // everywhere the query can run.
    let path = persist_fig1(&dir, "fig1", vec![Strategy::RootPaths, Strategy::DataPaths]);
    let catalog = Catalog::new(CatalogOptions::default());
    catalog.register("fig1", &path);
    let (handle, join) = start_server(catalog);

    // Readers hammer the index across the update; snapshot isolation
    // means every answer is either entirely-before or entirely-after.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let handle = handle.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut client = connect(&handle);
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    let wire = client.query("fig1", "//author[fn='ada']", "RP").unwrap();
                    assert!(
                        wire.ids.is_empty() || wire.ids == vec![900],
                        "torn answer: {:?}",
                        wire.ids
                    );
                }
            })
        })
        .collect();

    let mut client = connect(&handle);
    let before = client.query("fig1", "//author[fn='ada']", "RP").unwrap();
    assert!(before.ids.is_empty());

    // Wire ops carry tag *names*; the server resolves them through the
    // index's dictionary.
    let books = |tags: &[&str]| tags.iter().map(|t| t.to_string()).collect::<Vec<_>>();
    let generation = client
        .update(
            "fig1",
            vec![
                WireOp {
                    insert: true,
                    tags: books(&["book", "allauthors", "author"]),
                    ids: vec![1, 5, 900],
                    value: None,
                },
                WireOp {
                    insert: true,
                    tags: books(&["book", "allauthors", "author", "fn"]),
                    ids: vec![1, 5, 900, 901],
                    value: Some("ada".into()),
                },
            ],
        )
        .unwrap();
    assert_eq!(generation, 1);

    // Post-commit, the stale cached empty answer must not be served
    // (a cache hit is fine — but only of the post-update answer, which
    // a concurrent reader may already have repopulated).
    let after = client.query("fig1", "//author[fn='ada']", "RP").unwrap();
    assert_eq!(after.ids, vec![900]);

    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    for r in readers {
        r.join().unwrap();
    }
    handle.stop();
    join.join().unwrap();
}

#[test]
fn every_failure_path_is_a_typed_error() {
    let dir = TempDir::new("errors");
    // RP-only index: lets us hit StrategyNotBuilt with a real request.
    let path = persist_fig1(&dir, "fig1", vec![Strategy::RootPaths]);
    let catalog = Catalog::new(CatalogOptions::default());
    catalog.register("fig1", &path);
    let (handle, join) = start_server(catalog);
    let mut client = connect(&handle);

    let code_of = |r: Result<xtwig::net::WireAnswer, ClientError>| match r {
        Err(ClientError::Server { code, .. }) => code,
        other => panic!("expected a typed server error, got {other:?}"),
    };
    assert_eq!(code_of(client.query("nope", "/book", "RP")), ErrorCode::UnknownIndex);
    assert_eq!(code_of(client.query("fig1", "/book[", "RP")), ErrorCode::BadQuery);
    assert_eq!(code_of(client.query("fig1", "/book", "JI")), ErrorCode::StrategyNotBuilt);
    assert_eq!(code_of(client.query("fig1", "/book", "warp-drive")), ErrorCode::Malformed);
    match client.update(
        "fig1",
        vec![WireOp { insert: true, tags: vec!["martian".into()], ids: vec![7], value: None }],
    ) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownTag),
        other => panic!("expected UnknownTag, got {other:?}"),
    }
    // The connection survived every well-framed error above.
    client.ping().unwrap();

    handle.stop();
    join.join().unwrap();
}

#[test]
fn garbage_bytes_get_a_typed_error_then_disconnect_but_bad_payloads_do_not() {
    let dir = TempDir::new("malformed");
    let path = persist_fig1(&dir, "fig1", vec![Strategy::RootPaths]);
    let catalog = Catalog::new(CatalogOptions::default());
    catalog.register("fig1", &path);
    let (handle, join) = start_server(catalog);

    // Raw garbage: typed Malformed error, then the server drops the
    // connection (framing is unrecoverable).
    let mut client = connect(&handle);
    match client.send_raw(b"once upon a time").unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected Malformed, got {other:?}"),
    }
    assert!(client.ping().is_err(), "desynchronized connection must be dropped");

    // A well-framed payload with an unknown opcode: typed error, and
    // the connection keeps serving.
    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    stream.set_read_timeout(Some(std::time::Duration::from_secs(30))).unwrap();
    write_frame(&mut stream, 0x7f, b"").unwrap();
    let frame = read_frame(&mut stream).unwrap();
    match Response::decode(&frame).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected Malformed, got {other:?}"),
    }
    let (op, payload) = xtwig::net::Request::Ping.encode();
    write_frame(&mut stream, op, &payload).unwrap();
    let frame = read_frame(&mut stream).unwrap();
    assert_eq!(Response::decode(&frame).unwrap(), Response::Pong);

    handle.stop();
    join.join().unwrap();
}

#[test]
fn client_shutdown_request_stops_the_server_gracefully() {
    let dir = TempDir::new("shutdown");
    let path = persist_fig1(&dir, "fig1", vec![Strategy::RootPaths]);
    let catalog = Catalog::new(CatalogOptions::default());
    catalog.register("fig1", &path);
    let (handle, join) = start_server(catalog);

    let mut client = connect(&handle);
    client.query("fig1", "/book", "RP").unwrap();
    client.shutdown().unwrap();
    join.join().unwrap(); // accept loop exits; nothing leaks

    // The listener is gone: new connections are refused (allow the OS
    // a moment to tear the socket down).
    let refused = (0..50).any(|_| {
        std::thread::sleep(std::time::Duration::from_millis(20));
        std::net::TcpStream::connect(handle.addr()).is_err()
    });
    assert!(refused, "listener still accepting after shutdown");
}

#[test]
fn a_slow_wire_query_is_attributable_end_to_end() {
    let dir = TempDir::new("attribution");
    let path = persist_fig1(&dir, "fig1", vec![Strategy::RootPaths]);
    // Zero slow threshold: every query crosses it, so ordinary wire
    // traffic lands in both the journal and the trace ring.
    let catalog = Catalog::new(CatalogOptions {
        service: ServiceOptions { slow_query_micros: Some(0), ..Default::default() },
        ..Default::default()
    });
    catalog.register("fig1", &path);
    let (handle, join) = start_server(catalog);
    let mut client = connect(&handle);

    // The client stamps every request; the server echoes the id back
    // on the answer's envelope.
    let wire = client.query("fig1", "//author[fn='jane']", "RP").unwrap();
    assert!(wire.request_id > 0, "client must stamp a nonzero request id");
    assert_eq!(wire.request_id, client.last_request_id());

    // The journal attributes the slow query to that id and to a
    // concrete peer address (alongside the connection's open event).
    let events = client.events(0, 256).unwrap();
    assert!(events.iter().any(|e| e.kind == "conn-open"), "journal missing conn-open");
    let slow = events
        .iter()
        .find(|e| {
            e.kind == "slow-query" && e.detail.contains(&format!("request_id={}", wire.request_id))
        })
        .unwrap_or_else(|| panic!("no slow-query for request {}: {events:?}", wire.request_id));
    assert!(slow.detail.contains("peer=127.0.0.1:"), "{}", slow.detail);
    assert!(slow.detail.contains("author"), "{}", slow.detail);

    // The captured span tree is retrievable by the same id...
    let trace = client.trace("fig1", wire.request_id).unwrap();
    assert!(trace.contains(&format!("request {}", wire.request_id)), "{trace}");
    assert!(trace.contains("strategy RP"), "{trace}");

    // ...and an id nobody captured is a typed error, not a hang.
    match client.trace("fig1", u64::MAX) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownTrace),
        other => panic!("expected UnknownTrace, got {other:?}"),
    }

    // Explicit sampling works even when nothing is slow: a second
    // catalog entry would be overkill, so just verify the sampled path
    // on this one — the trace ring keeps the newest record per id.
    client.set_sampling(true);
    let sampled = client.query("fig1", "/book/title", "RP").unwrap();
    client.set_sampling(false);
    let trace = client.trace("fig1", sampled.request_id).unwrap();
    assert!(trace.contains(&format!("request {}", sampled.request_id)), "{trace}");

    handle.stop();
    join.join().unwrap();
}

#[test]
fn catalog_serves_many_indexes_by_name_over_one_connection() {
    let dir = TempDir::new("multi");
    persist_fig1(&dir, "alpha", vec![Strategy::RootPaths]);
    persist_fig1(&dir, "beta", Strategy::ALL.to_vec());
    // Open-on-demand via directory scan, with an LRU of one attached
    // engine so serving both indexes forces eviction traffic.
    let catalog =
        Catalog::scan_dir(&dir.0, CatalogOptions { max_attached: 1, ..CatalogOptions::default() })
            .unwrap();
    let (handle, join) = start_server(catalog);
    let mut client = connect(&handle);

    let listing = client.catalog().unwrap();
    assert!(listing.contains("alpha") && listing.contains("beta"), "{listing}");

    for round in 0..3 {
        for index in ["alpha", "beta"] {
            let wire = client.query(index, "//author[fn='jane']", "RP").unwrap();
            assert!(!wire.ids.is_empty(), "round {round}, index {index}");
        }
    }
    // Both indexes also expose their own metrics and stats.
    assert!(client.metrics("alpha").unwrap().contains("xtwig_queries_submitted_total"));
    assert!(client.stats("beta").unwrap().contains("\"admission_limit\""));

    handle.stop();
    join.join().unwrap();
}
