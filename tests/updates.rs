//! Integration: index maintenance (paper §7).
//!
//! "Updating the ROOTPATHS and DATAPATHS indices requires updating
//! multiple index entries … however, ROOTPATHS and DATAPATHS themselves
//! could be used to speed up the lookup of the entries to update."

use std::sync::Arc;
use xtwig::core::datapaths::{DataPaths, DataPathsOptions};
use xtwig::core::family::{BoundIndex, FreeIndex, PcSubpathQuery};
use xtwig::core::rootpaths::{RootPaths, RootPathsOptions};
use xtwig::parse_xpath;
use xtwig::storage::BufferPool;
use xtwig::xml::tree::fig1_book_document;
use xtwig::xml::TagId;
use xtwig::{EngineOptions, ServiceOptions, Strategy, TwigService, UpdateOp};

#[test]
fn inserting_an_author_adds_all_prefix_entries() {
    // §7's example: "inserting an author with a certain name to an
    // existing book requires inserting all prefixes of the
    // /book/author/name path".
    let mut forest = fig1_book_document();
    let mut rp = RootPaths::build(
        &forest,
        Arc::new(BufferPool::in_memory(2048)),
        RootPathsOptions::default(),
    );
    let rows_before = rp.rows();
    let tags: Vec<TagId> = ["book", "allauthors", "author", "fn"]
        .iter()
        .map(|t| forest.dict_mut().intern(t))
        .collect();
    // New author under allauthors (book=1, allauthors=5), with fresh ids.
    rp.insert_path(&tags[..3], &[1, 5, 900], None); // the author node
    rp.insert_path(&tags, &[1, 5, 900, 901], Some("ada")); // its fn

    // 3 entries: author structural, fn structural, fn valued.
    assert_eq!(rp.rows(), rows_before + 3);
    let q = PcSubpathQuery::resolve(forest.dict(), &["author", "fn"], false, Some("ada")).unwrap();
    let ms = rp.lookup_free(&q);
    assert_eq!(ms.len(), 1);
    assert_eq!(ms[0].ids, vec![1, 5, 900, 901]);
}

#[test]
fn deletes_are_self_locating() {
    // §7: "we could use the author name and the schema path to locate the
    // authors with the given name, and extract the book IDs from the
    // matching entries" — no joins needed.
    let forest = fig1_book_document();
    let mut rp = RootPaths::build(
        &forest,
        Arc::new(BufferPool::in_memory(2048)),
        RootPathsOptions::default(),
    );
    let tags: Vec<TagId> = ["book", "allauthors", "author", "fn"]
        .iter()
        .map(|t| forest.dict().lookup(t).unwrap())
        .collect();
    // Locate jane entries via one lookup, then delete the one under
    // book 1 / author 41.
    let q = PcSubpathQuery::resolve(forest.dict(), &["author", "fn"], false, Some("jane")).unwrap();
    let before = rp.lookup_free(&q);
    assert_eq!(before.len(), 2);
    let victim = before.iter().find(|m| m.ids[2] == 41).unwrap().ids.clone();
    assert!(rp.delete_path(&tags, &victim, Some("jane")));
    let after = rp.lookup_free(&q);
    assert_eq!(after.len(), 1);
    assert_eq!(after[0].ids[2], 6, "the other jane remains");
    // Deleting again is a no-op.
    assert!(!rp.delete_path(&tags, &victim, Some("jane")));
}

#[test]
fn update_cost_scales_with_path_depth() {
    // Each inserted node costs one entry per value + structural row —
    // but a node insertion into ROOTPATHS touches only its own path
    // prefixes, independent of document size.
    let forest = fig1_book_document();
    let mut rp = RootPaths::build(
        &forest,
        Arc::new(BufferPool::in_memory(2048)),
        RootPathsOptions::default(),
    );
    let mut dict = forest.dict().clone();
    let deep_tags: Vec<TagId> =
        ["book", "chapter", "section", "p"].iter().map(|t| dict.intern(t)).collect();
    let rows0 = rp.rows();
    // Insert a subtree of 3 nodes (chapter-2/section/p): 3 insert_path
    // calls, one per node, exactly like §7 describes.
    rp.insert_path(&deep_tags[..2], &[1, 800], None);
    rp.insert_path(&deep_tags[..3], &[1, 800, 801], None);
    rp.insert_path(&deep_tags, &[1, 800, 801, 802], Some("text"));
    assert_eq!(rp.rows(), rows0 + 4); // 3 structural + 1 valued
    rp.tree().check_invariants();
}

// ---------------------------------------------------------------------------
// DATAPATHS maintenance (§7) — the ROADMAP flagged this path as untested
// relative to ROOTPATHS. A DATAPATHS insertion touches one FreeIndex row
// plus one BoundIndex row per ancestor position, and both probe shapes
// must observe the change.
// ---------------------------------------------------------------------------

#[test]
fn datapaths_insertion_adds_free_and_bound_rows() {
    let mut forest = fig1_book_document();
    let tags: Vec<TagId> = ["book", "allauthors", "author", "fn"]
        .iter()
        .map(|t| forest.dict_mut().intern(t))
        .collect();
    let mut dp = DataPaths::build(
        &forest,
        Arc::new(BufferPool::in_memory(4096)),
        DataPathsOptions::default(),
    );
    let rows0 = dp.rows();
    // New author (id 900) with fn "ada" (id 901) under allauthors (5).
    dp.insert_path(&tags[..3], &[1, 5, 900], None);
    dp.insert_path(&tags, &[1, 5, 900, 901], Some("ada"));
    // author: 1 free + 3 bound; fn: (1 free + 4 bound) x2 value variants.
    assert_eq!(dp.rows(), rows0 + 4 + 10);
    dp.tree().check_invariants();

    let q = PcSubpathQuery::resolve(forest.dict(), &["author", "fn"], false, Some("ada")).unwrap();
    // FreeIndex probe sees the new path with its full root IdList.
    let free = dp.lookup_free(&q);
    assert_eq!(free.len(), 1);
    assert_eq!(free[0].ids, vec![1, 5, 900, 901]);
    // BoundIndex probes see it from every ancestor position.
    let allauthors = forest.dict().lookup("allauthors").unwrap();
    let bound = dp.lookup_bound(5, allauthors, &q);
    assert_eq!(bound.len(), 1);
    assert_eq!(bound[0].ids, vec![5, 900, 901]);
    let book = forest.dict().lookup("book").unwrap();
    let bound = dp.lookup_bound(1, book, &q);
    assert_eq!(bound.len(), 1);
    // The stored row is the full path from the head, so the match
    // carries every step book/allauthors/author/fn.
    assert_eq!(bound[0].ids, vec![1, 5, 900, 901]);
}

#[test]
fn datapaths_deletes_are_self_locating() {
    // §7's argument applies to DATAPATHS too: the value plus schema path
    // locate every row of the victim without any join.
    let forest = fig1_book_document();
    let tags: Vec<TagId> = ["book", "allauthors", "author", "fn"]
        .iter()
        .map(|t| forest.dict().lookup(t).unwrap())
        .collect();
    let mut dp = DataPaths::build(
        &forest,
        Arc::new(BufferPool::in_memory(4096)),
        DataPathsOptions::default(),
    );
    let rows0 = dp.rows();
    let q = PcSubpathQuery::resolve(forest.dict(), &["author", "fn"], false, Some("jane")).unwrap();
    let before = dp.lookup_free(&q);
    assert_eq!(before.len(), 2);
    let victim = before.iter().find(|m| m.ids[2] == 41).unwrap().ids.clone();
    assert!(dp.delete_path(&tags, &victim, Some("jane")));
    // fn at depth 4: (1 free + 4 bound) x2 value variants removed.
    assert_eq!(dp.rows(), rows0 - 10);
    let after = dp.lookup_free(&q);
    assert_eq!(after.len(), 1);
    assert_eq!(after[0].ids[2], 6, "the other jane remains");
    // The bound view agrees.
    let allauthors = forest.dict().lookup("allauthors").unwrap();
    assert_eq!(dp.lookup_bound(5, allauthors, &q).len(), 1);
    assert!(dp.lookup_bound(41, tags[2], &q).is_empty());
    // Deleting again is a no-op.
    assert!(!dp.delete_path(&tags, &victim, Some("jane")));
    dp.tree().check_invariants();
}

#[test]
fn datapaths_maintenance_under_service_apply_update() {
    // The serving-layer path: apply_update commits UpdateOps against a
    // copy-on-write fork, publishes it as the next epoch, and both
    // strategies must answer consistently afterwards.
    let svc = TwigService::build(
        fig1_book_document(),
        EngineOptions {
            strategies: vec![Strategy::RootPaths, Strategy::DataPaths],
            pool_pages: 512,
            ..Default::default()
        },
        ServiceOptions { workers: 2, ..Default::default() },
    );
    let twig = parse_xpath("//author[fn='ada']").unwrap();
    for s in [Strategy::RootPaths, Strategy::DataPaths] {
        assert!(svc.submit(&twig, s).unwrap().wait().unwrap().ids.is_empty());
    }
    let tags: Vec<TagId> = svc.with_engine(|e| {
        ["book", "allauthors", "author", "fn"]
            .iter()
            .map(|t| e.forest().dict().lookup(t).unwrap())
            .collect()
    });
    svc.apply_update(vec![
        UpdateOp::InsertPath { tags: tags[..3].to_vec(), ids: vec![1, 5, 900], value: None },
        UpdateOp::InsertPath {
            tags: tags.clone(),
            ids: vec![1, 5, 900, 901],
            value: Some("ada".into()),
        },
    ]);
    for s in [Strategy::RootPaths, Strategy::DataPaths] {
        let a = svc.submit(&twig, s).unwrap().wait().unwrap();
        assert!(!a.from_cache, "{s}: stale cached empty answer served");
        assert_eq!(a.ids.iter().copied().collect::<Vec<_>>(), vec![900], "{s}");
    }
    // Branching query exercising the join paths over the updated index.
    let branching = parse_xpath("/book[title='XML']//author[fn='ada']").unwrap();
    for s in [Strategy::RootPaths, Strategy::DataPaths] {
        let a = svc.submit(&branching, s).unwrap().wait().unwrap();
        assert_eq!(a.ids.iter().copied().collect::<Vec<_>>(), vec![900], "{s}");
    }
    // Delete through the same path; both strategies converge to empty.
    svc.apply_update(vec![UpdateOp::DeletePath {
        tags,
        ids: vec![1, 5, 900, 901],
        value: Some("ada".into()),
    }]);
    for s in [Strategy::RootPaths, Strategy::DataPaths] {
        assert!(svc.submit(&twig, s).unwrap().wait().unwrap().ids.is_empty(), "{s}");
    }
    assert_eq!(svc.generation(), 2);
    svc.shutdown();
}
