//! Integration: index maintenance (paper §7).
//!
//! "Updating the ROOTPATHS and DATAPATHS indices requires updating
//! multiple index entries … however, ROOTPATHS and DATAPATHS themselves
//! could be used to speed up the lookup of the entries to update."

use std::sync::Arc;
use xtwig::core::family::{FreeIndex, PcSubpathQuery};
use xtwig::core::rootpaths::{RootPaths, RootPathsOptions};
use xtwig::storage::BufferPool;
use xtwig::xml::tree::fig1_book_document;
use xtwig::xml::TagId;

#[test]
fn inserting_an_author_adds_all_prefix_entries() {
    // §7's example: "inserting an author with a certain name to an
    // existing book requires inserting all prefixes of the
    // /book/author/name path".
    let mut forest = fig1_book_document();
    let mut rp = RootPaths::build(
        &forest,
        Arc::new(BufferPool::in_memory(2048)),
        RootPathsOptions::default(),
    );
    let rows_before = rp.rows();
    let tags: Vec<TagId> = ["book", "allauthors", "author", "fn"]
        .iter()
        .map(|t| forest.dict_mut().intern(t))
        .collect();
    // New author under allauthors (book=1, allauthors=5), with fresh ids.
    rp.insert_path(&tags[..3], &[1, 5, 900], None); // the author node
    rp.insert_path(&tags, &[1, 5, 900, 901], Some("ada")); // its fn

    // 3 entries: author structural, fn structural, fn valued.
    assert_eq!(rp.rows(), rows_before + 3);
    let q = PcSubpathQuery::resolve(forest.dict(), &["author", "fn"], false, Some("ada")).unwrap();
    let ms = rp.lookup_free(&q);
    assert_eq!(ms.len(), 1);
    assert_eq!(ms[0].ids, vec![1, 5, 900, 901]);
}

#[test]
fn deletes_are_self_locating() {
    // §7: "we could use the author name and the schema path to locate the
    // authors with the given name, and extract the book IDs from the
    // matching entries" — no joins needed.
    let forest = fig1_book_document();
    let mut rp = RootPaths::build(
        &forest,
        Arc::new(BufferPool::in_memory(2048)),
        RootPathsOptions::default(),
    );
    let tags: Vec<TagId> = ["book", "allauthors", "author", "fn"]
        .iter()
        .map(|t| forest.dict().lookup(t).unwrap())
        .collect();
    // Locate jane entries via one lookup, then delete the one under
    // book 1 / author 41.
    let q = PcSubpathQuery::resolve(forest.dict(), &["author", "fn"], false, Some("jane")).unwrap();
    let before = rp.lookup_free(&q);
    assert_eq!(before.len(), 2);
    let victim = before.iter().find(|m| m.ids[2] == 41).unwrap().ids.clone();
    assert!(rp.delete_path(&tags, &victim, Some("jane")));
    let after = rp.lookup_free(&q);
    assert_eq!(after.len(), 1);
    assert_eq!(after[0].ids[2], 6, "the other jane remains");
    // Deleting again is a no-op.
    assert!(!rp.delete_path(&tags, &victim, Some("jane")));
}

#[test]
fn update_cost_scales_with_path_depth() {
    // Each inserted node costs one entry per value + structural row —
    // but a node insertion into ROOTPATHS touches only its own path
    // prefixes, independent of document size.
    let forest = fig1_book_document();
    let mut rp = RootPaths::build(
        &forest,
        Arc::new(BufferPool::in_memory(2048)),
        RootPathsOptions::default(),
    );
    let mut dict = forest.dict().clone();
    let deep_tags: Vec<TagId> =
        ["book", "chapter", "section", "p"].iter().map(|t| dict.intern(t)).collect();
    let rows0 = rp.rows();
    // Insert a subtree of 3 nodes (chapter-2/section/p): 3 insert_path
    // calls, one per node, exactly like §7 describes.
    rp.insert_path(&deep_tags[..2], &[1, 800], None);
    rp.insert_path(&deep_tags[..3], &[1, 800, 801], None);
    rp.insert_path(&deep_tags, &[1, 800, 801, 802], Some("text"));
    assert_eq!(rp.rows(), rows0 + 4); // 3 structural + 1 valued
    rp.tree().check_invariants();
}
