//! Integration: the §4 space optimizations preserve answers (lossless) or
//! lose exactly the documented functionality (lossy).

use std::collections::BTreeSet;
use std::sync::Arc;
use xtwig::core::compress::{measure_idlist_bytes, workload_head_filter, DictDataPaths};
use xtwig::core::datapaths::{DataPaths, DataPathsOptions};
use xtwig::core::engine::{EngineOptions, QueryEngine, Strategy};
use xtwig::core::family::PathIndex;
use xtwig::core::rootpaths::{RootPaths, RootPathsOptions};
use xtwig::datagen::{generate_xmark, xmark_queries, XmarkConfig};
use xtwig::rel::codec::IdListCodec;
use xtwig::storage::BufferPool;
use xtwig::xml::{naive, XmlForest};

fn forest() -> XmlForest {
    let mut f = XmlForest::new();
    generate_xmark(&mut f, XmarkConfig { scale: 0.005, seed: 77 });
    f
}

#[test]
fn delta_and_plain_idlists_answer_identically() {
    let f = forest();
    let pool = || Arc::new(BufferPool::in_memory(16384));
    let delta = RootPaths::build(
        &f,
        pool(),
        RootPathsOptions { idlist: IdListCodec::Delta, ..Default::default() },
    );
    let plain = RootPaths::build(
        &f,
        pool(),
        RootPathsOptions { idlist: IdListCodec::Plain, ..Default::default() },
    );
    use xtwig::core::family::{FreeIndex, PcSubpathQuery};
    for (steps, value) in [
        (vec!["item", "quantity"], Some("2")),
        (vec!["open_auction", "@increase"], Some("3.00")),
        (vec!["person", "name"], None),
    ] {
        let q = PcSubpathQuery::resolve(f.dict(), &steps.to_vec(), false, value).unwrap();
        let mut a: Vec<_> = delta.lookup_free(&q).into_iter().map(|m| m.ids).collect();
        let mut b: Vec<_> = plain.lookup_free(&q).into_iter().map(|m| m.ids).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "codec changed answers for {steps:?}");
    }
    // Lossless compression shrinks the index (paper: ~30%).
    assert!(delta.space_bytes() <= plain.space_bytes());
    let bytes = measure_idlist_bytes(&f);
    assert!(
        bytes.datapaths_saving() > 0.25,
        "delta saving {:.2} below the paper's ~30% ballpark",
        bytes.datapaths_saving()
    );
}

#[test]
fn dict_compression_loses_exactly_recursion() {
    let f = forest();
    let dict_dp = DictDataPaths::build(&f, Arc::new(BufferPool::in_memory(16384)));
    let full_dp =
        DataPaths::build(&f, Arc::new(BufferPool::in_memory(16384)), DataPathsOptions::default());
    // Anchored paths: identical answers.
    let tags: Vec<_> = ["site", "regions", "namerica", "item", "quantity"]
        .iter()
        .map(|t| f.dict().lookup(t).unwrap())
        .collect();
    use xtwig::core::family::{FreeIndex, PcSubpathQuery};
    let q = PcSubpathQuery { tags: tags.clone(), anchored: true, value: Some("2".into()) };
    let mut a: Vec<_> =
        dict_dp.lookup_exact_free(&tags, Some("2")).into_iter().map(|m| m.ids).collect();
    let mut b: Vec<_> = full_dp.lookup_free(&q).into_iter().map(|m| m.ids).collect();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert!(!a.is_empty());
    // Space shrinks; `//` capability is gone by construction (the API
    // only accepts exact paths).
    assert!(dict_dp.space_bytes() <= full_dp.space_bytes());
}

#[test]
fn head_pruned_engine_matches_oracle_on_and_off_workload() {
    let mut f = XmlForest::new();
    generate_xmark(&mut f, XmarkConfig { scale: 0.004, seed: 5 });
    let workload: Vec<_> = xmark_queries().iter().map(|q| q.twig()).collect();
    let filter = workload_head_filter(&workload);
    let pruned = QueryEngine::build(
        &f,
        EngineOptions {
            strategies: vec![Strategy::DataPaths],
            pool_pages: 8192,
            head_filter_tags: Some(filter),
            ..Default::default()
        },
    );
    let full = QueryEngine::build(
        &f,
        EngineOptions {
            strategies: vec![Strategy::DataPaths],
            pool_pages: 8192,
            ..Default::default()
        },
    );
    // Pruning shrinks the index.
    assert!(
        pruned.space_bytes(Strategy::DataPaths) < full.space_bytes(Strategy::DataPaths),
        "pruning should reduce space: {} vs {}",
        pruned.space_bytes(Strategy::DataPaths),
        full.space_bytes(Strategy::DataPaths)
    );
    // Workload queries still answer correctly.
    for q in xmark_queries() {
        let twig = q.twig();
        let expected: BTreeSet<u64> = naive::select(&f, &twig).into_iter().map(|n| n.0).collect();
        assert_eq!(pruned.answer(&twig, Strategy::DataPaths).ids, expected, "{}", q.id);
    }
    // Off-workload queries too (they fall back to merge plans).
    for xpath in ["//person[name = 'Hagen Artosi']/emailaddress", "//category/name"] {
        let twig = xtwig::parse_xpath(xpath).unwrap();
        let expected: BTreeSet<u64> = naive::select(&f, &twig).into_iter().map(|n| n.0).collect();
        assert_eq!(pruned.answer(&twig, Strategy::DataPaths).ids, expected, "{xpath}");
    }
}
