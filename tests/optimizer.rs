//! Cost-based strategy selection, end to end: `Strategy::Auto` must be
//! byte-identical to every concrete strategy on every suite corpus, the
//! optimizer's pick must land on the measured-best strategy (or within
//! 2x of it in actual cold physical reads) for at least 80% of the
//! replayed queries, and the whole machinery must work against a
//! persisted `.xtwig` index without rebuilding anything.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;
use xtwig::core::engine::{EngineOptions, QueryEngine, Strategy};
use xtwig::parse_xpath;
use xtwig::service::{ServiceOptions, TwigService};
use xtwig::xml::tree::fig1_book_document;
use xtwig::xml::{naive, XmlForest};

struct Corpus {
    name: &'static str,
    forest: XmlForest,
    queries: Vec<String>,
}

fn multi_book_forest() -> XmlForest {
    let mut f = XmlForest::new();
    for i in 0..6 {
        let mut b = f.builder();
        b.open("book");
        b.leaf("title", if i % 2 == 0 { "XML" } else { "SQL" });
        b.open("allauthors");
        b.open("author");
        b.leaf("fn", "jane");
        b.leaf("ln", if i == 3 { "doe" } else { "poe" });
        b.close();
        b.close();
        b.close();
        b.finish();
    }
    f
}

/// The suite corpora with their replay workloads: fig1, multi-document
/// books, XMark and DBLP at the persist-suite scale, plus the
/// Zipf-skewed corpus whose literals walk the §5.2.3 crossover.
fn corpora() -> Vec<Corpus> {
    let mut out = Vec::new();
    out.push(Corpus {
        name: "fig1",
        forest: fig1_book_document(),
        queries: [
            "/book[title='XML']//author[fn='jane'][ln='doe']",
            "/book/allauthors/author/fn[. = 'jane']",
            "//author[fn = 'jane'][ln = 'doe']",
            "/book[title = 'XML']//section/head",
            "//section/head",
            "/book//author[fn = 'john']",
            "//title",
        ]
        .map(str::to_owned)
        .to_vec(),
    });
    out.push(Corpus {
        name: "books",
        forest: multi_book_forest(),
        queries: [
            "/book[title='XML']//author[fn='jane'][ln='doe']",
            "/book/title[. = 'SQL']",
            "//author[ln = 'poe']",
            "//author[fn = 'jane']/ln",
        ]
        .map(str::to_owned)
        .to_vec(),
    });
    let mut xmark = XmlForest::new();
    xtwig::datagen::generate_xmark(
        &mut xmark,
        xtwig::datagen::XmarkConfig { scale: 0.002, seed: 7 },
    );
    out.push(Corpus {
        name: "xmark",
        forest: xmark,
        queries: xtwig::datagen::xmark_queries().iter().map(|bq| bq.xpath.to_owned()).collect(),
    });
    let mut dblp = XmlForest::new();
    xtwig::datagen::generate_dblp(&mut dblp, xtwig::datagen::DblpConfig { scale: 0.002, seed: 7 });
    out.push(Corpus {
        name: "dblp",
        forest: dblp,
        queries: xtwig::datagen::dblp_queries().iter().map(|bq| bq.xpath.to_owned()).collect(),
    });
    let mut skew = XmlForest::new();
    let profile = xtwig::datagen::generate_skewed(&mut skew, xtwig::datagen::SkewConfig::default());
    out.push(Corpus {
        name: "skew",
        forest: skew,
        queries: vec![
            format!("//rec[key = '{}']/val", profile.rarest_key()),
            format!("//rec[key = 'k{}']/val", profile.key_counts.len() / 2),
            format!("//rec[key = '{}']/val", profile.commonest_key()),
            "//rec/val".to_owned(),
            "/db/rec/key[. = 'k0']".to_owned(),
        ],
    });
    out
}

fn expected(forest: &XmlForest, xpath: &str) -> BTreeSet<u64> {
    let twig = parse_xpath(xpath).unwrap();
    naive::select(forest, &twig).into_iter().map(|n| n.0).collect()
}

fn engine(forest: &XmlForest) -> QueryEngine<&XmlForest> {
    QueryEngine::build(forest, EngineOptions { pool_pages: 2048, ..Default::default() })
}

/// Acceptance criterion, first half: on every corpus, `Auto` answers
/// are byte-identical to every concrete strategy (and to the naive
/// oracle), and the answer reports a concrete resolved strategy.
#[test]
fn auto_is_byte_identical_to_every_concrete_strategy_on_all_corpora() {
    for corpus in corpora() {
        let e = engine(&corpus.forest);
        for q in &corpus.queries {
            let twig = parse_xpath(q).unwrap();
            let oracle = expected(&corpus.forest, q);
            let auto = e.answer(&twig, Strategy::Auto);
            assert_eq!(auto.ids, oracle, "{}: auto wrong on {q}", corpus.name);
            assert!(Strategy::ALL.contains(&auto.strategy), "{}: {q}", corpus.name);
            for s in Strategy::ALL {
                let a = e.answer(&twig, s);
                assert_eq!(a.ids, oracle, "{}: {s} wrong on {q}", corpus.name);
            }
        }
    }
}

/// Acceptance criterion, second half: replaying every corpus cold, the
/// optimizer's pick is the measured-best strategy — or within 2x of
/// the best in actual physical page reads — for >= 80% of queries.
/// (The same replay, with the per-query numbers, is recorded into
/// `BENCH_opt.json` by `fig_optimizer`.)
#[test]
fn auto_picks_within_2x_of_measured_best_on_at_least_80_pct_of_queries() {
    let mut hits = 0usize;
    let mut total = 0usize;
    let mut misses: Vec<String> = Vec::new();
    for corpus in corpora() {
        let e = engine(&corpus.forest);
        for q in &corpus.queries {
            let twig = parse_xpath(q).unwrap();
            let Ok((compiled, plan)) = e.compile(&twig) else { continue };
            let chosen = e.resolve_strategy(Strategy::Auto, &compiled, &plan);
            let mut reads: Vec<(Strategy, u64)> = Vec::new();
            for s in Strategy::ALL {
                e.clear_caches(s);
                let a = e.answer(&twig, s);
                reads.push((s, a.metrics.physical_reads));
            }
            let best = reads.iter().map(|&(_, r)| r).min().unwrap();
            let chosen_reads = reads.iter().find(|(s, _)| *s == chosen).unwrap().1;
            total += 1;
            if chosen_reads <= 2 * best.max(1) {
                hits += 1;
            } else {
                misses.push(format!(
                    "{}/{q}: chose {chosen} ({chosen_reads} reads) vs best {best}",
                    corpus.name
                ));
            }
        }
    }
    let accuracy = hits as f64 / total.max(1) as f64;
    assert!(
        accuracy >= 0.8,
        "optimizer accuracy {:.1}% ({hits}/{total}) below the 80% bar; misses:\n{}",
        100.0 * accuracy,
        misses.join("\n")
    );
}

/// The ranking itself: sorted by estimated cost, covering exactly the
/// built strategies, with `resolve_strategy` returning its head.
#[test]
fn rankings_are_sorted_and_respect_the_built_subset() {
    let f = fig1_book_document();
    let e = engine(&f);
    let twig = parse_xpath("/book[title='XML']//author[fn='jane'][ln='doe']").unwrap();
    let ex = e.explain(&twig).unwrap();
    assert_eq!(ex.choices.len(), Strategy::ALL.len());
    assert!(ex.choices.windows(2).all(|w| w[0].est_page_reads <= w[1].est_page_reads));
    let (compiled, plan) = e.compile(&twig).unwrap();
    assert_eq!(ex.chosen().unwrap(), e.resolve_strategy(Strategy::Auto, &compiled, &plan));

    // A partial engine resolves within its subset.
    let partial = QueryEngine::build(
        &f,
        EngineOptions {
            strategies: vec![Strategy::Edge, Strategy::JoinIndex],
            pool_pages: 1024,
            ..Default::default()
        },
    );
    let ex = partial.explain(&twig).unwrap();
    assert_eq!(ex.choices.len(), 2);
    for c in &ex.choices {
        assert!(matches!(c.strategy, Strategy::Edge | Strategy::JoinIndex));
    }
    let a = partial.answer(&twig, Strategy::Auto);
    assert_eq!(a.ids, expected(&f, "/book[title='XML']//author[fn='jane'][ln='doe']"));
}

/// Auto and EXPLAIN against a persisted index: reopen with zero
/// rebuild, rank from the persisted statistics and tree shapes, and
/// answer byte-identically to the in-memory engine.
#[test]
fn auto_and_explain_work_on_a_reopened_index_without_rebuild() {
    let dir = std::env::temp_dir().join(format!(
        "xtwig-optimizer-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path: PathBuf = dir.join("idx.xtwig");

    let built = QueryEngine::build(
        Arc::new(multi_book_forest()),
        EngineOptions { pool_pages: 1024, ..Default::default() },
    );
    built.persist(&path).unwrap();
    let (opened, report) = QueryEngine::open_with_report(&path).unwrap();
    assert_eq!(report.open_allocations, 0, "reopen must not rebuild");

    for q in ["/book[title='XML']//author[fn='jane'][ln='doe']", "//author[fn = 'jane']/ln"] {
        let twig = parse_xpath(q).unwrap();
        // Same statistics, same structures => same ranking and pick.
        let built_ex = built.explain(&twig).unwrap();
        let opened_ex = opened.explain(&twig).unwrap();
        assert_eq!(built_ex.chosen(), opened_ex.chosen(), "{q}");
        assert_eq!(built_ex.choices.len(), opened_ex.choices.len());
        for (b, o) in built_ex.choices.iter().zip(&opened_ex.choices) {
            assert_eq!(b.strategy, o.strategy, "{q}");
            assert!((b.est_page_reads - o.est_page_reads).abs() < 1e-9, "{q}");
        }
        let a = opened.answer(&twig, Strategy::Auto);
        assert_eq!(a.ids, built.answer(&twig, Strategy::Auto).ids, "{q}");
        assert_eq!(a.strategy, opened_ex.chosen().unwrap());
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The service path: auto submissions resolve per shape, share result
/// cache entries with explicit submissions, and surface per-strategy
/// pick counts and cost counters in the stats JSON.
#[test]
fn service_auto_matches_concrete_and_counts_picks() {
    let svc = TwigService::build(
        multi_book_forest(),
        EngineOptions { pool_pages: 1024, ..Default::default() },
        ServiceOptions { workers: 2, ..Default::default() },
    );
    let queries =
        ["/book[title='XML']//author[fn='jane'][ln='doe']", "//author[ln = 'poe']", "//title"];
    for q in queries {
        let twig = parse_xpath(q).unwrap();
        let auto = svc.submit(&twig, Strategy::Auto).unwrap().wait().unwrap();
        assert!(Strategy::ALL.contains(&auto.strategy), "{q}");
        let concrete = svc.submit(&twig, auto.strategy).unwrap().wait().unwrap();
        assert_eq!(*auto.ids, *concrete.ids, "{q}");
        assert!(concrete.from_cache, "auto fills the concrete strategy's cache entry: {q}");
    }
    let stats = svc.stats();
    assert_eq!(stats.costs.iter().map(|c| c.auto_picks).sum::<u64>(), queries.len() as u64);
    let json = stats.to_json("");
    assert!(json.contains("\"auto_picks\""));
    assert!(json.contains("\"physical_reads\""));
    svc.shutdown();
}

/// The skew corpus separates the crossover: the planner flips between
/// merge and INLJ along the Zipf ladder, and auto stays correct on
/// both sides.
#[test]
fn skewed_corpus_crossover_stays_correct_under_auto() {
    let mut f = XmlForest::new();
    let profile = xtwig::datagen::generate_skewed(&mut f, xtwig::datagen::SkewConfig::default());
    let e = engine(&f);
    let rare = format!("//rec[key = '{}']/val", profile.rarest_key());
    let common = format!("//rec[key = '{}']/val", profile.commonest_key());
    let rare_plan = e.plan(&parse_xpath(&rare).unwrap()).unwrap();
    let common_plan = e.plan(&parse_xpath(&common).unwrap()).unwrap();
    assert_eq!(rare_plan.kind, xtwig::core::plan::PlanKind::IndexNestedLoop);
    assert_eq!(common_plan.kind, xtwig::core::plan::PlanKind::Merge);
    for q in [&rare, &common] {
        let twig = parse_xpath(q).unwrap();
        assert_eq!(e.answer(&twig, Strategy::Auto).ids, expected(&f, q), "{q}");
    }
}
