//! Integration: the concurrent query service (`xtwig-service`).
//!
//! Guards the serving-layer contract: many workers over one shared
//! engine answer exactly like the naive matcher and like sequential
//! execution, across all seven §5.1.2 strategies; and the §7 updates
//! path invalidates cached results via the generation counter.

use std::collections::BTreeSet;
use std::sync::Arc;
use xtwig::prelude::*;
use xtwig::xml::naive;

fn library_forest() -> XmlForest {
    let mut f = XmlForest::new();
    for i in 0..6 {
        let mut b = f.builder();
        b.open("book");
        b.leaf("title", if i % 2 == 0 { "XML" } else { "SQL" });
        b.leaf("year", if i < 3 { "2000" } else { "2005" });
        b.open("allauthors");
        for j in 0..3 {
            b.open("author");
            b.leaf("fn", ["jane", "john", "mary"][(i + j) % 3]);
            b.leaf("ln", ["doe", "poe"][(i * j) % 2]);
            b.close();
        }
        b.close();
        b.open("chapter");
        b.leaf("title", "Intro");
        b.open("section");
        b.leaf("head", if i == 0 { "Origins" } else { "Basics" });
        b.close();
        b.close();
        b.close();
        b.finish();
    }
    f
}

const QUERIES: [&str; 8] = [
    "/book[title='XML']//author[fn='jane'][ln='doe']",
    "/book[title='XML']/year",
    "//author[fn='john']/ln",
    "//author[fn='mary']",
    "/book[year='2000']/chapter/title",
    "/book//section[head='Origins']",
    "//section/head",
    "/book[title='SQL']//ln[. = 'poe']",
];

#[test]
fn concurrent_submissions_agree_with_naive_across_all_strategies() {
    let forest = library_forest();
    let expected: Vec<BTreeSet<u64>> = QUERIES
        .iter()
        .map(|q| {
            let twig = parse_xpath(q).unwrap();
            naive::select(&forest, &twig).into_iter().map(|n| n.0).collect()
        })
        .collect();
    let service = TwigService::build(
        forest,
        EngineOptions { pool_pages: 512, ..Default::default() },
        ServiceOptions { workers: 8, ..Default::default() },
    );
    // Two passes so the second round exercises the result cache; the
    // answers must be identical either way.
    for round in 0..2 {
        let tickets: Vec<_> = QUERIES
            .iter()
            .flat_map(|q| {
                let twig = parse_xpath(q).unwrap();
                Strategy::ALL.iter().map(|s| service.submit(&twig, *s).unwrap()).collect::<Vec<_>>()
            })
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let (qi, s) = (i / Strategy::ALL.len(), Strategy::ALL[i % Strategy::ALL.len()]);
            let answer = t.wait().unwrap();
            assert_eq!(
                *answer.ids, expected[qi],
                "round {round}: {s} disagrees with naive on {}",
                QUERIES[qi]
            );
        }
    }
    let stats = service.stats();
    assert_eq!(stats.submitted, 2 * (QUERIES.len() * Strategy::ALL.len()) as u64);
    assert_eq!(stats.completed, stats.submitted);
    assert!(stats.result_cache.hits >= (QUERIES.len() * Strategy::ALL.len()) as u64);
    service.shutdown();
}

#[test]
fn eight_workers_match_sequential_execution_byte_for_byte() {
    let forest = library_forest();
    let service = TwigService::build(
        forest,
        EngineOptions { pool_pages: 512, ..Default::default() },
        // Result cache off: every concurrent answer is a real execution.
        ServiceOptions { workers: 8, result_cache_capacity: 0, ..Default::default() },
    );
    let twigs: Vec<TwigPattern> = QUERIES.iter().map(|q| parse_xpath(q).unwrap()).collect();
    // Sequential baseline through the same engine.
    let sequential: Vec<Vec<u8>> = service.with_engine(|engine| {
        twigs
            .iter()
            .flat_map(|t| Strategy::ALL.iter().map(|s| serialize(&engine.answer(t, *s).ids)))
            .collect()
    });
    // Concurrent submission from multiple submitter threads.
    let service = Arc::new(service);
    let mut all: Vec<(usize, Vec<u8>)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (qi, twig) in twigs.iter().enumerate() {
            let service = service.clone();
            handles.push(scope.spawn(move || {
                let mut out = Vec::new();
                for (si, s) in Strategy::ALL.iter().enumerate() {
                    let a = service.submit(twig, *s).unwrap().wait().unwrap();
                    out.push((qi * Strategy::ALL.len() + si, serialize(&a.ids)));
                }
                out
            }));
        }
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    all.sort_by_key(|(i, _)| *i);
    for (i, bytes) in all {
        assert_eq!(bytes, sequential[i], "answer {i} not byte-identical");
    }
}

/// Canonical byte encoding of an answer (sorted ids, fixed-width LE).
fn serialize(ids: &BTreeSet<u64>) -> Vec<u8> {
    ids.iter().flat_map(|id| id.to_le_bytes()).collect()
}

#[test]
fn update_invalidates_cached_results_after_generation_bump() {
    let service = TwigService::build(
        library_forest(),
        EngineOptions {
            strategies: vec![Strategy::RootPaths, Strategy::DataPaths],
            pool_pages: 512,
            ..Default::default()
        },
        ServiceOptions { workers: 2, ..Default::default() },
    );
    let twig = parse_xpath("//author[fn='ada']").unwrap();
    // Prime the cache with the (empty) answer, twice to confirm a hit.
    assert!(service.submit(&twig, Strategy::RootPaths).unwrap().wait().unwrap().ids.is_empty());
    assert!(service.submit(&twig, Strategy::RootPaths).unwrap().wait().unwrap().from_cache);
    assert_eq!(service.generation(), 0);
    // §7: insert /book/allauthors/author[fn='ada'].
    let tags: Vec<_> = service.with_engine(|engine| {
        let dict = engine.forest().dict();
        ["book", "allauthors", "author", "fn"].iter().map(|t| dict.lookup(t).unwrap()).collect()
    });
    service.apply_update(vec![
        UpdateOp::InsertPath { tags: tags[..3].to_vec(), ids: vec![1, 3, 7_000], value: None },
        UpdateOp::InsertPath { tags, ids: vec![1, 3, 7_000, 7_001], value: Some("ada".into()) },
    ]);
    assert_eq!(service.generation(), 1);
    let after = service.submit(&twig, Strategy::RootPaths).unwrap().wait().unwrap();
    assert!(!after.from_cache, "generation bump must stale the cached empty result");
    assert_eq!(after.ids.iter().copied().collect::<Vec<_>>(), vec![7_000]);
    let stats = service.stats();
    assert_eq!(stats.updates, 1);
    assert!(stats.result_cache.invalidated >= 1);
    service.shutdown(); // Arc-free here: plain value, graceful drain
}

#[test]
fn batched_stream_agrees_with_singles_and_saves_probes() {
    let forest = library_forest();
    let service = TwigService::build(
        forest,
        EngineOptions {
            strategies: vec![Strategy::RootPaths],
            pool_pages: 512,
            ..Default::default()
        },
        ServiceOptions { workers: 4, result_cache_capacity: 0, ..Default::default() },
    );
    let twigs: Vec<TwigPattern> = QUERIES.iter().map(|q| parse_xpath(q).unwrap()).collect();
    let batched = service.submit_batch(&twigs, Strategy::RootPaths).unwrap().wait().unwrap();
    for (twig, answer) in twigs.iter().zip(&batched) {
        let single = service.submit(twig, Strategy::RootPaths).unwrap().wait().unwrap();
        assert_eq!(answer.ids, single.ids, "batch answer differs on {twig}");
    }
    let stats = service.stats();
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.batch_queries, QUERIES.len() as u64);
    service.shutdown();
}
