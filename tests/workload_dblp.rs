//! Integration: the DBLP selectivity sweep (Q1d–Q3d) and shallow-document
//! behaviour.

use xtwig::core::engine::{EngineOptions, QueryEngine, Strategy};
use xtwig::datagen::{dblp_queries, generate_dblp, DblpConfig};
use xtwig::xml::{naive, XmlForest};

#[test]
fn dblp_selectivity_sweep_matches_planted_years() {
    let mut forest = XmlForest::new();
    let profile = generate_dblp(&mut forest, DblpConfig { scale: 0.02, seed: 7 });
    let engine = QueryEngine::build(
        &forest,
        EngineOptions {
            strategies: vec![Strategy::RootPaths, Strategy::DataPaths, Strategy::Edge],
            pool_pages: 4096,
            ..Default::default()
        },
    );
    // Only inproceedings (not articles) match /dblp/inproceedings/year.
    for (id, year) in [("Q1d", 1950u32), ("Q2d", 1979), ("Q3d", 1998)] {
        let q = dblp_queries().into_iter().find(|q| q.id == id).unwrap();
        let twig = q.twig();
        let expected: std::collections::BTreeSet<u64> =
            naive::select(&forest, &twig).into_iter().map(|n| n.0).collect();
        for s in [Strategy::RootPaths, Strategy::DataPaths, Strategy::Edge] {
            let a = engine.answer(&twig, s);
            assert_eq!(a.ids, expected, "{id} via {}", s.label());
        }
        // The planted counts bound the result (articles share the year).
        assert!(
            expected.len() as u64 <= profile.per_year[&year],
            "{id}: {} results for {} planted",
            expected.len(),
            profile.per_year[&year]
        );
        if year == 1950 {
            assert_eq!(expected.len(), 1, "Q1d is the singleton year");
        }
    }
}

#[test]
fn all_strategies_agree_on_dblp() {
    let mut forest = XmlForest::new();
    generate_dblp(&mut forest, DblpConfig { scale: 0.005, seed: 3 });
    let engine =
        QueryEngine::build(&forest, EngineOptions { pool_pages: 4096, ..Default::default() });
    for xpath in [
        "/dblp/inproceedings/year[. = '1979']",
        "/dblp/inproceedings[year = '1998']/title",
        "//article/journal",
        "/dblp/article[volume = '7']/author",
        "//inproceedings[crossref]/booktitle",
    ] {
        let twig = xtwig::parse_xpath(xpath).unwrap();
        let expected: std::collections::BTreeSet<u64> =
            naive::select(&forest, &twig).into_iter().map(|n| n.0).collect();
        for s in Strategy::ALL {
            let a = engine.answer(&twig, s);
            assert_eq!(a.ids, expected, "{xpath} via {}", s.label());
        }
    }
}

#[test]
fn shallow_dataset_keeps_datapaths_overhead_low() {
    // Fig. 9: for shallow DBLP, DATAPATHS is barely larger than
    // ROOTPATHS (83 vs 80 MB); for deep XMark it is ~3.6x. Check the
    // ordering relationship on generated data.
    let mut dblp = XmlForest::new();
    generate_dblp(&mut dblp, DblpConfig { scale: 0.02, seed: 1 });
    let mut xmark = XmlForest::new();
    xtwig::datagen::generate_xmark(
        &mut xmark,
        xtwig::datagen::XmarkConfig { scale: 0.02, seed: 1 },
    );

    let opts = || EngineOptions {
        strategies: vec![Strategy::RootPaths, Strategy::DataPaths],
        pool_pages: 16384,
        ..Default::default()
    };
    let e_dblp = QueryEngine::build(&dblp, opts());
    let e_xmark = QueryEngine::build(&xmark, opts());
    let ratio_dblp = e_dblp.space_bytes(Strategy::DataPaths) as f64
        / e_dblp.space_bytes(Strategy::RootPaths) as f64;
    let ratio_xmark = e_xmark.space_bytes(Strategy::DataPaths) as f64
        / e_xmark.space_bytes(Strategy::RootPaths) as f64;
    assert!(
        ratio_xmark > ratio_dblp,
        "deep XMark must pay more DP overhead: xmark {ratio_xmark:.2} vs dblp {ratio_dblp:.2}"
    );
}
