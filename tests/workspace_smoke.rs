//! End-to-end smoke test for the assembled workspace: parse a small
//! document, build every index strategy, and run the paper's
//! introductory twig (§1, Fig. 1) through each one, cross-checking
//! against the naive in-memory matcher.

use std::collections::BTreeSet;
use std::path::Path;
use xtwig::prelude::*;
use xtwig::xml::naive;

const INTRO_TWIG: &str = "/book[title='XML']//author[fn='jane'][ln='doe']";

fn intro_forest() -> XmlForest {
    let mut forest = XmlForest::new();
    // The matching book from the paper's introduction...
    xtwig::xml::parse_document(
        &mut forest,
        "<book><title>XML</title><allauthors>\
         <author><fn>jane</fn><ln>doe</ln></author>\
         <author><fn>john</fn><ln>smith</ln></author>\
         </allauthors></book>",
    )
    .unwrap();
    // ...plus decoys: right title but wrong author, and vice versa.
    xtwig::xml::parse_document(
        &mut forest,
        "<book><title>XML</title><allauthors>\
         <author><fn>jane</fn><ln>smith</ln></author>\
         </allauthors></book>",
    )
    .unwrap();
    xtwig::xml::parse_document(
        &mut forest,
        "<book><title>SQL</title><allauthors>\
         <author><fn>jane</fn><ln>doe</ln></author>\
         </allauthors></book>",
    )
    .unwrap();
    forest
}

/// The docs advertise the integration-suite inventory in three places
/// (README's test-net paragraph, ROADMAP's current-state section, and
/// the suite count itself); this test derives the ground truth from
/// `tests/*.rs` so a new suite that forgets the docs — or a doc that
/// invents a suite — fails CI instead of drifting silently.
#[test]
fn docs_track_the_integration_suite_inventory() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut suites: Vec<String> = std::fs::read_dir(root.join("tests"))
        .unwrap()
        .filter_map(|e| {
            let name = e.unwrap().file_name().into_string().unwrap();
            name.strip_suffix(".rs").map(str::to_owned)
        })
        .collect();
    suites.sort();
    assert!(
        suites.contains(&"workspace_smoke".to_owned()),
        "suite discovery is broken: did not find this very file"
    );

    let readme = std::fs::read_to_string(root.join("README.md")).unwrap();
    let roadmap = std::fs::read_to_string(root.join("ROADMAP.md")).unwrap();
    let count_phrase = format!("{} integration suites", suites.len());
    for (doc, text) in [("README.md", &readme), ("ROADMAP.md", &roadmap)] {
        assert!(
            text.contains(&count_phrase),
            "{doc} must state the suite count exactly as {count_phrase:?} \
             (found {} suites under tests/)",
            suites.len()
        );
        for suite in &suites {
            assert!(
                text.contains(suite.as_str()),
                "{doc} never mentions integration suite `{suite}`"
            );
        }
    }
}

/// The static-analysis gate is wired in several places — the
/// checked-in config, the per-rule fixtures, the CI lint job, and the
/// README — and this test pins them together so that deleting any one
/// piece fails loudly instead of quietly un-gating the workspace.
#[test]
fn xray_gate_stays_wired() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    // The checked-in config parses, references only known rules, and
    // justifies every exception (empty `why` is a parse error, but the
    // assertion documents the contract where the drift test lives).
    let cfg = xtwig::xray::load_config(&root.join("xray.toml")).unwrap();
    assert!(!cfg.allow.is_empty(), "xray.toml lost its allow entries");
    assert!(cfg.allow.iter().all(|a| !a.why.trim().is_empty()), "every allow entry needs a why");
    // One fixture per rule keeps the rule engine honest.
    let fixtures = root.join("crates/xray/tests/fixtures");
    for fixture in [
        "no_panic.rs",
        "lock_order.rs",
        "typed_errors.rs",
        "untraced_purity.rs",
        "safety_comments.rs",
        "no_blocking_in_handler.rs",
    ] {
        assert!(fixtures.join(fixture).is_file(), "missing xray fixture {fixture}");
    }
    // CI runs the pass in the fail-fast lint job, and the README
    // documents the gate.
    let ci = std::fs::read_to_string(root.join(".github/workflows/ci.yml")).unwrap();
    assert!(ci.contains("cargo run -p xtwig-xray"), "CI lint job must run xray");
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap();
    assert!(readme.contains("## Static analysis"), "README lost its static-analysis section");
}

#[test]
fn every_strategy_answers_the_intro_twig() {
    let forest = intro_forest();
    let twig = parse_xpath(INTRO_TWIG).unwrap();
    let expected: BTreeSet<u64> = naive::select(&forest, &twig).into_iter().map(|n| n.0).collect();
    assert_eq!(expected.len(), 1, "exactly one book matches the intro query");

    let engine = QueryEngine::build(
        &forest,
        EngineOptions { strategies: Strategy::ALL.to_vec(), pool_pages: 256, ..Default::default() },
    );
    for s in Strategy::ALL {
        let answer = engine.answer(&twig, s);
        assert_eq!(answer.ids, expected, "strategy {} disagrees with xml::naive", s.label());
    }
}

#[test]
fn strategies_agree_on_every_intro_subpattern() {
    // Smaller patterns hit different planner paths (single-path lookups
    // vs. branching twigs); all strategies must still agree everywhere.
    let forest = intro_forest();
    let engine =
        QueryEngine::build(&forest, EngineOptions { pool_pages: 256, ..Default::default() });
    for xpath in [
        "/book",
        "/book/title",
        "//author",
        "//author[fn='jane']",
        "/book[title='XML']",
        "/book//author[ln='doe']",
        "//allauthors/author[fn='jane'][ln='doe']",
    ] {
        let twig = parse_xpath(xpath).unwrap();
        let expected: BTreeSet<u64> =
            naive::select(&forest, &twig).into_iter().map(|n| n.0).collect();
        for s in Strategy::ALL {
            let answer = engine.answer(&twig, s);
            assert_eq!(
                answer.ids,
                expected,
                "strategy {} disagrees with xml::naive on {xpath}",
                s.label()
            );
        }
    }
}
