//! Index persistence round-trips: build → persist → reopen with zero
//! rebuild, across all seven strategies and the suite corpora, plus the
//! failure paths (corrupt, truncated, version-mismatched files) and the
//! copy-on-write guarantee for maintenance on reopened engines.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;
use xtwig::core::engine::{EngineOptions, QueryEngine, Strategy};
use xtwig::core::persist::{OpenError, FORMAT_VERSION};
use xtwig::parse_xpath;
use xtwig::xml::tree::fig1_book_document;
use xtwig::xml::{naive, XmlForest};

struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "xtwig-persist-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn multi_book_forest() -> XmlForest {
    let mut f = XmlForest::new();
    for i in 0..6 {
        let mut b = f.builder();
        b.open("book");
        b.leaf("title", if i % 2 == 0 { "XML" } else { "SQL" });
        b.open("allauthors");
        b.open("author");
        b.leaf("fn", "jane");
        b.leaf("ln", if i == 3 { "doe" } else { "poe" });
        b.close();
        b.close();
        b.close();
        b.finish();
    }
    f
}

fn xmark_forest() -> XmlForest {
    let mut f = XmlForest::new();
    xtwig::datagen::generate_xmark(&mut f, xtwig::datagen::XmarkConfig { scale: 0.002, seed: 7 });
    f
}

fn dblp_forest() -> XmlForest {
    let mut f = XmlForest::new();
    xtwig::datagen::generate_dblp(&mut f, xtwig::datagen::DblpConfig { scale: 0.002, seed: 7 });
    f
}

fn expected(forest: &XmlForest, xpath: &str) -> BTreeSet<u64> {
    let twig = parse_xpath(xpath).unwrap();
    naive::select(forest, &twig).into_iter().map(|n| n.0).collect()
}

/// Builds all seven strategies, persists, reopens, and checks that (a)
/// the reopen allocated zero pages (no rebuild), (b) every strategy's
/// digest survives byte-identically, and (c) every query answers the
/// same before and after, matching the naive oracle.
fn roundtrip(label: &str, forest: XmlForest, queries: &[&str]) {
    let dir = TempDir::new(label);
    let path = dir.path("idx.xtwig");
    let built = QueryEngine::build(
        Arc::new(forest),
        EngineOptions { pool_pages: 1024, ..Default::default() },
    );
    let report = built.persist(&path).unwrap();
    assert_eq!(report.strategies.len(), Strategy::ALL.len());
    assert!(report.file_pages > 1);
    assert_eq!(
        std::fs::metadata(&path).unwrap().len(),
        report.file_bytes,
        "report matches the file on disk"
    );

    let (opened, open_report) = QueryEngine::open_with_report(&path).unwrap();
    assert_eq!(open_report.open_allocations, 0, "reopen must not build anything");
    assert_eq!(open_report.digests_verified, Strategy::ALL.len());
    assert_eq!(open_report.strategies, report.strategies);

    for s in Strategy::ALL {
        assert!(opened.has_strategy(s), "{s} missing after reopen");
        assert_eq!(
            opened.structure_digest(s),
            built.structure_digest(s),
            "{label}: {s} pages differ after reopen"
        );
        assert_eq!(opened.space_bytes(s), built.space_bytes(s), "{label}: {s} space differs");
    }
    for q in queries {
        let twig = parse_xpath(q).unwrap();
        let oracle = expected(opened.forest(), q);
        for s in Strategy::ALL {
            let from_disk = opened.answer(&twig, s);
            let from_memory = built.answer(&twig, s);
            assert_eq!(from_disk.ids, from_memory.ids, "{label}: {s} on {q}");
            assert_eq!(from_disk.ids, oracle, "{label}: {s} on {q} vs oracle");
            assert_eq!(from_disk.plan, from_memory.plan, "{label}: {s} plan on {q}");
        }
    }
}

#[test]
fn fig1_roundtrips_all_strategies() {
    roundtrip(
        "fig1",
        fig1_book_document(),
        &[
            "/book[title='XML']//author[fn='jane'][ln='doe']",
            "/book/title[. = 'XML']",
            "//author[fn = 'jane']/ln",
            "//section/head",
            "/book//contact/detail",
            "//unknown_tag_never_seen",
        ],
    );
}

#[test]
fn multi_document_forest_roundtrips() {
    roundtrip(
        "multidoc",
        multi_book_forest(),
        &["/book[title='XML']//author[fn='jane'][ln='doe']", "//author[ln = 'poe']", "/book/title"],
    );
}

#[test]
fn xmark_corpus_roundtrips() {
    roundtrip(
        "xmark",
        xmark_forest(),
        &["/site//item[quantity = '2']/location", "//person/name", "/site/regions"],
    );
}

#[test]
fn dblp_corpus_roundtrips() {
    roundtrip(
        "dblp",
        dblp_forest(),
        &["//article/author", "/dblp/article[year = '1995']/title", "//inproceedings/booktitle"],
    );
}

#[test]
fn subset_of_strategies_roundtrips() {
    let dir = TempDir::new("subset");
    let path = dir.path("idx.xtwig");
    let built = QueryEngine::build(
        Arc::new(fig1_book_document()),
        EngineOptions {
            strategies: vec![Strategy::RootPaths, Strategy::DataGuideEdge],
            pool_pages: 256,
            ..Default::default()
        },
    );
    let report = built.persist(&path).unwrap();
    // DG+Edge materializes the Edge structures too, so Edge itself is
    // also available (exactly as in the in-memory engine).
    assert_eq!(
        report.strategies,
        vec![Strategy::RootPaths, Strategy::Edge, Strategy::DataGuideEdge]
    );
    let opened = QueryEngine::open(&path).unwrap();
    assert!(opened.has_strategy(Strategy::RootPaths));
    assert!(opened.has_strategy(Strategy::DataGuideEdge));
    assert!(!opened.has_strategy(Strategy::DataPaths));
    assert!(!opened.has_strategy(Strategy::Asr));
    let twig = parse_xpath("//author[fn = 'jane']").unwrap();
    let oracle = expected(opened.forest(), "//author[fn = 'jane']");
    assert_eq!(opened.answer(&twig, Strategy::RootPaths).ids, oracle);
    assert_eq!(opened.answer(&twig, Strategy::DataGuideEdge).ids, oracle);
}

#[test]
fn first_query_after_open_reads_pages_physically() {
    // The cold-cache behaviour the paper simulated: after open, index
    // pages live only in the file, so the first probe performs physical
    // reads; re-running it is served from the buffer pool.
    let dir = TempDir::new("cold");
    let path = dir.path("idx.xtwig");
    QueryEngine::build(
        Arc::new(fig1_book_document()),
        EngineOptions { strategies: vec![Strategy::RootPaths], ..Default::default() },
    )
    .persist(&path)
    .unwrap();
    let opened = QueryEngine::open(&path).unwrap();
    let twig = parse_xpath("//author[fn = 'jane']").unwrap();
    let cold = opened.answer(&twig, Strategy::RootPaths);
    assert!(cold.metrics.physical_reads > 0, "first query must hit the file");
    let warm = opened.answer(&twig, Strategy::RootPaths);
    assert_eq!(warm.metrics.physical_reads, 0, "second query must be cached");
    assert_eq!(cold.ids, warm.ids);
}

#[test]
fn maintenance_on_reopened_engine_is_copy_on_write() {
    let dir = TempDir::new("cow");
    let path = dir.path("idx.xtwig");
    QueryEngine::build(Arc::new(fig1_book_document()), EngineOptions::default())
        .persist(&path)
        .unwrap();
    let before = std::fs::read(&path).unwrap();

    let mut opened = QueryEngine::open(&path).unwrap();
    let tags: Vec<_> = {
        let dict = opened.forest().dict();
        ["book", "allauthors", "author", "fn"].iter().map(|t| dict.lookup(t).unwrap()).collect()
    };
    let rp = opened.rootpaths_mut().unwrap();
    rp.insert_path(&tags[..3], &[1, 5, 900], None);
    rp.insert_path(&tags, &[1, 5, 900, 901], Some("ada"));
    let twig = parse_xpath("//author[fn = 'ada']").unwrap();
    assert_eq!(
        opened.answer(&twig, Strategy::RootPaths).ids.into_iter().collect::<Vec<_>>(),
        vec![900]
    );
    drop(opened);

    // The file is a sealed artifact: maintenance went to the in-memory
    // overlay, so the bytes on disk — and a fresh open — are unchanged.
    assert_eq!(std::fs::read(&path).unwrap(), before, "index file mutated in place");
    let fresh = QueryEngine::open(&path).unwrap();
    assert!(fresh.answer(&twig, Strategy::RootPaths).ids.is_empty());
}

#[test]
fn read_only_index_file_still_opens() {
    // The file is a sealed artifact: the reopen path never writes it
    // (maintenance goes to the in-memory overlay), so a chmod-444
    // index — e.g. a read-only deployment artifact — must open and
    // serve, including maintenance on the reopened engine.
    use std::os::unix::fs::PermissionsExt;
    let dir = TempDir::new("readonly");
    let path = dir.path("idx.xtwig");
    QueryEngine::build(
        Arc::new(fig1_book_document()),
        EngineOptions { strategies: vec![Strategy::RootPaths], ..Default::default() },
    )
    .persist(&path)
    .unwrap();
    std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o444)).unwrap();
    let mut opened = QueryEngine::open(&path).expect("read-only file must open");
    let twig = parse_xpath("//author[fn = 'jane']").unwrap();
    assert_eq!(opened.answer(&twig, Strategy::RootPaths).ids.len(), 2);
    let tags: Vec<_> = {
        let dict = opened.forest().dict();
        ["book", "allauthors", "author", "fn"].iter().map(|t| dict.lookup(t).unwrap()).collect()
    };
    opened.rootpaths_mut().unwrap().insert_path(&tags[..3], &[1, 5, 900], None);
    // Restore write permission so TempDir cleanup can delete it.
    std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o644)).unwrap();
}

#[test]
fn repersist_to_own_path_makes_overlay_maintenance_durable() {
    // persist writes to a temp sibling and renames, so a reopened
    // engine — whose extents keep reading the old inode — can persist
    // its in-memory overlay mutations over its own index file.
    let dir = TempDir::new("repersist");
    let path = dir.path("idx.xtwig");
    QueryEngine::build(Arc::new(fig1_book_document()), EngineOptions::default())
        .persist(&path)
        .unwrap();
    let mut opened = QueryEngine::open(&path).unwrap();
    let tags: Vec<_> = {
        let dict = opened.forest().dict();
        ["book", "allauthors", "author", "fn"].iter().map(|t| dict.lookup(t).unwrap()).collect()
    };
    let rp = opened.rootpaths_mut().unwrap();
    rp.insert_path(&tags[..3], &[1, 5, 900], None);
    rp.insert_path(&tags, &[1, 5, 900, 901], Some("ada"));
    opened.persist(&path).unwrap();
    // The still-open engine keeps serving (old inode)…
    let twig = parse_xpath("//author[fn = 'ada']").unwrap();
    assert_eq!(opened.answer(&twig, Strategy::RootPaths).ids.len(), 1);
    drop(opened);
    // …and a fresh open sees the mutation, digest-verified.
    let fresh = QueryEngine::open(&path).unwrap();
    assert_eq!(
        fresh.answer(&twig, Strategy::RootPaths).ids.into_iter().collect::<Vec<_>>(),
        vec![900]
    );
    // No temp file left behind.
    assert!(!dir.path("idx.xtwig.tmp").exists());
}

#[test]
fn overlay_folds_through_repeated_mutate_reopen_persist_cycles() {
    // Regression for the reopened-engine fold path: an engine reopened
    // from a file accumulates maintenance in its in-memory overlay;
    // persisting to a NEW file must fold those overlay pages into the
    // fresh base image (the old file stays byte-identical), and the
    // cycle must compose — each generation carries every earlier
    // update plus its own.
    let dir = TempDir::new("fold-chain");
    let gen0 = dir.path("gen0.xtwig");
    QueryEngine::build(Arc::new(fig1_book_document()), EngineOptions::default())
        .persist(&gen0)
        .unwrap();
    let mut prev = gen0.clone();
    for i in 0..3u64 {
        let mut opened = QueryEngine::open(&prev).unwrap();
        let tags: Vec<_> = {
            let dict = opened.forest().dict();
            ["book", "allauthors", "author", "fn"].iter().map(|t| dict.lookup(t).unwrap()).collect()
        };
        let before = std::fs::read(&prev).unwrap();
        let author = 900 + 2 * i;
        let rp = opened.rootpaths_mut().unwrap();
        rp.insert_path(&tags[..3], &[1, 5, author], None);
        rp.insert_path(&tags, &[1, 5, author, author + 1], Some(&format!("v{i}")));
        let dp = opened.datapaths_mut().unwrap();
        dp.insert_path(&tags[..3], &[1, 5, author], None);
        dp.insert_path(&tags, &[1, 5, author, author + 1], Some(&format!("v{i}")));
        let next = dir.path(&format!("gen{}.xtwig", i + 1));
        opened.persist(&next).unwrap();
        assert_eq!(std::fs::read(&prev).unwrap(), before, "gen {i} input file mutated");
        prev = next;
    }
    // The final file carries all three updates, digest-verified, with
    // an empty overlay (everything folded into base extents).
    let fresh = QueryEngine::open(&prev).unwrap();
    for i in 0..3u64 {
        let twig = parse_xpath(&format!("//author[fn = 'v{i}']")).unwrap();
        for s in [Strategy::RootPaths, Strategy::DataPaths] {
            assert_eq!(
                fresh.answer(&twig, s).ids.into_iter().collect::<Vec<_>>(),
                vec![900 + 2 * i],
                "{s}: update {i} lost in the fold chain"
            );
        }
    }
    // The pre-existing data survived every fold too.
    let jane = parse_xpath("//author[fn = 'jane']").unwrap();
    assert_eq!(fresh.answer(&jane, Strategy::RootPaths).ids.len(), 2);
}

#[test]
fn corrupt_page_fails_the_digest_check() {
    let dir = TempDir::new("corrupt");
    let path = dir.path("idx.xtwig");
    QueryEngine::build(
        Arc::new(fig1_book_document()),
        EngineOptions { strategies: vec![Strategy::RootPaths], ..Default::default() },
    )
    .persist(&path)
    .unwrap();
    // Flip one byte inside the first structure extent (page 1).
    let mut bytes = std::fs::read(&path).unwrap();
    let off = 8192 + 100;
    bytes[off] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    match QueryEngine::open(&path) {
        Err(OpenError::DigestMismatch { strategy, stored, computed }) => {
            assert_eq!(strategy, Strategy::RootPaths);
            assert_ne!(stored, computed);
        }
        Ok(_) => panic!("expected DigestMismatch, but the open succeeded"),
        Err(e) => panic!("expected DigestMismatch, got {e:?}"),
    }
}

#[test]
fn truncated_files_are_rejected() {
    let dir = TempDir::new("trunc");
    let path = dir.path("idx.xtwig");
    QueryEngine::build(
        Arc::new(fig1_book_document()),
        EngineOptions { strategies: vec![Strategy::RootPaths], ..Default::default() },
    )
    .persist(&path)
    .unwrap();
    let bytes = std::fs::read(&path).unwrap();

    // Misaligned truncation: rejected by FileBackend::open itself.
    std::fs::write(&path, &bytes[..bytes.len() - 100]).unwrap();
    match QueryEngine::open(&path) {
        Err(OpenError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidData),
        Ok(_) => panic!("expected Io(InvalidData), but the open succeeded"),
        Err(e) => panic!("expected Io(InvalidData), got {e:?}"),
    }

    // Page-aligned truncation: the superblock's page count catches it.
    std::fs::write(&path, &bytes[..bytes.len() - 8192]).unwrap();
    match QueryEngine::open(&path) {
        Err(OpenError::Format(msg)) => assert!(msg.contains("pages"), "{msg}"),
        Ok(_) => panic!("expected Format, but the open succeeded"),
        Err(e) => panic!("expected Format, got {e:?}"),
    }

    // Empty file.
    std::fs::write(&path, b"").unwrap();
    assert!(matches!(QueryEngine::open(&path), Err(OpenError::Format(_))));
}

#[test]
fn version_and_magic_mismatches_are_rejected() {
    let dir = TempDir::new("version");
    let path = dir.path("idx.xtwig");
    QueryEngine::build(
        Arc::new(fig1_book_document()),
        EngineOptions { strategies: vec![Strategy::RootPaths], ..Default::default() },
    )
    .persist(&path)
    .unwrap();
    let bytes = std::fs::read(&path).unwrap();

    // Future format version.
    let mut v = bytes.clone();
    v[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    std::fs::write(&path, &v).unwrap();
    match QueryEngine::open(&path) {
        Err(OpenError::VersionMismatch { found, expected }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(expected, FORMAT_VERSION);
        }
        Ok(_) => panic!("expected VersionMismatch, but the open succeeded"),
        Err(e) => panic!("expected VersionMismatch, got {e:?}"),
    }

    // Bad magic.
    let mut m = bytes.clone();
    m[0] = b'Z';
    std::fs::write(&path, &m).unwrap();
    match QueryEngine::open(&path) {
        Err(OpenError::Format(msg)) => assert!(msg.contains("magic"), "{msg}"),
        Ok(_) => panic!("expected Format(magic), but the open succeeded"),
        Err(e) => panic!("expected Format(magic), got {e:?}"),
    }

    // Corrupt catalog (flip a byte in the last page): checksum.
    let mut c = bytes.clone();
    let n = c.len();
    c[n - 8192 + 50] ^= 0xFF;
    std::fs::write(&path, &c).unwrap();
    match QueryEngine::open(&path) {
        Err(OpenError::Format(msg)) => assert!(msg.contains("checksum"), "{msg}"),
        Ok(_) => panic!("expected Format(checksum), but the open succeeded"),
        Err(e) => panic!("expected Format(checksum), got {e:?}"),
    }
}

#[test]
fn pruned_head_filter_engine_roundtrips() {
    let dir = TempDir::new("pruned");
    let path = dir.path("idx.xtwig");
    let forest = fig1_book_document();
    let workload = vec![parse_xpath("/book[title='XML']//author[fn='jane']").unwrap()];
    let filter = xtwig::core::compress::workload_head_filter(&workload);
    let built = QueryEngine::build(
        Arc::new(forest),
        EngineOptions {
            strategies: vec![Strategy::DataPaths],
            pool_pages: 1024,
            head_filter_tags: Some(filter),
            ..Default::default()
        },
    );
    built.persist(&path).unwrap();
    let opened = QueryEngine::open(&path).unwrap();
    assert!(opened.datapaths().unwrap().is_pruned(), "pruned flag survives");
    assert_eq!(
        opened.structure_digest(Strategy::DataPaths),
        built.structure_digest(Strategy::DataPaths)
    );
    // Off-workload query still answered via retained FreeIndex rows.
    let twig = parse_xpath("//chapter[title = 'XML']/section").unwrap();
    let oracle = expected(opened.forest(), "//chapter[title = 'XML']/section");
    assert_eq!(opened.answer(&twig, Strategy::DataPaths).ids, oracle);
}

#[test]
fn service_opens_and_serves_from_disk() {
    use xtwig::service::{ServiceOptions, TwigService};
    let dir = TempDir::new("service");
    let path = dir.path("idx.xtwig");
    QueryEngine::build(Arc::new(fig1_book_document()), EngineOptions::default())
        .persist(&path)
        .unwrap();
    let svc = TwigService::open(&path, ServiceOptions { workers: 2, ..Default::default() })
        .expect("service opens a persisted index");
    let forest = fig1_book_document();
    for q in ["/book[title='XML']//author[fn='jane'][ln='doe']", "//section/head", "//title"] {
        let twig = parse_xpath(q).unwrap();
        let oracle = expected(&forest, q);
        for s in Strategy::ALL {
            let a = svc.submit(&twig, s).unwrap().wait().unwrap();
            assert_eq!(*a.ids, oracle, "{s} on {q}");
        }
    }
    svc.shutdown();
}

#[test]
fn persisted_file_is_deterministic() {
    // Persisting the same engine twice — and persisting a parallel
    // (sharded) build of the same forest — produces byte-identical
    // files, extending PR 3's determinism guarantee to disk.
    let dir = TempDir::new("determinism");
    let a = dir.path("a.xtwig");
    let b = dir.path("b.xtwig");
    let c = dir.path("c.xtwig");
    let opts = || EngineOptions { pool_pages: 512, ..Default::default() };
    let seq = QueryEngine::build(Arc::new(multi_book_forest()), opts());
    seq.persist(&a).unwrap();
    seq.persist(&b).unwrap();
    QueryEngine::build_parallel(Arc::new(multi_book_forest()), opts(), 3).persist(&c).unwrap();
    let a = std::fs::read(&a).unwrap();
    assert_eq!(a, std::fs::read(&b).unwrap(), "same engine, same bytes");
    assert_eq!(a, std::fs::read(&c).unwrap(), "sharded build, same bytes");
}
