//! Integration: shard-parallel index construction equivalence.
//!
//! The contract of `QueryEngine::build_parallel` is that sharding is
//! purely an execution-schedule change: for every index strategy, the
//! parallel build's buffer-pool page image is **byte-identical** to the
//! sequential build's (`structure_digest`), and therefore every query
//! answer agrees. Checked across every suite corpus (Fig. 1 book,
//! multi-document forests, XMark, DBLP) at several shard counts, plus a
//! property test over randomly grown forests.

use proptest::prelude::*;
use std::collections::BTreeSet;
use xtwig::core::engine::{EngineOptions, QueryEngine, Strategy};
use xtwig::core::parallel::{map_shards, ShardPlan};
use xtwig::core::paths::PathStats;
use xtwig::datagen::{generate_dblp, generate_xmark, DblpConfig, XmarkConfig};
use xtwig::parse_xpath;
use xtwig::xml::tree::fig1_book_document;
use xtwig::xml::{naive, XmlForest};

const SHARD_COUNTS: [usize; 3] = [2, 3, 7];

fn multi_doc_forest() -> XmlForest {
    let mut f = XmlForest::new();
    for i in 0..11 {
        let mut b = f.builder();
        b.open("book");
        b.leaf("title", if i % 2 == 0 { "XML" } else { "SQL" });
        b.open("allauthors");
        b.open("author");
        b.leaf("fn", "jane");
        b.leaf("ln", if i % 3 == 0 { "doe" } else { "poe" });
        b.close();
        b.close();
        if i % 4 == 0 {
            b.open("chapter");
            b.leaf("title", "XML");
            b.open("section");
            b.leaf("head", "Origins");
            b.close();
            b.close();
        }
        b.close();
        b.finish();
    }
    f
}

/// Every suite corpus the workload tests run against, at test scale.
fn corpora() -> Vec<(&'static str, XmlForest)> {
    let mut xmark = XmlForest::new();
    generate_xmark(&mut xmark, XmarkConfig { scale: 0.002, seed: 0xA0C });
    let mut dblp = XmlForest::new();
    generate_dblp(&mut dblp, DblpConfig { scale: 0.002, seed: 0xD0B5 });
    vec![
        ("fig1", fig1_book_document()),
        ("multi_doc", multi_doc_forest()),
        ("xmark", xmark),
        ("dblp", dblp),
    ]
}

fn opts() -> EngineOptions {
    EngineOptions { pool_pages: 2048, ..Default::default() }
}

#[test]
fn parallel_build_is_byte_identical_on_every_corpus() {
    for (name, forest) in corpora() {
        let seq = QueryEngine::build(&forest, opts());
        for shards in SHARD_COUNTS {
            let par = QueryEngine::build_parallel(&forest, opts(), shards);
            for s in Strategy::ALL {
                assert_eq!(
                    par.structure_digest(s),
                    seq.structure_digest(s),
                    "{name}: {s} page image differs at {shards} shards"
                );
            }
        }
    }
}

#[test]
fn parallel_build_answers_match_naive_oracle() {
    let forest = multi_doc_forest();
    let par = QueryEngine::build_parallel(&forest, opts(), 5);
    for q in [
        "/book[title='XML']//author[fn='jane'][ln='doe']",
        "//author[fn='jane']/ln",
        "/book/chapter/title",
        "//section/head",
        "/book[title='XML'][year='2000']", // empty: no year nodes
    ] {
        let twig = parse_xpath(q).unwrap();
        let expected: BTreeSet<u64> =
            naive::select(&forest, &twig).into_iter().map(|n| n.0).collect();
        for s in Strategy::ALL {
            assert_eq!(par.answer(&twig, s).ids, expected, "{s} on {q}");
        }
    }
}

#[test]
fn sharded_path_stats_equal_sequential_on_every_corpus() {
    for (name, forest) in corpora() {
        let seq = PathStats::build(&forest);
        for shards in SHARD_COUNTS {
            let plan = ShardPlan::new(&forest, shards);
            let par = PathStats::build_sharded(&forest, &plan);
            assert_eq!(par.node_count(), seq.node_count(), "{name}");
            assert_eq!(par.distinct_schema_paths(), seq.distinct_schema_paths(), "{name}");
            for (path, count) in seq.iter_paths() {
                assert_eq!(par.path_count(path), count, "{name} @ {shards} shards");
            }
        }
    }
}

#[test]
fn shard_plans_cover_every_corpus_exactly_once() {
    for (name, forest) in corpora() {
        let total = forest.node_count() as u64 - 1;
        for shards in SHARD_COUNTS {
            let plan = ShardPlan::new(&forest, shards);
            let covered: u64 = map_shards(&plan, |r| r.len()).iter().sum();
            assert_eq!(covered, total, "{name} @ {shards} shards");
        }
    }
}

/// Tiny deterministic generator for the random-forest property test.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// Grows a random forest: 1–3 documents, random nesting, random leaf
/// values, random attribute nodes — enough shape variety to exercise
/// shard boundaries landing mid-subtree at every depth.
fn random_forest(seed: u64) -> XmlForest {
    const TAGS: [&str; 6] = ["a", "b", "c", "item", "name", "entry"];
    const VALUES: [&str; 4] = ["x", "y", "lorem", ""];
    let mut rng = Lcg(seed.wrapping_add(1));
    let mut f = XmlForest::new();
    for _ in 0..=rng.below(3) {
        let mut b = f.builder();
        b.open(TAGS[rng.below(TAGS.len() as u64) as usize]);
        let steps = 5 + rng.below(60);
        for _ in 0..steps {
            match rng.below(10) {
                0..=3 => {
                    if b.open_depth() < 8 {
                        b.open(TAGS[rng.below(TAGS.len() as u64) as usize]);
                    }
                }
                4..=6 => {
                    b.leaf(
                        TAGS[rng.below(TAGS.len() as u64) as usize],
                        VALUES[rng.below(VALUES.len() as u64) as usize],
                    );
                }
                7 => {
                    b.text(VALUES[rng.below(VALUES.len() as u64) as usize]);
                }
                _ => {
                    if b.open_depth() > 1 {
                        b.close();
                    }
                }
            }
        }
        while b.open_depth() > 0 {
            b.close();
        }
        b.finish();
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_forests_build_byte_identical_at_random_shard_counts(seed in any::<u64>()) {
        let forest = random_forest(seed);
        let mut rng = Lcg(seed ^ 0x5eed);
        let shards = 2 + rng.below(6) as usize;
        // RP, DP, and the Edge family cover all three builder shapes
        // (single tree, subpath tree, heap + three trees).
        let strategies = vec![Strategy::RootPaths, Strategy::DataPaths, Strategy::Edge];
        let mk = || EngineOptions {
            strategies: strategies.clone(),
            pool_pages: 1024,
            ..Default::default()
        };
        let seq = QueryEngine::build(&forest, mk());
        let par = QueryEngine::build_parallel(&forest, mk(), shards);
        for &s in &strategies {
            prop_assert_eq!(
                par.structure_digest(s),
                seq.structure_digest(s),
                "{} diverged at {} shards (seed {})", s, shards, seed
            );
        }
    }
}
