//! Integration: the full Q1x–Q15x workload on generated XMark data, every
//! strategy checked against the naive oracle and the planted selectivity
//! profile.

use std::collections::BTreeSet;
use xtwig::core::engine::{EngineOptions, QueryEngine, Strategy};
use xtwig::core::plan::PlanKind;
use xtwig::datagen::{generate_xmark, xmark_queries, XmarkConfig};
use xtwig::xml::{naive, XmlForest};

fn build(scale: f64, strategies: Vec<Strategy>) -> (XmlForest, xtwig::datagen::XmarkProfile) {
    let mut forest = XmlForest::new();
    let profile = generate_xmark(&mut forest, XmarkConfig { scale, seed: 0xA0C });
    let _ = &strategies;
    (forest, profile)
}

fn oracle_ids(forest: &XmlForest, xpath: &str) -> BTreeSet<u64> {
    let twig = xtwig::parse_xpath(xpath).unwrap();
    naive::select(forest, &twig).into_iter().map(|n| n.0).collect()
}

#[test]
fn all_strategies_agree_with_oracle_on_full_workload() {
    let (forest, _) = build(0.004, Strategy::ALL.to_vec());
    let engine =
        QueryEngine::build(&forest, EngineOptions { pool_pages: 4096, ..Default::default() });
    for q in xmark_queries() {
        let twig = q.twig();
        let expected = oracle_ids(&forest, q.xpath);
        for s in Strategy::ALL {
            let got = engine.answer(&twig, s);
            assert_eq!(got.ids, expected, "{} with {} disagrees with the oracle", q.id, s.label());
        }
    }
}

#[test]
fn single_path_results_match_planted_profile() {
    let (forest, profile) = build(0.01, vec![Strategy::RootPaths, Strategy::DataPaths]);
    let engine = QueryEngine::build(
        &forest,
        EngineOptions {
            strategies: vec![Strategy::RootPaths, Strategy::DataPaths],
            pool_pages: 4096,
            ..Default::default()
        },
    );
    let queries = xmark_queries();
    let expected =
        [("Q1x", profile.quantity5), ("Q2x", profile.quantity2), ("Q3x", profile.quantity1)];
    for (id, count) in expected {
        let q = queries.iter().find(|q| q.id == id).unwrap();
        let a = engine.answer(&q.twig(), Strategy::RootPaths);
        assert_eq!(a.ids.len() as u64, count, "{id} result size");
        let d = engine.answer(&q.twig(), Strategy::DataPaths);
        assert_eq!(d.ids.len() as u64, count, "{id} via DP");
    }
}

#[test]
fn twig_results_match_planted_profile() {
    let (forest, profile) = build(0.01, vec![Strategy::RootPaths, Strategy::DataPaths]);
    let engine = QueryEngine::build(
        &forest,
        EngineOptions {
            strategies: vec![Strategy::RootPaths, Strategy::DataPaths],
            pool_pages: 4096,
            ..Default::default()
        },
    );
    let queries = xmark_queries();
    // Q4x–Q7x return the increase=75.00 auctions (the selective branch
    // constants all exist); Q8x–Q9x the increase=3.00 auctions.
    for (id, count) in [
        ("Q4x", profile.increase_75),
        ("Q5x", profile.increase_75),
        ("Q6x", profile.increase_75),
        ("Q7x", profile.increase_75),
        ("Q8x", profile.increase_3),
        ("Q9x", profile.increase_3),
    ] {
        let q = queries.iter().find(|q| q.id == id).unwrap();
        for s in [Strategy::RootPaths, Strategy::DataPaths] {
            let a = engine.answer(&q.twig(), s);
            assert_eq!(a.ids.len() as u64, count, "{id} via {}", s.label());
        }
    }
}

#[test]
fn low_branch_point_chooses_inlj_for_datapaths() {
    let (forest, _) = build(0.01, vec![Strategy::DataPaths]);
    let engine = QueryEngine::build(
        &forest,
        EngineOptions {
            strategies: vec![Strategy::DataPaths, Strategy::RootPaths],
            pool_pages: 4096,
            ..Default::default()
        },
    );
    let queries = xmark_queries();
    let q10 = queries.iter().find(|q| q.id == "Q10x").unwrap();
    let a = engine.answer(&q10.twig(), Strategy::DataPaths);
    assert_eq!(a.plan, PlanKind::IndexNestedLoop, "Q10x should run as INLJ");
    // And the result still matches the oracle.
    assert_eq!(a.ids, oracle_ids(&forest, q10.xpath));
    // High-branch-point mixed query stays a merge plan (§5.2.2: "the
    // speedup from index-nested-loops join cannot be exploited").
    let q6 = queries.iter().find(|q| q.id == "Q6x").unwrap();
    let a6 = engine.answer(&q6.twig(), Strategy::DataPaths);
    assert_eq!(a6.plan, PlanKind::Merge, "Q6x should run as a merge plan");
}

#[test]
fn recursive_twigs_expand_to_six_schema_paths() {
    let (forest, _) = build(0.005, vec![Strategy::Asr]);
    let engine = QueryEngine::build(
        &forest,
        EngineOptions {
            strategies: vec![Strategy::Asr, Strategy::RootPaths],
            pool_pages: 4096,
            ..Default::default()
        },
    );
    let queries = xmark_queries();
    for id in ["Q12x", "Q14x"] {
        let q = queries.iter().find(|q| q.id == id).unwrap();
        let expected = oracle_ids(&forest, q.xpath);
        let asr = engine.answer(&q.twig(), Strategy::Asr);
        let rp = engine.answer(&q.twig(), Strategy::RootPaths);
        assert_eq!(asr.ids, expected, "{id} via ASR");
        assert_eq!(rp.ids, expected, "{id} via RP");
        // The §5.2.6 effect: ASR opens one table per matching region
        // path, so it must probe strictly more than RP's per-subpath
        // single lookups.
        assert!(
            asr.metrics.probes > rp.metrics.probes,
            "{id}: ASR probes {} <= RP probes {}",
            asr.metrics.probes,
            rp.metrics.probes
        );
    }
}

#[test]
fn leading_recursion_overhead_is_small_for_rootpaths() {
    // §5.2.4: queries rewritten with a leading // cost <5% more for
    // RP/DP because they become prefix probes on reversed paths. We check
    // the probe/row counts are identical (the lookup count cannot grow).
    let (forest, _) = build(0.01, vec![Strategy::RootPaths]);
    let engine = QueryEngine::build(
        &forest,
        EngineOptions {
            strategies: vec![Strategy::RootPaths],
            pool_pages: 4096,
            ..Default::default()
        },
    );
    let anchored = xtwig::parse_xpath("/site/regions/namerica/item/quantity[. = '2']").unwrap();
    let recursive = xtwig::parse_xpath("//regions/namerica/item/quantity[. = '2']").unwrap();
    let a = engine.answer(&anchored, Strategy::RootPaths);
    let r = engine.answer(&recursive, Strategy::RootPaths);
    assert_eq!(a.ids, r.ids);
    assert_eq!(a.metrics.probes, r.metrics.probes);
}
