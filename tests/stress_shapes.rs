//! Stress shapes: datasets that push the encoding layers into their rare
//! regimes, checked end-to-end against the oracle.

use std::collections::BTreeSet;
use xtwig::core::engine::{EngineOptions, QueryEngine, Strategy};
use xtwig::xml::{naive, XmlForest};

fn check_all(forest: &XmlForest, engine: &QueryEngine<&XmlForest>, xpath: &str) {
    let twig = xtwig::parse_xpath(xpath).unwrap();
    let expected: BTreeSet<u64> = naive::select(forest, &twig).into_iter().map(|n| n.0).collect();
    for s in Strategy::ALL {
        let got = engine.answer(&twig, s);
        assert_eq!(got.ids, expected, "{xpath} via {}", s.label());
    }
}

/// More than 253 distinct tags forces the 3-byte escape designators; the
/// whole stack (keys, probes, decodes) must keep working across the
/// 1-byte/3-byte boundary.
#[test]
fn dictionary_beyond_one_byte_designators() {
    let mut f = XmlForest::new();
    let mut b = f.builder();
    b.open("root");
    for i in 0..400u32 {
        b.open(&format!("tag{i}"));
        b.leaf("val", &format!("{}", i % 7));
        b.close();
    }
    b.close();
    b.finish();
    assert!(f.dict().len() > 300, "need the multi-byte designator regime");
    let e = QueryEngine::build(&f, EngineOptions { pool_pages: 2048, ..Default::default() });
    // tag5 uses a 1-byte designator, tag300 a 3-byte one.
    check_all(&f, &e, "/root/tag5/val");
    check_all(&f, &e, "/root/tag300/val[. = '6']");
    check_all(&f, &e, "//tag399/val");
    check_all(&f, &e, "/root/tag300[val = '6']");
    check_all(&f, &e, "//val[. = '3']");
}

/// Leaf values longer than the 96-byte key prefix are prefix-indexed and
/// post-checked; two long values sharing the indexed prefix must still
/// be distinguished.
#[test]
fn long_values_share_key_prefix() {
    let shared: String = "x".repeat(120);
    let v1 = format!("{shared}-alpha");
    let v2 = format!("{shared}-beta");
    let mut f = XmlForest::new();
    let mut b = f.builder();
    b.open("docs");
    b.leaf("blob", &v1);
    b.leaf("blob", &v2);
    b.leaf("blob", &v1);
    b.leaf("blob", "short");
    b.close();
    b.finish();
    let e = QueryEngine::build(&f, EngineOptions { pool_pages: 1024, ..Default::default() });
    for (value, want) in [(v1.as_str(), 2usize), (v2.as_str(), 1), ("short", 1)] {
        let twig = xtwig::parse_xpath(&format!("/docs/blob[. = '{value}']")).unwrap();
        let expected: BTreeSet<u64> = naive::select(&f, &twig).into_iter().map(|n| n.0).collect();
        assert_eq!(expected.len(), want, "oracle sanity for {value:.20}…");
        for s in [Strategy::RootPaths, Strategy::DataPaths] {
            let got = e.answer(&twig, s);
            assert_eq!(got.ids, expected, "long value via {}", s.label());
        }
    }
}

/// Deep same-tag nesting: recursion-heavy structure where strict
/// descendant semantics and the subpath explosion both matter.
#[test]
fn deep_same_tag_nesting() {
    let mut f = XmlForest::new();
    let mut b = f.builder();
    for _ in 0..30 {
        b.open("n");
    }
    b.leaf("leaf", "bottom");
    for _ in 0..30 {
        b.close();
    }
    b.finish();
    assert_eq!(f.max_depth(), 31);
    let e = QueryEngine::build(&f, EngineOptions { pool_pages: 4096, ..Default::default() });
    check_all(&f, &e, "//n/leaf");
    check_all(&f, &e, "//n//leaf");
    check_all(&f, &e, "//n//n//n/leaf");
    check_all(&f, &e, "/n/n/n[//leaf]");
}

/// Wide fanout: one parent with thousands of children stresses the
/// forward-link buckets and leaf packing.
#[test]
fn wide_fanout() {
    let mut f = XmlForest::new();
    let mut b = f.builder();
    b.open("hub");
    for i in 0..2_000u32 {
        b.leaf("spoke", &format!("{}", i % 10));
    }
    b.close();
    b.finish();
    let e = QueryEngine::build(&f, EngineOptions { pool_pages: 4096, ..Default::default() });
    check_all(&f, &e, "/hub/spoke[. = '3']");
    check_all(&f, &e, "//spoke");
    let twig = xtwig::parse_xpath("/hub/spoke[. = '3']").unwrap();
    let a = e.answer(&twig, Strategy::RootPaths);
    assert_eq!(a.ids.len(), 200);
}

/// Unicode tags and values through every layer.
#[test]
fn unicode_tags_and_values() {
    let mut f = XmlForest::new();
    let mut b = f.builder();
    b.open("催し");
    b.leaf("名前", "祭り");
    b.leaf("名前", "émission");
    b.close();
    b.finish();
    let e = QueryEngine::build(&f, EngineOptions { pool_pages: 1024, ..Default::default() });
    check_all(&f, &e, "/催し/名前[. = '祭り']");
    check_all(&f, &e, "//名前[. = 'émission']");
}
