//! Integration: snapshot-isolated MVCC maintenance (`xtwig-service`).
//!
//! Guards the concurrency contract this layer exists for: readers pin
//! an engine epoch and never block on writers; every committed
//! `apply_update` survives any interleaving of concurrent rebuilds
//! (journal replay — the lost-update fix); and answers under load are
//! byte-identical to a sequential oracle across all seven strategies.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use xtwig::prelude::*;
use xtwig::xml::TagId;

fn library_forest() -> XmlForest {
    let mut f = XmlForest::new();
    for i in 0..6 {
        let mut b = f.builder();
        b.open("book");
        b.leaf("title", if i % 2 == 0 { "XML" } else { "SQL" });
        b.leaf("year", if i < 3 { "2000" } else { "2005" });
        b.open("allauthors");
        for j in 0..3 {
            b.open("author");
            b.leaf("fn", ["jane", "john", "mary"][(i + j) % 3]);
            b.leaf("ln", ["doe", "poe"][(i * j) % 2]);
            b.close();
        }
        b.close();
        b.close();
        b.finish();
    }
    f
}

fn service(workers: usize) -> TwigService {
    TwigService::build(
        library_forest(),
        EngineOptions { pool_pages: 512, ..Default::default() },
        ServiceOptions { workers, ..Default::default() },
    )
}

fn author_tags(svc: &TwigService) -> Vec<TagId> {
    svc.with_engine(|e| {
        let dict = e.forest().dict();
        ["book", "allauthors", "author", "fn"].iter().map(|t| dict.lookup(t).unwrap()).collect()
    })
}

/// The ops inserting one author node (id `10_000 + 2k`) whose fn leaf
/// holds the unique value `w{k}` — each committed round is a distinct,
/// individually checkable update.
fn round_ops(tags: &[TagId], k: u64) -> Vec<UpdateOp> {
    let author = 10_000 + 2 * k;
    vec![
        UpdateOp::InsertPath { tags: tags[..3].to_vec(), ids: vec![1, 3, author], value: None },
        UpdateOp::InsertPath {
            tags: tags.to_vec(),
            ids: vec![1, 3, author, author + 1],
            value: Some(format!("w{k}")),
        },
    ]
}

/// Canonical byte encoding of an answer (sorted ids, fixed-width LE).
fn serialize(ids: &BTreeSet<u64>) -> Vec<u8> {
    ids.iter().flat_map(|id| id.to_le_bytes()).collect()
}

#[test]
fn concurrent_updates_rebuilds_and_readers_lose_nothing() {
    // The PR's acceptance stress: a writer committing updates, a
    // rebuild storm, and reader threads all interleave freely. Zero
    // committed updates may be lost, and every in-flight answer must be
    // a consistent snapshot: either empty (epoch predates the commit)
    // or exactly the committed id — never a torn in-between.
    const ROUNDS: u64 = 24;
    let svc = Arc::new(service(4));
    let tags = author_tags(&svc);
    let committed = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    let writer = {
        let (svc, tags, committed) = (svc.clone(), tags.clone(), committed.clone());
        std::thread::spawn(move || {
            for k in 0..ROUNDS {
                svc.apply_update(round_ops(&tags, k));
                committed.store(k + 1, Ordering::SeqCst);
            }
        })
    };
    let rebuilder = {
        let (svc, stop) = (svc.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut rebuilds = 0u32;
            while !stop.load(Ordering::SeqCst) {
                svc.rebuild_parallel(EngineOptions { pool_pages: 512, ..Default::default() }, 3);
                rebuilds += 1;
            }
            rebuilds
        })
    };
    let readers: Vec<_> = (0..3)
        .map(|r| {
            let (svc, stop, committed) = (svc.clone(), stop.clone(), committed.clone());
            std::thread::spawn(move || {
                let mut checked = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let horizon = committed.load(Ordering::SeqCst);
                    if horizon == 0 {
                        std::thread::yield_now();
                        continue;
                    }
                    let k = (checked + r) % horizon;
                    let twig = parse_xpath(&format!("//author[fn='w{k}']")).unwrap();
                    let a = svc.submit(&twig, Strategy::RootPaths).unwrap().wait().unwrap();
                    let got: Vec<u64> = a.ids.iter().copied().collect();
                    assert!(
                        got.is_empty() || got == vec![10_000 + 2 * k],
                        "reader {r}: torn snapshot for w{k}: {got:?}"
                    );
                    checked += 1;
                }
                checked
            })
        })
        .collect();

    writer.join().unwrap();
    // One more rebuild *after* the last commit, then stop: the final
    // engine is a rebuild product, so the zero-lost-updates check below
    // exercises the journal replay, not just the fork path.
    svc.rebuild_parallel(EngineOptions { pool_pages: 512, ..Default::default() }, 3);
    stop.store(true, Ordering::SeqCst);
    let rebuilds = rebuilder.join().unwrap();
    for r in readers {
        assert!(r.join().unwrap() > 0, "reader did useful work");
    }

    // Zero lost updates, on every maintainable structure.
    for k in 0..ROUNDS {
        let twig = parse_xpath(&format!("//author[fn='w{k}']")).unwrap();
        for s in [Strategy::RootPaths, Strategy::DataPaths] {
            let a = svc.submit(&twig, s).unwrap().wait().unwrap();
            assert_eq!(
                a.ids.iter().copied().collect::<Vec<_>>(),
                vec![10_000 + 2 * k],
                "{s}: update w{k} lost (rebuild raced apply_update)"
            );
        }
    }
    let stats = svc.stats();
    assert_eq!(stats.updates, ROUNDS);
    assert_eq!(stats.journal_ops, 2 * ROUNDS);
    assert!(stats.rebuilds >= 1);
    assert!(
        stats.replayed_ops >= 2 * ROUNDS,
        "the post-commit rebuild must have replayed the full journal"
    );
    eprintln!("stress: {} rebuilds raced {} updates", rebuilds + 1, stats.updates);
    match Arc::try_unwrap(svc) {
        Ok(svc) => svc.shutdown(),
        Err(_) => panic!("service still shared"),
    }
}

#[test]
fn deterministic_update_rebuild_interleaving_keeps_every_update() {
    // The minimal lost-update reproduction, with no scheduler luck
    // involved: strictly alternate apply_update and rebuild_parallel.
    // Before the journal-replay fix, every rebuild discarded all
    // earlier updates (it re-read only the static forest).
    let svc = service(2);
    let tags = author_tags(&svc);
    for k in 0..4 {
        svc.apply_update(round_ops(&tags, k));
        svc.rebuild_parallel(EngineOptions { pool_pages: 512, ..Default::default() }, 2);
    }
    for k in 0..4u64 {
        let twig = parse_xpath(&format!("//author[fn='w{k}']")).unwrap();
        for s in [Strategy::RootPaths, Strategy::DataPaths] {
            let a = svc.submit(&twig, s).unwrap().wait().unwrap();
            assert_eq!(
                a.ids.iter().copied().collect::<Vec<_>>(),
                vec![10_000 + 2 * k],
                "{s}: w{k} lost after {} interleaved rebuilds",
                4 - k
            );
        }
    }
    let stats = svc.stats();
    assert_eq!(stats.rebuilds, 4);
    // Rebuild r replays the 2(r+1) ops journaled so far: 2+4+6+8.
    assert_eq!(stats.replayed_ops, 20);
    svc.shutdown();
}

#[test]
fn answers_under_concurrent_writes_match_the_sequential_oracle() {
    // Queries whose answers the writer's inserts do NOT touch must be
    // byte-identical to a pre-computed sequential oracle across all
    // seven strategies, no matter how many epochs publish mid-flight.
    const QUERIES: [&str; 5] = [
        "/book[title='XML']//author[fn='jane'][ln='doe']",
        "/book[title='XML']/year",
        "//author[fn='john']/ln",
        "/book[year='2000']/chapter/title",
        "/book[title='SQL']//ln[. = 'poe']",
    ];
    let svc = Arc::new(TwigService::build(
        library_forest(),
        EngineOptions { pool_pages: 512, ..Default::default() },
        // Result cache off: every answer is a real execution against
        // whatever epoch the worker pinned.
        ServiceOptions { workers: 6, result_cache_capacity: 0, ..Default::default() },
    ));
    let tags = author_tags(&svc);
    let twigs: Vec<TwigPattern> = QUERIES.iter().map(|q| parse_xpath(q).unwrap()).collect();
    let oracle: Vec<Vec<u8>> = svc.with_engine(|engine| {
        twigs
            .iter()
            .flat_map(|t| Strategy::ALL.iter().map(|s| serialize(&engine.answer(t, *s).ids)))
            .collect()
    });
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let (svc, stop) = (svc.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut k = 0;
            while !stop.load(Ordering::SeqCst) {
                svc.apply_update(round_ops(&tags, k));
                k += 1;
            }
            k
        })
    };
    for round in 0..4 {
        let tickets: Vec<_> = twigs
            .iter()
            .flat_map(|t| {
                Strategy::ALL.iter().map(|s| svc.submit(t, *s).unwrap()).collect::<Vec<_>>()
            })
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let a = ticket.wait().unwrap();
            assert_eq!(
                serialize(&a.ids),
                oracle[i],
                "round {round}: answer {i} diverged from the sequential oracle"
            );
        }
    }
    stop.store(true, Ordering::SeqCst);
    let commits = writer.join().unwrap();
    assert!(commits > 0, "the writer must actually have raced the readers");
    match Arc::try_unwrap(svc) {
        Ok(svc) => svc.shutdown(),
        Err(_) => panic!("service still shared"),
    }
}

#[test]
fn service_persist_folds_updates_and_reopens_for_serving() {
    // update → persist (fold) → TwigService::open: the reopened service
    // serves the folded updates on every strategy that can see them,
    // and the untouched corpus on all seven.
    let dir = std::env::temp_dir().join(format!(
        "xtwig-mvcc-fold-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path: PathBuf = dir.join("svc.xtwig");
    let svc = service(2);
    let tags = author_tags(&svc);
    svc.apply_update(round_ops(&tags, 0));
    svc.apply_update(round_ops(&tags, 1));
    svc.persist(&path).unwrap();
    assert_eq!(svc.stats().folds, 1);
    svc.shutdown();

    let reopened = TwigService::open(&path, ServiceOptions::default()).unwrap();
    for k in 0..2u64 {
        let twig = parse_xpath(&format!("//author[fn='w{k}']")).unwrap();
        for s in [Strategy::RootPaths, Strategy::DataPaths] {
            let a = reopened.submit(&twig, s).unwrap().wait().unwrap();
            assert_eq!(
                a.ids.iter().copied().collect::<Vec<_>>(),
                vec![10_000 + 2 * k],
                "{s}: folded update w{k} missing after reopen"
            );
        }
    }
    let jane = parse_xpath("//author[fn='jane']").unwrap();
    let expected = reopened.with_engine(|e| e.answer(&jane, Strategy::RootPaths).ids);
    for s in Strategy::ALL {
        let a = reopened.submit(&jane, s).unwrap().wait().unwrap();
        assert_eq!(*a.ids, expected, "{s}: corpus answer diverged after fold+reopen");
    }
    reopened.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
