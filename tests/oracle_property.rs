//! Property test: on randomly generated forests and randomly generated
//! twig patterns, every index strategy returns exactly the naive
//! matcher's answer.
//!
//! This is the repo's deepest correctness net: it exercises the key
//! codec, designator encoding, B+-tree prefix scans, path enumeration,
//! twig decomposition, the planner, and all seven execution strategies
//! at once.

use proptest::prelude::*;
use std::collections::BTreeSet;
use xtwig::core::engine::{EngineOptions, QueryEngine, Strategy};
use xtwig::xml::{naive, Axis, TwigPattern, XmlForest};

const TAGS: &[&str] = &["a", "b", "c", "d"];
const VALUES: &[&str] = &["x", "y", "z"];

/// Builds a random forest from a byte program: each byte either opens a
/// tagged element, closes the current one, or attaches a value.
fn forest_from_program(program: &[u8]) -> XmlForest {
    let mut forest = XmlForest::new();
    let mut b = forest.builder();
    b.open("r"); // stable root so anchored queries are interesting
    let mut depth = 1usize;
    for &op in program {
        match op % 8 {
            0..=3 => {
                if depth < 8 {
                    b.open(TAGS[(op as usize / 8) % TAGS.len()]);
                    depth += 1;
                }
            }
            4 | 5 => {
                if depth > 1 {
                    b.close();
                    depth -= 1;
                }
            }
            _ => {
                b.text(VALUES[(op as usize / 8) % VALUES.len()]);
            }
        }
    }
    while depth > 0 {
        b.close();
        depth -= 1;
    }
    b.finish();
    forest
}

/// Builds a random twig from a byte program.
fn twig_from_program(program: &[u8]) -> TwigPattern {
    let root_axis =
        if program.first().copied().unwrap_or(0) % 2 == 0 { Axis::Child } else { Axis::Descendant };
    let root_tag = if program.first().copied().unwrap_or(0) % 4 < 2 { "r" } else { TAGS[0] };
    let mut twig = TwigPattern::single(root_axis, root_tag, None);
    let mut nodes = vec![0usize];
    for chunk in program[1..].chunks(3) {
        if twig.len() >= 5 {
            break;
        }
        let parent = nodes[chunk[0] as usize % nodes.len()];
        let axis = if chunk.get(1).copied().unwrap_or(0) % 3 == 0 {
            Axis::Descendant
        } else {
            Axis::Child
        };
        let tag = TAGS[chunk.get(1).copied().unwrap_or(0) as usize % TAGS.len()];
        let value = match chunk.get(2).copied().unwrap_or(0) % 3 {
            0 => None,
            v => Some(VALUES[v as usize % VALUES.len()]),
        };
        let idx = twig.add_child(parent, axis, tag, value);
        nodes.push(idx);
    }
    twig.output = nodes[program.first().copied().unwrap_or(0) as usize % nodes.len()];
    twig
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn every_strategy_matches_the_oracle(
        tree_prog in proptest::collection::vec(any::<u8>(), 4..120),
        twig_prog in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let forest = forest_from_program(&tree_prog);
        let twig = twig_from_program(&twig_prog);
        let expected: BTreeSet<u64> =
            naive::select(&forest, &twig).into_iter().map(|n| n.0).collect();
        let engine = QueryEngine::build(
            &forest,
            EngineOptions { pool_pages: 512, ..Default::default() },
        );
        for s in Strategy::ALL {
            let got = engine.answer(&twig, s);
            prop_assert_eq!(
                &got.ids,
                &expected,
                "strategy {} on twig {} over {} nodes",
                s.label(),
                twig,
                forest.node_count()
            );
        }
    }
}

#[test]
fn regression_nested_same_tags() {
    // Same-tag nesting exercises the strict-descendant filters.
    let mut forest = XmlForest::new();
    let mut b = forest.builder();
    b.open("r");
    b.open("a");
    b.text("x");
    b.open("a");
    b.open("a");
    b.text("x");
    b.close();
    b.close();
    b.close();
    b.open("a");
    b.text("y");
    b.close();
    b.close();
    b.finish();
    let engine =
        QueryEngine::build(&forest, EngineOptions { pool_pages: 512, ..Default::default() });
    for xpath in ["//a//a", "//a//a[. = 'x']", "/r/a/a/a", "//a[a]", "/r//a[. = 'y']"] {
        let twig = xtwig::parse_xpath(xpath).unwrap();
        let expected: BTreeSet<u64> =
            naive::select(&forest, &twig).into_iter().map(|n| n.0).collect();
        for s in Strategy::ALL {
            let got = engine.answer(&twig, s);
            assert_eq!(got.ids, expected, "{xpath} via {}", s.label());
        }
    }
}

#[test]
fn regression_multiple_documents_and_descendant_root() {
    let mut forest = XmlForest::new();
    for i in 0..4 {
        let mut b = forest.builder();
        b.open(if i % 2 == 0 { "a" } else { "b" });
        b.open("c");
        b.text(if i < 2 { "x" } else { "y" });
        b.close();
        b.close();
        b.finish();
    }
    let engine =
        QueryEngine::build(&forest, EngineOptions { pool_pages: 512, ..Default::default() });
    for xpath in ["/a/c", "//c[. = 'x']", "/b[c = 'y']", "//b/c"] {
        let twig = xtwig::parse_xpath(xpath).unwrap();
        let expected: BTreeSet<u64> =
            naive::select(&forest, &twig).into_iter().map(|n| n.0).collect();
        for s in Strategy::ALL {
            assert_eq!(engine.answer(&twig, s).ids, expected, "{xpath} via {}", s.label());
        }
    }
}
