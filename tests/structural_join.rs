//! Integration: the structural-join stitching mode (§6 alternative)
//! returns exactly the same answers as IdList-ancestor unnesting.

use std::collections::BTreeSet;
use xtwig::core::engine::{EngineOptions, QueryEngine, Strategy};
use xtwig::core::stitch::containment_join;
use xtwig::datagen::{generate_xmark, xmark_queries, XmarkConfig};
use xtwig::xml::{naive, NodeId, XmlForest};

#[test]
fn structural_and_unnesting_joins_agree_on_workload() {
    let mut forest = XmlForest::new();
    generate_xmark(&mut forest, XmarkConfig { scale: 0.004, seed: 11 });
    let strategies = vec![Strategy::RootPaths, Strategy::DataPaths];
    let unnest = QueryEngine::build(
        &forest,
        EngineOptions { strategies: strategies.clone(), pool_pages: 4096, ..Default::default() },
    );
    let structural = QueryEngine::build(
        &forest,
        EngineOptions {
            strategies,
            pool_pages: 4096,
            structural_ad_joins: true,
            ..Default::default()
        },
    );
    // The recursive queries exercise the AD joins; run the whole workload
    // anyway for coverage.
    for q in xmark_queries() {
        let twig = q.twig();
        let expected: BTreeSet<u64> =
            naive::select(&forest, &twig).into_iter().map(|n| n.0).collect();
        for s in [Strategy::RootPaths, Strategy::DataPaths] {
            assert_eq!(unnest.answer(&twig, s).ids, expected, "{} unnest {}", q.id, s.label());
            assert_eq!(
                structural.answer(&twig, s).ids,
                expected,
                "{} structural {}",
                q.id,
                s.label()
            );
        }
    }
}

#[test]
fn structural_join_handles_deep_recursion_queries() {
    let mut forest = XmlForest::new();
    generate_xmark(&mut forest, XmarkConfig { scale: 0.004, seed: 11 });
    let engine = QueryEngine::build(
        &forest,
        EngineOptions {
            strategies: vec![Strategy::RootPaths],
            pool_pages: 4096,
            structural_ad_joins: true,
            ..Default::default()
        },
    );
    for xpath in [
        "/site//mail/from",
        "//open_auction//personref",
        "/site//item[location = 'united states']//date",
        "//regions//item[quantity = '1']",
    ] {
        let twig = xtwig::parse_xpath(xpath).unwrap();
        let expected: BTreeSet<u64> =
            naive::select(&forest, &twig).into_iter().map(|n| n.0).collect();
        assert_eq!(engine.answer(&twig, Strategy::RootPaths).ids, expected, "{xpath}");
    }
}

#[test]
fn containment_join_scales_linearly_on_generated_data() {
    // Cross-check the raw join against is_ancestor on a real dataset.
    let mut forest = XmlForest::new();
    generate_xmark(&mut forest, XmarkConfig { scale: 0.002, seed: 3 });
    let items: Vec<u64> =
        forest.iter_nodes().filter(|&n| forest.tag_name(n) == "item").map(|n| n.0).collect();
    let dates: Vec<u64> =
        forest.iter_nodes().filter(|&n| forest.tag_name(n) == "date").map(|n| n.0).collect();
    let pairs = containment_join(&forest, &items, &dates);
    let mut naive_count = 0usize;
    for &a in &items {
        for &d in &dates {
            if forest.is_ancestor(NodeId(a), NodeId(d)) {
                naive_count += 1;
            }
        }
    }
    assert_eq!(pairs.len(), naive_count);
    assert!(!pairs.is_empty(), "items should contain mail dates");
}
