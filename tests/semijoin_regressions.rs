//! Regression tests for the engine's semi-join / early-projection paths.
//!
//! Existence branches (predicates whose bindings nothing later consumes)
//! run as semi-joins; these cases pin the tricky interactions: shared
//! nodes between filter branches, filters that must NOT collapse result
//! multiplicity, and INLJ probes in semi mode.

use std::collections::BTreeSet;
use xtwig::core::engine::{EngineOptions, QueryEngine, Strategy};
use xtwig::xml::{naive, XmlForest};

fn engine(forest: &XmlForest) -> QueryEngine<&XmlForest> {
    QueryEngine::build(forest, EngineOptions { pool_pages: 1024, ..Default::default() })
}

fn check(forest: &XmlForest, e: &QueryEngine<&XmlForest>, xpath: &str) {
    let twig = xtwig::parse_xpath(xpath).unwrap();
    let expected: BTreeSet<u64> = naive::select(forest, &twig).into_iter().map(|n| n.0).collect();
    for s in Strategy::ALL {
        let got = e.answer(&twig, s);
        assert_eq!(got.ids, expected, "{xpath} via {}", s.label());
    }
}

/// A site-like shape where one branch filters and the other is the
/// output, with multiple filter matches per head.
#[test]
fn filter_branch_with_many_matches_per_head() {
    let mut f = XmlForest::new();
    let mut b = f.builder();
    b.open("s");
    for i in 0..6 {
        b.open("g");
        // Several matching filter leaves under the same g.
        for _ in 0..3 {
            b.leaf("flag", if i % 2 == 0 { "on" } else { "off" });
        }
        for j in 0..2 {
            b.leaf("out", &format!("v{i}{j}"));
        }
        b.close();
    }
    b.close();
    b.finish();
    let e = engine(&f);
    // 3 "on" groups x 2 out leaves = 6 results; the 3x flag multiplicity
    // must not multiply (or drop) results.
    check(&f, &e, "/s/g[flag = 'on']/out");
    check(&f, &e, "//g[flag = 'on'][out]/out");
    check(&f, &e, "/s/g[flag = 'off']/out");
}

/// Two filter branches sharing an interior node.
#[test]
fn two_filters_sharing_interior_node() {
    let mut f = XmlForest::new();
    let mut b = f.builder();
    b.open("r");
    for i in 0..4 {
        b.open("p");
        b.open("q");
        b.leaf("a", if i < 2 { "1" } else { "0" });
        b.leaf("b", if i % 2 == 0 { "1" } else { "0" });
        b.close();
        b.leaf("t", &format!("t{i}"));
        b.close();
    }
    b.close();
    b.finish();
    let e = engine(&f);
    // Both predicates must hold on the SAME q node (i = 0 only).
    check(&f, &e, "/r/p[q/a = '1'][q/b = '1']/t");
    check(&f, &e, "/r/p[q[a = '1'][b = '1']]/t");
}

/// The output node inside the predicate-bearing subpath (no filter at
/// all may be semi-joined away).
#[test]
fn output_on_filter_subpath() {
    let mut f = XmlForest::new();
    let mut b = f.builder();
    b.open("r");
    for i in 0..3 {
        b.open("x");
        b.leaf("k", &format!("{}", i % 2));
        b.close();
    }
    b.close();
    b.finish();
    let e = engine(&f);
    check(&f, &e, "/r/x/k[. = '1']");
    check(&f, &e, "/r/x[k = '1']");
    check(&f, &e, "//x[k = '0']/k");
}

/// Descendant filters across segments in both directions.
#[test]
fn descendant_existence_filters() {
    let mut f = XmlForest::new();
    let mut b = f.builder();
    b.open("lib");
    for i in 0..4 {
        b.open("shelf");
        b.open("box");
        if i % 2 == 0 {
            b.leaf("rare", "yes");
        }
        b.leaf("book", &format!("b{i}"));
        b.close();
        b.close();
    }
    b.close();
    b.finish();
    let e = engine(&f);
    check(&f, &e, "/lib/shelf[//rare]//book");
    check(&f, &e, "//shelf[box/rare = 'yes']/box/book");
    check(&f, &e, "/lib//box[rare]/book");
}

/// INLJ semi probes: a selective driver with an unselective existence
/// filter at a low branch point.
#[test]
fn inlj_semi_probe_filters_heads() {
    let mut f = XmlForest::new();
    let mut b = f.builder();
    b.open("top");
    for i in 0..30 {
        b.open("node");
        b.leaf("tag", if i == 7 || i == 21 { "rare" } else { "common" });
        // Unselective children.
        for j in 0..5 {
            b.leaf("item", &format!("{}", j % 2));
        }
        if i != 21 {
            b.leaf("extra", "e");
        }
        b.close();
    }
    b.close();
    b.finish();
    let e = engine(&f);
    // Driver tag='rare' (2 heads); extra is an existence filter (one head
    // lacks it); output item.
    check(&f, &e, "/top/node[tag = 'rare'][extra]/item");
    check(&f, &e, "//node[tag = 'rare'][item = '1']/extra");
}
