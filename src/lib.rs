//! # xtwig — relational twig-pattern indexing for XML
//!
//! A production-quality reproduction of Chen, Gehrke, Korn, Koudas,
//! Shanmugasundaram, Srivastava: *"Index Structures for Matching XML
//! Twigs Using Relational Query Processors"* (ICDE 2005), including the
//! full substrate stack the paper runs on: a paged storage engine with a
//! buffer pool, a disk-format B+-tree, a mini relational executor, an XML
//! data model and parser, the paper's two novel indexes (ROOTPATHS and
//! DATAPATHS), every comparison system of its evaluation, and a query
//! engine with merge and index-nested-loop twig plans.
//!
//! ## Quickstart
//!
//! ```
//! use xtwig::prelude::*;
//!
//! // Parse a document (or use xtwig::datagen's generators).
//! let mut forest = XmlForest::new();
//! xtwig::xml::parse_document(
//!     &mut forest,
//!     "<book><title>XML</title><allauthors>\
//!      <author><fn>jane</fn><ln>doe</ln></author>\
//!      </allauthors></book>",
//! )
//! .unwrap();
//!
//! // Build the indexes (here: just ROOTPATHS and DATAPATHS).
//! let engine = QueryEngine::build(
//!     &forest,
//!     EngineOptions {
//!         strategies: vec![Strategy::RootPaths, Strategy::DataPaths],
//!         pool_pages: 256,
//!         ..Default::default()
//!     },
//! );
//!
//! // Ask the paper's intro query.
//! let twig = parse_xpath("/book[title='XML']//author[fn='jane'][ln='doe']").unwrap();
//! let answer = engine.answer(&twig, Strategy::RootPaths);
//! assert_eq!(answer.ids.len(), 1);
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`xml`] | `xtwig-xml` | forest data model, parser, twig patterns, naive matcher |
//! | [`storage`] | `xtwig-storage` | pages, disk manager, buffer pool, I/O stats |
//! | [`btree`] | `xtwig-btree` | disk-format B+-tree with prefix scans and bulk load |
//! | [`rel`] | `xtwig-rel` | values, order-preserving codec, heap files, join operators |
//! | [`core`] | `xtwig-core` | ROOTPATHS, DATAPATHS, the index family, baselines, planner, engine |
//! | [`obs`] | `xtwig-obs` | query observability: span traces and per-stage I/O counters |
//! | [`opt`] | `xtwig-opt` | cost-based strategy selection: estimator, per-strategy cost model |
//! | [`service`] | `xtwig-service` | concurrent query service: worker pool, plan/result caches, batching |
//! | [`net`] | `xtwig-net` | network front end: wire protocol, TCP server over a multi-index catalog, client |
//! | [`datagen`] | `xtwig-datagen` | XMark-like and DBLP-like generators, the Q1–Q15 workload |
//! | [`bench`](mod@bench) | `xtwig-bench` | shared measurement harness behind the figure-reproduction binaries |
//! | [`xray`] | `xtwig-xray` | workspace static analysis: panic paths, lock order, typed errors, purity |

pub use xtwig_bench as bench;
pub use xtwig_btree as btree;
pub use xtwig_core as core;
pub use xtwig_datagen as datagen;
pub use xtwig_net as net;
pub use xtwig_obs as obs;
pub use xtwig_opt as opt;
pub use xtwig_rel as rel;
pub use xtwig_service as service;
pub use xtwig_storage as storage;
pub use xtwig_xml as xml;
pub use xtwig_xray as xray;

pub use xtwig_core::engine::EngineOptions;
pub use xtwig_core::{parse_xpath, QueryAnswer, QueryEngine, Strategy};
pub use xtwig_service::{ServiceAnswer, ServiceError, ServiceOptions, TwigService, UpdateOp};
pub use xtwig_xml::{TwigPattern, XmlForest};

/// Common imports for applications.
pub mod prelude {
    pub use crate::core::engine::{EngineOptions, QueryAnswer, QueryEngine, Strategy};
    pub use crate::core::family::{BoundIndex, FreeIndex, PathIndex, PcSubpathQuery};
    pub use crate::core::parse_xpath;
    pub use crate::service::{ServiceAnswer, ServiceError, ServiceOptions, TwigService, UpdateOp};
    pub use crate::xml::{Axis, NodeId, TwigPattern, XmlForest};
}
