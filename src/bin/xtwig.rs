//! `xtwig` — command-line twig querying over XML files.
//!
//! Loads one or more XML documents (or generates a synthetic dataset),
//! builds the requested index configuration, and evaluates XPath twig
//! queries, printing results, the chosen plan, and cost metrics.
//!
//! ```text
//! xtwig query  <file.xml> '<xpath>' [--strategy RP|DP|Edge|DG|IF|ASR|JI] [--explain] [--shards N]
//! xtwig bench  <file.xml> '<xpath>' [--shards N]   # run against every strategy
//! xtwig stats  <file.xml> [--shards N]             # dataset + index statistics
//! xtwig demo   ['<xpath>'] [--shards N]            # generated XMark data
//! ```
//!
//! `--shards N` builds the indexes with the shard-parallel builder
//! (`QueryEngine::build_parallel`); the resulting indexes are
//! byte-identical to the sequential build, so query results and
//! metrics are unaffected — only the build is parallelized.

use std::collections::BTreeSet;
use std::process::ExitCode;
use xtwig::core::engine::{EngineOptions, QueryEngine, Strategy};
use xtwig::core::family::PathIndex;
use xtwig::core::paths::PathStats;
use xtwig::xml::{parse_document, NodeId, XmlForest};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  xtwig query <file.xml> '<xpath>' [--strategy RP|DP|Edge|DG|IF|ASR|JI] [--explain] [--shards N]\n  xtwig bench <file.xml> '<xpath>' [--shards N]\n  xtwig stats <file.xml> [--shards N]\n  xtwig demo ['<xpath>'] [--shards N]"
    );
    ExitCode::from(2)
}

/// Build-parallelism shard count: delegates to the shared
/// `--shards`/`XTWIG_SHARDS` parser every fig binary uses (default 1 =
/// sequential; an unparsable value exits with an error instead of
/// silently building sequentially).
fn shards_from() -> usize {
    xtwig::bench::shards_from_args()
}

fn strategy_from(label: &str) -> Option<Strategy> {
    label.parse().ok()
}

fn load(path: &str) -> Result<XmlForest, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut forest = XmlForest::new();
    parse_document(&mut forest, &text).map_err(|e| format!("{path}: {e}"))?;
    Ok(forest)
}

fn print_node(forest: &XmlForest, id: u64) {
    let node = NodeId(id);
    let path: Vec<&str> =
        forest.root_path_tags(node).iter().map(|&t| forest.dict().name(t)).collect();
    match forest.value_str(node) {
        Some(v) => println!("  #{id}  /{}  = {v:?}", path.join("/")),
        None => println!("  #{id}  /{}", path.join("/")),
    }
}

fn print_answer(forest: &XmlForest, ids: &BTreeSet<u64>, verbose_limit: usize) {
    println!("{} result(s)", ids.len());
    for &id in ids.iter().take(verbose_limit) {
        print_node(forest, id);
    }
    if ids.len() > verbose_limit {
        println!("  … and {} more", ids.len() - verbose_limit);
    }
}

fn run_query(
    forest: &XmlForest,
    xpath: &str,
    strategy: Strategy,
    explain: bool,
    shards: usize,
) -> ExitCode {
    let twig = match xtwig::parse_xpath(xpath) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let engine = QueryEngine::build_parallel(
        forest,
        EngineOptions { strategies: vec![strategy], pool_pages: 5_120, ..Default::default() },
        shards,
    );
    if explain {
        if let Some(plan) = engine.plan(&twig) {
            println!(
                "plan: {:?} (merge cost {} vs inlj cost {})",
                plan.kind, plan.merge_cost, plan.inlj_cost
            );
            for step in &plan.steps {
                println!(
                    "  step subpath#{} est={} join={:?} probe={}",
                    step.subpath,
                    step.estimate,
                    step.join,
                    step.probe.is_some()
                );
            }
        }
    }
    let a = engine.answer(&twig, strategy);
    print_answer(forest, &a.ids, 20);
    println!(
        "[{} | plan {:?} | {} probes | {} rows | {} logical reads | {:?}]",
        strategy.label(),
        a.plan,
        a.metrics.probes,
        a.metrics.rows_fetched,
        a.metrics.logical_reads,
        a.metrics.elapsed
    );
    ExitCode::SUCCESS
}

fn run_bench(forest: &XmlForest, xpath: &str, shards: usize) -> ExitCode {
    let twig = match xtwig::parse_xpath(xpath) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!("building all seven configurations …");
    let engine = QueryEngine::build_parallel(
        forest,
        EngineOptions { pool_pages: 5_120, ..Default::default() },
        shards,
    );
    println!(
        "{:<8} {:>8} {:>9} {:>9} {:>12} {:>12}  plan",
        "strategy", "results", "probes", "rows", "logical I/O", "time"
    );
    for s in Strategy::ALL {
        let a = engine.answer(&twig, s);
        println!(
            "{:<8} {:>8} {:>9} {:>9} {:>12} {:>11.2?}  {:?}",
            s.label(),
            a.ids.len(),
            a.metrics.probes,
            a.metrics.rows_fetched,
            a.metrics.logical_reads,
            a.metrics.elapsed,
            a.plan
        );
    }
    ExitCode::SUCCESS
}

fn run_stats(forest: &XmlForest, shards: usize) -> ExitCode {
    let stats = PathStats::build(forest);
    println!("documents:            {}", forest.roots().len());
    println!("element/attr nodes:   {}", forest.node_count() - 1);
    println!("max depth:            {}", forest.max_depth());
    println!("distinct tags:        {}", forest.dict().len() - 1);
    println!("distinct schema paths: {}", stats.distinct_schema_paths());
    println!("approx text size:     {:.2} MB", forest.approx_text_bytes() as f64 / 1048576.0);
    let engine = QueryEngine::build_parallel(
        forest,
        EngineOptions {
            strategies: vec![Strategy::RootPaths, Strategy::DataPaths],
            pool_pages: 16_384,
            ..Default::default()
        },
        shards,
    );
    if let Some(rp) = engine.rootpaths() {
        println!("ROOTPATHS: {} rows, {:.2} MB", rp.rows(), rp.space_bytes() as f64 / 1048576.0);
    }
    if let Some(dp) = engine.datapaths() {
        println!("DATAPATHS: {} rows, {:.2} MB", dp.rows(), dp.space_bytes() as f64 / 1048576.0);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { return usage() };
    match cmd.as_str() {
        "query" => {
            let (Some(path), Some(xpath)) = (args.get(1), args.get(2)) else { return usage() };
            let strategy = args
                .iter()
                .position(|a| a == "--strategy")
                .and_then(|i| args.get(i + 1))
                .map(|s| strategy_from(s))
                .unwrap_or(Some(Strategy::RootPaths));
            let Some(strategy) = strategy else {
                eprintln!("unknown strategy; use RP, DP, Edge, DG, IF, ASR, or JI");
                return ExitCode::from(2);
            };
            let explain = args.iter().any(|a| a == "--explain");
            match load(path) {
                Ok(forest) => run_query(&forest, xpath, strategy, explain, shards_from()),
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "bench" => {
            let (Some(path), Some(xpath)) = (args.get(1), args.get(2)) else { return usage() };
            match load(path) {
                Ok(forest) => run_bench(&forest, xpath, shards_from()),
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "stats" => {
            let Some(path) = args.get(1) else { return usage() };
            match load(path) {
                Ok(forest) => run_stats(&forest, shards_from()),
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "demo" => {
            let mut forest = XmlForest::new();
            xtwig::datagen::generate_xmark(
                &mut forest,
                xtwig::datagen::XmarkConfig { scale: 0.005, seed: 1 },
            );
            // The xpath is the first non-flag operand after `demo`,
            // wherever it sits relative to flags (`demo --shards 4
            // '/q'` and `demo '/q' --shards 4` both work). `--shards`
            // consumes its value.
            let mut operands = args[1..].iter().filter({
                let mut skip_value = false;
                move |a| {
                    if skip_value {
                        skip_value = false;
                        return false;
                    }
                    if *a == "--shards" {
                        skip_value = true;
                        return false;
                    }
                    !a.starts_with("--")
                }
            });
            let xpath = operands
                .next()
                .cloned()
                .unwrap_or_else(|| "/site//item[quantity = '2']/location".to_owned());
            println!("generated XMark demo data ({} nodes)\nquery: {xpath}\n", forest.node_count());
            run_bench(&forest, &xpath, shards_from())
        }
        _ => usage(),
    }
}
