//! `xtwig` — command-line twig querying over XML files.
//!
//! Loads one or more XML documents (or generates a synthetic dataset),
//! builds the requested index configuration, and evaluates XPath twig
//! queries, printing results, the chosen plan, and cost metrics.
//!
//! ```text
//! xtwig query   <file.xml> '<xpath>' [--strategy auto|RP|DP|Edge|DG|IF|ASR|JI] [--explain] [--shards N]
//! xtwig query   --index idx.xtwig '<xpath>' [--strategy ...] [--explain]
//! xtwig explain <file.xml> '<xpath>' [--analyze] [--shards N]
//! xtwig explain --index idx.xtwig '<xpath>' [--analyze]
//! xtwig advise  <file.xml> '<xpath>' ['<xpath>' ...] [--shards N]
//! xtwig advise  --index idx.xtwig '<xpath>' ['<xpath>' ...]
//! xtwig build   [<file.xml>] --out idx.xtwig [--strategies RP,DP,...] [--shards N]
//! xtwig bench   <file.xml> '<xpath>' [--shards N]   # run against every strategy
//! xtwig stats   <file.xml> [--shards N]             # dataset + index statistics
//! xtwig demo    ['<xpath>'] [--shards N]            # generated XMark data
//! xtwig serve   <idx.xtwig>... [--index-dir <dir>] [--addr host:port] [--addr-file <path>] [--idle-timeout SECS] [--access-log]
//! xtwig client  <addr> ping|catalog|shutdown|badframe [--timeout SECS]
//! xtwig client  <addr> query <index> '<xpath>' [--strategy auto|RP|...] [--sample]
//! xtwig client  <addr> explain|metrics|stats <index> ['<xpath>']
//! xtwig client  <addr> trace <index> <request_id>
//! xtwig client  <addr> events [--after N] [--max N] [--follow]
//! xtwig top     <addr> [--index NAME] [--interval SECS] [--once]
//! ```
//!
//! `--strategy` defaults to `auto`: the cost-based optimizer ranks the
//! built index configurations per query and executes the cheapest (the
//! resolved pick is printed as `auto→RP` etc.). `xtwig explain` prints
//! the whole ranking — estimated page reads, probes and rows per
//! strategy — next to the chosen merge/INLJ plan, and runs against a
//! persisted index **without rebuilding anything** (statistics and tree
//! shapes are stored in the index catalog). `--analyze` additionally
//! *executes* the query traced under every ranked strategy, printing
//! each pipeline stage's wall time and I/O counters next to the
//! estimate (EXPLAIN ANALYZE).
//!
//! `xtwig advise` closes the feedback loop: it replays the given
//! queries traced under every built strategy and summarizes the
//! engine's calibration log — per-strategy estimate accuracy, the worst
//! misestimates, and which cost-model constant each would rescale. The
//! report is advisory only; nothing is auto-tuned.
//!
//! `--shards N` builds the indexes with the shard-parallel builder
//! (`QueryEngine::build_parallel`); the resulting indexes are
//! byte-identical to the sequential build, so query results and
//! metrics are unaffected — only the build is parallelized.
//!
//! `build` persists the built engine (all seven strategies by default)
//! into a single `.xtwig` file; `query --index` reopens it with **zero
//! rebuild** — the invocation asserts that reattaching allocated no
//! index pages — and answers against the on-disk structures. Omitting
//! `build`'s input file indexes the generated XMark demo dataset.

use std::borrow::Borrow;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;
use xtwig::core::engine::{EngineOptions, QueryEngine, Strategy};
use xtwig::core::family::PathIndex;
use xtwig::core::paths::PathStats;
use xtwig::core::Explanation;
use xtwig::xml::{parse_document, NodeId, XmlForest};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  xtwig query <file.xml> '<xpath>' [--strategy auto|RP|DP|Edge|DG|IF|ASR|JI] [--explain] [--shards N]\n  xtwig query --index idx.xtwig '<xpath>' [--strategy ...] [--explain]\n  xtwig explain <file.xml> '<xpath>' [--analyze] [--shards N]\n  xtwig explain --index idx.xtwig '<xpath>' [--analyze]\n  xtwig advise <file.xml> '<xpath>' ['<xpath>' ...] [--shards N]\n  xtwig advise --index idx.xtwig '<xpath>' ['<xpath>' ...]\n  xtwig build [<file.xml>] --out idx.xtwig [--strategies RP,DP,...] [--shards N]\n  xtwig bench <file.xml> '<xpath>' [--shards N]\n  xtwig stats <file.xml> [--shards N]\n  xtwig demo ['<xpath>'] [--shards N]\n  xtwig serve <idx.xtwig>... [--index-dir <dir>] [--addr host:port] [--addr-file <path>] [--max-in-flight N] [--max-attached N] [--idle-timeout SECS] [--access-log]\n  xtwig client <addr> ping|catalog|shutdown|badframe [--timeout SECS]\n  xtwig client <addr> query <index> '<xpath>' [--strategy auto|RP|DP|Edge|DG|IF|ASR|JI] [--sample]\n  xtwig client <addr> explain <index> '<xpath>'\n  xtwig client <addr> metrics|stats <index>\n  xtwig client <addr> trace <index> <request_id>\n  xtwig client <addr> events [--after N] [--max N] [--follow]\n  xtwig top <addr> [--index NAME] [--interval SECS] [--once]\n  xtwig xray [--root DIR] [--config FILE]"
    );
    ExitCode::from(2)
}

/// Build-parallelism shard count: delegates to the shared
/// `--shards`/`XTWIG_SHARDS` parser every fig binary uses (default 1 =
/// sequential; an unparsable value exits with an error instead of
/// silently building sequentially).
fn shards_from() -> usize {
    xtwig::bench::shards_from_args()
}

fn strategy_from(label: &str) -> Option<Strategy> {
    label.parse().ok()
}

fn load(path: &str) -> Result<XmlForest, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut forest = XmlForest::new();
    parse_document(&mut forest, &text).map_err(|e| format!("{path}: {e}"))?;
    Ok(forest)
}

fn print_node(forest: &XmlForest, id: u64) {
    let node = NodeId(id);
    let path: Vec<&str> =
        forest.root_path_tags(node).iter().map(|&t| forest.dict().name(t)).collect();
    match forest.value_str(node) {
        Some(v) => println!("  #{id}  /{}  = {v:?}", path.join("/")),
        None => println!("  #{id}  /{}", path.join("/")),
    }
}

fn print_answer(forest: &XmlForest, ids: &BTreeSet<u64>, verbose_limit: usize) {
    println!("{} result(s)", ids.len());
    for &id in ids.iter().take(verbose_limit) {
        print_node(forest, id);
    }
    if ids.len() > verbose_limit {
        println!("  … and {} more", ids.len() - verbose_limit);
    }
}

/// `auto→RP`-style label: the requested strategy, annotated with the
/// optimizer's concrete pick when the request was `auto`.
fn answered_label(requested: Strategy, answered: Strategy) -> String {
    if requested.is_auto() {
        format!("auto\u{2192}{}", answered.label())
    } else {
        answered.label().to_owned()
    }
}

/// Renders `xtwig explain`'s ranking: every built strategy with its
/// estimated page reads, probes and rows, cheapest first, plus the
/// chosen relational plan.
fn print_explanation(ex: &Explanation) {
    println!(
        "plan: {:?} ({} steps, merge cost {} vs inlj cost {})",
        ex.plan.kind,
        ex.plan.steps.len(),
        ex.plan.merge_cost,
        ex.plan.inlj_cost
    );
    for step in &ex.plan.steps {
        println!(
            "  step subpath#{} est={} join={:?} probe={}",
            step.subpath,
            step.estimate,
            step.join,
            step.probe.is_some()
        );
    }
    println!(
        "ranked strategies:\n  {:<8} {:>12} {:>10} {:>10}",
        "strategy", "est pages", "est probes", "est rows"
    );
    for (i, c) in ex.choices.iter().enumerate() {
        println!(
            "{} {:<8} {:>12.1} {:>10.0} {:>10.0}{}",
            if i == 0 { "\u{2192}" } else { " " },
            c.strategy.label(),
            c.est_page_reads,
            c.est_probes,
            c.est_rows,
            if i == 0 { "   [chosen by auto]" } else { "" },
        );
    }
}

fn explain_twig<F: Borrow<XmlForest>>(engine: &QueryEngine<F>, xpath: &str) -> ExitCode {
    let twig = match xtwig::parse_xpath(xpath) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match engine.explain(&twig) {
        Ok(ex) => {
            print_explanation(&ex);
            ExitCode::SUCCESS
        }
        Err(e) => {
            // Unknown tag: the result is empty everywhere; nothing to rank.
            println!("{e}; the result is empty under every strategy");
            ExitCode::SUCCESS
        }
    }
}

/// `explain --analyze`: after the estimate ranking, actually execute
/// the query traced under every ranked (= built) strategy and print
/// each span tree — per-stage wall time, logical/physical reads,
/// probes and rows — next to the optimizer's estimate for that
/// strategy, so mis-estimates are visible at a glance.
fn analyze_twig<F: Borrow<XmlForest>>(engine: &QueryEngine<F>, xpath: &str) -> ExitCode {
    let twig = match xtwig::parse_xpath(xpath) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let ex = match engine.explain(&twig) {
        Ok(ex) => ex,
        Err(e) => {
            println!("{e}; the result is empty under every strategy");
            return ExitCode::SUCCESS;
        }
    };
    print_explanation(&ex);
    for choice in &ex.choices {
        let (a, trace) = engine.answer_traced(&twig, choice.strategy);
        // +1 on both sides keeps zero-read queries finite (matches the
        // calibration log's ratio definition).
        let ratio = (a.metrics.physical_reads as f64 + 1.0) / (choice.est_page_reads + 1.0);
        println!(
            "\n=== {} | {} result(s) | est {:.1} pages, actual {} physical reads (ratio {:.2}x) ===",
            choice.strategy.label(),
            a.ids.len(),
            choice.est_page_reads,
            a.metrics.physical_reads,
            ratio,
        );
        print!("{}", trace.render());
    }
    ExitCode::SUCCESS
}

/// `xtwig advise`: replay the given queries traced under every built
/// strategy, then summarize the calibration log the traced runs fed —
/// the optimizer-feedback loop, surfaced as an advisory report.
fn run_advise<F: Borrow<XmlForest>>(engine: &QueryEngine<F>, xpaths: &[String]) -> ExitCode {
    let mut traced = 0usize;
    for xpath in xpaths {
        let twig = match xtwig::parse_xpath(xpath) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{xpath}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if engine.explain(&twig).is_err() {
            // Unknown tag: nothing executes, so no sample to record.
            println!("skipping {xpath}: empty result under every strategy");
            continue;
        }
        for s in Strategy::ALL {
            if engine.has_strategy(s) {
                let _ = engine.answer_traced(&twig, s);
                traced += 1;
            }
        }
    }
    println!("traced {traced} execution(s) over {} quer(y/ies)\n", xpaths.len());
    println!("{}", engine.calibration_log().advise(10));
    ExitCode::SUCCESS
}

fn run_query(
    forest: &XmlForest,
    xpath: &str,
    strategy: Strategy,
    explain: bool,
    shards: usize,
) -> ExitCode {
    let twig = match xtwig::parse_xpath(xpath) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // `auto` ranks among the built configurations, so build them all;
    // a concrete request builds only what it needs.
    let strategies = if strategy.is_auto() { Strategy::ALL.to_vec() } else { vec![strategy] };
    let engine = QueryEngine::build_parallel(
        forest,
        EngineOptions { strategies, pool_pages: 5_120, ..Default::default() },
        shards,
    );
    if explain {
        if let Ok(ex) = engine.explain(&twig) {
            print_explanation(&ex);
        }
    }
    let a = engine.answer(&twig, strategy);
    print_answer(forest, &a.ids, 20);
    println!(
        "[{} | plan {:?} | {} probes | {} rows | {} logical reads | {:?}]",
        answered_label(strategy, a.strategy),
        a.plan,
        a.metrics.probes,
        a.metrics.rows_fetched,
        a.metrics.logical_reads,
        a.metrics.elapsed
    );
    ExitCode::SUCCESS
}

/// `xtwig build`: build the requested strategies and persist them into
/// one index file that `query --index` reopens without rebuilding.
fn run_build(forest: &XmlForest, out: &str, strategies: Vec<Strategy>, shards: usize) -> ExitCode {
    let labels: Vec<&str> = strategies.iter().map(|s| s.label()).collect();
    println!("building {} …", labels.join(", "));
    let started = std::time::Instant::now();
    let engine = QueryEngine::build_parallel(
        forest,
        EngineOptions { strategies, pool_pages: 5_120, ..Default::default() },
        shards,
    );
    let build_elapsed = started.elapsed();
    let started = std::time::Instant::now();
    match engine.persist(out) {
        Ok(report) => {
            println!(
                "wrote {out}: {} pages ({:.2} MB), strategies [{}] \
                 [build {build_elapsed:.2?} | persist {:.2?}]",
                report.file_pages,
                report.file_bytes as f64 / 1048576.0,
                report.strategies.iter().map(|s| s.label()).collect::<Vec<_>>().join(", "),
                started.elapsed(),
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("persist failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `xtwig query --index`: reopen a persisted index and answer against
/// it — zero index-construction work, asserted via the open report's
/// build-phase allocation count.
fn run_query_indexed(index: &str, xpath: &str, strategy: Strategy, explain: bool) -> ExitCode {
    let twig = match xtwig::parse_xpath(xpath) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let started = std::time::Instant::now();
    let (engine, report) = match QueryEngine::open_with_report(index) {
        Ok(opened) => opened,
        Err(e) => {
            eprintln!("cannot open {index}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if report.open_allocations != 0 {
        eprintln!(
            "BUG: open allocated {} index page(s) — reopen must not rebuild",
            report.open_allocations
        );
        return ExitCode::FAILURE;
    }
    println!(
        "opened {index}: {} pages, {} digests verified, 0 pages built, [{}] in {:.2?}",
        report.file_pages,
        report.digests_verified,
        report.strategies.iter().map(|s| s.label()).collect::<Vec<_>>().join(", "),
        started.elapsed(),
    );
    if !engine.has_strategy(strategy) {
        eprintln!("strategy {} was not persisted in {index}", strategy.label());
        return ExitCode::FAILURE;
    }
    if explain {
        if let Ok(ex) = engine.explain(&twig) {
            print_explanation(&ex);
        }
    }
    let a = engine.answer(&twig, strategy);
    print_answer(engine.forest(), &a.ids, 20);
    println!(
        "[{} | plan {:?} | {} probes | {} rows | {} logical reads | {} physical reads | {:?}]",
        answered_label(strategy, a.strategy),
        a.plan,
        a.metrics.probes,
        a.metrics.rows_fetched,
        a.metrics.logical_reads,
        a.metrics.physical_reads,
        a.metrics.elapsed
    );
    ExitCode::SUCCESS
}

/// Reopens a persisted index for a read-only subcommand, asserting the
/// zero-rebuild invariant (shared by `explain --index` and
/// `advise --index`; `query --index` keeps its richer report line).
fn open_index(index: &str) -> Result<QueryEngine, ExitCode> {
    let started = std::time::Instant::now();
    let (engine, report) = match QueryEngine::open_with_report(index) {
        Ok(opened) => opened,
        Err(e) => {
            eprintln!("cannot open {index}: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    if report.open_allocations != 0 {
        eprintln!(
            "BUG: open allocated {} index page(s) — reopen must not rebuild",
            report.open_allocations
        );
        return Err(ExitCode::FAILURE);
    }
    println!(
        "opened {index}: {} pages, 0 pages built, [{}] in {:.2?}",
        report.file_pages,
        report.strategies.iter().map(|s| s.label()).collect::<Vec<_>>().join(", "),
        started.elapsed(),
    );
    Ok(engine)
}

/// `xtwig explain`: compile, rank every built strategy with the cost
/// model, and print estimates next to the chosen plan. Over `--index`
/// this never rebuilds: the statistics and tree shapes come from the
/// persisted catalog (the open report's zero-allocation assertion
/// guards it, as for `query --index`).
fn run_explain_indexed(index: &str, xpath: &str, analyze: bool) -> ExitCode {
    match open_index(index) {
        Ok(engine) if analyze => analyze_twig(&engine, xpath),
        Ok(engine) => explain_twig(&engine, xpath),
        Err(code) => code,
    }
}

fn run_bench(forest: &XmlForest, xpath: &str, shards: usize) -> ExitCode {
    let twig = match xtwig::parse_xpath(xpath) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!("building all seven configurations …");
    let engine = QueryEngine::build_parallel(
        forest,
        EngineOptions { pool_pages: 5_120, ..Default::default() },
        shards,
    );
    println!(
        "{:<8} {:>8} {:>9} {:>9} {:>12} {:>12}  plan",
        "strategy", "results", "probes", "rows", "logical I/O", "time"
    );
    for s in Strategy::ALL {
        let a = engine.answer(&twig, s);
        println!(
            "{:<8} {:>8} {:>9} {:>9} {:>12} {:>11.2?}  {:?}",
            s.label(),
            a.ids.len(),
            a.metrics.probes,
            a.metrics.rows_fetched,
            a.metrics.logical_reads,
            a.metrics.elapsed,
            a.plan
        );
    }
    ExitCode::SUCCESS
}

fn run_stats(forest: &XmlForest, shards: usize) -> ExitCode {
    let stats = PathStats::build(forest);
    println!("documents:            {}", forest.roots().len());
    println!("element/attr nodes:   {}", forest.node_count() - 1);
    println!("max depth:            {}", forest.max_depth());
    println!("distinct tags:        {}", forest.dict().len() - 1);
    println!("distinct schema paths: {}", stats.distinct_schema_paths());
    println!("approx text size:     {:.2} MB", forest.approx_text_bytes() as f64 / 1048576.0);
    let engine = QueryEngine::build_parallel(
        forest,
        EngineOptions {
            strategies: vec![Strategy::RootPaths, Strategy::DataPaths],
            pool_pages: 16_384,
            ..Default::default()
        },
        shards,
    );
    if let Some(rp) = engine.rootpaths() {
        println!("ROOTPATHS: {} rows, {:.2} MB", rp.rows(), rp.space_bytes() as f64 / 1048576.0);
    }
    if let Some(dp) = engine.datapaths() {
        println!("DATAPATHS: {} rows, {:.2} MB", dp.rows(), dp.space_bytes() as f64 / 1048576.0);
    }
    ExitCode::SUCCESS
}

/// `xtwig serve`: register the given `.xtwig` files (and/or every
/// index in `--index-dir`) in a catalog and serve the wire protocol on
/// `--addr` until a client sends `shutdown`. `--addr-file` writes the
/// actually-bound address (port 0 resolves to an ephemeral port) for
/// harnesses that need to discover it.
fn run_serve(args: &[String]) -> ExitCode {
    use xtwig::net::{Server, ServerOptions};
    use xtwig::service::{Catalog, CatalogOptions, ServiceOptions};

    let mut server_options = ServerOptions::default();
    if let Some(n) = flag_value(args, "--idle-timeout") {
        match n.parse::<u64>() {
            Ok(0) => server_options.idle_timeout = None,
            Ok(secs) => server_options.idle_timeout = Some(std::time::Duration::from_secs(secs)),
            Err(_) => {
                eprintln!("--idle-timeout takes seconds (0 = never disconnect), got {n:?}");
                return ExitCode::from(2);
            }
        }
    }
    server_options.access_log = args.iter().any(|a| a == "--access-log");
    let mut options = CatalogOptions::default();
    if let Some(n) = flag_value(args, "--max-attached") {
        match n.parse::<usize>() {
            Ok(n) if n > 0 => options.max_attached = n,
            _ => {
                eprintln!("--max-attached takes a positive integer, got {n:?}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(n) = flag_value(args, "--max-in-flight") {
        match n.parse::<usize>() {
            Ok(n) => options.service = ServiceOptions { max_in_flight: n, ..options.service },
            Err(_) => {
                eprintln!("--max-in-flight takes an integer (0 = unbounded), got {n:?}");
                return ExitCode::from(2);
            }
        }
    }
    let catalog = if let Some(dir) = flag_value(args, "--index-dir") {
        match Catalog::scan_dir(dir, options) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("cannot scan {dir}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        Catalog::new(options)
    };
    for path in operands(args) {
        let name = std::path::Path::new(&path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.clone());
        catalog.register(&name, &path);
    }
    if catalog.is_empty() {
        eprintln!("serve needs at least one index (operands or --index-dir)");
        return ExitCode::from(2);
    }
    let addr = flag_value(args, "--addr").map(String::as_str).unwrap_or("127.0.0.1:7878");
    let server = match Server::bind_with(addr, std::sync::Arc::new(catalog), server_options) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bound = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cannot resolve bound address: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = flag_value(args, "--addr-file") {
        if let Err(e) = std::fs::write(path, format!("{bound}\n")) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("serving on {bound}");
    match server.run() {
        Ok(()) => {
            println!("shutdown complete");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("server error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `xtwig client`: one request against a running server, printed.
/// Every call carries a read timeout so a wedged server produces a
/// failed exit, never a hang (the CI smoke depends on this).
fn run_client(args: &[String]) -> ExitCode {
    use xtwig::net::proto::ErrorCode;
    use xtwig::net::{Client, ClientError};

    let ops = operands(args);
    let (Some(addr), Some(cmd)) = (ops.first(), ops.get(1)) else { return usage() };
    // Finite by default: a wedged server must produce a failed exit,
    // never a hang. `--timeout 0` opts out for long interactive waits.
    let timeout = match flag_value(args, "--timeout").map(|s| s.parse::<u64>()) {
        None => Some(std::time::Duration::from_secs(10)),
        Some(Ok(0)) => None,
        Some(Ok(secs)) => Some(std::time::Duration::from_secs(secs)),
        Some(Err(_)) => {
            eprintln!("--timeout takes seconds (0 = no timeout)");
            return ExitCode::from(2);
        }
    };
    let mut client = match Client::connect_with_timeout(addr.as_str(), timeout) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let fail = |e: ClientError| {
        eprintln!("{e}");
        ExitCode::FAILURE
    };
    match cmd.as_str() {
        "ping" => match client.ping() {
            Ok(()) => {
                println!("pong");
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        },
        "catalog" => match client.catalog() {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        },
        "query" => {
            let (Some(index), Some(xpath)) = (ops.get(2), ops.get(3)) else { return usage() };
            let strategy = flag_value(args, "--strategy").map(String::as_str).unwrap_or("auto");
            let sample = args.iter().any(|a| a == "--sample");
            client.set_sampling(sample);
            match client.query(index, xpath, strategy) {
                Ok(a) => {
                    println!(
                        "{} result(s)  strategy={} plan={} from_cache={} micros={}",
                        a.ids.len(),
                        a.strategy,
                        a.plan,
                        a.from_cache,
                        a.micros
                    );
                    for id in a.ids.iter().take(10) {
                        println!("  #{id}");
                    }
                    if a.ids.len() > 10 {
                        println!("  … and {} more", a.ids.len() - 10);
                    }
                    if sample {
                        println!(
                            "sampled request id: {} (fetch with `xtwig client {addr} trace {index} {}`)",
                            a.request_id, a.request_id
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        "trace" => {
            let (Some(index), Some(id)) = (ops.get(2), ops.get(3)) else { return usage() };
            let Ok(request_id) = id.parse::<u64>() else {
                eprintln!("trace takes a numeric request id, got {id:?}");
                return ExitCode::from(2);
            };
            match client.trace(index, request_id) {
                Ok(text) => {
                    print!("{text}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        "events" => {
            let mut after = match flag_value(args, "--after").map(|s| s.parse::<u64>()) {
                None => 0,
                Some(Ok(n)) => n,
                Some(Err(_)) => {
                    eprintln!("--after takes a sequence number");
                    return ExitCode::from(2);
                }
            };
            let max = match flag_value(args, "--max").map(|s| s.parse::<u32>()) {
                None => 100,
                Some(Ok(n)) => n,
                Some(Err(_)) => {
                    eprintln!("--max takes a count");
                    return ExitCode::from(2);
                }
            };
            let follow = args.iter().any(|a| a == "--follow");
            loop {
                let events = match client.events(after, max) {
                    Ok(events) => events,
                    Err(e) => return fail(e),
                };
                for e in &events {
                    println!("{}", e.render_text());
                    after = after.max(e.seq);
                }
                if !follow {
                    return ExitCode::SUCCESS;
                }
                std::thread::sleep(std::time::Duration::from_secs(1));
            }
        }
        "explain" => {
            let (Some(index), Some(xpath)) = (ops.get(2), ops.get(3)) else { return usage() };
            match client.explain(index, xpath) {
                Ok(text) => {
                    print!("{text}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        "metrics" => {
            let Some(index) = ops.get(2) else { return usage() };
            match client.metrics(index) {
                Ok(text) => {
                    print!("{text}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        "stats" => {
            let Some(index) = ops.get(2) else { return usage() };
            match client.stats(index) {
                Ok(text) => {
                    println!("{text}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        "shutdown" => match client.shutdown() {
            Ok(()) => {
                println!("server acknowledged shutdown");
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        },
        // The deliberately-hostile probe: send bytes that are not a
        // frame and succeed only if the server answers with the typed
        // Malformed error (anything else — hang, close, crash — fails).
        "badframe" => match client.send_raw(b"THIS IS NOT A FRAME") {
            Ok(xtwig::net::Response::Error { code: ErrorCode::Malformed, message }) => {
                println!("typed malformed-frame error: {message}");
                ExitCode::SUCCESS
            }
            Ok(other) => {
                eprintln!("expected a typed Malformed error, got {other:?}");
                ExitCode::FAILURE
            }
            Err(e) => fail(e),
        },
        _ => usage(),
    }
}

/// Sums every sample of a Prometheus family in an exposition text:
/// lines starting `name ` or `name{` (so labeled families aggregate
/// across their label sets). Returns `None` when the family is absent.
fn metric_sum(text: &str, name: &str) -> Option<f64> {
    let mut sum = 0.0;
    let mut seen = false;
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let matches = line
            .strip_prefix(name)
            .map(|rest| rest.starts_with(' ') || rest.starts_with('{'))
            .unwrap_or(false);
        if !matches {
            continue;
        }
        if let Some(value) = line.rsplit(' ').next().and_then(|v| v.parse::<f64>().ok()) {
            sum += value;
            seen = true;
        }
    }
    seen.then_some(sum)
}

/// One sampled snapshot of the counters `xtwig top` differentiates.
#[derive(Default, Clone, Copy)]
struct TopSample {
    completed: f64,
    failed: f64,
    latency_sum: f64,
    cache_hits: f64,
    cache_misses: f64,
    overloaded: f64,
    slow: f64,
}

fn top_sample(text: &str) -> TopSample {
    TopSample {
        completed: metric_sum(text, "xtwig_queries_completed_total").unwrap_or(0.0),
        failed: metric_sum(text, "xtwig_queries_failed_total").unwrap_or(0.0),
        latency_sum: metric_sum(text, "xtwig_query_latency_micros_sum").unwrap_or(0.0),
        cache_hits: metric_sum(text, "xtwig_result_cache_hits_total").unwrap_or(0.0),
        cache_misses: metric_sum(text, "xtwig_result_cache_misses_total").unwrap_or(0.0),
        overloaded: metric_sum(text, "xtwig_overloaded_total").unwrap_or(0.0),
        slow: metric_sum(text, "xtwig_slow_queries_total").unwrap_or(0.0),
    }
}

/// `xtwig top <addr> [--index NAME] [--interval SECS] [--once]` — a
/// live console over the wire: polls `Metrics` + `Events` and prints
/// one block per tick (rates are deltas between ticks; the first tick
/// shows totals since server start). `--once` prints a single snapshot
/// and exits, which is what the CI smoke drives.
fn run_top(args: &[String]) -> ExitCode {
    use xtwig::net::{Client, ClientError};

    let ops = operands(args);
    let Some(addr) = ops.first() else { return usage() };
    let interval = match flag_value(args, "--interval").map(|s| s.parse::<u64>()) {
        None => 2,
        Some(Ok(n)) if n > 0 => n,
        _ => {
            eprintln!("--interval takes a positive number of seconds");
            return ExitCode::from(2);
        }
    };
    let once = args.iter().any(|a| a == "--once");
    let mut client =
        match Client::connect_with_timeout(addr.as_str(), Some(std::time::Duration::from_secs(10)))
        {
            Ok(c) => c,
            Err(e) => {
                eprintln!("cannot connect to {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
    let fail = |e: ClientError| {
        eprintln!("{e}");
        ExitCode::FAILURE
    };
    // Default to the first attached-or-registered index in the catalog.
    let index = match flag_value(args, "--index") {
        Some(name) => name.clone(),
        None => {
            let listing = match client.catalog() {
                Ok(text) => text,
                Err(e) => return fail(e),
            };
            let Some(first) = listing.lines().next().and_then(|l| l.split('\t').next()) else {
                eprintln!("server catalog is empty; pass --index");
                return ExitCode::FAILURE;
            };
            first.to_owned()
        }
    };
    let mut prev: Option<TopSample> = None;
    let mut cursor = 0u64;
    loop {
        let text = match client.metrics(&index) {
            Ok(t) => t,
            Err(e) => return fail(e),
        };
        let cur = top_sample(&text);
        let base = prev.unwrap_or_default();
        let dt = if prev.is_some() { interval as f64 } else { 1.0 };
        let completed = cur.completed - base.completed;
        let lat = cur.latency_sum - base.latency_sum;
        let hits = cur.cache_hits - base.cache_hits;
        let misses = cur.cache_misses - base.cache_misses;
        let lookups = hits + misses;
        println!(
            "=== xtwig top | index {} | {} ===",
            index,
            if prev.is_some() { "last interval" } else { "since server start" }
        );
        println!(
            "qps {:>8.1}   mean latency {:>8.0} us   cache hit {:>5.1}%   failed {}   overloaded {}   slow {}",
            completed / dt,
            if completed > 0.0 { lat / completed } else { 0.0 },
            if lookups > 0.0 { 100.0 * hits / lookups } else { 0.0 },
            cur.failed - base.failed,
            cur.overloaded - base.overloaded,
            cur.slow - base.slow,
        );
        println!(
            "in-flight {}   queue depth {}   events journaled {}   events dropped {}",
            metric_sum(&text, "xtwig_in_flight").unwrap_or(0.0),
            metric_sum(&text, "xtwig_queue_depth").unwrap_or(0.0),
            metric_sum(&text, "xtwig_events_total").unwrap_or(0.0),
            metric_sum(&text, "xtwig_events_dropped_total").unwrap_or(0.0),
        );
        match client.events(cursor, 256) {
            Ok(events) => {
                let skip = events.len().saturating_sub(8);
                for e in events.iter().skip(skip) {
                    println!("  {}", e.render_text());
                }
                if let Some(last) = events.last() {
                    cursor = last.seq;
                }
            }
            Err(e) => return fail(e),
        }
        if once {
            return ExitCode::SUCCESS;
        }
        prev = Some(cur);
        println!();
        std::thread::sleep(std::time::Duration::from_secs(interval));
    }
}

/// Returns the value following `flag`, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1))
}

/// Non-flag operands, in order; flags that take a value consume it.
fn operands(args: &[String]) -> Vec<String> {
    const VALUE_FLAGS: [&str; 15] = [
        "--shards",
        "--strategy",
        "--strategies",
        "--out",
        "--index",
        "--addr",
        "--addr-file",
        "--index-dir",
        "--max-in-flight",
        "--max-attached",
        "--timeout",
        "--idle-timeout",
        "--interval",
        "--after",
        "--max",
    ];
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if VALUE_FLAGS.contains(&a.as_str()) {
            skip = true;
            continue;
        }
        if a.starts_with("--") {
            continue;
        }
        out.push(a.clone());
    }
    out
}

/// Generates the XMark demo dataset used by `demo` and file-less `build`.
fn demo_forest() -> XmlForest {
    let mut forest = XmlForest::new();
    xtwig::datagen::generate_xmark(
        &mut forest,
        xtwig::datagen::XmarkConfig { scale: 0.005, seed: 1 },
    );
    forest
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { return usage() };
    match cmd.as_str() {
        "query" => {
            // `--strategies` is build's plural flag; swallowing it here
            // would silently query the default strategy instead.
            if args.iter().any(|a| a == "--strategies") {
                eprintln!("query takes --strategy <one>, not --strategies");
                return ExitCode::from(2);
            }
            // No --strategy means cost-based selection: the optimizer
            // resolves `auto` per query instead of a hard-coded default.
            let strategy = match flag_value(&args, "--strategy") {
                None => Strategy::Auto,
                Some(s) => match s.parse::<Strategy>() {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::from(2);
                    }
                },
            };
            let explain = args.iter().any(|a| a == "--explain");
            if let Some(index) = flag_value(&args, "--index") {
                let ops = operands(&args[1..]);
                let Some(xpath) = ops.first() else { return usage() };
                return run_query_indexed(index, xpath, strategy, explain);
            }
            let ops = operands(&args[1..]);
            let (Some(path), Some(xpath)) = (ops.first(), ops.get(1)) else { return usage() };
            match load(path) {
                Ok(forest) => run_query(&forest, xpath, strategy, explain, shards_from()),
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "explain" => {
            let analyze = args.iter().any(|a| a == "--analyze");
            if let Some(index) = flag_value(&args, "--index") {
                let ops = operands(&args[1..]);
                let Some(xpath) = ops.first() else { return usage() };
                return run_explain_indexed(index, xpath, analyze);
            }
            let ops = operands(&args[1..]);
            let (Some(path), Some(xpath)) = (ops.first(), ops.get(1)) else { return usage() };
            match load(path) {
                Ok(forest) => {
                    let engine = QueryEngine::build_parallel(
                        &forest,
                        EngineOptions { pool_pages: 5_120, ..Default::default() },
                        shards_from(),
                    );
                    if analyze {
                        analyze_twig(&engine, xpath)
                    } else {
                        explain_twig(&engine, xpath)
                    }
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "advise" => {
            if let Some(index) = flag_value(&args, "--index") {
                let ops = operands(&args[1..]);
                if ops.is_empty() {
                    return usage();
                }
                return match open_index(index) {
                    Ok(engine) => run_advise(&engine, &ops),
                    Err(code) => code,
                };
            }
            let ops = operands(&args[1..]);
            if ops.len() < 2 {
                return usage();
            }
            match load(&ops[0]) {
                Ok(forest) => {
                    let engine = QueryEngine::build_parallel(
                        &forest,
                        EngineOptions { pool_pages: 5_120, ..Default::default() },
                        shards_from(),
                    );
                    run_advise(&engine, &ops[1..])
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "build" => {
            // The singular `--strategy` (what query/bench accept) would
            // otherwise be consumed as an operand-skipping flag and
            // silently build all seven strategies.
            if args.iter().any(|a| a == "--strategy") {
                eprintln!("build takes --strategies <comma,separated|all>, not --strategy");
                return ExitCode::from(2);
            }
            let Some(out) = flag_value(&args, "--out") else {
                eprintln!("build requires --out <idx.xtwig>");
                return ExitCode::from(2);
            };
            let strategies = match flag_value(&args, "--strategies") {
                None => Strategy::ALL.to_vec(),
                Some(list) if list.eq_ignore_ascii_case("all") => Strategy::ALL.to_vec(),
                Some(list) => {
                    let mut parsed = Vec::new();
                    for part in list.split(',') {
                        match strategy_from(part.trim()) {
                            Some(s) => parsed.push(s),
                            None => {
                                eprintln!("unknown strategy {part:?} in --strategies");
                                return ExitCode::from(2);
                            }
                        }
                    }
                    parsed
                }
            };
            let ops = operands(&args[1..]);
            let forest = match ops.first() {
                Some(path) => match load(path) {
                    Ok(f) => f,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => {
                    let f = demo_forest();
                    println!(
                        "no input file: indexing generated XMark demo data ({} nodes)",
                        f.node_count()
                    );
                    f
                }
            };
            run_build(&forest, out, strategies, shards_from())
        }
        "bench" => {
            let (Some(path), Some(xpath)) = (args.get(1), args.get(2)) else { return usage() };
            match load(path) {
                Ok(forest) => run_bench(&forest, xpath, shards_from()),
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "stats" => {
            let Some(path) = args.get(1) else { return usage() };
            match load(path) {
                Ok(forest) => run_stats(&forest, shards_from()),
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "demo" => {
            let forest = demo_forest();
            // The xpath is the first non-flag operand after `demo`,
            // wherever it sits relative to flags (`demo --shards 4
            // '/q'` and `demo '/q' --shards 4` both work).
            let xpath = operands(&args[1..])
                .into_iter()
                .next()
                .unwrap_or_else(|| "/site//item[quantity = '2']/location".to_owned());
            println!("generated XMark demo data ({} nodes)\nquery: {xpath}\n", forest.node_count());
            run_bench(&forest, &xpath, shards_from())
        }
        "serve" => run_serve(&args[1..]),
        "client" => run_client(&args[1..]),
        "top" => run_top(&args[1..]),
        "xray" => run_xray(&args[1..]),
        _ => usage(),
    }
}

/// `xtwig xray [--root DIR] [--config FILE]` — the workspace
/// static-analysis pass (same engine as the `xtwig-xray` binary).
/// Exit codes: 0 clean, 1 findings, 2 config/I-O failure.
fn run_xray(args: &[String]) -> ExitCode {
    let root = PathBuf::from(flag_value(args, "--root").map(String::as_str).unwrap_or("."));
    let config = match flag_value(args, "--config") {
        Some(path) => PathBuf::from(path),
        None => root.join("xray.toml"),
    };
    let cfg = match xtwig::xray::load_config(&config) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("xray: {e}");
            return ExitCode::from(2);
        }
    };
    match xtwig::xray::analyze(&root, &cfg) {
        Ok(report) if report.is_clean() => {
            println!(
                "xray: {} files scanned, 0 findings ({} allow entries in effect)",
                report.files_scanned,
                cfg.allow.len()
            );
            ExitCode::SUCCESS
        }
        Ok(report) => {
            print!("{}", report.render());
            println!(
                "xray: {} files scanned, {} finding(s)",
                report.files_scanned,
                report.findings.len()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xray: {e}");
            ExitCode::from(2)
        }
    }
}
