#!/usr/bin/env bash
# Figure smokes + bench_check regression gates, driven by one table —
# adding a figure to CI is one row here, not a copy-pasted workflow
# step.
#
# Columns: fig binary | baseline snapshot | tolerance | min-matches.
# A `-` baseline means smoke-only: the figure asserts its own
# invariants (byte-identity, zero lost updates, ...) but has no
# recorded snapshot to gate timings against. Every gate passes
# --allow-missing-baseline so a fresh checkout without a snapshot
# stays green; tolerances are generous because quick-mode samples on
# shared runners are noisy — the gates catch lost fast paths, not
# percent-level drift.
set -euo pipefail
cd "$(dirname "$0")/.."

gates="
fig_build      -                   -     -
fig_persist    BENCH_persist.json  25.0  5
fig_mvcc       BENCH_mvcc.json     25.0  3
fig_optimizer  BENCH_opt.json      4.0   20
fig_obs        BENCH_obs.json      25.0  4
fig_net        BENCH_net.json      25.0  3
fig_events     BENCH_events.json   25.0  3
"

while read -r fig baseline tolerance min_matches; do
  [ -n "$fig" ] || continue
  echo "::group::$fig"
  cargo run --release -p xtwig-bench --bin "$fig" -- --quick
  if [ "$baseline" != "-" ]; then
    cargo run --release -p xtwig-bench --bin bench_check -- \
      --baseline "$baseline" \
      --current "target/xtwig-results/$fig.json" \
      --tolerance "$tolerance" \
      --min-matches "$min_matches" \
      --allow-missing-baseline
  fi
  echo "::endgroup::"
done <<EOF
$gates
EOF
