#!/usr/bin/env bash
# End-to-end serving smoke: persist an index, serve it over TCP in the
# background, drive it with the real client (queries including the
# auto strategy, a metrics scrape, one deliberately malformed frame),
# then shut down gracefully. Fails on any nonzero client exit, a
# nonzero server exit, or a leaked server process.
set -euo pipefail
cd "$(dirname "$0")/.."

xtwig=target/release/xtwig
[ -x "$xtwig" ] || { echo "build first: cargo build --release" >&2; exit 1; }

tmp="$(mktemp -d)"
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

mkdir -p "$tmp/idx"
"$xtwig" build --out "$tmp/idx/demo.xtwig"

addr_file="$tmp/addr"
"$xtwig" serve --index-dir "$tmp/idx" --addr 127.0.0.1:0 --addr-file "$addr_file" &
server_pid=$!

# The server writes its bound (ephemeral) address once it is listening.
for _ in $(seq 1 100); do
  [ -s "$addr_file" ] && break
  kill -0 "$server_pid" 2>/dev/null || { echo "server died during startup" >&2; exit 1; }
  sleep 0.1
done
[ -s "$addr_file" ] || { echo "server never wrote $addr_file" >&2; exit 1; }
addr="$(cat "$addr_file")"
echo "serving on $addr (pid $server_pid)"

"$xtwig" client "$addr" ping
"$xtwig" client "$addr" catalog
"$xtwig" client "$addr" query demo "//person/name"                     # default: auto
"$xtwig" client "$addr" query demo "//person/name" --strategy DP
"$xtwig" client "$addr" query demo "/site//item[quantity = '2']/location" --strategy auto
"$xtwig" client "$addr" explain demo "//person/name"
# No `grep -q`: it closes the pipe at first match and the client would
# die on SIGPIPE mid-exposition; plain grep drains the whole stream.
"$xtwig" client "$addr" metrics demo | grep xtwig_queries_submitted_total
"$xtwig" client "$addr" stats demo | grep admission_limit

# Request-scoped observability: a sampled query must print its request
# id, the captured span tree must be retrievable by that id, the event
# journal must be streaming over the wire, and one-shot `top` must
# render a snapshot.
sampled="$("$xtwig" client "$addr" query demo "//person/name" --sample)"
echo "$sampled"
request_id="$(echo "$sampled" | sed -n 's/^sampled request id: \([0-9]*\).*/\1/p')"
[ -n "$request_id" ] || { echo "sampled query printed no request id" >&2; exit 1; }
"$xtwig" client "$addr" trace demo "$request_id" | grep "request $request_id"
"$xtwig" client "$addr" events | grep conn-open
"$xtwig" top "$addr" --once | grep "xtwig top"

# A malformed frame must produce a typed error response — not a hang,
# not a crash (the client subcommand exits 0 only on the typed error).
"$xtwig" client "$addr" badframe

# The server must still be healthy after eating garbage.
"$xtwig" client "$addr" ping

"$xtwig" client "$addr" shutdown

# Graceful exit: the process must be gone shortly after the ack, with
# a zero exit status. A single fixed sleep races shutdown's
# drain-and-join, so poll.
for _ in $(seq 1 100); do
  kill -0 "$server_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
  echo "server leaked: still running 10s after shutdown ack" >&2
  exit 1
fi
rc=0
wait "$server_pid" || rc=$?
[ "$rc" -eq 0 ] || { echo "server exited nonzero: $rc" >&2; exit 1; }
server_pid=""
echo "net smoke OK"
