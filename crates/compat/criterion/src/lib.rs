//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API the bench targets use
//! (`Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! measurement_time, warm_up_time, bench_function, bench_with_input,
//! finish}`, `BenchmarkId`, `Bencher::iter`, `black_box`,
//! `criterion_group!`, `criterion_main!`) as a plain wall-clock harness:
//! each benchmark is warmed up, then timed for the configured number of
//! samples, and min/mean/median are printed.
//!
//! Results are additionally appended as JSON lines to the file named by
//! `$CRITERION_STUB_JSON` (used to record `BENCH_baseline.json`
//! snapshots), and `--quick`/`$CRITERION_STUB_QUICK` caps sampling so CI
//! smoke runs stay fast.

use std::fmt;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group, e.g. `RP/Q4x`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        let mut id = function_name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Top-level harness handle, one per `criterion_group!` function.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var_os("CRITERION_STUB_QUICK").is_some();
        Criterion { quick }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let quick = self.quick;
        println!("\n## bench group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
            quick,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let mut group = self.benchmark_group("default");
        group.run_one(id.into(), f);
        self
    }
}

/// A named group of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    quick: bool,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        self.run_one(id.into(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_one(id.into(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) {
        let (samples, warm_up, measurement) = if self.quick {
            (3.min(self.sample_size), Duration::from_millis(20), Duration::from_millis(60))
        } else {
            (self.sample_size, self.warm_up_time, self.measurement_time)
        };

        // Warm-up: run the routine until the warm-up budget is spent, and
        // learn how many iterations fit in one sample.
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut warm_time = Duration::ZERO;
        while warm_start.elapsed() < warm_up {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            warm_iters += bencher.iters;
            warm_time += bencher.elapsed;
        }
        let per_iter = if warm_iters > 0 && !warm_time.is_zero() {
            warm_time / warm_iters as u32
        } else {
            Duration::from_nanos(1)
        };
        let budget_per_sample = measurement / samples as u32;
        let iters_per_sample =
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u64;

        let mut sample_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            bencher.iters = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            sample_ns.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        sample_ns.sort_by(|a, b| a.total_cmp(b));
        let min = sample_ns[0];
        let median = sample_ns[sample_ns.len() / 2];
        let mean = sample_ns.iter().sum::<f64>() / sample_ns.len() as f64;

        println!(
            "{:<40} min {:>12}  mean {:>12}  median {:>12}  ({} samples x {} iters)",
            format!("{}/{}", self.name, id.id),
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(median),
            samples,
            iters_per_sample,
        );

        if let Ok(path) = std::env::var("CRITERION_STUB_JSON") {
            use std::io::Write;
            if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path)
            {
                let _ = writeln!(
                    file,
                    "{{\"group\":\"{}\",\"bench\":\"{}\",\"min_ns\":{:.1},\"mean_ns\":{:.1},\"median_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}}}",
                    self.name, id.id, min, mean, median, samples, iters_per_sample
                );
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Passed to the benchmark closure; `iter` times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Declares a function that runs each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        std::env::remove_var("CRITERION_STUB_JSON");
        let mut c = Criterion { quick: true };
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("RP", "Q4x");
        assert_eq!(id.id, "RP/Q4x");
    }
}
