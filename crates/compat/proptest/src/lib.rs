//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API used by this
//! workspace's property suites: the `proptest!` macro with an optional
//! `#![proptest_config(..)]` header, `Strategy` with `prop_map` /
//! `prop_filter`, `any::<T>()`, `Just`, integer-range and `.{m,n}`
//! string-pattern strategies, `prop_oneof!`, `collection::{vec,
//! btree_map}`, and the `prop_assert*` macros.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its case number and seed instead of a minimized input), and cases are
//! generated from a fixed per-test seed, so runs are fully
//! deterministic. Set `PROPTEST_STUB_SEED` to explore a different
//! deterministic stream.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, f, whence }
        }

        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { gen: std::rc::Rc::new(move |rng: &mut TestRng| self.generate(rng)) }
        }
    }

    /// Type-erased strategy (`Strategy::boxed`).
    #[derive(Clone)]
    pub struct BoxedStrategy<V> {
        #[allow(clippy::type_complexity)]
        gen: std::rc::Rc<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (self.gen)(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        f: F,
        whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates in a row: {}", self.whence);
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let arm = rng.below(self.arms.len() as u64) as usize;
            self.arms[arm].generate(rng)
        }
    }

    /// Types with a canonical "any value" strategy ([`crate::arbitrary::any`]).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::string::random_char(rng)
        }
    }

    /// Strategy for [`Arbitrary`] types; see [`crate::arbitrary::any`].
    pub struct Any<T> {
        pub(crate) _marker: PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_strategy_for_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy on empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    (self.start as u64).wrapping_add(rng.below(span)) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "strategy on empty range");
                    let span = (end as u64).wrapping_sub(start as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (start as u64).wrapping_add(rng.below(span + 1)) as $t
                }
            }
        )*};
    }

    impl_strategy_for_int_ranges!(u8, u16, u32, u64, usize);

    macro_rules! impl_strategy_for_signed_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy on empty range");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    ((self.start as i64).wrapping_add(rng.below(span) as i64)) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "strategy on empty range");
                    let span = (end as i64).wrapping_sub(start as i64) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    ((start as i64).wrapping_add(rng.below(span + 1) as i64)) as $t
                }
            }
        )*};
    }

    impl_strategy_for_signed_ranges!(i8, i16, i32, i64, isize);

    /// `&str` regex-pattern strategies; only the `.{m,n}` shape the
    /// workspace uses is supported.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }

    macro_rules! impl_strategy_for_tuples {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_strategy_for_tuples!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

    /// Collection size bounds accepted by [`crate::collection`] builders.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        /// Exclusive upper bound.
        pub max: usize,
    }

    impl SizeRange {
        pub(crate) fn sample(&self, rng: &mut TestRng) -> usize {
            if self.max <= self.min + 1 {
                return self.min;
            }
            self.min + rng.below((self.max - self.min) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: r.end() + 1 }
        }
    }

    /// Strategy for `Vec<T>`; see [`crate::collection::vec`].
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>`; see [`crate::collection::btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        pub(crate) key: K,
        pub(crate) value: V,
        pub(crate) size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.sample(rng);
            let mut map = BTreeMap::new();
            // Duplicate keys collapse, so the result can be smaller than
            // `n`; real proptest retries, which no suite here relies on.
            for _ in 0..n {
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{Any, Arbitrary};
    use std::marker::PhantomData;

    /// Canonical strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: PhantomData }
    }
}

pub mod collection {
    use crate::strategy::{BTreeMapStrategy, SizeRange, Strategy, VecStrategy};

    /// Vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Maps with up to `size` entries (duplicate keys collapse).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }
}

pub(crate) mod string {
    use crate::test_runner::TestRng;

    /// Character pool for `.` in patterns and `any::<char>()`: mostly
    /// ASCII with a sprinkle of multi-byte code points so UTF-8 handling
    /// gets exercised.
    pub(crate) fn random_char(rng: &mut TestRng) -> char {
        match rng.below(8) {
            0..=4 => (0x20 + rng.below(0x5F) as u32) as u8 as char, // printable ASCII
            5 => ['\t', '\u{7f}', '\u{a0}', '\u{0}', '\u{1}'][rng.below(5) as usize],
            6 => char::from_u32(0xC0 + rng.below(0x200) as u32).unwrap_or('é'),
            _ => ['中', '文', 'ü', 'ø', '€', '𝕏', '\u{1F600}'][rng.below(7) as usize],
        }
    }

    /// Supports exactly the `.{m,n}` pattern shape used by the suites.
    pub(crate) fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let bounds =
            pattern.strip_prefix(".{").and_then(|rest| rest.strip_suffix('}')).and_then(|body| {
                let (lo, hi) = body.split_once(',')?;
                Some((lo.trim().parse::<usize>().ok()?, hi.trim().parse::<usize>().ok()?))
            });
        let (lo, hi) = bounds.unwrap_or_else(|| {
            panic!(
                "the vendored proptest stub only supports '.{{m,n}}' string patterns, got {pattern:?}"
            )
        });
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..n).map(|_| random_char(rng)).collect()
    }
}

pub mod test_runner {
    /// Per-test configuration; only `cases` is interpreted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for source compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
        /// Accepted for source compatibility; unused.
        pub max_local_rejects: u32,
        /// Accepted for source compatibility; unused.
        pub failure_persistence: Option<()>,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
                max_local_rejects: 65_536,
                failure_persistence: None,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, ..Default::default() }
        }
    }

    /// Deterministic xoshiro256++ stream used for case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn seed_from_u64(seed: u64) -> Self {
            fn splitmix64(state: &mut u64) -> u64 {
                *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = *state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            }
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            TestRng { s }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, bound)` without modulo bias.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            if bound.is_power_of_two() {
                return self.next_u64() & (bound - 1);
            }
            let zone = u64::MAX - (u64::MAX % bound) - 1;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }
    }

    /// Drives one property: `cases` deterministic random inputs.
    pub struct TestRunner {
        config: ProptestConfig,
        base_seed: u64,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig, test_name: &str) -> Self {
            let env_seed = std::env::var("PROPTEST_STUB_SEED")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0x7977_6967_5052_4F50); // "ygigPROP"
                                                   // Per-test offset so sibling properties see distinct streams.
            let mut h = env_seed;
            for b in test_name.bytes() {
                h = h.rotate_left(9) ^ u64::from(b).wrapping_mul(0x100_0000_01B3);
            }
            TestRunner { config, base_seed: h }
        }

        pub fn run(&mut self, test_name: &str, mut case: impl FnMut(&mut TestRng)) {
            for i in 0..self.config.cases {
                let seed = self.base_seed.wrapping_add(u64::from(i).wrapping_mul(0x9E37_79B9));
                let mut rng = TestRng::seed_from_u64(seed);
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest-stub: property '{test_name}' failed on case {i} \
                         (seed {seed:#x}); rerun is deterministic"
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The property-test entry macro. Mirrors real proptest's surface:
/// an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(binding in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, stringify!($name));
                // Strategies are built once; generation happens per case.
                let strategies = ( $($strategy,)+ );
                runner.run(stringify!($name), |rng| {
                    let ( $(ref $arg,)+ ) = strategies;
                    $(
                        let $arg = $crate::strategy::Strategy::generate($arg, rng);
                    )+
                    $body
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assertion macros: plain panics (the stub reports the failing case
/// number and seed from the runner instead of shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_strategy_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::seed_from_u64(5);
        let s = crate::collection::vec(3u8..=9, 2..6);
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&b| (3..=9).contains(&b)));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = crate::test_runner::TestRng::seed_from_u64(6);
        let s = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[Strategy::generate(&s, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn string_pattern_respects_bounds() {
        let mut rng = crate::test_runner::TestRng::seed_from_u64(7);
        for _ in 0..100 {
            let s = Strategy::generate(&".{2,5}", &mut rng);
            let n = s.chars().count();
            assert!((2..=5).contains(&n), "{n} chars in {s:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_end_to_end(xs in crate::collection::vec(any::<u8>(), 0..10), y in 1u64..100) {
            prop_assert!(xs.len() < 10);
            prop_assert!((1..100).contains(&y));
            let doubled: Vec<u16> = xs.iter().map(|&b| u16::from(b) * 2).collect();
            prop_assert_eq!(doubled.len(), xs.len());
        }
    }
}
