//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset of the `rand` 0.8 API used by the workspace's
//! data generators and randomized tests: `rngs::SmallRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and
//! `seq::SliceRandom::{shuffle, choose}`. The generator is
//! xoshiro256++ seeded via splitmix64 — not cryptographic, but fast and
//! statistically solid for workload synthesis, and fully deterministic
//! per seed.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction, deterministic per seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Scalars drawable uniformly from a range. The single blanket
/// [`SampleRange`] impl below keeps integer-literal inference working
/// the same way real rand's does (`arr[rng.gen_range(0..4)]`).
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_uniform<R: RngCore + ?Sized>(
        start: Self,
        end: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                start: Self,
                end: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (end as i64 as u64).wrapping_sub(start as i64 as u64);
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (start as i64 as u64).wrapping_add(reject_sample(rng, span + 1)) as $t
                } else {
                    (start as i64 as u64).wrapping_add(reject_sample(rng, span)) as $t
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, i8, i16, i32, i64, isize);

// u64/usize must not round-trip through i64 (it would corrupt values
// above i64::MAX).
macro_rules! impl_sample_uniform_u64 {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                start: Self,
                end: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (end as u64).wrapping_sub(start as u64);
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (start as u64).wrapping_add(reject_sample(rng, span + 1)) as $t
                } else {
                    (start as u64).wrapping_add(reject_sample(rng, span)) as $t
                }
            }
        }
    )*};
}

impl_sample_uniform_u64!(u64, usize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        start: Self,
        end: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self {
        loop {
            let v = start + f64::sample(rng) * (end - start);
            // Rounding in `start + s * span` can land exactly on `end`
            // even though s < 1; re-sample to keep half-open ranges
            // genuinely exclusive.
            if inclusive || v < end {
                return v;
            }
        }
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range on empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "gen_range on empty range");
        T::sample_uniform(start, end, true, rng)
    }
}

/// Uniform value in `[0, bound)` via rejection sampling (no modulo bias).
fn reject_sample<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same small/fast generator family the real
    /// `SmallRng` uses on 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state is a fixed point; splitmix64 cannot produce
            // four zero words from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher-Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn gen_bool_rate_is_sane() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
