//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the subset of the `parking_lot` 0.12 API the workspace
//! uses — `Mutex`, `RwLock`, and the owned `Arc` read/write guards —
//! implemented over `std::sync` primitives. Like the real crate (and
//! unlike `std`), locks here do not poison: a panic while holding a
//! guard simply releases it.

use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError};

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Non-poisoning mutex with the `parking_lot::Mutex` calling convention
/// (`lock()` returns the guard directly, not a `Result`).
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard { inner: p.into_inner() }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Raw reader-writer lock state: `-1` = exclusive writer, `n >= 0` = `n`
/// active readers. Named to mirror `parking_lot::RawRwLock` so guard type
/// signatures (`ArcRwLockReadGuard<RawRwLock, T>`) line up verbatim.
pub struct RawRwLock {
    state: StdMutex<i64>,
    cond: Condvar,
}

impl RawRwLock {
    fn new() -> Self {
        RawRwLock { state: StdMutex::new(0), cond: Condvar::new() }
    }

    fn lock_shared(&self) {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while *s < 0 {
            s = self.cond.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
        *s += 1;
    }

    fn unlock_shared(&self) {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        *s -= 1;
        if *s == 0 {
            self.cond.notify_all();
        }
    }

    fn lock_exclusive(&self) {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while *s != 0 {
            s = self.cond.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
        *s = -1;
    }

    fn unlock_exclusive(&self) {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        *s = 0;
        self.cond.notify_all();
    }
}

/// Non-poisoning reader-writer lock with owned-guard (`read_arc` /
/// `write_arc`) support.
pub struct RwLock<T: ?Sized> {
    raw: RawRwLock,
    data: UnsafeCell<T>,
}

// SAFETY: same bounds std::sync::RwLock declares — the RawRwLock
// serializes writers and excludes them from readers, so sending the
// lock (T: Send) or sharing it (T: Send + Sync) never hands out
// unsynchronized access to the UnsafeCell contents.
unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
// SAFETY: see above; shared access additionally requires T: Sync
// because read guards alias &T across threads.
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock { raw: RawRwLock::new(), data: UnsafeCell::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.raw.lock_shared();
        RwLockReadGuard { lock: self }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.raw.lock_exclusive();
        RwLockWriteGuard { lock: self }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Owned shared lock: the guard keeps the `Arc` alive, so it has no
    /// lifetime tie to the borrow of `self`.
    pub fn read_arc(self: &Arc<Self>) -> ArcRwLockReadGuard<RawRwLock, T>
    where
        T: Sized,
    {
        self.raw.lock_shared();
        ArcRwLockReadGuard { lock: Arc::clone(self), _raw: PhantomData }
    }

    /// Owned exclusive lock; see [`RwLock::read_arc`].
    pub fn write_arc(self: &Arc<Self>) -> ArcRwLockWriteGuard<RawRwLock, T>
    where
        T: Sized,
    {
        self.raw.lock_exclusive();
        ArcRwLockWriteGuard { lock: Arc::clone(self), _raw: PhantomData }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// Borrowed shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // Safety: shared lock held for the guard's lifetime.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.raw.unlock_shared();
    }
}

/// Borrowed exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // Safety: exclusive lock held for the guard's lifetime.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: exclusive lock held for the guard's lifetime.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.raw.unlock_exclusive();
    }
}

/// Owned shared guard returned by [`RwLock::read_arc`]. The `R` type
/// parameter exists only to match the real `lock_api` signature.
pub struct ArcRwLockReadGuard<R, T> {
    lock: Arc<RwLock<T>>,
    _raw: PhantomData<R>,
}

impl<R, T> Deref for ArcRwLockReadGuard<R, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // Safety: shared lock held for the guard's lifetime.
        unsafe { &*self.lock.data.get() }
    }
}

impl<R, T> Drop for ArcRwLockReadGuard<R, T> {
    fn drop(&mut self) {
        self.lock.raw.unlock_shared();
    }
}

/// Owned exclusive guard returned by [`RwLock::write_arc`].
pub struct ArcRwLockWriteGuard<R, T> {
    lock: Arc<RwLock<T>>,
    _raw: PhantomData<R>,
}

impl<R, T> Deref for ArcRwLockWriteGuard<R, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // Safety: exclusive lock held for the guard's lifetime.
        unsafe { &*self.lock.data.get() }
    }
}

impl<R, T> DerefMut for ArcRwLockWriteGuard<R, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: exclusive lock held for the guard's lifetime.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<R, T> Drop for ArcRwLockWriteGuard<R, T> {
    fn drop(&mut self) {
        self.lock.raw.unlock_exclusive();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_readers_then_writer() {
        let l = Arc::new(RwLock::new(0u32));
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 0);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn arc_guards_outlive_borrow() {
        let guard = {
            let l = Arc::new(RwLock::new(5i32));
            l.read_arc()
        };
        assert_eq!(*guard, 5);
    }

    #[test]
    fn write_arc_excludes_readers() {
        let l = Arc::new(RwLock::new(0usize));
        let hits = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = Arc::clone(&l);
            let hits = Arc::clone(&hits);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let mut g = l.write_arc();
                    *g += 1;
                    hits.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 2000);
        assert_eq!(hits.load(Ordering::Relaxed), 2000);
    }
}
