//! Query observability primitives: span trees with per-stage counters.
//!
//! The engine's traced execution path (`QueryEngine::answer_traced`)
//! builds a [`Trace`] — a tree of [`Span`]s covering each pipeline
//! stage (plan, auto-resolve, per-step index probes and structural
//! joins, materialization) — and records wall time plus I/O counters
//! ([`SpanCounters`]) per stage. The crate is deliberately tiny and
//! std-only: it knows nothing about pools, strategies, or twigs; the
//! caller snapshots whatever counters it owns around each stage and
//! stores the deltas here.
//!
//! A trace renders two ways: [`Trace::render`] is the human table
//! (`explain --analyze`, the slow-query log), and [`Trace::shape`] is
//! a timing-free digest of the tree — stable across runs of the same
//! query, so tests can pin the pipeline's structure without flaking on
//! wall times.
//!
//! Spans nest by open order: [`Trace::begin`] under the innermost open
//! span, [`Trace::end`] closes (and defensively closes any still-open
//! descendants, so a forgotten `end` in an early-return path cannot
//! corrupt the tree).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Counter deltas attributed to one span.
///
/// `logical_reads`/`physical_reads` are buffer-pool deltas; `probes`
/// counts index point probes; `rows` counts match rows fetched (or
/// result ids, for materialization spans).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanCounters {
    /// Buffer-pool page requests (hits + misses).
    pub logical_reads: u64,
    /// Buffer-pool misses (pages read from the backend).
    pub physical_reads: u64,
    /// Index point probes issued.
    pub probes: u64,
    /// Match rows fetched / ids produced.
    pub rows: u64,
}

impl SpanCounters {
    /// Component-wise sum.
    pub fn merge(self, other: SpanCounters) -> SpanCounters {
        SpanCounters {
            logical_reads: self.logical_reads + other.logical_reads,
            physical_reads: self.physical_reads + other.physical_reads,
            probes: self.probes + other.probes,
            rows: self.rows + other.rows,
        }
    }
}

/// Handle returned by [`Trace::begin`], consumed by [`Trace::end`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanToken(usize);

#[derive(Debug, Clone)]
struct SpanNode {
    name: &'static str,
    detail: String,
    started: Instant,
    wall: Duration,
    counters: SpanCounters,
    parent: Option<usize>,
    closed: bool,
}

/// One finished span, flattened out of the tree in pre-order.
#[derive(Debug, Clone)]
pub struct Span {
    /// Static stage name (`"query"`, `"plan"`, `"step"`, …).
    pub name: &'static str,
    /// Dynamic qualifier (strategy label, step number, join kind).
    pub detail: String,
    /// Nesting depth; roots are 0.
    pub depth: usize,
    /// Wall time between `begin` and `end` (zero if never closed).
    pub wall: Duration,
    /// Counter deltas recorded at `end`.
    pub counters: SpanCounters,
}

/// A span tree under construction or finished.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    spans: Vec<SpanNode>,
    open: Vec<usize>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Opens a span nested under the innermost open span.
    pub fn begin(&mut self, name: &'static str, detail: impl Into<String>) -> SpanToken {
        let idx = self.spans.len();
        self.spans.push(SpanNode {
            name,
            detail: detail.into(),
            started: Instant::now(),
            wall: Duration::ZERO,
            counters: SpanCounters::default(),
            parent: self.open.last().copied(),
            closed: false,
        });
        self.open.push(idx);
        SpanToken(idx)
    }

    /// Closes the span, recording its counters and elapsed wall time.
    ///
    /// Any spans opened under it and still open are closed too (with
    /// their own elapsed times and zero counters), so early returns
    /// between `begin`/`end` pairs leave a well-formed tree.
    pub fn end(&mut self, token: SpanToken, counters: SpanCounters) {
        while let Some(&top) = self.open.last() {
            self.open.pop();
            let span = &mut self.spans[top];
            span.wall = span.started.elapsed();
            span.closed = true;
            if top == token.0 {
                span.counters = counters;
                return;
            }
        }
    }

    /// Replaces a span's detail — for labels that depend on work done
    /// inside the span (join kind chosen, rows seen).
    pub fn annotate(&mut self, token: SpanToken, detail: impl Into<String>) {
        self.spans[token.0].detail = detail.into();
    }

    /// True when no span was ever opened.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Finished spans in pre-order (the order they were opened).
    pub fn spans(&self) -> Vec<Span> {
        self.spans
            .iter()
            .map(|s| Span {
                name: s.name,
                detail: s.detail.clone(),
                depth: self.depth_of(s),
                wall: if s.closed { s.wall } else { Duration::ZERO },
                counters: s.counters,
            })
            .collect()
    }

    fn depth_of(&self, span: &SpanNode) -> usize {
        let mut depth = 0;
        let mut at = span.parent;
        while let Some(p) = at {
            depth += 1;
            at = self.spans[p].parent;
        }
        depth
    }

    /// First span (pre-order) with this name.
    pub fn find(&self, name: &str) -> Option<Span> {
        self.spans().into_iter().find(|s| s.name == name)
    }

    /// Component-wise sum of the counters of every span with this name.
    pub fn total(&self, name: &str) -> SpanCounters {
        self.spans()
            .into_iter()
            .filter(|s| s.name == name)
            .fold(SpanCounters::default(), |acc, s| acc.merge(s.counters))
    }

    /// Timing-free digest of the tree: one `name(detail)` line per
    /// span, indented by depth. Identical across runs of the same
    /// query, so tests can pin pipeline structure.
    pub fn shape(&self) -> String {
        let mut out = String::new();
        for s in self.spans() {
            let _ = writeln!(out, "{}{}({})", "  ".repeat(s.depth), s.name, s.detail);
        }
        out
    }

    /// Human-readable table: the span tree with wall time and counters
    /// per stage.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>11} {:>8} {:>8} {:>7} {:>8}",
            "span", "wall", "logical", "physical", "probes", "rows"
        );
        for s in self.spans() {
            let mut label = format!("{}{} {}", "  ".repeat(s.depth), s.name, s.detail);
            if label.len() > 44 {
                label.truncate(43);
                label.push('…');
            }
            let _ = writeln!(
                out,
                "{:<44} {:>9.1}us {:>8} {:>8} {:>7} {:>8}",
                label,
                s.wall.as_secs_f64() * 1e6,
                s.counters.logical_reads,
                s.counters.physical_reads,
                s.counters.probes,
                s.counters.rows,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(logical: u64, physical: u64, probes: u64, rows: u64) -> SpanCounters {
        SpanCounters { logical_reads: logical, physical_reads: physical, probes, rows }
    }

    #[test]
    fn spans_nest_by_open_order() {
        let mut t = Trace::new();
        let q = t.begin("query", "RP");
        let p = t.begin("plan", "");
        t.end(p, counters(1, 0, 0, 0));
        let e = t.begin("execute", "RP");
        let s0 = t.begin("step", "#0");
        t.end(s0, counters(4, 2, 1, 10));
        t.end(e, counters(5, 2, 1, 10));
        t.end(q, counters(6, 2, 1, 10));
        let spans = t.spans();
        assert_eq!(
            spans.iter().map(|s| (s.name, s.depth)).collect::<Vec<_>>(),
            vec![("query", 0), ("plan", 1), ("execute", 1), ("step", 2)]
        );
        assert_eq!(spans[3].counters, counters(4, 2, 1, 10));
    }

    #[test]
    fn end_closes_forgotten_descendants() {
        let mut t = Trace::new();
        let q = t.begin("query", "");
        let _leaked = t.begin("step", "#0"); // never explicitly ended
        t.end(q, counters(1, 1, 1, 1));
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        // The leaked child was closed with zero counters; the parent
        // kept the counters passed to its own end().
        assert_eq!(spans[0].counters, counters(1, 1, 1, 1));
        assert_eq!(spans[1].counters, SpanCounters::default());
        // A new span after the cleanup is a root, not a child.
        let r = t.begin("query", "again");
        t.end(r, SpanCounters::default());
        assert_eq!(t.spans()[2].depth, 0);
    }

    #[test]
    fn shape_is_timing_free_and_stable() {
        let build = || {
            let mut t = Trace::new();
            let q = t.begin("query", "auto\u{2192}RP");
            let s = t.begin("step", "#0 probe");
            // Counters and elapsed time differ between runs…
            t.end(s, counters(rand_like(), 0, 1, 3));
            t.end(q, SpanCounters::default());
            t
        };
        fn rand_like() -> u64 {
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos() as u64
        }
        // …but the shape digest does not.
        assert_eq!(build().shape(), build().shape());
        assert_eq!(build().shape(), "query(auto\u{2192}RP)\n  step(#0 probe)\n");
    }

    #[test]
    fn annotate_rewrites_detail() {
        let mut t = Trace::new();
        let s = t.begin("step", "pending");
        t.annotate(s, "#0 merge-join");
        t.end(s, SpanCounters::default());
        assert_eq!(t.find("step").unwrap().detail, "#0 merge-join");
    }

    #[test]
    fn find_and_total_aggregate_by_name() {
        let mut t = Trace::new();
        let q = t.begin("query", "");
        for i in 0..3 {
            let s = t.begin("step", format!("#{i}"));
            t.end(s, counters(10, i, 1, 5));
        }
        t.end(q, SpanCounters::default());
        assert_eq!(t.find("step").unwrap().detail, "#0");
        assert_eq!(t.total("step"), counters(30, 3, 3, 15));
        assert!(t.find("materialize").is_none());
    }

    #[test]
    fn render_lists_every_span_with_columns() {
        let mut t = Trace::new();
        let q = t.begin("query", "DP");
        t.end(q, counters(7, 3, 2, 41));
        let table = t.render();
        assert!(table.contains("span"));
        assert!(table.contains("physical"));
        assert!(table.contains("query DP"));
        assert!(table.contains(" 41"));
        assert_eq!(table.lines().count(), 2);
    }
}
