//! Shared harness for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md's per-experiment index). They share
//! dataset construction, engine building, repeated-measurement helpers
//! and result output through this module.
//!
//! Scale control: pass `--scale <f>` or set `XTWIG_SCALE`; the default
//! 0.02 keeps every binary under a minute on a laptop while preserving
//! the selectivity ratios of the paper's 100 MB/50 MB datasets.

use std::time::{Duration, Instant};
use xtwig_core::engine::{EngineOptions, QueryEngine, Strategy};
use xtwig_datagen::{
    generate_dblp, generate_xmark, DblpConfig, DblpProfile, XmarkConfig, XmarkProfile,
};
use xtwig_xml::{TwigPattern, XmlForest};

/// Default scale relative to the paper's datasets.
pub const DEFAULT_SCALE: f64 = 0.02;
/// Buffer-pool pages per structure (40 MiB, matching §5.1.1).
pub const POOL_PAGES: usize = 5_120;
/// Warm-cache repetitions, matching the paper's "total query execution
/// time of 10 independent runs with a warm cache".
pub const RUNS: usize = 10;

/// Reads the scale from argv/env.
pub fn scale_from_args() -> f64 {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--scale") {
        if let Some(v) = args.get(pos + 1).and_then(|v| v.parse().ok()) {
            return v;
        }
    }
    std::env::var("XTWIG_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_SCALE)
}

/// Reads the index-build shard count from argv/env (`--shards <n>` or
/// `XTWIG_SHARDS`; default 1 = the sequential build). Every figure
/// binary builds its engine through [`engine`], so the flag applies
/// uniformly; sharded and sequential builds produce byte-identical
/// indexes (`QueryEngine::build_parallel`), so measurements are
/// comparable either way.
///
/// A present-but-unparsable value exits with an error rather than
/// silently falling back to the sequential build — a typo must not
/// produce a "parallel" measurement that secretly ran sequentially.
pub fn shards_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--shards") {
        match args.get(pos + 1).and_then(|v| v.parse().ok()) {
            Some(v) if v >= 1 => return v,
            _ => {
                eprintln!(
                    "--shards requires a positive integer, got {:?}",
                    args.get(pos + 1).map(String::as_str).unwrap_or("<missing>")
                );
                std::process::exit(2);
            }
        }
    }
    match std::env::var("XTWIG_SHARDS") {
        Err(_) => 1,
        Ok(v) => match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("XTWIG_SHARDS must be a positive integer, got {v:?}");
                std::process::exit(2);
            }
        },
    }
}

/// Threads the host makes available — recorded in bench snapshots
/// (`BENCH_build.json`, `BENCH_service.json`) so cross-host comparisons
/// of parallel results stay honest.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map(usize::from).unwrap_or(1)
}

/// Generates the XMark-like dataset at `scale`.
pub fn xmark_forest(scale: f64) -> (XmlForest, XmarkProfile) {
    let mut forest = XmlForest::new();
    let profile = generate_xmark(&mut forest, XmarkConfig { scale, seed: 0xA0C });
    (forest, profile)
}

/// Generates the DBLP-like dataset at `scale`.
pub fn dblp_forest(scale: f64) -> (XmlForest, DblpProfile) {
    let mut forest = XmlForest::new();
    let profile = generate_dblp(&mut forest, DblpConfig { scale, seed: 0xD0B5 });
    (forest, profile)
}

/// Builds an engine with the given strategies and the 40 MiB pool,
/// honoring the `--shards` / `XTWIG_SHARDS` build-parallelism flag
/// (shard count 1 is the sequential build).
pub fn engine<'f>(forest: &'f XmlForest, strategies: &[Strategy]) -> QueryEngine<&'f XmlForest> {
    QueryEngine::build_parallel(
        forest,
        EngineOptions {
            strategies: strategies.to_vec(),
            pool_pages: POOL_PAGES,
            ..Default::default()
        },
        shards_from_args(),
    )
}

/// One measured cell of a results table.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Strategy label (RP, DP, …).
    pub strategy: String,
    /// Query or series label.
    pub label: String,
    /// Result cardinality.
    pub results: u64,
    /// Total wall time of [`RUNS`] warm runs, in microseconds.
    pub total_micros: u64,
    /// Index probes per run.
    pub probes: u64,
    /// Match rows fetched per run.
    pub rows: u64,
    /// Logical page reads per run.
    pub logical_reads: u64,
    /// Plan kind that executed.
    pub plan: String,
}

/// Runs `twig` `RUNS` times warm (after one discarded warm-up run) and
/// aggregates.
pub fn measure(
    engine: &QueryEngine<&XmlForest>,
    twig: &TwigPattern,
    strategy: Strategy,
    label: &str,
) -> Measurement {
    let warmup = engine.answer(twig, strategy);
    let mut total = Duration::ZERO;
    for _ in 0..RUNS {
        let start = Instant::now();
        let a = engine.answer(twig, strategy);
        total += start.elapsed();
        debug_assert_eq!(a.ids.len(), warmup.ids.len());
    }
    Measurement {
        strategy: strategy.to_string(),
        label: label.to_owned(),
        results: warmup.ids.len() as u64,
        total_micros: total.as_micros() as u64,
        probes: warmup.metrics.probes,
        rows: warmup.metrics.rows_fetched,
        logical_reads: warmup.metrics.logical_reads,
        plan: format!("{:?}", warmup.plan),
    }
}

/// Prints a table of measurements grouped by label.
pub fn print_table(title: &str, rows: &[Measurement]) {
    println!("\n### {title}");
    println!(
        "{:<22} {:<8} {:>8} {:>12} {:>9} {:>9} {:>12}  plan",
        "query", "strategy", "results", "t(10 runs)", "probes", "rows", "logical I/O"
    );
    for m in rows {
        println!(
            "{:<22} {:<8} {:>8} {:>9}µs {:>9} {:>9} {:>12}  {}",
            m.label,
            m.strategy,
            m.results,
            m.total_micros,
            m.probes,
            m.rows,
            m.logical_reads,
            m.plan
        );
    }
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

impl Measurement {
    /// Renders the measurement as a pretty-printed JSON object (the
    /// build has no network access for a serde dependency, so the — flat
    /// and stable — schema is emitted by hand).
    pub fn to_json(&self, indent: &str) -> String {
        format!(
            "{indent}{{\n\
             {indent}  \"strategy\": \"{}\",\n\
             {indent}  \"label\": \"{}\",\n\
             {indent}  \"results\": {},\n\
             {indent}  \"total_micros\": {},\n\
             {indent}  \"probes\": {},\n\
             {indent}  \"rows\": {},\n\
             {indent}  \"logical_reads\": {},\n\
             {indent}  \"plan\": \"{}\"\n\
             {indent}}}",
            json_escape(&self.strategy),
            json_escape(&self.label),
            self.results,
            self.total_micros,
            self.probes,
            self.rows,
            self.logical_reads,
            json_escape(&self.plan),
        )
    }
}

/// Writes measurements as JSON under `target/xtwig-results/`.
pub fn dump_json(name: &str, rows: &[Measurement]) {
    let dir = std::path::Path::new("target/xtwig-results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    let body: Vec<String> = rows.iter().map(|m| m.to_json("  ")).collect();
    let json = format!("[\n{}\n]\n", body.join(",\n"));
    let _ = std::fs::write(&path, json);
    println!("\n[results written to {}]", path.display());
}

/// Megabyte formatting helper.
pub fn mb(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}
