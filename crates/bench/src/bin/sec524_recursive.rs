//! §5.2.4: recursive-query overhead for ROOTPATHS and DATAPATHS.
//!
//! "The recursive queries are exactly the same as queries used in Section
//! 5.2.2 except that each query now starts with a `//`. … ROOTPATHS and
//! DATAPATHS have less than 5% overhead for processing queries with a
//! `//` because such queries can be converted into B+-tree prefix match
//! queries on ReverseSchemaPaths."
//!
//! Run with: `cargo run --release -p xtwig-bench --bin sec524_recursive [--scale f]`

use xtwig_bench::{dump_json, engine, measure, scale_from_args, xmark_forest, Measurement};
use xtwig_core::engine::Strategy;
use xtwig_datagen::xmark_queries;

fn main() {
    let scale = scale_from_args();
    println!("# §5.2.4: leading-'//' overhead for RP and DP (scale {scale})");
    let (forest, _) = xmark_forest(scale);
    let e = engine(&forest, &[Strategy::RootPaths, Strategy::DataPaths]);
    let queries = xmark_queries();
    let mut all: Vec<Measurement> = Vec::new();

    println!(
        "\n{:<6} {:<4} {:>12} {:>14} {:>10} {:>9}",
        "query", "idx", "t(10 runs)", "t(10, //-form)", "overhead", "results"
    );
    let mut overheads = Vec::new();
    for id in ["Q4x", "Q5x", "Q6x", "Q7x", "Q8x", "Q9x"] {
        let q = queries.iter().find(|q| q.id == id).unwrap();
        // Rewrite the leading "/site" as "//site" — same results, but the
        // root subpath becomes a suffix probe.
        let recursive_xpath = format!("/{}", q.xpath);
        assert!(recursive_xpath.starts_with("//site"));
        let anchored = q.twig();
        let recursive = xtwig_core::parse_xpath(&recursive_xpath).unwrap();
        for s in [Strategy::RootPaths, Strategy::DataPaths] {
            let base = measure(&e, &anchored, s, id);
            let rec = measure(&e, &recursive, s, &format!("{id}-rec"));
            assert_eq!(base.results, rec.results, "{id}: '//' form changed the answer");
            let overhead =
                (rec.total_micros as f64 - base.total_micros as f64) / base.total_micros as f64;
            println!(
                "{:<6} {:<4} {:>10}µs {:>12}µs {:>9.1}% {:>9}",
                id,
                s.label(),
                base.total_micros,
                rec.total_micros,
                overhead * 100.0,
                base.results
            );
            overheads.push(overhead);
            all.push(base);
            all.push(rec);
        }
    }
    let mean = overheads.iter().sum::<f64>() / overheads.len() as f64;
    println!("\nmean overhead: {:.1}% (paper: < 5%)", mean * 100.0);
    // Wall-clock at micro scale is noisy; the structural guarantee is
    // that probe counts are unchanged, which `measure` captured:
    for pair in all.chunks(2) {
        assert_eq!(pair[0].probes, pair[1].probes, "probe counts must not grow for the '//' form");
    }
    println!(
        "probe counts identical for all 12 query pairs — the '//' form is the same prefix scan."
    );
    dump_json("sec524_recursive", &all);
}
