//! `fig_optimizer` — calibration and accuracy harness for the
//! cost-based strategy selector (no paper counterpart; the ROADMAP's
//! "operationalize Figs. 9–13" item).
//!
//! The run replays the suite corpora — fig1, multi-document books,
//! XMark, DBLP, and the Zipf-skewed corpus — through every built
//! strategy. Per query it records:
//!
//! * the optimizer's ranked **estimated page reads** per strategy,
//! * the **actual cold-cache physical reads** per strategy (caches are
//!   dropped before each measurement, so the counts are deterministic),
//! * whether the optimizer's pick was the measured-best strategy, or
//!   within 2x of it — the accuracy bar `tests/optimizer.rs` asserts
//!   at >= 80% over the same replay.
//!
//! Rows are emitted with `group`/`bench`/`min_ns` fields so
//! `bench_check` can gate them against the committed `BENCH_opt.json`
//! snapshot; **here `min_ns` carries the chosen strategy's cold
//! physical page reads** (a deterministic count, far more stable than
//! nanoseconds), which turns the gate into "the optimizer must not
//! start picking strategies that read grossly more pages".
//!
//! The summary prints per-strategy actual/estimated ratio quartiles —
//! the data behind the calibration constants checked into
//! `crates/opt/src/calibration.rs`. Re-derive them here after changing
//! page layout, codecs, or probe patterns.
//!
//! Flags: `--scale <f>` (default 0.01), `--quick` (scale 0.002 — the
//! CI smoke and the committed snapshot's setting, so the gate compares
//! identical workloads).

use std::collections::BTreeSet;
use xtwig_bench::{dblp_forest, host_parallelism, scale_from_args, xmark_forest, POOL_PAGES};
use xtwig_core::engine::{EngineOptions, QueryEngine};
use xtwig_core::{parse_xpath, Strategy};
use xtwig_datagen::{dblp_queries, generate_skewed, xmark_queries, SkewConfig};
use xtwig_xml::tree::fig1_book_document;
use xtwig_xml::XmlForest;

struct QueryRow {
    corpus: &'static str,
    id: String,
    chosen: Strategy,
    best: Strategy,
    chosen_reads: u64,
    best_reads: u64,
    within2x: bool,
    est: Vec<(Strategy, f64)>,
    actual: Vec<(Strategy, u64)>,
}

fn multi_book_forest() -> XmlForest {
    let mut f = XmlForest::new();
    for i in 0..6 {
        let mut b = f.builder();
        b.open("book");
        b.leaf("title", if i % 2 == 0 { "XML" } else { "SQL" });
        b.open("allauthors");
        b.open("author");
        b.leaf("fn", "jane");
        b.leaf("ln", if i == 3 { "doe" } else { "poe" });
        b.close();
        b.close();
        b.close();
        b.finish();
    }
    f
}

/// Replays `queries` against every strategy of `engine`, cold, and
/// scores the optimizer's pick per query.
fn replay(
    corpus: &'static str,
    engine: &QueryEngine<&XmlForest>,
    queries: &[(String, String)],
    rows: &mut Vec<QueryRow>,
) {
    for (id, xpath) in queries {
        let twig = parse_xpath(xpath).expect("workload query parses");
        let Ok((compiled, plan)) = engine.compile(&twig) else {
            continue; // unknown tag: empty everywhere, nothing to rank
        };
        let choices = engine.rank_strategies(&compiled, &plan);
        assert!(!choices.is_empty(), "all strategies built");
        let chosen = choices[0].strategy;
        let est: Vec<(Strategy, f64)> =
            choices.iter().map(|c| (c.strategy, c.est_page_reads)).collect();

        let mut actual: Vec<(Strategy, u64)> = Vec::new();
        let mut ids: Option<BTreeSet<u64>> = None;
        for s in Strategy::ALL {
            engine.clear_caches(s);
            let a = engine.answer(&twig, s);
            match &ids {
                None => ids = Some(a.ids.clone()),
                Some(expected) => {
                    assert_eq!(&a.ids, expected, "{corpus}/{id}: {s} disagrees");
                }
            }
            actual.push((s, a.metrics.physical_reads));
        }
        let &(best, best_reads) =
            actual.iter().min_by_key(|(s, r)| (*r, strategy_order(*s))).unwrap();
        let chosen_reads = actual.iter().find(|(s, _)| *s == chosen).unwrap().1;
        let within2x = chosen == best || chosen_reads <= 2 * best_reads.max(1);
        rows.push(QueryRow {
            corpus,
            id: id.clone(),
            chosen,
            best,
            chosen_reads,
            best_reads,
            within2x,
            est,
            actual,
        });
    }
}

fn strategy_order(s: Strategy) -> usize {
    Strategy::ALL.iter().position(|x| *x == s).unwrap_or(usize::MAX)
}

fn quartiles(mut v: Vec<f64>) -> (f64, f64, f64) {
    if v.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let at = |q: f64| v[((v.len() - 1) as f64 * q).round() as usize];
    (at(0.25), at(0.5), at(0.75))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if args.iter().any(|a| a == "--scale") || std::env::var_os("XTWIG_SCALE").is_some()
    {
        scale_from_args()
    } else if quick {
        0.002
    } else {
        0.01
    };
    let cores = host_parallelism();
    println!(
        "# fig_optimizer: estimated vs actual page reads, chosen vs best \
         (XMark/DBLP scale {scale}, {cores} core(s))"
    );

    let opts = || EngineOptions { pool_pages: POOL_PAGES, ..Default::default() };
    let q = |id: &str, xpath: &str| (id.to_owned(), xpath.to_owned());
    let mut rows: Vec<QueryRow> = Vec::new();

    // fig1 — the paper's running example.
    {
        let f = fig1_book_document();
        let engine = QueryEngine::build(&f, opts());
        let queries = vec![
            q("intro", "/book[title='XML']//author[fn='jane'][ln='doe']"),
            q("valued_path", "/book/allauthors/author/fn[. = 'jane']"),
            q("twig2", "//author[fn = 'jane'][ln = 'doe']"),
            q("rec_head", "/book[title = 'XML']//section/head"),
            q("suffix", "//section/head"),
            q("rec_author", "/book//author[fn = 'john']"),
            q("tag_only", "//title"),
        ];
        replay("fig1", &engine, &queries, &mut rows);
    }

    // Multi-document books — the persist suite's corpus.
    {
        let f = multi_book_forest();
        let engine = QueryEngine::build(&f, opts());
        let queries = vec![
            q("intro", "/book[title='XML']//author[fn='jane'][ln='doe']"),
            q("sql_title", "/book/title[. = 'SQL']"),
            q("poe", "//author[ln = 'poe']"),
            q("jane_ln", "//author[fn = 'jane']/ln"),
        ];
        replay("books", &engine, &queries, &mut rows);
    }

    // XMark — the full Q1x..Q15x workload (Figs. 7/8).
    {
        let (f, profile) = xmark_forest(scale);
        println!("xmark: {} nodes", profile.nodes);
        let engine = QueryEngine::build(&f, opts());
        let queries: Vec<(String, String)> =
            xmark_queries().iter().map(|bq| (bq.id.to_owned(), bq.xpath.to_owned())).collect();
        replay("xmark", &engine, &queries, &mut rows);
    }

    // DBLP — Q1d..Q3d.
    {
        let (f, profile) = dblp_forest(scale);
        println!("dblp: {} nodes", profile.nodes);
        let engine = QueryEngine::build(&f, opts());
        let queries: Vec<(String, String)> =
            dblp_queries().iter().map(|bq| (bq.id.to_owned(), bq.xpath.to_owned())).collect();
        replay("dblp", &engine, &queries, &mut rows);
    }

    // Zipf-skewed values — the §5.2.3 merge/INLJ crossover ladder.
    {
        let mut f = XmlForest::new();
        let profile = generate_skewed(&mut f, SkewConfig::default());
        let engine = QueryEngine::build(&f, opts());
        let mid = profile.key_counts.len() / 2;
        let queries = vec![
            q("rare", &format!("//rec[key = '{}']/val", profile.rarest_key())),
            q("mid", &format!("//rec[key = 'k{mid}']/val")),
            q("common", &format!("//rec[key = '{}']/val", profile.commonest_key())),
            q("structural", "//rec/val"),
            q("anchored", "/db/rec/key[. = 'k0']"),
        ];
        replay("skew", &engine, &queries, &mut rows);
    }

    // ---- report ---------------------------------------------------------
    println!(
        "\n{:<22} {:>8} {:>8} {:>12} {:>10}  verdict",
        "query", "chosen", "best", "chosen reads", "best reads"
    );
    let mut per_corpus: Vec<(&str, usize, usize)> = Vec::new();
    for r in &rows {
        println!(
            "{:<22} {:>8} {:>8} {:>12} {:>10}  {}",
            format!("{}/{}", r.corpus, r.id),
            r.chosen.label(),
            r.best.label(),
            r.chosen_reads,
            r.best_reads,
            if r.chosen == r.best {
                "best"
            } else if r.within2x {
                "within 2x"
            } else {
                "MISS"
            }
        );
        match per_corpus.iter_mut().find(|(c, _, _)| *c == r.corpus) {
            Some((_, hits, total)) => {
                *hits += usize::from(r.within2x);
                *total += 1;
            }
            None => per_corpus.push((r.corpus, usize::from(r.within2x), 1)),
        }
    }
    let hits: usize = per_corpus.iter().map(|(_, h, _)| h).sum();
    let total: usize = per_corpus.iter().map(|(_, _, t)| t).sum();
    let accuracy = 100.0 * hits as f64 / total.max(1) as f64;
    println!("\nper-corpus accuracy (chosen == best or within 2x of best reads):");
    for (c, h, t) in &per_corpus {
        println!("  {c:<8} {h}/{t}");
    }
    println!("overall: {hits}/{total} = {accuracy:.1}%");

    // Calibration data: actual/estimated ratio quartiles per strategy.
    println!("\nactual/estimated page-read ratios (q25 / median / q75) — the");
    println!("fit behind crates/opt/src/calibration.rs:");
    for s in Strategy::ALL {
        let ratios: Vec<f64> = rows
            .iter()
            .filter_map(|r| {
                let est = r.est.iter().find(|(x, _)| *x == s)?.1;
                let act = r.actual.iter().find(|(x, _)| *x == s)?.1;
                (est > 0.0).then_some(act as f64 / est)
            })
            .collect();
        let (q25, q50, q75) = quartiles(ratios);
        println!("  {:<8} {q25:>6.2} / {q50:>6.2} / {q75:>6.2}", s.label());
    }

    // Hand-rolled JSON (no serde in the offline build); `group`/`bench`/
    // `min_ns` match the bench_check scanner — min_ns carries the
    // chosen strategy's deterministic cold physical reads.
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            let est: Vec<String> = r
                .est
                .iter()
                .map(|(s, e)| format!("{{\"strategy\": \"{s}\", \"est_pages\": {e:.1}}}"))
                .collect();
            let act: Vec<String> = r
                .actual
                .iter()
                .map(|(s, a)| format!("{{\"strategy\": \"{s}\", \"physical_reads\": {a}}}"))
                .collect();
            format!(
                "  {{\n    \"group\": \"fig_optimizer\",\n    \"bench\": \"{}/{}\",\n    \
                 \"min_ns\": {},\n    \"metric\": \"chosen_cold_physical_reads\",\n    \
                 \"chosen\": \"{}\",\n    \"best\": \"{}\",\n    \"best_reads\": {},\n    \
                 \"within2x\": {},\n    \"estimates\": [{}],\n    \"actuals\": [{}]\n  }}",
                r.corpus,
                r.id,
                r.chosen_reads,
                r.chosen,
                r.best,
                r.best_reads,
                r.within2x,
                est.join(", "),
                act.join(", "),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"scale\": {scale},\n  \"host_parallelism\": {cores},\n  \
         \"accuracy_pct\": {accuracy:.1},\n  \"hits\": {hits},\n  \"total\": {total},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        body.join(",\n"),
    );
    let dir = std::path::Path::new("target/xtwig-results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join("fig_optimizer.json");
        let _ = std::fs::write(&path, &json);
        println!("\n[results written to {}]", path.display());
    }

    // The harness is also a gate when run by hand: a sub-80% run means
    // the calibration drifted from the structures it models.
    assert!(
        accuracy >= 80.0,
        "optimizer accuracy {accuracy:.1}% fell below the 80% bar — recalibrate \
         crates/opt/src/calibration.rs against the ratio table above"
    );
}
