//! Figure 10 (plus Figures 7–8): the query workload with measured
//! per-branch result sizes on the generated datasets.
//!
//! For each query this prints the paper's grouping metadata and, for
//! every PCsubpath of the twig's cover, the measured branch cardinality —
//! the analogue of Fig. 7/8's "Result Size Per Branch" column.
//!
//! Run with: `cargo run --release -p xtwig-bench --bin fig10_workload [--scale f]`

use xtwig_bench::{dblp_forest, scale_from_args, xmark_forest};
use xtwig_core::decompose::decompose;
use xtwig_core::paths::PathStats;
use xtwig_datagen::{dblp_queries, xmark_queries, BenchQuery};
use xtwig_xml::XmlForest;

fn report(forest: &XmlForest, stats: &PathStats, queries: &[BenchQuery]) {
    for q in queries {
        let twig = q.twig();
        println!(
            "\n{:<5} ({:?}, {} branches, {} recursion(s))",
            q.id, q.group, q.branches, q.recursions
        );
        println!("      {}", q.xpath);
        match decompose(&twig, forest.dict()) {
            Err(e) => println!("      [empty result: {e}]"),
            Ok(compiled) => {
                for sp in &compiled.subpaths {
                    let names: Vec<&str> =
                        sp.q.tags.iter().map(|&t| forest.dict().name(t)).collect();
                    let card = stats.estimate(&sp.q);
                    println!(
                        "      branch {}{}{} -> {} matches",
                        if sp.q.anchored { "/" } else { "//" },
                        names.join("/"),
                        sp.q.value.as_deref().map(|v| format!(" = '{v}'")).unwrap_or_default(),
                        card
                    );
                }
            }
        }
    }
}

fn main() {
    let scale = scale_from_args();
    println!("# Figure 10 workload summary (scale {scale})");
    println!("\n== XMark queries (Figs. 7-8) ==");
    let (xforest, xprofile) = xmark_forest(scale);
    let xstats = PathStats::build(&xforest);
    println!(
        "dataset: {} nodes, {} distinct schema paths (paper: 902 root paths at 100MB)",
        xprofile.nodes,
        xstats.distinct_schema_paths()
    );
    report(&xforest, &xstats, &xmark_queries());

    println!("\n== DBLP queries (Fig. 7) ==");
    let (dforest, dprofile) = dblp_forest(scale);
    let dstats = PathStats::build(&dforest);
    println!(
        "dataset: {} nodes, {} distinct schema paths (paper: 235 at 50MB)",
        dprofile.nodes,
        dstats.distinct_schema_paths()
    );
    report(&dforest, &dstats, &dblp_queries());
}
