//! `fig_service` — serving-layer scaling figure (no paper counterpart;
//! the ROADMAP's production north star): queries/sec through
//! `xtwig-service` vs. worker count, result cache off and on, plus a
//! batched-execution row, at XMark scale.
//!
//! Every configuration's answers are checked byte-for-byte against
//! sequential execution on the same engine before its row is recorded.
//! JSON lands in `target/xtwig-results/fig_service.json`; the repo's
//! `BENCH_service.json` is a snapshot of that file.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;
use xtwig_bench::{scale_from_args, POOL_PAGES};
use xtwig_core::engine::{EngineOptions, QueryEngine, Strategy};
use xtwig_datagen::{generate_xmark, Dataset, XmarkConfig};
use xtwig_service::{ServiceOptions, SharedEngine, TwigService};
use xtwig_xml::{TwigPattern, XmlForest};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 24; // stream = queries x REPS, round-robin

struct Row {
    mode: &'static str,
    workers: usize,
    cache: bool,
    queries: usize,
    /// Untimed full-stream warm-up passes before measurement.
    warmup: usize,
    /// Timed passes; `elapsed_micros` is the best (min) of these.
    iters: usize,
    elapsed_micros: u128,
    qps: f64,
    plan_hit_rate: f64,
    result_hit_rate: f64,
    memo_hits: u64,
    memo_misses: u64,
}

fn build_engine(forest: &Arc<XmlForest>) -> SharedEngine {
    QueryEngine::build(
        forest.clone(),
        EngineOptions {
            strategies: vec![Strategy::RootPaths, Strategy::DataPaths],
            pool_pages: POOL_PAGES,
            ..Default::default()
        },
    )
}

fn serialize(ids: &BTreeSet<u64>) -> Vec<u8> {
    ids.iter().flat_map(|id| id.to_le_bytes()).collect()
}

/// Hit rate over a counter delta window; 0 when idle.
fn delta_rate(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

fn main() {
    let scale = scale_from_args();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("# fig_service: service throughput vs workers (XMark scale {scale}, {cores} core(s))");
    let mut forest = XmlForest::new();
    let profile = generate_xmark(&mut forest, XmarkConfig { scale, seed: 0xA0C });
    println!("dataset: {} items", profile.items);
    let forest = Arc::new(forest);

    let twigs: Vec<TwigPattern> = xtwig_datagen::xmark_queries()
        .iter()
        .filter(|q| q.dataset == Dataset::Xmark)
        .take(8)
        .map(|q| q.twig())
        .collect();
    let stream: Vec<(TwigPattern, Strategy)> = (0..twigs.len() * REPS)
        .map(|i| {
            let s = if i % 2 == 0 { Strategy::RootPaths } else { Strategy::DataPaths };
            (twigs[i % twigs.len()].clone(), s)
        })
        .collect();

    // Sequential baseline (also the correctness oracle for every row).
    let baseline: Vec<Vec<u8>> = {
        let engine = build_engine(&forest);
        stream.iter().map(|(t, s)| serialize(&engine.answer(t, *s).ids)).collect()
    };

    let mut rows: Vec<Row> = Vec::new();
    for &cache in &[false, true] {
        for &workers in &WORKER_COUNTS {
            let service = TwigService::over(
                build_engine(&forest),
                ServiceOptions {
                    workers,
                    result_cache_capacity: if cache { 4096 } else { 0 },
                    ..Default::default()
                },
            );
            // Warm-up pass (index pools + plan cache), then best-of-3
            // timed passes (min wall time damps scheduler noise, which
            // dominates on small hosts). Cache-hit rates are computed
            // from post-warm-up deltas so they reflect steady state.
            for (t, s) in &stream {
                let _ = service.submit(t, *s).unwrap().wait().unwrap();
            }
            let warm = service.stats();
            let mut elapsed = None;
            for _ in 0..3 {
                let start = Instant::now();
                let tickets: Vec<_> =
                    stream.iter().map(|(t, s)| service.submit(t, *s).unwrap()).collect();
                let answers: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
                let pass = start.elapsed();
                if elapsed.is_none_or(|best| pass < best) {
                    elapsed = Some(pass);
                }
                for (i, a) in answers.iter().enumerate() {
                    assert_eq!(
                        serialize(&a.ids),
                        baseline[i],
                        "{workers}w cache={cache}: answer {i} diverged from sequential"
                    );
                }
            }
            let elapsed = elapsed.unwrap();
            let stats = service.stats();
            let qps = stream.len() as f64 / elapsed.as_secs_f64();
            let plan_rate = delta_rate(
                stats.plan_cache.hits - warm.plan_cache.hits,
                stats.plan_cache.misses - warm.plan_cache.misses,
            );
            let result_rate = delta_rate(
                stats.result_cache.hits - warm.result_cache.hits,
                stats.result_cache.misses - warm.result_cache.misses,
            );
            println!(
                "single  workers={workers} cache={cache:<5} {:>8.0} q/s  plan_hits={plan_rate:.2} result_hits={result_rate:.2}",
                qps,
            );
            rows.push(Row {
                mode: "single",
                workers,
                cache,
                queries: stream.len(),
                warmup: 1,
                iters: 3,
                elapsed_micros: elapsed.as_micros(),
                qps,
                plan_hit_rate: plan_rate,
                result_hit_rate: result_rate,
                memo_hits: stats.memo_hits,
                memo_misses: stats.memo_misses,
            });
            service.shutdown();
        }
    }

    // Batched execution: same stream, strategy-homogeneous chunks of 32.
    {
        let service = TwigService::over(
            build_engine(&forest),
            ServiceOptions { workers: 4, result_cache_capacity: 0, ..Default::default() },
        );
        let rp_stream: Vec<TwigPattern> =
            (0..twigs.len() * REPS).map(|i| twigs[i % twigs.len()].clone()).collect();
        let rp_baseline: Vec<Vec<u8>> = service.with_engine(|e| {
            rp_stream.iter().map(|t| serialize(&e.answer(t, Strategy::RootPaths).ids)).collect()
        });
        let start = Instant::now();
        let tickets: Vec<_> = rp_stream
            .chunks(32)
            .map(|chunk| service.submit_batch(chunk, Strategy::RootPaths).unwrap())
            .collect();
        let answers: Vec<_> = tickets.into_iter().flat_map(|t| t.wait().unwrap()).collect();
        let elapsed = start.elapsed();
        for (i, a) in answers.iter().enumerate() {
            assert_eq!(serialize(&a.ids), rp_baseline[i], "batch answer {i} diverged");
        }
        let stats = service.stats();
        let qps = rp_stream.len() as f64 / elapsed.as_secs_f64();
        println!(
            "batch   workers=4 chunks=32  {:>8.0} q/s  memo_hits={} memo_misses={}",
            qps, stats.memo_hits, stats.memo_misses
        );
        rows.push(Row {
            mode: "batch32",
            workers: 4,
            cache: false,
            queries: rp_stream.len(),
            warmup: 0,
            iters: 1,
            elapsed_micros: elapsed.as_micros(),
            qps,
            plan_hit_rate: stats.plan_cache.hit_rate(),
            result_hit_rate: 0.0,
            memo_hits: stats.memo_hits,
            memo_misses: stats.memo_misses,
        });
        service.shutdown();
    }

    let speedup = |cache: bool, from: usize, to: usize| -> f64 {
        let get = |w| {
            rows.iter()
                .find(|r| r.mode == "single" && r.workers == w && r.cache == cache)
                .map(|r| r.qps)
                .unwrap_or(0.0)
        };
        if get(from) > 0.0 {
            get(to) / get(from)
        } else {
            0.0
        }
    };
    println!(
        "\nspeedup 1->4 workers: cache off {:.2}x, cache on {:.2}x",
        speedup(false, 1, 4),
        speedup(true, 1, 4)
    );
    if cores < 2 {
        println!(
            "(single-core host: worker scaling cannot exceed 1x here; \
             rerun on a multicore machine for the scaling figure)"
        );
    } else if speedup(false, 1, 4) <= 1.0 {
        println!("WARNING: no speedup from 1->4 workers despite {cores} cores");
    }

    // Hand-rolled JSON (no serde in the offline build).
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\n    \"mode\": \"{}\",\n    \"workers\": {},\n    \"result_cache\": {},\n    \
                 \"queries\": {},\n    \"warmup\": {},\n    \"iters\": {},\n    \
                 \"elapsed_micros\": {},\n    \"qps\": {:.1},\n    \
                 \"plan_hit_rate\": {:.4},\n    \"result_hit_rate\": {:.4},\n    \
                 \"memo_hits\": {},\n    \"memo_misses\": {}\n  }}",
                r.mode,
                r.workers,
                r.cache,
                r.queries,
                r.warmup,
                r.iters,
                r.elapsed_micros,
                r.qps,
                r.plan_hit_rate,
                r.result_hit_rate,
                r.memo_hits,
                r.memo_misses
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"scale\": {scale},\n  \"host_parallelism\": {cores},\n  \
         \"speedup_1_to_4_cache_off\": {:.4},\n  \"speedup_1_to_4_cache_on\": {:.4},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        speedup(false, 1, 4),
        speedup(true, 1, 4),
        body.join(",\n"),
    );
    let dir = std::path::Path::new("target/xtwig-results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join("fig_service.json");
        let _ = std::fs::write(&path, &json);
        println!("[results written to {}]", path.display());
    }
}
