//! Figure 11: single-path query time vs. result cardinality, on XMark
//! (panel a) and DBLP (panel b).
//!
//! The paper's shape: Index Fabric and ROOTPATHS are the best and stay
//! nearly flat; DATAPATHS is slightly worse (bigger index); Edge and
//! DG+Edge degrade sharply as selectivity drops because they join per
//! step / join structure against values.
//!
//! Run with: `cargo run --release -p xtwig-bench --bin fig11_single_path [--scale f]`

use xtwig_bench::{
    dblp_forest, dump_json, engine, measure, print_table, scale_from_args, xmark_forest,
    Measurement,
};
use xtwig_core::engine::Strategy;
use xtwig_datagen::{dblp_queries, xmark_queries};

const STRATEGIES: [Strategy; 5] = [
    Strategy::RootPaths,
    Strategy::DataPaths,
    Strategy::Edge,
    Strategy::DataGuideEdge,
    Strategy::IndexFabricEdge,
];

fn main() {
    let scale = scale_from_args();
    println!("# Figure 11: increasing selectivity for single path queries (scale {scale})");
    let mut all = Vec::new();

    let (xforest, _) = xmark_forest(scale);
    let xengine = engine(&xforest, &STRATEGIES);
    let mut rows: Vec<Measurement> = Vec::new();
    for q in xmark_queries().iter().filter(|q| ["Q1x", "Q2x", "Q3x"].contains(&q.id)) {
        let twig = q.twig();
        for s in STRATEGIES {
            rows.push(measure(&xengine, &twig, s, q.id));
        }
    }
    print_table("(a) XMark: Q1x (selective) -> Q3x (unselective)", &rows);
    shape_check(&rows, "XMark");
    all.extend(rows);

    let (dforest, _) = dblp_forest(scale);
    let dengine = engine(&dforest, &STRATEGIES);
    let mut rows: Vec<Measurement> = Vec::new();
    for q in dblp_queries() {
        let twig = q.twig();
        for s in STRATEGIES {
            rows.push(measure(&dengine, &twig, s, q.id));
        }
    }
    print_table("(b) DBLP: Q1d (selective) -> Q3d (unselective)", &rows);
    shape_check(&rows, "DBLP");
    all.extend(rows);

    dump_json("fig11_single_path", &all);
}

/// Paper-shape assertion: at the unselective end, Edge and DG+Edge must
/// probe far more than RP (which stays at one probe per query).
fn shape_check(rows: &[Measurement], dataset: &str) {
    let unselective_label = rows.iter().map(|m| m.label.clone()).max().unwrap();
    let probe = |strategy: Strategy| {
        rows.iter()
            .find(|m| m.strategy == strategy.to_string() && m.label == unselective_label)
            .map(|m| m.probes)
            .unwrap_or(0)
    };
    let rp = probe(Strategy::RootPaths).max(1);
    assert!(
        probe(Strategy::Edge) > 10 * rp,
        "{dataset}: Edge should degrade vs RP ({} vs {rp})",
        probe(Strategy::Edge)
    );
    assert!(probe(Strategy::DataGuideEdge) > rp, "{dataset}: DG+Edge should degrade vs RP");
    println!(
        "[shape ok on {dataset}: at {unselective_label}, probes RP={} DP={} Edge={} DG+Edge={} IF+Edge={}]",
        probe(Strategy::RootPaths),
        probe(Strategy::DataPaths),
        probe(Strategy::Edge),
        probe(Strategy::DataGuideEdge),
        probe(Strategy::IndexFabricEdge)
    );
}
