//! Figure 9: space (MB) of every index configuration on XMark and DBLP.
//!
//! Paper reference (100 MB XMark / 50 MB DBLP):
//!
//! ```text
//! Data set   RP   DP   Edge  DG+Edge  IF+Edge  ASR   JI
//! XMark     119  431   127     169      167    464  822
//! DBLP       80   83   106     133      151     93  318
//! ```
//!
//! The reproduction checks the *shape*: DP ≫ RP on deep XMark but ≈ RP on
//! shallow DBLP; DG+Edge/IF+Edge = Edge plus a path index; JI the largest;
//! ASR between DP and JI on XMark.
//!
//! Run with: `cargo run --release -p xtwig-bench --bin fig09_space [--scale f]`

use xtwig_bench::{dblp_forest, engine, mb, scale_from_args, xmark_forest};
use xtwig_core::engine::Strategy;

fn main() {
    let scale = scale_from_args();
    println!("# Figure 9: index space (scale {scale} of the paper's datasets)\n");
    print!("{:<8} {:>10}", "dataset", "data(MB)");
    for s in Strategy::ALL {
        print!(" {s:>9}");
    }
    println!();
    let mut dp_rp_ratios = Vec::new();
    for (name, forest) in [("XMark", xmark_forest(scale).0), ("DBLP", dblp_forest(scale).0)] {
        let e = engine(&forest, &Strategy::ALL);
        let sizes: Vec<f64> = Strategy::ALL.iter().map(|&s| mb(e.space_bytes(s))).collect();
        println!(
            "{:<8} {:>10.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            name,
            mb(forest.approx_text_bytes()),
            sizes[0],
            sizes[1],
            sizes[2],
            sizes[3],
            sizes[4],
            sizes[5],
            sizes[6]
        );
        // Shape assertions from the paper's table.
        let (rp, dp, edge, dg, iff, asr, ji) =
            (sizes[0], sizes[1], sizes[2], sizes[3], sizes[4], sizes[5], sizes[6]);
        assert!(dp >= rp, "{name}: DP must be at least RP");
        assert!(dg >= edge && iff >= edge, "{name}: DG/IF include Edge");
        assert!(ji > asr, "{name}: JI is larger than ASR");
        dp_rp_ratios.push(dp / rp);
    }
    // "Since XMark data is more deeply nested than DBLP, the space
    // requirements for DATAPATHS increase proportionally" (§5.1.2).
    assert!(
        dp_rp_ratios[0] > dp_rp_ratios[1],
        "DP/RP must grow with nesting depth: XMark {:.2}x vs DBLP {:.2}x",
        dp_rp_ratios[0],
        dp_rp_ratios[1]
    );
    println!(
        "\npaper @100MB XMark: RP 119, DP 431, Edge 127, DG+Edge 169, IF+Edge 167, ASR 464, JI 822"
    );
    println!(
        "paper @50MB DBLP:   RP  80, DP  83, Edge 106, DG+Edge 133, IF+Edge 151, ASR  93, JI 318"
    );
    println!("\nshape checks passed: DP>=RP with a larger gap on deep data, DG/IF>=Edge, JI>ASR");
}
