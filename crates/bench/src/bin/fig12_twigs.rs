//! Figure 12: XMark twig queries without recursion, four panels.
//!
//! * (a) all branches selective, high branch point — Q4x, Q5x
//! * (b) selective + unselective branches — Q6x, Q7x
//! * (c) all branches unselective — Q8x, Q9x
//! * (d) low branch points (the index-nested-loop case) — Q10x, Q11x
//!
//! Paper shape: RP and DP stay well under the baselines at every branch
//! count (orders of magnitude on (b)/(c), where the baselines' per-branch
//! join chains explode); on (d) DP additionally beats RP by exploiting
//! BoundIndex probes (INLJ), which ROOTPATHS cannot do.
//!
//! Run with: `cargo run --release -p xtwig-bench --bin fig12_twigs [--scale f] [--panel a|b|c|d]`

use xtwig_bench::{
    dump_json, engine, measure, print_table, scale_from_args, xmark_forest, Measurement,
};
use xtwig_core::engine::Strategy;
use xtwig_datagen::xmark_queries;

const STRATEGIES: [Strategy; 5] = [
    Strategy::RootPaths,
    Strategy::DataPaths,
    Strategy::Edge,
    Strategy::DataGuideEdge,
    Strategy::IndexFabricEdge,
];

fn main() {
    let scale = scale_from_args();
    let args: Vec<String> = std::env::args().collect();
    let only_panel = args
        .iter()
        .position(|a| a == "--panel")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_owned());
    println!("# Figure 12: twig queries without recursion (scale {scale})");

    // The single-branch baseline the paper adds to each panel: the first
    // branch common to Q4x/Q5x.
    let single_selective = "/site/people/person/profile/@income[. = '46814.17']";
    let single_unselective = "/site/people/person/profile/@income[. = '9876.00']";

    let (forest, _) = xmark_forest(scale);
    let e = engine(&forest, &STRATEGIES);
    let mut all = Vec::new();

    #[allow(clippy::type_complexity)]
    let panels: [(&str, &str, Vec<(&str, String)>); 4] = [
        (
            "a",
            "(a) selective branches (1 -> 3 branches)",
            vec![("1-branch", single_selective.to_owned())],
        ),
        (
            "b",
            "(b) selective and unselective branches",
            vec![("1-branch", single_unselective.to_owned())],
        ),
        ("c", "(c) unselective branches", vec![("1-branch", single_unselective.to_owned())]),
        ("d", "(d) low branch points", Vec::new()),
    ];
    let panel_queries: [(&str, [&str; 2]); 4] = [
        ("a", ["Q4x", "Q5x"]),
        ("b", ["Q6x", "Q7x"]),
        ("c", ["Q8x", "Q9x"]),
        ("d", ["Q10x", "Q11x"]),
    ];

    let queries = xmark_queries();
    for ((panel, title, extra), (_, ids)) in panels.into_iter().zip(panel_queries) {
        if let Some(p) = &only_panel {
            if p != panel {
                continue;
            }
        }
        let mut rows: Vec<Measurement> = Vec::new();
        for (label, xpath) in &extra {
            let twig = xtwig_core::parse_xpath(xpath).unwrap();
            for s in STRATEGIES {
                rows.push(measure(&e, &twig, s, label));
            }
        }
        for id in ids {
            let q = queries.iter().find(|q| q.id == id).unwrap();
            let twig = q.twig();
            for s in STRATEGIES {
                rows.push(measure(&e, &twig, s, q.id));
            }
        }
        print_table(title, &rows);
        shape_check(panel, &rows);
        all.extend(rows);
    }
    dump_json("fig12_twigs", &all);
}

fn shape_check(panel: &str, rows: &[Measurement]) {
    let last_label = rows.last().unwrap().label.clone();
    let get = |strategy: Strategy| {
        rows.iter().find(|m| m.strategy == strategy.to_string() && m.label == last_label).unwrap()
    };
    let rp = get(Strategy::RootPaths);
    let dp = get(Strategy::DataPaths);
    let edge = get(Strategy::Edge);
    assert!(
        edge.probes > 5 * rp.probes.max(1),
        "panel {panel}: Edge probes {} should dwarf RP {}",
        edge.probes,
        rp.probes
    );
    if panel == "d" {
        assert_eq!(dp.plan, "IndexNestedLoop", "panel d is the INLJ case");
        assert!(
            dp.rows <= rp.rows,
            "panel d: DP INLJ should fetch no more rows than RP merge ({} vs {})",
            dp.rows,
            rp.rows
        );
        println!(
            "[shape ok: Q11x DP={}µs ({} rows via INLJ) vs RP={}µs ({} rows via merge), Edge {} probes]",
            dp.total_micros, dp.rows, rp.total_micros, rp.rows, edge.probes
        );
    } else {
        println!(
            "[shape ok on panel {panel}: probes RP={} DP={} Edge={} | plans RP={} DP={}]",
            rp.probes, dp.probes, edge.probes, rp.plan, dp.plan
        );
    }
}
