//! `fig_events` — the observability tax (no paper counterpart; PR-10's
//! gate): what the event journal and request sampling add to the
//! serving path.
//!
//! The tentpole claim is that observability is free until asked for:
//! the journal is a bounded ring behind one short mutex, and trace
//! capture happens only for sampled or slow requests. Timing rows:
//!
//! * `exec/plain` — `TwigService::execute_with` under a default
//!   (unsampled) request context, result cache off: the exact dispatch
//!   path a connection thread runs per query. This must sit within
//!   noise of the pre-journal dispatch cost.
//! * `exec/sampled` — the same call with `sample = true`: pays a full
//!   traced re-execution plus a slow-ring record. The gap to
//!   `exec/plain` is the *opt-in* price of one sampled request.
//! * `events/emit` — one journal append (lock, push, counter): the
//!   inline cost every connection/maintenance event pays.
//! * `events/since` — one cursor read of a full 256-entry ring: what
//!   an `Events` wire request costs the server.
//!
//! Rows carry `group`/`bench`/`min_ns` for `bench_check` gating
//! against `BENCH_events.json`.
//!
//! Flags: `--scale <f>` (default 0.01), `--quick` (smaller scale and
//! fewer iterations — the CI smoke).

use std::time::{Duration, Instant};
use xtwig_bench::{host_parallelism, scale_from_args, xmark_forest, POOL_PAGES};
use xtwig_core::engine::EngineOptions;
use xtwig_core::{parse_xpath, QueryEngine, Strategy};
use xtwig_service::{Event, EventJournal, RequestCtx, ServiceOptions, TwigService};

struct Row {
    bench: String,
    min_ns: u128,
    mean_ns: u128,
}

/// Per-iteration wall times of `iters` runs of `f` after `warmup`
/// untimed runs (caches hot, branch predictors settled), as (min, mean).
fn measure(warmup: usize, iters: usize, mut f: impl FnMut()) -> (Duration, Duration) {
    for _ in 0..warmup {
        f();
    }
    let mut min = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        let t = start.elapsed();
        min = min.min(t);
        total += t;
    }
    (min, total / iters as u32)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if args.iter().any(|a| a == "--scale") || std::env::var_os("XTWIG_SCALE").is_some()
    {
        scale_from_args()
    } else if quick {
        0.002
    } else {
        0.01
    };
    let iters = if quick { 60 } else { 500 };
    let warmup = if quick { 5 } else { 25 };
    let cores = host_parallelism();
    println!(
        "# fig_events: journal + sampling overhead on the serving path \
         (XMark scale {scale}, {cores} core(s))"
    );

    let (forest, profile) = xmark_forest(scale);
    println!("dataset: {} nodes", profile.nodes);
    let engine = QueryEngine::build(
        std::sync::Arc::new(forest),
        EngineOptions {
            strategies: vec![Strategy::RootPaths, Strategy::DataPaths],
            pool_pages: POOL_PAGES,
            ..Default::default()
        },
    );
    // Result cache off so every sample is a real execution; slow
    // threshold unset so `exec/plain` never captures a trace.
    let svc = TwigService::over(
        engine,
        ServiceOptions { workers: 1, result_cache_capacity: 0, ..Default::default() },
    );
    let twig = parse_xpath("//person/name").expect("query parses");
    let expected = svc.execute(&twig, Strategy::RootPaths).expect("warm answer").ids.len();
    println!("query //person/name: {expected} result(s)");

    let mut rows: Vec<Row> = Vec::new();
    let mut record = |bench: String, min: Duration, mean: Duration| {
        println!(
            "{bench:<16} min {:>9.1} us   mean {:>9.1} us",
            min.as_secs_f64() * 1e6,
            mean.as_secs_f64() * 1e6
        );
        rows.push(Row { bench, min_ns: min.as_nanos(), mean_ns: mean.as_nanos() });
    };

    // The unsampled dispatch path — what every ordinary wire query pays.
    let plain_ctx = RequestCtx::default();
    let (min, mean) = measure(warmup, iters, || {
        let a = svc.execute_with(&twig, Strategy::RootPaths, &plain_ctx).expect("execute");
        assert_eq!(a.ids.len(), expected);
    });
    record("exec/plain".into(), min, mean);

    // The opt-in path: sample=true re-executes traced and records into
    // the slow ring, so this row prices one sampled request end to end.
    let mut next_id = 1u64;
    let (min, mean) = measure(warmup, iters, || {
        let ctx = RequestCtx { request_id: next_id, sample: true, peer: "bench:0".to_owned() };
        next_id += 1;
        let a = svc.execute_with(&twig, Strategy::RootPaths, &ctx).expect("execute sampled");
        assert_eq!(a.ids.len(), expected);
    });
    record("exec/sampled".into(), min, mean);
    assert!(
        svc.find_trace(next_id - 1).is_some(),
        "sampled request must leave a retrievable trace"
    );

    // One journal append: the inline cost of every emitted event.
    let journal = EventJournal::new(256);
    let (min, mean) = measure(warmup * 100, iters * 100, || {
        journal.emit(Event::SlowQuery {
            query: "//person/name".to_owned(),
            micros: 1,
            request_id: 1,
            peer: "bench:0".to_owned(),
        });
    });
    record("events/emit".into(), min, mean);

    // One cursor read over a full ring: an `Events` request's server cost.
    let (min, mean) = measure(warmup, iters, || {
        let page = journal.since(0, 256);
        assert!(!page.is_empty());
    });
    record("events/since".into(), min, mean);

    // Hand-rolled JSON (no serde in the offline build); `group`/`bench`/
    // `min_ns` match the bench_check scanner.
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\n    \"group\": \"fig_events\",\n    \"bench\": \"{}\",\n    \
                 \"min_ns\": {},\n    \"mean_ns\": {},\n    \"iters\": {iters},\n    \
                 \"warmup\": {warmup}\n  }}",
                r.bench, r.min_ns, r.mean_ns
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"scale\": {scale},\n  \"host_parallelism\": {cores},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        body.join(",\n"),
    );
    let out = std::path::Path::new("target/xtwig-results");
    if std::fs::create_dir_all(out).is_ok() {
        let path = out.join("fig_events.json");
        let _ = std::fs::write(&path, &json);
        println!("[results written to {}]", path.display());
    }
}
