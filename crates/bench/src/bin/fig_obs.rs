//! `fig_obs` — tracing-overhead figure (no paper counterpart; the
//! ROADMAP's observability item): what span tracing costs when it is
//! on, and that it costs nothing when it is off.
//!
//! The engine keeps two copies of the executor: `answer_compiled_with`
//! runs the original, byte-untouched `execute`, and
//! `answer_compiled_traced` runs the instrumented twin that opens a
//! span per pipeline stage. Tracing-off overhead is therefore zero *by
//! construction* — the untraced path contains no tracing branches at
//! all — and this figure measures the remaining question: the cost of
//! the traced path itself, which `explain --analyze`, the slow-query
//! log, and `advise` all pay.
//!
//! Both workloads interleave off/on samples (so frequency scaling and
//! cache state hit both sides equally) and assert after every pair
//! that the traced answer is identical — same result ids, same probe
//! and row counts — to the untraced one.
//!
//! Rows are emitted with `group`/`bench`/`min_ns` fields so
//! `bench_check` can gate them against the committed `BENCH_obs.json`
//! snapshot (`--allow-missing-baseline` keeps CI green until one is
//! recorded).
//!
//! Flags: `--scale <f>` (default 0.02), `--quick` (smaller scale and
//! fewer iterations — the CI smoke).

use std::time::{Duration, Instant};
use xtwig_bench::{engine, host_parallelism, scale_from_args, xmark_forest};
use xtwig_core::engine::Strategy;
use xtwig_core::{parse_xpath, Trace};

struct Row {
    bench: String,
    min_ns: u128,
    mean_ns: u128,
}

fn min_mean(samples: &[Duration]) -> (Duration, Duration) {
    let min = samples.iter().copied().min().unwrap_or(Duration::ZERO);
    let total: Duration = samples.iter().sum();
    (min, total / samples.len().max(1) as u32)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if args.iter().any(|a| a == "--scale") || std::env::var_os("XTWIG_SCALE").is_some()
    {
        scale_from_args()
    } else if quick {
        0.002
    } else {
        0.02
    };
    let iters = if quick { 40 } else { 200 };
    let warmup = if quick { 5 } else { 20 };
    let cores = host_parallelism();
    println!("# fig_obs: span-tracing overhead (XMark scale {scale}, {cores} core(s))");

    let (forest, profile) = xmark_forest(scale);
    println!("dataset: {} nodes", profile.nodes);
    // One scan-family and one walk-family strategy: the Edge family's
    // deferred-counter drain is the traced path's most intrusive edit,
    // so it must be under the overhead measurement.
    let engine = engine(&forest, &[Strategy::RootPaths, Strategy::Edge]);

    let workloads: [(&str, &str, Strategy); 2] = [
        ("single_path", "//person/name", Strategy::RootPaths),
        ("twig", "/site//item[quantity = '2']/location", Strategy::Edge),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for (name, xpath, strategy) in workloads {
        let twig = parse_xpath(xpath).expect("workload query parses");
        let (compiled, plan) = engine.compile(&twig).expect("workload tags exist");

        for _ in 0..warmup {
            let _ = engine.answer_compiled_with(&compiled, &plan, strategy, None);
            let mut trace = Trace::new();
            let _ = engine.answer_compiled_traced(&compiled, &plan, strategy, None, &mut trace);
        }

        let mut off: Vec<Duration> = Vec::with_capacity(iters);
        let mut on: Vec<Duration> = Vec::with_capacity(iters);
        for _ in 0..iters {
            let start = Instant::now();
            let a = engine.answer_compiled_with(&compiled, &plan, strategy, None);
            off.push(start.elapsed());

            let mut trace = Trace::new();
            let start = Instant::now();
            let b = engine.answer_compiled_traced(&compiled, &plan, strategy, None, &mut trace);
            on.push(start.elapsed());

            // Tracing must be purely observational.
            assert_eq!(a.ids, b.ids, "{name}: traced ids diverged");
            assert_eq!(a.metrics.probes, b.metrics.probes, "{name}: traced probes diverged");
            assert_eq!(
                a.metrics.rows_fetched, b.metrics.rows_fetched,
                "{name}: traced rows diverged"
            );
            assert!(!trace.is_empty(), "{name}: traced run produced no spans");
        }

        let (off_min, off_mean) = min_mean(&off);
        let (on_min, on_mean) = min_mean(&on);
        let overhead =
            (on_mean.as_secs_f64() - off_mean.as_secs_f64()) / off_mean.as_secs_f64() * 100.0;
        println!(
            "{name:<12} [{}] off min {:>9.1} us mean {:>9.1} us | on min {:>9.1} us mean {:>9.1} us | tracing-on overhead {overhead:+.1}%",
            strategy.label(),
            off_min.as_secs_f64() * 1e6,
            off_mean.as_secs_f64() * 1e6,
            on_min.as_secs_f64() * 1e6,
            on_mean.as_secs_f64() * 1e6,
        );
        rows.push(Row {
            bench: format!("{name}/off"),
            min_ns: off_min.as_nanos(),
            mean_ns: off_mean.as_nanos(),
        });
        rows.push(Row {
            bench: format!("{name}/on"),
            min_ns: on_min.as_nanos(),
            mean_ns: on_mean.as_nanos(),
        });
    }
    println!(
        "tracing-off overhead: 0% by construction — the untraced path is the \
         original `execute`, with no tracing branches compiled into it"
    );

    // Hand-rolled JSON (no serde in the offline build); `group`/`bench`/
    // `min_ns` match the bench_check scanner.
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\n    \"group\": \"fig_obs\",\n    \"bench\": \"{}\",\n    \
                 \"min_ns\": {},\n    \"mean_ns\": {},\n    \"iters\": {iters},\n    \
                 \"warmup\": {warmup}\n  }}",
                r.bench, r.min_ns, r.mean_ns
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"scale\": {scale},\n  \"host_parallelism\": {cores},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        body.join(",\n"),
    );
    let dir = std::path::Path::new("target/xtwig-results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join("fig_obs.json");
        let _ = std::fs::write(&path, &json);
        println!("[results written to {}]", path.display());
    }
}
