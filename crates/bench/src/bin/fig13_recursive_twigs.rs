//! Figure 13: XMark twigs with a `//` branch point, vs. ASR and Join
//! Indices.
//!
//! `/site//item…` expands to six distinct schema paths (one per region),
//! so ASR and JI must open one relation (pair) per path per branch, while
//! DATAPATHS answers each branch with a single unified-index probe —
//! "the cost of accessing the index is logarithmic to the data size, but
//! the cost of accessing many small indices is linear to the number of
//! indices" (§5.2.6). DP beats ASR/JI by up to ~5x in the paper;
//! ROOTPATHS loses when INLJ is the right plan (it has no BoundIndex).
//!
//! Run with: `cargo run --release -p xtwig-bench --bin fig13_recursive_twigs [--scale f]`

use xtwig_bench::{
    dump_json, engine, measure, print_table, scale_from_args, xmark_forest, Measurement,
};
use xtwig_core::engine::Strategy;
use xtwig_datagen::xmark_queries;

const STRATEGIES: [Strategy; 4] =
    [Strategy::RootPaths, Strategy::DataPaths, Strategy::Asr, Strategy::JoinIndex];

fn main() {
    let scale = scale_from_args();
    println!("# Figure 13: queries with a '//' branch point (scale {scale})");
    let (forest, _) = xmark_forest(scale);
    let e = engine(&forest, &STRATEGIES);
    let queries = xmark_queries();
    let mut all: Vec<Measurement> = Vec::new();

    let panels = [
        ("(a) selective and unselective branches", ["Q12x", "Q13x"]),
        ("(b) unselective branches", ["Q14x", "Q15x"]),
    ];
    for (title, ids) in panels {
        let mut rows = Vec::new();
        for id in ids {
            let q = queries.iter().find(|q| q.id == id).unwrap();
            let twig = q.twig();
            for s in STRATEGIES {
                rows.push(measure(&e, &twig, s, q.id));
            }
        }
        print_table(title, &rows);
        shape_check(&rows);
        all.extend(rows);
    }
    dump_json("fig13_recursive_twigs", &all);
}

fn shape_check(rows: &[Measurement]) {
    let last = rows.last().unwrap().label.clone();
    let get =
        |s: Strategy| rows.iter().find(|m| m.strategy == s.to_string() && m.label == last).unwrap();
    let rp = get(Strategy::RootPaths);
    let dp = get(Strategy::DataPaths);
    let asr = get(Strategy::Asr);
    let ji = get(Strategy::JoinIndex);
    // The §5.2.6 effect: ASR/JI pay per matching schema path (and JI per
    // interior position too), while the unified indexes answer each
    // subpath in one probe (RP merge) or per-head probes (DP INLJ).
    assert!(
        asr.probes > rp.probes,
        "ASR probes {} should exceed RP's one-per-subpath {}",
        asr.probes,
        rp.probes
    );
    assert!(ji.probes > asr.probes, "JI probes {} should exceed ASR {}", ji.probes, asr.probes);
    assert!(
        dp.total_micros < ji.total_micros,
        "DP ({}µs) should beat JI ({}µs)",
        dp.total_micros,
        ji.total_micros
    );
    println!(
        "[shape ok on {last}: probes RP={} DP={} ASR={} JI={} | time DP={}µs ASR={}µs JI={}µs]",
        rp.probes,
        dp.probes,
        asr.probes,
        ji.probes,
        dp.total_micros,
        asr.total_micros,
        ji.total_micros
    );
}
