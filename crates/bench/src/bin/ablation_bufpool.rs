//! Extension bench: buffer-pool size sweep.
//!
//! The paper fixes a 40 MB pool and disables the OS cache to study
//! non-memory-resident behaviour (§5.1.1). This ablation sweeps the pool
//! size and reports cold-run physical reads and warm-run hit rates for
//! ROOTPATHS on an unselective query, showing when the working set stops
//! fitting.
//!
//! Run with: `cargo run --release -p xtwig-bench --bin ablation_bufpool [--scale f]`

use xtwig_bench::{scale_from_args, xmark_forest};
use xtwig_core::engine::{EngineOptions, QueryEngine, Strategy};
use xtwig_datagen::xmark_queries;

fn main() {
    let scale = scale_from_args();
    println!("# ablation: buffer-pool size sweep (scale {scale})");
    let (forest, _) = xmark_forest(scale);
    let q3 = xmark_queries().into_iter().find(|q| q.id == "Q3x").unwrap();
    let twig = q3.twig();

    println!(
        "\n{:>12} {:>12} {:>14} {:>14} {:>12}",
        "pool pages", "pool MB", "cold physical", "warm physical", "warm logical"
    );
    for pool_pages in [64usize, 128, 256, 512, 1024, 2048, 5120] {
        let engine = QueryEngine::build(
            &forest,
            EngineOptions {
                strategies: vec![Strategy::RootPaths],
                pool_pages,
                ..Default::default()
            },
        );
        engine.clear_caches(Strategy::RootPaths);
        let cold = engine.answer(&twig, Strategy::RootPaths);
        let warm = engine.answer(&twig, Strategy::RootPaths);
        println!(
            "{:>12} {:>12.1} {:>14} {:>14} {:>12}",
            pool_pages,
            pool_pages as f64 * 8192.0 / (1024.0 * 1024.0),
            cold.metrics.physical_reads,
            warm.metrics.physical_reads,
            warm.metrics.logical_reads
        );
        assert_eq!(cold.ids, warm.ids);
    }
    println!("\nexpected shape: cold physical reads are flat (the scan touches the same");
    println!("leaves regardless of pool size); warm physical reads drop to 0 once the");
    println!("query's working set fits the pool.");
}
