//! §5.2.5: space optimizations.
//!
//! Paper numbers at full scale: lossless compression ≈ 30% (already
//! included in Fig. 9's RP/DP sizes); SchemaPath dictionary compression
//! saves ~10 MB on XMark and nothing on DBLP while losing `//` support;
//! HeadId pruning shrinks DATAPATHS to 141 MB (1.4x data) on XMark and
//! 38.4 MB (77% of data) on DBLP while disabling INLJ off-workload.
//!
//! Run with: `cargo run --release -p xtwig-bench --bin sec525_compression [--scale f]`

use std::sync::Arc;
use xtwig_bench::{dblp_forest, mb, scale_from_args, xmark_forest, POOL_PAGES};
use xtwig_core::compress::{measure_idlist_bytes, workload_head_filter, DictDataPaths};
use xtwig_core::datapaths::{DataPaths, DataPathsOptions};
use xtwig_core::engine::{EngineOptions, QueryEngine, Strategy};
use xtwig_core::family::PathIndex;
use xtwig_core::rootpaths::{IdListKeep, RootPaths, RootPathsOptions};
use xtwig_datagen::xmark_queries;
use xtwig_rel::codec::IdListCodec;
use xtwig_storage::BufferPool;
use xtwig_xml::XmlForest;

fn pool() -> Arc<BufferPool> {
    Arc::new(BufferPool::in_memory(POOL_PAGES * 4))
}

fn report(name: &str, forest: &XmlForest, workload: &[xtwig_xml::TwigPattern]) {
    let data_mb = mb(forest.approx_text_bytes());
    println!("\n== {name} (~{data_mb:.2} MB as text) ==");

    // Lossless: delta vs plain IdLists.
    let rp_delta = RootPaths::build(forest, pool(), RootPathsOptions::default());
    let rp_plain = RootPaths::build(
        forest,
        pool(),
        RootPathsOptions { idlist: IdListCodec::Plain, ..Default::default() },
    );
    let dp_delta = DataPaths::build(forest, pool(), DataPathsOptions::default());
    let dp_plain = DataPaths::build(
        forest,
        pool(),
        DataPathsOptions { idlist: IdListCodec::Plain, ..Default::default() },
    );
    let ib = measure_idlist_bytes(forest);
    println!(
        "lossless (delta IdLists): RP {:.2} -> {:.2} MB, DP {:.2} -> {:.2} MB (payload saving {:.0}%)",
        mb(rp_plain.space_bytes()),
        mb(rp_delta.space_bytes()),
        mb(dp_plain.space_bytes()),
        mb(dp_delta.space_bytes()),
        ib.datapaths_saving() * 100.0
    );
    assert!(dp_delta.space_bytes() <= dp_plain.space_bytes());

    // Lossy 0: extreme IdList pruning (§4.1's workload pruning taken to
    // the Index Fabric limit — one id per entry).
    let rp_lastonly = RootPaths::build(
        forest,
        pool(),
        RootPathsOptions { keep: IdListKeep::LastOnly, ..Default::default() },
    );
    println!(
        "IdList pruning (LastOnly): RP {:.2} -> {:.2} MB (filter queries only; no branch ids)",
        mb(rp_delta.space_bytes()),
        mb(rp_lastonly.space_bytes())
    );
    assert!(rp_lastonly.space_bytes() <= rp_delta.space_bytes());

    // Lossy 1: SchemaPath dictionary.
    let dict = DictDataPaths::build(forest, pool());
    let saving = dp_delta.space_bytes().saturating_sub(dict.space_bytes());
    println!(
        "SchemaPathId dictionary:  DP {:.2} -> {:.2} MB (saves {:.2} MB; '//' probes lost)",
        mb(dp_delta.space_bytes()),
        mb(dict.space_bytes()),
        mb(saving)
    );

    // Lossy 2: HeadId pruning on the workload.
    let filter = workload_head_filter(workload);
    let pruned = QueryEngine::build(
        forest,
        EngineOptions {
            strategies: vec![Strategy::DataPaths],
            pool_pages: POOL_PAGES * 4,
            head_filter_tags: Some(filter),
            ..Default::default()
        },
    );
    let pruned_mb = mb(pruned.space_bytes(Strategy::DataPaths));
    println!(
        "HeadId pruning:           DP {:.2} -> {:.2} MB ({:.2}x data size; INLJ only on workload branch points)",
        mb(dp_delta.space_bytes()),
        pruned_mb,
        pruned_mb / data_mb
    );
    assert!(pruned_mb <= mb(dp_delta.space_bytes()));
}

fn main() {
    let scale = scale_from_args();
    println!("# §5.2.5: space optimizations (scale {scale})");
    let workload: Vec<_> = xmark_queries().iter().map(|q| q.twig()).collect();
    let (xforest, _) = xmark_forest(scale);
    report("XMark", &xforest, &workload);
    let (dforest, _) = dblp_forest(scale);
    report("DBLP", &dforest, &workload);
    println!("\npaper: lossless ~30%; dictionary ~10MB on XMark, 0 on DBLP; pruning -> 1.4x / 0.77x data size");
}
