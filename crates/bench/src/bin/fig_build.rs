//! `fig_build` — cold-start figure (no paper counterpart; the ROADMAP's
//! production north star): sequential vs. shard-parallel index build
//! time per structure and for the full seven-strategy engine.
//!
//! Before any timing row is recorded, the sharded engine is verified
//! **byte-identical** to the sequential one (`structure_digest` over
//! every strategy's buffer-pool page image) — a sharded build that
//! diverged would abort the figure. JSON lands in
//! `target/xtwig-results/fig_build.json`; the repo's `BENCH_build.json`
//! is a snapshot of that file, and `host_parallelism` is recorded so
//! cross-host comparisons stay honest (on a 1-core container the
//! sharded rows measure sharding overhead, not speedup).
//!
//! Flags: `--scale <f>` (default 0.01), `--shards <n>` (default
//! `host_parallelism().max(2)`), `--quick` (one run, smaller default
//! scale — the CI smoke).

use std::sync::Arc;
use std::time::{Duration, Instant};
use xtwig_bench::{host_parallelism, scale_from_args, shards_from_args, xmark_forest, POOL_PAGES};
use xtwig_core::asr::AccessSupportRelations;
use xtwig_core::datapaths::{DataPaths, DataPathsOptions};
use xtwig_core::edge::EdgeTable;
use xtwig_core::engine::{EngineOptions, QueryEngine};
use xtwig_core::joinindex::JoinIndices;
use xtwig_core::parallel::ShardPlan;
use xtwig_core::rootpaths::{RootPaths, RootPathsOptions};
use xtwig_core::Strategy;
use xtwig_storage::BufferPool;

struct Row {
    structure: &'static str,
    mode: &'static str,
    shards: usize,
    build_micros: u128,
    runs: usize,
}

fn best_of<F: FnMut()>(runs: usize, mut f: F) -> Duration {
    let mut best = None;
    for _ in 0..runs {
        let start = Instant::now();
        f();
        let t = start.elapsed();
        if best.is_none_or(|b| t < b) {
            best = Some(t);
        }
    }
    best.unwrap()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if args.iter().any(|a| a == "--scale") || std::env::var_os("XTWIG_SCALE").is_some()
    {
        scale_from_args()
    } else if quick {
        0.002
    } else {
        0.01
    };
    // Same `--shards`/`XTWIG_SHARDS` handling as every fig binary, but
    // defaulting to a genuinely sharded build (the figure compares
    // sequential vs sharded) instead of the library's sequential 1.
    let shards =
        if args.iter().any(|a| a == "--shards") || std::env::var_os("XTWIG_SHARDS").is_some() {
            shards_from_args()
        } else {
            host_parallelism().max(2)
        };
    let runs = if quick { 1 } else { 3 };
    let cores = host_parallelism();
    println!("# fig_build: index build time, sequential vs {shards} shards (XMark scale {scale}, {cores} core(s))");

    let (forest, profile) = xmark_forest(scale);
    println!("dataset: {} nodes", profile.nodes);
    let plan = ShardPlan::new(&forest, shards);
    println!("plan: {} shard(s) on {} worker(s)", plan.shard_count(), plan.workers());

    // Byte-identity gate: a sharded build that diverges from the
    // sequential one invalidates every timing row below.
    let opts = |strategies: Vec<Strategy>| EngineOptions {
        strategies,
        pool_pages: POOL_PAGES,
        ..Default::default()
    };
    {
        let seq = QueryEngine::build(&forest, opts(Strategy::ALL.to_vec()));
        let par = QueryEngine::build_parallel(&forest, opts(Strategy::ALL.to_vec()), shards);
        for s in Strategy::ALL {
            assert_eq!(
                par.structure_digest(s),
                seq.structure_digest(s),
                "sharded build diverged from sequential for {s}"
            );
        }
        println!("byte-identity check: all {} strategies OK", Strategy::ALL.len());
    }

    let pool = || Arc::new(BufferPool::in_memory(POOL_PAGES));
    let mut rows: Vec<Row> = Vec::new();
    let mut record = |structure: &'static str, mode: &'static str, n: usize, t: Duration| {
        println!("{structure:<12} {mode:<10} {:>10.1} ms", t.as_secs_f64() * 1e3);
        rows.push(Row { structure, mode, shards: n, build_micros: t.as_micros(), runs });
    };

    let seq_plan = ShardPlan::sequential(&forest);
    let build_with = |p: &ShardPlan, which: &str| match which {
        "rootpaths" => {
            RootPaths::build_sharded(&forest, pool(), RootPathsOptions::default(), p);
        }
        "datapaths" => {
            DataPaths::build_sharded(&forest, pool(), DataPathsOptions::default(), p);
        }
        "edge" => {
            EdgeTable::build_sharded(&forest, pool(), p);
        }
        "asr" => {
            AccessSupportRelations::build_sharded(&forest, pool(), p);
        }
        "join_indices" => {
            JoinIndices::build_sharded(&forest, pool(), p);
        }
        other => unreachable!("unknown structure {other}"),
    };
    for name in ["rootpaths", "datapaths", "edge", "asr", "join_indices"] {
        let t = best_of(runs, || build_with(&seq_plan, name));
        record(name, "sequential", 1, t);
        let t = best_of(runs, || build_with(&plan, name));
        record(name, "sharded", plan.shard_count(), t);
    }
    {
        let t = best_of(runs, || {
            QueryEngine::build(&forest, opts(Strategy::ALL.to_vec()));
        });
        record("engine_all", "sequential", 1, t);
        let t = best_of(runs, || {
            QueryEngine::build_parallel(&forest, opts(Strategy::ALL.to_vec()), shards);
        });
        record("engine_all", "sharded", plan.shard_count(), t);
    }

    let speedup = |structure: &str| -> f64 {
        let get = |mode: &str| {
            rows.iter()
                .find(|r| r.structure == structure && r.mode == mode)
                .map(|r| r.build_micros as f64)
                .unwrap_or(0.0)
        };
        if get("sharded") > 0.0 {
            get("sequential") / get("sharded")
        } else {
            0.0
        }
    };
    println!("\nengine_all speedup sequential -> sharded: {:.2}x", speedup("engine_all"));
    if cores < 2 {
        println!(
            "(single-core host: the sharded rows measure sharding overhead; \
             rerun on a multicore machine for the scaling figure)"
        );
    }

    // Hand-rolled JSON (no serde in the offline build).
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\n    \"structure\": \"{}\",\n    \"mode\": \"{}\",\n    \"shards\": {},\n    \
                 \"build_micros\": {},\n    \"runs\": {}\n  }}",
                r.structure, r.mode, r.shards, r.build_micros, r.runs
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"scale\": {scale},\n  \"host_parallelism\": {cores},\n  \"shards\": {},\n  \
         \"byte_identical\": true,\n  \"engine_all_speedup\": {:.4},\n  \"rows\": [\n{}\n  ]\n}}\n",
        plan.shard_count(),
        speedup("engine_all"),
        body.join(",\n"),
    );
    let dir = std::path::Path::new("target/xtwig-results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join("fig_build.json");
        let _ = std::fs::write(&path, &json);
        println!("[results written to {}]", path.display());
    }
}
