//! `fig_mvcc` — snapshot-isolated maintenance figure (no paper
//! counterpart; the ROADMAP's MVCC item): what concurrent index
//! maintenance costs the readers.
//!
//! The paper's §7 discusses update mechanics but never runs queries
//! *during* maintenance. This figure does: a reader thread streams
//! queries through the service while a writer commits `UpdateOp`
//! batches as fast as it can, and the recorded rows compare reader
//! latency with the writer absent vs. present. Under the epoch design
//! readers pin a snapshot and never wait on the writer, so the two
//! distributions should sit close together — a gap is the cost of
//! sharing cores, not of sharing locks. Timing rows:
//!
//! * `reader/solo` — per-query service latency, no maintenance running;
//! * `reader/with_writer` — the same stream while a writer publishes
//!   epochs continuously;
//! * `update/commit` — one `apply_update` round trip (fork, apply,
//!   journal, publish).
//!
//! Rows are emitted with `group`/`bench`/`min_ns` fields so
//! `bench_check` can gate them against the committed `BENCH_mvcc.json`
//! snapshot (`--allow-missing-baseline` keeps CI green until one is
//! recorded).
//!
//! Flags: `--scale <f>` (default 0.01), `--quick` (smaller scale and
//! fewer iterations — the CI smoke).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xtwig_bench::{host_parallelism, scale_from_args, xmark_forest, POOL_PAGES};
use xtwig_core::engine::EngineOptions;
use xtwig_core::{parse_xpath, Strategy};
use xtwig_service::{ServiceOptions, TwigService, UpdateOp};
use xtwig_xml::TagId;

struct Row {
    bench: String,
    min_ns: u128,
    mean_ns: u128,
}

/// Per-iteration wall times of `iters` runs of `f` after `warmup`
/// untimed runs (caches hot, branch predictors settled), as (min, mean).
fn measure(warmup: usize, iters: usize, mut f: impl FnMut()) -> (Duration, Duration) {
    for _ in 0..warmup {
        f();
    }
    let mut min = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        let t = start.elapsed();
        min = min.min(t);
        total += t;
    }
    (min, total / iters as u32)
}

/// The ops inserting one synthetic person (node ids derived from `k`)
/// whose name leaf holds a unique value — every commit is a distinct
/// update the final lost-update check can look for.
fn round_ops(tags: &[TagId], k: u64) -> Vec<UpdateOp> {
    let person = 1_000_000 + 2 * k;
    vec![
        UpdateOp::InsertPath { tags: tags[..3].to_vec(), ids: vec![1, 2, person], value: None },
        UpdateOp::InsertPath {
            tags: tags.to_vec(),
            ids: vec![1, 2, person, person + 1],
            value: Some(format!("mvcc-writer-{k}")),
        },
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if args.iter().any(|a| a == "--scale") || std::env::var_os("XTWIG_SCALE").is_some()
    {
        scale_from_args()
    } else if quick {
        0.002
    } else {
        0.01
    };
    let iters = if quick { 60 } else { 500 };
    let warmup = if quick { 5 } else { 25 };
    let cores = host_parallelism();
    println!(
        "# fig_mvcc: reader latency under concurrent maintenance \
         (XMark scale {scale}, {cores} core(s))"
    );

    let (forest, profile) = xmark_forest(scale);
    println!("dataset: {} nodes", profile.nodes);
    let svc = Arc::new(TwigService::build(
        forest,
        EngineOptions {
            strategies: vec![Strategy::RootPaths, Strategy::DataPaths],
            pool_pages: POOL_PAGES,
            ..Default::default()
        },
        // Result cache off: every reader latency sample is a real
        // execution against the epoch the worker pinned.
        ServiceOptions { workers: 2, result_cache_capacity: 0, ..Default::default() },
    ));
    let tags: Vec<TagId> = svc.with_engine(|e| {
        let dict = e.forest().dict();
        ["site", "people", "person", "name"]
            .iter()
            .map(|t| dict.lookup(t).expect("xmark tag"))
            .collect()
    });
    let twig = parse_xpath("//person/name").expect("query parses");

    let mut rows: Vec<Row> = Vec::new();
    let mut record = |bench: String, min: Duration, mean: Duration| {
        println!(
            "{bench:<20} min {:>9.1} us   mean {:>9.1} us",
            min.as_secs_f64() * 1e6,
            mean.as_secs_f64() * 1e6
        );
        rows.push(Row { bench, min_ns: min.as_nanos(), mean_ns: mean.as_nanos() });
    };

    // Baseline: the reader stream with no maintenance anywhere.
    let (min, mean) = measure(warmup, iters, || {
        let a = svc.submit(&twig, Strategy::RootPaths).unwrap().wait().unwrap();
        assert!(!a.ids.is_empty());
    });
    record("reader/solo".into(), min, mean);

    // One apply_update round trip: fork the epoch, apply, journal,
    // publish. This is the full writer-side commit cost. (No untimed
    // warmup: each commit mutates state, and the first fork is as real
    // a cost as the last.)
    let mut commit_k = 0u64;
    let (min, mean) = measure(0, iters.min(200), || {
        svc.apply_update(round_ops(&tags, commit_k));
        commit_k += 1;
    });
    record("update/commit".into(), min, mean);

    // The contended case: the writer publishes epochs continuously
    // while the reader streams the same workload. Snapshot isolation
    // means the reader never waits on the writer's locks.
    let stop = Arc::new(AtomicBool::new(false));
    let commits = Arc::new(AtomicU64::new(0));
    let writer = {
        let (svc, stop, commits) = (svc.clone(), stop.clone(), commits.clone());
        let tags = tags.clone();
        std::thread::spawn(move || {
            let mut k = commit_k;
            while !stop.load(Ordering::SeqCst) {
                svc.apply_update(round_ops(&tags, k));
                commits.store(k - commit_k + 1, Ordering::SeqCst);
                k += 1;
            }
            k - 1
        })
    };
    while commits.load(Ordering::SeqCst) == 0 {
        std::thread::yield_now(); // writer warm before sampling
    }
    let (min, mean) = measure(warmup, iters, || {
        let a = svc.submit(&twig, Strategy::RootPaths).unwrap().wait().unwrap();
        assert!(!a.ids.is_empty());
    });
    stop.store(true, Ordering::SeqCst);
    let last_k = writer.join().unwrap();
    record("reader/with_writer".into(), min, mean);
    println!("writer committed {} updates during the contended window", last_k - commit_k + 1);

    // Lost-update check: every commit the writer made must be visible
    // now that its epoch is published (the bench doubles as a stress).
    for k in [0, commit_k.saturating_sub(1), last_k] {
        let probe = parse_xpath(&format!("//person[name='mvcc-writer-{k}']")).expect("probe");
        let a = svc.submit(&probe, Strategy::RootPaths).unwrap().wait().unwrap();
        assert_eq!(
            a.ids.iter().copied().collect::<Vec<_>>(),
            vec![1_000_000 + 2 * k],
            "committed update {k} lost"
        );
    }
    let stats = svc.stats();
    println!(
        "journal: {} ops across {} updates, generation {}",
        stats.journal_ops, stats.updates, stats.generation
    );

    // Hand-rolled JSON (no serde in the offline build); `group`/`bench`/
    // `min_ns` match the bench_check scanner.
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\n    \"group\": \"fig_mvcc\",\n    \"bench\": \"{}\",\n    \
                 \"min_ns\": {},\n    \"mean_ns\": {},\n    \"iters\": {iters},\n    \
                 \"warmup\": {warmup}\n  }}",
                r.bench, r.min_ns, r.mean_ns
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"scale\": {scale},\n  \"host_parallelism\": {cores},\n  \
         \"updates\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        stats.updates,
        body.join(",\n"),
    );
    let dir = std::path::Path::new("target/xtwig-results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join("fig_mvcc.json");
        let _ = std::fs::write(&path, &json);
        println!("[results written to {}]", path.display());
    }
    match Arc::try_unwrap(svc) {
        Ok(svc) => svc.shutdown(),
        Err(_) => unreachable!("all threads joined"),
    }
}
