//! `fig_net` — the wire's cost (no paper counterpart; the ROADMAP's
//! server item): what serving a twig query over TCP adds on top of
//! in-process dispatch.
//!
//! The network suite proves wire answers are byte-identical to
//! in-process execution; this figure prices the layer. An XMark index
//! is persisted, served through a [`Catalog`] by a real `Server` on a
//! loopback socket, and the same query stream is timed through both
//! doors. Timing rows:
//!
//! * `inproc/query` — `TwigService::execute` on the caller's thread,
//!   the exact dispatch path a server connection thread uses;
//! * `wire/ping` — an empty protocol round trip (frame encode + TCP
//!   loopback + frame decode), the floor the transport imposes;
//! * `wire/query` — the full client round trip: encode, send, execute
//!   on the connection thread, encode ids, decode. The gap to
//!   `inproc/query` minus `wire/ping` is id-serialization cost.
//!
//! Result caching is off so every sample is a real execution; the
//! wire and in-process answers are asserted identical each iteration,
//! so the figure doubles as an end-to-end smoke. Rows carry
//! `group`/`bench`/`min_ns` for `bench_check` gating against
//! `BENCH_net.json` (`--allow-missing-baseline` keeps CI green until
//! a snapshot is recorded).
//!
//! Flags: `--scale <f>` (default 0.01), `--quick` (smaller scale and
//! fewer iterations — the CI smoke).

use std::sync::Arc;
use std::time::{Duration, Instant};
use xtwig_bench::{host_parallelism, scale_from_args, xmark_forest, POOL_PAGES};
use xtwig_core::engine::EngineOptions;
use xtwig_core::{parse_xpath, QueryEngine, Strategy};
use xtwig_net::{Client, Server};
use xtwig_service::{Catalog, CatalogOptions, ServiceOptions};

struct Row {
    bench: String,
    min_ns: u128,
    mean_ns: u128,
}

/// Per-iteration wall times of `iters` runs of `f` after `warmup`
/// untimed runs (caches hot, branch predictors settled), as (min, mean).
fn measure(warmup: usize, iters: usize, mut f: impl FnMut()) -> (Duration, Duration) {
    for _ in 0..warmup {
        f();
    }
    let mut min = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        let t = start.elapsed();
        min = min.min(t);
        total += t;
    }
    (min, total / iters as u32)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if args.iter().any(|a| a == "--scale") || std::env::var_os("XTWIG_SCALE").is_some()
    {
        scale_from_args()
    } else if quick {
        0.002
    } else {
        0.01
    };
    let iters = if quick { 60 } else { 500 };
    let warmup = if quick { 5 } else { 25 };
    let cores = host_parallelism();
    println!(
        "# fig_net: wire round-trip cost vs in-process dispatch \
         (XMark scale {scale}, {cores} core(s))"
    );

    // Persist the index, then serve it through the catalog exactly the
    // way `xtwig serve` does — open-on-demand, zero rebuild.
    let (forest, profile) = xmark_forest(scale);
    println!("dataset: {} nodes", profile.nodes);
    let dir = std::env::temp_dir().join(format!("xtwig-fig-net-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let engine = QueryEngine::build(
        forest,
        EngineOptions {
            strategies: vec![Strategy::RootPaths, Strategy::DataPaths],
            pool_pages: POOL_PAGES,
            ..Default::default()
        },
    );
    engine.persist(dir.join("xmark.xtwig")).expect("persist");
    drop(engine);

    // Result cache off: every sample through either door is a real
    // execution, so the wire/inproc gap is transport, not cache luck.
    let catalog = Arc::new(Catalog::new(CatalogOptions {
        service: ServiceOptions { workers: 1, result_cache_capacity: 0, ..Default::default() },
        ..Default::default()
    }));
    catalog.register("xmark", dir.join("xmark.xtwig"));
    let server = Server::bind("127.0.0.1:0", catalog.clone()).expect("bind");
    let handle = server.handle().expect("handle");
    let server_thread = std::thread::spawn(move || server.run());
    let mut client = Client::connect(handle.addr()).expect("connect");

    let twig = parse_xpath("//person/name").expect("query parses");
    let svc = catalog.get("xmark").expect("open persisted index");
    let expected: Vec<u64> = svc
        .execute(&twig, Strategy::RootPaths)
        .expect("in-process answer")
        .ids
        .iter()
        .copied()
        .collect();
    println!("query //person/name: {} result(s)", expected.len());

    let mut rows: Vec<Row> = Vec::new();
    let mut record = |bench: String, min: Duration, mean: Duration| {
        println!(
            "{bench:<16} min {:>9.1} us   mean {:>9.1} us",
            min.as_secs_f64() * 1e6,
            mean.as_secs_f64() * 1e6
        );
        rows.push(Row { bench, min_ns: min.as_nanos(), mean_ns: mean.as_nanos() });
    };

    // Baseline: the dispatch path a connection thread runs, minus the
    // socket — direct execution on this thread.
    let (min, mean) = measure(warmup, iters, || {
        let a = svc.execute(&twig, Strategy::RootPaths).expect("execute");
        assert_eq!(a.ids.len(), expected.len());
    });
    record("inproc/query".into(), min, mean);

    // The transport floor: an empty protocol round trip.
    let (min, mean) = measure(warmup, iters, || {
        client.ping().expect("ping");
    });
    record("wire/ping".into(), min, mean);

    // The full wire round trip, answer identity asserted every time.
    let (min, mean) = measure(warmup, iters, || {
        let a = client.query("xmark", "//person/name", "RP").expect("wire query");
        assert_eq!(a.ids, expected, "wire answer drifted from in-process");
    });
    record("wire/query".into(), min, mean);

    client.shutdown().expect("graceful shutdown");
    server_thread.join().expect("server thread").expect("server run");
    let _ = std::fs::remove_dir_all(&dir);

    // Hand-rolled JSON (no serde in the offline build); `group`/`bench`/
    // `min_ns` match the bench_check scanner.
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\n    \"group\": \"fig_net\",\n    \"bench\": \"{}\",\n    \
                 \"min_ns\": {},\n    \"mean_ns\": {},\n    \"iters\": {iters},\n    \
                 \"warmup\": {warmup}\n  }}",
                r.bench, r.min_ns, r.mean_ns
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"scale\": {scale},\n  \"host_parallelism\": {cores},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        body.join(",\n"),
    );
    let out = std::path::Path::new("target/xtwig-results");
    if std::fs::create_dir_all(out).is_ok() {
        let path = out.join("fig_net.json");
        let _ = std::fs::write(&path, &json);
        println!("[results written to {}]", path.display());
    }
}
