//! `fig_persist` — index persistence figure (no paper counterpart; the
//! ROADMAP's durable-storage item): build-vs-reopen cost and the real
//! cold-vs-warm-cache query behaviour the paper could only simulate.
//!
//! The run builds the full seven-strategy engine over XMark, persists
//! it to a `.xtwig` file, reopens it, and verifies byte-identity
//! (`structure_digest` per strategy, plus answer equality on the probe
//! workload) before recording any row. Timing rows:
//!
//! * `build` / `persist` / `open` — engine construction vs. writing the
//!   file vs. reattaching it (the "restart without rebuild" win);
//! * `<strategy>/cold` — first query after a cache drop, pages come off
//!   the file backend (physical reads recorded alongside);
//! * `<strategy>/warm` — the same query again, served from the pool.
//!
//! Rows are emitted with `group`/`bench`/`min_ns` fields so
//! `bench_check` can gate them against the committed
//! `BENCH_persist.json` snapshot (the gate tolerates a missing snapshot
//! via `--allow-missing-baseline`, keeping CI green on first run).
//!
//! Flags: `--scale <f>` (default 0.01), `--quick` (one run, smaller
//! scale — the CI smoke).

use std::time::{Duration, Instant};
use xtwig_bench::{host_parallelism, scale_from_args, xmark_forest, POOL_PAGES};
use xtwig_core::engine::{EngineOptions, QueryEngine};
use xtwig_core::{parse_xpath, Strategy};

struct Row {
    bench: String,
    min_ns: u128,
    physical_reads: u64,
}

fn best_of<T>(runs: usize, mut f: impl FnMut() -> (Duration, T)) -> (Duration, T) {
    let mut best: Option<(Duration, T)> = None;
    for _ in 0..runs {
        let (t, v) = f();
        if best.as_ref().is_none_or(|(b, _)| t < *b) {
            best = Some((t, v));
        }
    }
    best.unwrap()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if args.iter().any(|a| a == "--scale") || std::env::var_os("XTWIG_SCALE").is_some()
    {
        scale_from_args()
    } else if quick {
        0.002
    } else {
        0.01
    };
    let runs = if quick { 1 } else { 3 };
    let cores = host_parallelism();
    println!(
        "# fig_persist: build once, reopen without rebuild (XMark scale {scale}, {cores} core(s))"
    );

    let (forest, profile) = xmark_forest(scale);
    println!("dataset: {} nodes", profile.nodes);
    let queries = [
        "/site//item[quantity = '2']/location",
        "//person/name",
        "/site/regions/namerica/item/name",
    ];

    let idx_path = std::env::temp_dir().join(format!("fig-persist-{}.xtwig", std::process::id()));
    let opts = || EngineOptions { pool_pages: POOL_PAGES, ..Default::default() };

    let mut rows: Vec<Row> = Vec::new();
    let mut record = |bench: String, t: Duration, physical: u64| {
        println!("{bench:<24} {:>10.2} ms   {:>6} physical reads", t.as_secs_f64() * 1e3, physical);
        rows.push(Row { bench, min_ns: t.as_nanos(), physical_reads: physical });
    };

    // Build and persist (the one-time cost).
    let (build_t, built) = best_of(runs, || {
        let start = Instant::now();
        let e = QueryEngine::build(&forest, opts());
        (start.elapsed(), e)
    });
    record("build".into(), build_t, 0);
    let (persist_t, report) = best_of(runs, || {
        let start = Instant::now();
        let r = built.persist(&idx_path).expect("persist");
        (start.elapsed(), r)
    });
    record("persist".into(), persist_t, 0);
    println!(
        "index file: {} pages ({:.2} MB), {} strategies",
        report.file_pages,
        report.file_bytes as f64 / 1048576.0,
        report.strategies.len()
    );

    // Reopen (the every-restart cost — digest verification included).
    let (open_t, opened) = best_of(runs, || {
        let start = Instant::now();
        let (e, r) = QueryEngine::open_with_report(&idx_path).expect("open");
        let t = start.elapsed();
        assert_eq!(r.open_allocations, 0, "reopen must not build anything");
        (t, e)
    });
    record("open".into(), open_t, 0);

    // Byte-identity gate: every strategy's reopened page image must
    // digest equal, and every probe answer must match the in-memory
    // engine. A divergence invalidates the figure.
    for s in Strategy::ALL {
        assert_eq!(
            opened.structure_digest(s),
            built.structure_digest(s),
            "reopened {s} diverged from the built engine"
        );
    }
    for q in &queries {
        let twig = parse_xpath(q).expect("query parses");
        for s in Strategy::ALL {
            assert_eq!(
                opened.answer(&twig, s).ids,
                built.answer(&twig, s).ids,
                "{s} answers differ on {q}"
            );
        }
    }
    println!("byte-identity check: all {} strategies OK", Strategy::ALL.len());

    // Cold vs warm: the paper's omitted cold-cache experiment, now
    // against a real file backend. Cold = first run after a cache drop
    // (min over runs of the *cold* time — each run re-drops the cache);
    // warm = the same query re-run against the warmed pool.
    let twig = parse_xpath(queries[0]).expect("query parses");
    for s in Strategy::ALL {
        let (cold_t, cold_reads) = best_of(runs, || {
            opened.clear_caches(s);
            let a = opened.answer(&twig, s);
            (a.metrics.elapsed, a.metrics.physical_reads)
        });
        assert!(cold_reads > 0, "{s}: cold query must read the file");
        record(format!("{}/cold", s.label()), cold_t, cold_reads);
        let (warm_t, warm_reads) = best_of(runs, || {
            let a = opened.answer(&twig, s);
            (a.metrics.elapsed, a.metrics.physical_reads)
        });
        assert_eq!(warm_reads, 0, "{s}: warm query must be served from the pool");
        record(format!("{}/warm", s.label()), warm_t, 0);
    }

    let open_speedup = build_t.as_secs_f64() / open_t.as_secs_f64().max(1e-9);
    println!("\nbuild -> open speedup: {open_speedup:.2}x (restart without rebuild)");

    // Hand-rolled JSON (no serde in the offline build); `group`/`bench`/
    // `min_ns` match the bench_check scanner.
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\n    \"group\": \"fig_persist\",\n    \"bench\": \"{}\",\n    \
                 \"min_ns\": {},\n    \"physical_reads\": {},\n    \"runs\": {runs}\n  }}",
                r.bench, r.min_ns, r.physical_reads
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"scale\": {scale},\n  \"host_parallelism\": {cores},\n  \"file_pages\": {},\n  \
         \"open_speedup\": {open_speedup:.4},\n  \"results\": [\n{}\n  ]\n}}\n",
        report.file_pages,
        body.join(",\n"),
    );
    let dir = std::path::Path::new("target/xtwig-results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join("fig_persist.json");
        let _ = std::fs::write(&path, &json);
        println!("[results written to {}]", path.display());
    }
    std::fs::remove_file(&idx_path).ok();
}
