//! Extension bench (paper §7): update cost of ROOTPATHS.
//!
//! §7 notes the space/time wins come "at the cost of … a higher index
//! update cost" — inserting one node touches one entry per value plus
//! one structural entry, and the index is self-locating for deletes.
//! This bench measures sustained insert/delete throughput into a built
//! ROOTPATHS index and the per-node entry amplification.
//!
//! Run with: `cargo run --release -p xtwig-bench --bin ablation_updates [--scale f]`

use std::sync::Arc;
use std::time::Instant;
use xtwig_bench::{scale_from_args, xmark_forest, POOL_PAGES};
use xtwig_core::rootpaths::{RootPaths, RootPathsOptions};
use xtwig_storage::BufferPool;
use xtwig_xml::TagId;

fn main() {
    let scale = scale_from_args();
    println!("# §7 extension: ROOTPATHS update cost (scale {scale})");
    let (mut forest, profile) = xmark_forest(scale);
    let mut rp = RootPaths::build(
        &forest,
        Arc::new(BufferPool::in_memory(POOL_PAGES * 4)),
        RootPathsOptions::default(),
    );
    println!("built over {} nodes -> {} index rows", profile.nodes, rp.rows());

    // Insert N fresh persons (4 nodes each: person, name, profile, @income),
    // the §7 "insert an author with a name" pattern.
    let n = 2_000u64;
    let tags: Vec<TagId> = ["site", "people", "person", "name", "profile", "@income"]
        .iter()
        .map(|t| forest.dict_mut().intern(t))
        .collect();
    let (site, people) = (1u64, 2u64);
    let base_id = 10_000_000u64;
    let rows_before = rp.rows();
    let start = Instant::now();
    for i in 0..n {
        let person = base_id + i * 4;
        rp.insert_path(&[tags[0], tags[1], tags[2]], &[site, people, person], None);
        rp.insert_path(
            &[tags[0], tags[1], tags[2], tags[3]],
            &[site, people, person, person + 1],
            Some(&format!("New Person {i}")),
        );
        rp.insert_path(
            &[tags[0], tags[1], tags[2], tags[4]],
            &[site, people, person, person + 2],
            None,
        );
        rp.insert_path(
            &[tags[0], tags[1], tags[2], tags[4], tags[5]],
            &[site, people, person, person + 2, person + 3],
            Some("100.00"),
        );
    }
    let insert_time = start.elapsed();
    let inserted_rows = rp.rows() - rows_before;
    println!(
        "inserted {n} persons ({} nodes) -> {} new index rows ({:.2} rows/node) in {:.2?} ({:.0} nodes/s)",
        n * 4,
        inserted_rows,
        inserted_rows as f64 / (n * 4) as f64,
        insert_time,
        (n * 4) as f64 / insert_time.as_secs_f64()
    );

    // Self-locating deletes (one lookup by (value, reverse path), §7).
    let start = Instant::now();
    let mut deleted = 0u64;
    for i in 0..n {
        let person = base_id + i * 4;
        if rp.delete_path(
            &[tags[0], tags[1], tags[2], tags[3]],
            &[site, people, person, person + 1],
            Some(&format!("New Person {i}")),
        ) {
            deleted += 1;
        }
    }
    let delete_time = start.elapsed();
    println!(
        "deleted {deleted} name entries in {:.2?} ({:.0} deletes/s) — no joins needed",
        delete_time,
        deleted as f64 / delete_time.as_secs_f64()
    );
    rp.tree().check_invariants();
    println!("tree invariants hold after the update storm.");
}
