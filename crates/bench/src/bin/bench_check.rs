//! `bench_check` — the CI bench-regression gate.
//!
//! Compares a fresh `CRITERION_STUB_JSON` recording (the JSON-lines
//! file the vendored criterion stub appends per benchmark) against the
//! committed `BENCH_baseline.json` snapshot, and exits non-zero when
//! any shared benchmark's `min_ns` regressed by more than the
//! tolerance factor.
//!
//! The tolerance is deliberately generous (default 10x): CI runs the
//! stub in `--quick` mode (3 samples) on shared runners whose clocks
//! and load differ wildly from the recording host, so the gate exists
//! to catch *gross* regressions — an accidentally quadratic probe path,
//! a lost index fast path — not single-digit-percent drift. `min_ns` is
//! compared (not mean) because the minimum is the most
//! noise-resistant statistic a 3-sample quick run produces.
//!
//! ```text
//! bench_check --baseline BENCH_baseline.json --current current.jsonl \
//!             [--tolerance 10.0] [--min-matches 3] [--allow-missing-baseline]
//! ```
//!
//! `--allow-missing-baseline` turns an unreadable baseline file into a
//! clean pass instead of a failure: a gate over a snapshot that has not
//! been recorded yet (e.g. `BENCH_persist.json` on the first CI run
//! after the persist figure landed) stays green until the snapshot is
//! committed, at which point it gates normally.
//!
//! Both inputs are parsed with a dependency-free scanner that extracts
//! `(group, bench, min_ns)` triples from any mix of pretty-printed
//! JSON and JSON lines — the two formats the repo produces.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One benchmark measurement extracted from a results file.
#[derive(Debug, Clone, PartialEq)]
struct Sample {
    group: String,
    bench: String,
    min_ns: f64,
}

/// Extracts the string value following `"key":` (or `"key": `) at or
/// after `from`, returning `(value, end_pos)`.
fn find_string_field(text: &str, key: &str, from: usize, until: usize) -> Option<(String, usize)> {
    let needle = format!("\"{key}\"");
    let start = text[from..until].find(&needle)? + from + needle.len();
    let colon = text[start..until].find(':')? + start + 1;
    let open = text[colon..until].find('"')? + colon + 1;
    let close = text[open..until].find('"')? + open;
    Some((text[open..close].to_owned(), close + 1))
}

/// Extracts the numeric value following `"key":` at or after `from`.
fn find_number_field(text: &str, key: &str, from: usize, until: usize) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let start = text[from..until].find(&needle)? + from + needle.len();
    let colon = text[start..until].find(':')? + start + 1;
    let rest = &text[colon..until];
    let trimmed = rest.trim_start();
    let end = trimmed
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(trimmed.len());
    trimmed[..end].parse().ok()
}

/// Scans a results file for every object carrying `group`, `bench`, and
/// `min_ns` fields. Works on both the pretty-printed snapshot (objects
/// inside a `"results": [...]` array) and the stub's JSON-lines output.
fn parse_samples(text: &str) -> Vec<Sample> {
    let mut out = Vec::new();
    let mut pos = 0;
    while let Some(rel) = text[pos..].find("\"group\"") {
        let start = pos + rel;
        // The enclosing object ends at the next '}' after min_ns; bound
        // the field search to the next "group" occurrence (or EOF) so a
        // malformed object cannot pair fields across entries.
        let until =
            text[start + 7..].find("\"group\"").map(|r| start + 7 + r).unwrap_or(text.len());
        let Some((group, after_group)) = find_string_field(text, "group", start, until) else {
            break;
        };
        let bench = find_string_field(text, "bench", after_group, until);
        let min_ns = find_number_field(text, "min_ns", after_group, until);
        if let (Some((bench, _)), Some(min_ns)) = (bench, min_ns) {
            out.push(Sample { group, bench, min_ns });
        }
        pos = until.max(start + 7);
    }
    out
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|p| args.get(p + 1)).cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path =
        arg_value(&args, "--baseline").unwrap_or_else(|| "BENCH_baseline.json".into());
    let Some(current_path) = arg_value(&args, "--current") else {
        eprintln!(
            "usage: bench_check --baseline BENCH_baseline.json --current current.jsonl \
             [--tolerance 10.0] [--min-matches 3] [--allow-missing-baseline]"
        );
        return ExitCode::from(2);
    };
    let tolerance: f64 =
        arg_value(&args, "--tolerance").and_then(|v| v.parse().ok()).unwrap_or(10.0);
    let min_matches: usize =
        arg_value(&args, "--min-matches").and_then(|v| v.parse().ok()).unwrap_or(3);
    let allow_missing_baseline = args.iter().any(|a| a == "--allow-missing-baseline");

    let read = |path: &str| -> Option<String> {
        match std::fs::read_to_string(path) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("bench_check: cannot read {path}: {e}");
                None
            }
        }
    };
    // Only a genuinely absent baseline qualifies for the skip: any
    // other read error (permissions, a mistyped path that happens to
    // hit a directory, I/O failure) must still fail the gate, or a
    // typo in CI would silently disable it forever.
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => text,
        Err(e) if allow_missing_baseline && e.kind() == std::io::ErrorKind::NotFound => {
            println!(
                "bench_check: baseline {baseline_path} not recorded yet — skipping the gate \
                 (--allow-missing-baseline)"
            );
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("bench_check: cannot read {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(current_text) = read(&current_path) else {
        return ExitCode::FAILURE;
    };

    let baseline: BTreeMap<(String, String), f64> =
        parse_samples(&baseline_text).into_iter().map(|s| ((s.group, s.bench), s.min_ns)).collect();
    let current = parse_samples(&current_text);
    if baseline.is_empty() {
        eprintln!("bench_check: no samples parsed from baseline {baseline_path}");
        return ExitCode::FAILURE;
    }

    let mut matches = 0usize;
    let mut regressions = Vec::new();
    println!("bench_check: tolerance {tolerance}x vs {baseline_path}");
    for s in &current {
        let Some(&base) = baseline.get(&(s.group.clone(), s.bench.clone())) else {
            continue; // new bench: nothing to gate against
        };
        matches += 1;
        let ratio = if base > 0.0 { s.min_ns / base } else { 0.0 };
        let verdict = if ratio > tolerance { "REGRESSED" } else { "ok" };
        println!(
            "  {:<40} base {:>12.1} ns  now {:>12.1} ns  ratio {:>6.2}x  {verdict}",
            format!("{}/{}", s.group, s.bench),
            base,
            s.min_ns,
            ratio
        );
        if ratio > tolerance {
            regressions.push((s.clone(), ratio));
        }
    }

    if matches < min_matches {
        eprintln!(
            "bench_check: only {matches} benchmark(s) matched the baseline (need {min_matches}); \
             the gate would be vacuous — failing"
        );
        return ExitCode::FAILURE;
    }
    if !regressions.is_empty() {
        eprintln!("\nbench_check: {} gross regression(s) beyond {tolerance}x:", regressions.len());
        for (s, ratio) in &regressions {
            eprintln!("  {}/{}: {:.2}x", s.group, s.bench, ratio);
        }
        return ExitCode::FAILURE;
    }
    println!("bench_check: {matches} benchmark(s) within {tolerance}x of baseline");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_jsonl_and_pretty_snapshot() {
        let jsonl = r#"{"group":"g1","bench":"RP/Q1","min_ns":123.4,"mean_ns":130.0,"median_ns":125.0,"samples":3,"iters_per_sample":10}
{"group":"g1","bench":"DP/Q1","min_ns":88.0,"mean_ns":90.0,"median_ns":89.0,"samples":3,"iters_per_sample":10}"#;
        let got = parse_samples(jsonl);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].group, "g1");
        assert_eq!(got[0].bench, "RP/Q1");
        assert!((got[0].min_ns - 123.4).abs() < 1e-9);

        let pretty = r#"{
  "recorded": "2026-01-01",
  "host_parallelism": 1,
  "results": [
    {
      "group": "fig11_single_path",
      "bench": "RP/Q1x",
      "min_ns": 2743.6,
      "mean_ns": 2904.9
    },
    {
      "group": "fig11_single_path",
      "bench": "DP/Q1x",
      "min_ns": 2973.0,
      "mean_ns": 3107.3
    }
  ]
}"#;
        let got = parse_samples(pretty);
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].bench, "DP/Q1x");
        assert!((got[1].min_ns - 2973.0).abs() < 1e-9);
    }

    #[test]
    fn ignores_objects_without_min_ns() {
        let text = r#"{"group":"g","bench":"a"} {"group":"g","bench":"b","min_ns":1.0}"#;
        let got = parse_samples(text);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].bench, "b");
    }
}
