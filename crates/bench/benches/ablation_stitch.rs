//! Ablation: stitching `//` edges by IdList-ancestor unnesting (the
//! paper's mechanism, §3.2) vs. the stack-based structural join (§6's
//! containment-join alternative).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xtwig_bench::{xmark_forest, POOL_PAGES};
use xtwig_core::engine::{EngineOptions, QueryEngine, Strategy};
use xtwig_datagen::xmark_queries;

fn bench_stitch_modes(c: &mut Criterion) {
    let (forest, _) = xmark_forest(0.01);
    let build = |structural: bool| {
        QueryEngine::build(
            &forest,
            EngineOptions {
                strategies: vec![Strategy::RootPaths],
                pool_pages: POOL_PAGES,
                structural_ad_joins: structural,
                ..Default::default()
            },
        )
    };
    let unnest = build(false);
    let structural = build(true);
    let queries = xmark_queries();
    let mut group = c.benchmark_group("ablation_stitch");
    group.sample_size(15);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(400));
    for id in ["Q12x", "Q14x", "Q15x"] {
        let q = queries.iter().find(|q| q.id == id).unwrap();
        let twig = q.twig();
        group.bench_with_input(BenchmarkId::new("idlist-unnest", id), &twig, |b, twig| {
            b.iter(|| unnest.answer(twig, Strategy::RootPaths).ids.len())
        });
        group.bench_with_input(BenchmarkId::new("structural-join", id), &twig, |b, twig| {
            b.iter(|| structural.answer(twig, Strategy::RootPaths).ids.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stitch_modes);
criterion_main!(benches);
