//! Criterion bench for the `xtwig-service` serving layer: queries/sec
//! through the worker pool at increasing worker counts, with the result
//! cache off (every query executes) and on (steady-state hits).
//!
//! Complements `fig_service`, which records absolute qps and cache hit
//! rates as JSON; this bench tracks regressions in the serving hot path
//! (submission, queueing, ticket resolution) under the stub harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;
use xtwig_bench::POOL_PAGES;
use xtwig_core::engine::{EngineOptions, QueryEngine, Strategy};
use xtwig_datagen::{generate_xmark, Dataset, XmarkConfig};
use xtwig_service::{ServiceOptions, TwigService};
use xtwig_xml::{TwigPattern, XmlForest};

const SCALE: f64 = 0.005; // small: the bench measures serving, not scans
const STREAM: usize = 64;

fn stream(twigs: &[TwigPattern]) -> Vec<TwigPattern> {
    (0..STREAM).map(|i| twigs[i % twigs.len()].clone()).collect()
}

fn bench_throughput(c: &mut Criterion) {
    let mut forest = XmlForest::new();
    generate_xmark(&mut forest, XmarkConfig { scale: SCALE, seed: 0xA0C });
    let forest = Arc::new(forest);
    let twigs: Vec<TwigPattern> = xtwig_datagen::xmark_queries()
        .iter()
        .filter(|q| q.dataset == Dataset::Xmark)
        .take(8)
        .map(|q| q.twig())
        .collect();
    let queries = stream(&twigs);

    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    for &workers in &[1usize, 2, 4, 8] {
        for &cached in &[false, true] {
            let engine = QueryEngine::build(
                forest.clone(),
                EngineOptions {
                    // Only RP is queried below; building more would just
                    // pad the CI smoke's setup time.
                    strategies: vec![Strategy::RootPaths],
                    pool_pages: POOL_PAGES,
                    ..Default::default()
                },
            );
            let service = TwigService::over(
                engine,
                ServiceOptions {
                    workers,
                    result_cache_capacity: if cached { 1024 } else { 0 },
                    ..Default::default()
                },
            );
            let label = if cached { "cache_on" } else { "cache_off" };
            group.bench_with_input(
                BenchmarkId::new(label, format!("{workers}w/{STREAM}q")),
                &queries,
                |b, queries| {
                    b.iter(|| {
                        let tickets: Vec<_> = queries
                            .iter()
                            .map(|t| service.submit(t, Strategy::RootPaths).unwrap())
                            .collect();
                        tickets.into_iter().map(|t| t.wait().unwrap().ids.len()).sum::<usize>()
                    })
                },
            );
            service.shutdown();
        }
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
