//! Index construction cost per configuration (context for Fig. 9: the
//! space/time tradeoff has a build-time dimension too).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;
use xtwig_bench::xmark_forest;
use xtwig_core::asr::AccessSupportRelations;
use xtwig_core::datapaths::{DataPaths, DataPathsOptions};
use xtwig_core::edge::EdgeTable;
use xtwig_core::joinindex::JoinIndices;
use xtwig_core::rootpaths::{RootPaths, RootPathsOptions};
use xtwig_storage::BufferPool;

fn bench_builds(c: &mut Criterion) {
    let (forest, profile) = xmark_forest(0.005);
    println!("build bench over {} nodes", profile.nodes);
    let pool = || Arc::new(BufferPool::in_memory(16_384));
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(400));
    group.bench_function("rootpaths", |b| {
        b.iter(|| RootPaths::build(&forest, pool(), RootPathsOptions::default()).rows())
    });
    group.bench_function("datapaths", |b| {
        b.iter(|| DataPaths::build(&forest, pool(), DataPathsOptions::default()).rows())
    });
    group.bench_function("edge", |b| b.iter(|| EdgeTable::build(&forest, pool()).rows()));
    group.bench_function("asr", |b| {
        b.iter(|| AccessSupportRelations::build(&forest, pool()).table_count())
    });
    group.bench_function("join_indices", |b| {
        b.iter(|| JoinIndices::build(&forest, pool()).table_count())
    });
    group.finish();
}

criterion_group!(benches, bench_builds);
criterion_main!(benches);
