//! Index construction cost per configuration (context for Fig. 9: the
//! space/time tradeoff has a build-time dimension too), plus the
//! shard-parallel build variants (`*_sharded4`): identical output
//! (byte-for-byte, see `QueryEngine::build_parallel`), row enumeration
//! and sorting spread over a worker pool. On a single-core host the
//! sharded rows mostly measure the sharding overhead; rerun on a
//! multicore machine for the real speedup (see `BENCH_build.json`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;
use xtwig_bench::xmark_forest;
use xtwig_core::asr::AccessSupportRelations;
use xtwig_core::datapaths::{DataPaths, DataPathsOptions};
use xtwig_core::edge::EdgeTable;
use xtwig_core::joinindex::JoinIndices;
use xtwig_core::parallel::ShardPlan;
use xtwig_core::rootpaths::{RootPaths, RootPathsOptions};
use xtwig_storage::BufferPool;

const SHARDS: usize = 4;

fn bench_builds(c: &mut Criterion) {
    let (forest, profile) = xmark_forest(0.005);
    println!("build bench over {} nodes", profile.nodes);
    let pool = || Arc::new(BufferPool::in_memory(16_384));
    let plan = ShardPlan::new(&forest, SHARDS);
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(400));
    group.bench_function("rootpaths", |b| {
        b.iter(|| RootPaths::build(&forest, pool(), RootPathsOptions::default()).rows())
    });
    group.bench_function("rootpaths_sharded4", |b| {
        b.iter(|| {
            RootPaths::build_sharded(&forest, pool(), RootPathsOptions::default(), &plan).rows()
        })
    });
    group.bench_function("datapaths", |b| {
        b.iter(|| DataPaths::build(&forest, pool(), DataPathsOptions::default()).rows())
    });
    group.bench_function("datapaths_sharded4", |b| {
        b.iter(|| {
            DataPaths::build_sharded(&forest, pool(), DataPathsOptions::default(), &plan).rows()
        })
    });
    group.bench_function("edge", |b| b.iter(|| EdgeTable::build(&forest, pool()).rows()));
    group.bench_function("edge_sharded4", |b| {
        b.iter(|| EdgeTable::build_sharded(&forest, pool(), &plan).rows())
    });
    group.bench_function("asr", |b| {
        b.iter(|| AccessSupportRelations::build(&forest, pool()).table_count())
    });
    group.bench_function("asr_sharded4", |b| {
        b.iter(|| AccessSupportRelations::build_sharded(&forest, pool(), &plan).table_count())
    });
    group.bench_function("join_indices", |b| {
        b.iter(|| JoinIndices::build(&forest, pool()).table_count())
    });
    group.bench_function("join_indices_sharded4", |b| {
        b.iter(|| JoinIndices::build_sharded(&forest, pool(), &plan).table_count())
    });
    group.finish();
}

criterion_group!(benches, bench_builds);
criterion_main!(benches);
