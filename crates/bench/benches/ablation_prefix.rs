//! Ablation: B+-tree interior prefix truncation (the DB2-style key
//! compression the paper leans on in §3.1) — build size and probe cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;
use xtwig_bench::xmark_forest;
use xtwig_btree::BTreeOptions;
use xtwig_core::family::{FreeIndex, PcSubpathQuery};
use xtwig_core::rootpaths::{RootPaths, RootPathsOptions};
use xtwig_storage::BufferPool;

fn bench_prefix_truncation(c: &mut Criterion) {
    let (forest, _) = xmark_forest(0.01);
    let build = |trunc: bool| {
        RootPaths::build(
            &forest,
            Arc::new(BufferPool::in_memory(16_384)),
            RootPathsOptions {
                btree: BTreeOptions { prefix_truncation: trunc, ..Default::default() },
                ..Default::default()
            },
        )
    };
    let with = build(true);
    let without = build(false);
    {
        use xtwig_core::family::PathIndex;
        println!(
            "index pages: with truncation {} vs without {}",
            with.tree().stats().pages,
            without.tree().stats().pages
        );
        assert!(with.space_bytes() <= without.space_bytes());
    }
    let q = PcSubpathQuery::resolve(forest.dict(), &["person", "name"], false, None).unwrap();
    let mut group = c.benchmark_group("ablation_prefix_truncation");
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(400));
    for (name, index) in [("truncated", &with), ("full-keys", &without)] {
        group.bench_with_input(BenchmarkId::new(name, "probe"), &q, |b, q| {
            b.iter(|| index.lookup_free(q).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prefix_truncation);
criterion_main!(benches);
