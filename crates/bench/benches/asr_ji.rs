//! Criterion bench for Fig. 13: `//` branch-point twigs against ASR and
//! Join Indices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xtwig_bench::{engine, xmark_forest};
use xtwig_core::engine::Strategy;
use xtwig_datagen::xmark_queries;

fn bench_asr_ji(c: &mut Criterion) {
    let (forest, _) = xmark_forest(0.01);
    let strategies = [Strategy::RootPaths, Strategy::DataPaths, Strategy::Asr, Strategy::JoinIndex];
    let e = engine(&forest, &strategies);
    let queries = xmark_queries();
    let mut group = c.benchmark_group("fig13_asr_ji");
    group.sample_size(15);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(400));
    for id in ["Q12x", "Q13x", "Q14x", "Q15x"] {
        let q = queries.iter().find(|q| q.id == id).unwrap();
        let twig = q.twig();
        for s in strategies {
            group.bench_with_input(BenchmarkId::new(s.label(), id), &twig, |b, twig| {
                b.iter(|| e.answer(twig, s).ids.len())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_asr_ji);
criterion_main!(benches);
