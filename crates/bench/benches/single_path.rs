//! Criterion bench for Fig. 11: single-path queries across strategies at
//! three selectivities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xtwig_bench::{engine, xmark_forest};
use xtwig_core::engine::Strategy;
use xtwig_datagen::xmark_queries;

fn bench_single_path(c: &mut Criterion) {
    let (forest, _) = xmark_forest(0.01);
    let strategies = [
        Strategy::RootPaths,
        Strategy::DataPaths,
        Strategy::Edge,
        Strategy::DataGuideEdge,
        Strategy::IndexFabricEdge,
    ];
    let e = engine(&forest, &strategies);
    let queries = xmark_queries();
    let mut group = c.benchmark_group("fig11_single_path");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(400));
    for id in ["Q1x", "Q2x", "Q3x"] {
        let q = queries.iter().find(|q| q.id == id).unwrap();
        let twig = q.twig();
        for s in strategies {
            group.bench_with_input(BenchmarkId::new(s.label(), id), &twig, |b, twig| {
                b.iter(|| e.answer(twig, s).ids.len())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_single_path);
criterion_main!(benches);
