//! Criterion bench for Fig. 12: branching twig queries, all four panels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xtwig_bench::{engine, xmark_forest};
use xtwig_core::engine::Strategy;
use xtwig_datagen::xmark_queries;

fn bench_twigs(c: &mut Criterion) {
    let (forest, _) = xmark_forest(0.01);
    let strategies = [
        Strategy::RootPaths,
        Strategy::DataPaths,
        Strategy::Edge,
        Strategy::DataGuideEdge,
        Strategy::IndexFabricEdge,
    ];
    let e = engine(&forest, &strategies);
    let queries = xmark_queries();
    let mut group = c.benchmark_group("fig12_twigs");
    group.sample_size(15);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(400));
    for id in ["Q4x", "Q5x", "Q6x", "Q7x", "Q8x", "Q9x", "Q10x", "Q11x"] {
        let q = queries.iter().find(|q| q.id == id).unwrap();
        let twig = q.twig();
        for s in strategies {
            // The Edge-family baselines are orders of magnitude slower on
            // the unselective twigs; keep the bench tractable by skipping
            // them there (the fig12_twigs binary still measures them).
            if matches!(s, Strategy::Edge | Strategy::DataGuideEdge | Strategy::IndexFabricEdge)
                && matches!(id, "Q8x" | "Q9x")
            {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(s.label(), id), &twig, |b, twig| {
                b.iter(|| e.answer(twig, s).ids.len())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_twigs);
criterion_main!(benches);
