//! Ablation: delta vs. plain IdList payloads (§4.1) — lookup cost.
//!
//! Delta encoding shrinks the index (fewer leaf pages to scan) at the
//! price of per-entry decode work. This bench shows the net effect on an
//! unselective FreeIndex probe.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;
use xtwig_bench::xmark_forest;
use xtwig_core::family::{FreeIndex, PcSubpathQuery};
use xtwig_core::rootpaths::{RootPaths, RootPathsOptions};
use xtwig_rel::codec::IdListCodec;
use xtwig_storage::BufferPool;

fn bench_idlist_codec(c: &mut Criterion) {
    let (forest, _) = xmark_forest(0.01);
    let delta = RootPaths::build(
        &forest,
        Arc::new(BufferPool::in_memory(16_384)),
        RootPathsOptions { idlist: IdListCodec::Delta, ..Default::default() },
    );
    let plain = RootPaths::build(
        &forest,
        Arc::new(BufferPool::in_memory(16_384)),
        RootPathsOptions { idlist: IdListCodec::Plain, ..Default::default() },
    );
    let q =
        PcSubpathQuery::resolve(forest.dict(), &["item", "quantity"], false, Some("1")).unwrap();
    let structural =
        PcSubpathQuery::resolve(forest.dict(), &["bidder", "personref"], false, None).unwrap();

    let mut group = c.benchmark_group("ablation_idlist");
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(400));
    for (name, index) in [("delta", &delta), ("plain", &plain)] {
        group.bench_with_input(BenchmarkId::new(name, "valued"), &q, |b, q| {
            b.iter(|| index.lookup_free(q).len())
        });
        group.bench_with_input(BenchmarkId::new(name, "structural"), &structural, |b, q| {
            b.iter(|| index.lookup_free(q).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_idlist_codec);
criterion_main!(benches);
