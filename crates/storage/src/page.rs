//! Fixed-size pages.

/// Page size in bytes. 8 KiB mirrors common relational defaults (DB2 uses
/// 4–32 KiB; the paper does not state its page size, so we pick the middle
/// of that range).
pub const PAGE_SIZE: usize = 8192;

/// Identifier of a page within one storage file. Page ids are dense and
/// allocated in increasing order; there is no free list (indexes in this
/// workload are bulk-built and then read-mostly, matching the paper's
/// read-only query experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel for "no page" (e.g. a leaf with no right sibling).
    pub const INVALID: PageId = PageId(u32::MAX);

    /// True unless this is the [`PageId::INVALID`] sentinel.
    #[inline]
    pub fn is_valid(self) -> bool {
        self != PageId::INVALID
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An owned page buffer.
#[derive(Clone)]
pub struct PageBuf(pub Box<[u8; PAGE_SIZE]>);

impl Default for PageBuf {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl PageBuf {
    /// A page of zeroes.
    pub fn zeroed() -> Self {
        PageBuf(vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().expect("PAGE_SIZE box"))
    }

    /// Immutable view of the page bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.0[..]
    }

    /// Mutable view of the page bytes.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.0[..]
    }
}

impl std::fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PageBuf(..)")
    }
}

// Little-endian fixed-width field helpers used by page layouts across the
// btree and rel crates.

/// Reads a `u16` at `off`.
#[inline]
pub fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([buf[off], buf[off + 1]])
}

/// Writes a `u16` at `off`.
#[inline]
pub fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

/// Reads a `u32` at `off`.
#[inline]
pub fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// Writes a `u32` at `off`.
#[inline]
pub fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Reads a `u64` at `off`.
#[inline]
pub fn get_u64(buf: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(b)
}

/// Writes a `u64` at `off`.
#[inline]
pub fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_all_zero() {
        let p = PageBuf::zeroed();
        assert!(p.bytes().iter().all(|&b| b == 0));
        assert_eq!(p.bytes().len(), PAGE_SIZE);
    }

    #[test]
    fn field_helpers_roundtrip() {
        let mut p = PageBuf::zeroed();
        put_u16(p.bytes_mut(), 0, 0xBEEF);
        put_u32(p.bytes_mut(), 2, 0xDEAD_BEEF);
        put_u64(p.bytes_mut(), 6, 0x0123_4567_89AB_CDEF);
        assert_eq!(get_u16(p.bytes(), 0), 0xBEEF);
        assert_eq!(get_u32(p.bytes(), 2), 0xDEAD_BEEF);
        assert_eq!(get_u64(p.bytes(), 6), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn page_id_sentinel() {
        assert!(!PageId::INVALID.is_valid());
        assert!(PageId(0).is_valid());
        assert_eq!(PageId(7).to_string(), "p7");
    }

    #[test]
    fn clone_is_deep() {
        let mut a = PageBuf::zeroed();
        a.bytes_mut()[0] = 1;
        let b = a.clone();
        a.bytes_mut()[0] = 2;
        assert_eq!(b.bytes()[0], 1);
    }
}
