//! Disk manager: page allocation and transfer against a backend.
//!
//! Two backends are provided. [`MemBackend`] keeps pages in a `Vec` — used
//! by tests and by benchmarks that want to count I/O without disk noise
//! (the paper similarly disabled the OS file cache to isolate buffer-pool
//! behaviour). [`FileBackend`] stores pages in a real file for
//! out-of-memory datasets.

use crate::page::{PageBuf, PageId, PAGE_SIZE};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Abstract page store.
pub trait StorageBackend: Send + Sync {
    /// Reads page `pid` into `buf`.
    fn read_page(&self, pid: PageId, buf: &mut [u8]);
    /// Writes `buf` to page `pid`.
    fn write_page(&self, pid: PageId, buf: &[u8]);
    /// Allocates a fresh zeroed page and returns its id.
    fn allocate(&self) -> PageId;
    /// Number of allocated pages.
    fn num_pages(&self) -> u32;
    /// Flushes written pages to durable storage. A no-op for in-memory
    /// backends; `File::sync_all` for file-backed ones. Called once at
    /// the end of an index persist so a crash right after `xtwig build`
    /// cannot leave a torn index file.
    fn sync(&self) -> std::io::Result<()>;
    /// Pages living in a copy-on-write overlay rather than the sealed
    /// base image. Plain backends have no overlay and report 0.
    fn overlay_pages(&self) -> usize {
        0
    }
    /// Forks this backend into an independent copy-on-write sibling:
    /// both sides see the current page image, and writes on either side
    /// are invisible to the other. Backends that are already COW views
    /// return a *flat* sibling over the same sealed base (chains never
    /// deepen); plain backends return `None` and are wrapped in a
    /// [`CowBackend`] by [`DiskManager::fork_cow`] instead.
    fn cow_fork(&self) -> Option<Arc<dyn StorageBackend>> {
        None
    }
}

/// Copies a full page image into an owned [`PageBuf`].
fn page_from(buf: &[u8]) -> PageBuf {
    let mut page = PageBuf::zeroed();
    page.bytes_mut().copy_from_slice(buf);
    page
}

/// In-memory backend.
#[derive(Default)]
pub struct MemBackend {
    pages: Mutex<Vec<PageBuf>>,
}

impl MemBackend {
    /// Creates an empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StorageBackend for MemBackend {
    fn read_page(&self, pid: PageId, buf: &mut [u8]) {
        let pages = self.pages.lock();
        buf.copy_from_slice(pages[pid.0 as usize].bytes());
    }

    fn write_page(&self, pid: PageId, buf: &[u8]) {
        let mut pages = self.pages.lock();
        pages[pid.0 as usize].bytes_mut().copy_from_slice(buf);
    }

    fn allocate(&self) -> PageId {
        let mut pages = self.pages.lock();
        let pid = PageId(u32::try_from(pages.len()).expect("page-count overflow"));
        pages.push(PageBuf::zeroed());
        pid
    }

    fn num_pages(&self) -> u32 {
        self.pages.lock().len() as u32
    }

    fn sync(&self) -> std::io::Result<()> {
        Ok(())
    }
}

/// File-backed backend. Pages are stored contiguously at
/// `pid * PAGE_SIZE`.
#[derive(Debug)]
pub struct FileBackend {
    file: Mutex<File>,
    next: AtomicU32,
}

impl FileBackend {
    /// Creates (truncating) a backend file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        Ok(FileBackend { file: Mutex::new(file), next: AtomicU32::new(0) })
    }

    /// Opens an existing backend file at `path`.
    ///
    /// The file length must be an exact multiple of [`PAGE_SIZE`]: a
    /// misaligned length means the last page was torn (e.g. a crash mid
    /// write) and silently rounding it away would hide the corruption,
    /// so it is rejected as [`std::io::ErrorKind::InvalidData`]. A file
    /// too large for 32-bit page ids is rejected the same way instead
    /// of panicking.
    pub fn open<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        Self::open_with(path, true)
    }

    /// Opens an existing backend file without requesting write access.
    ///
    /// A persisted index is a sealed artifact served read-only through
    /// [`ExtentBackend`] (writes go to its overlay, never the file), so
    /// the reopen path must work on `chmod 444` files and read-only
    /// mounts. Calling [`StorageBackend::write_page`] on a backend
    /// opened this way panics.
    pub fn open_read_only<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        Self::open_with(path, false)
    }

    fn open_with<P: AsRef<Path>>(path: P, write: bool) -> std::io::Result<Self> {
        let file = OpenOptions::new().read(true).write(write).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "backend file length {len} is not a multiple of the page size {PAGE_SIZE} \
                     (torn or truncated file)"
                ),
            ));
        }
        let pages = u32::try_from(len / PAGE_SIZE as u64).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("backend file of {len} bytes exceeds the 32-bit page-id space"),
            )
        })?;
        Ok(FileBackend { file: Mutex::new(file), next: AtomicU32::new(pages) })
    }
}

impl StorageBackend for FileBackend {
    fn read_page(&self, pid: PageId, buf: &mut [u8]) {
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(u64::from(pid.0) * PAGE_SIZE as u64)).expect("seek");
        // A fresh page may not have been written yet; treat short reads as
        // zero fill.
        let mut read = 0usize;
        while read < buf.len() {
            match file.read(&mut buf[read..]) {
                Ok(0) => break,
                Ok(n) => read += n,
                Err(e) => panic!("page read failed: {e}"),
            }
        }
        buf[read..].fill(0);
    }

    fn write_page(&self, pid: PageId, buf: &[u8]) {
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(u64::from(pid.0) * PAGE_SIZE as u64)).expect("seek");
        file.write_all(buf).expect("page write failed");
    }

    fn allocate(&self) -> PageId {
        PageId(self.next.fetch_add(1, Ordering::SeqCst))
    }

    fn num_pages(&self) -> u32 {
        self.next.load(Ordering::SeqCst)
    }

    fn sync(&self) -> std::io::Result<()> {
        self.file.lock().sync_all()
    }
}

/// A copy-on-write view of `extent_pages` pages of a shared
/// [`FileBackend`], starting at file page `base`.
///
/// This is how a persisted index file is served: every structure's
/// buffer pool reopens over its own extent, so pool-local page ids
/// (what B+-tree nodes store) keep working unchanged — the extent
/// translates pool page `p` to file page `base + p`. The underlying
/// file is **never written through this backend**: evicted dirty pages
/// and post-open allocations land in an in-memory overlay, so index
/// maintenance on a reopened engine cannot corrupt the file on disk
/// (re-persist to a new file to make such changes durable).
pub struct ExtentBackend {
    file: Arc<FileBackend>,
    base: u32,
    extent_pages: u32,
    /// Pages written (or allocated) after open, keyed by pool-local id.
    /// Pages are `Arc`'d so [`StorageBackend::cow_fork`] can share them:
    /// a write always *replaces* the map entry with a fresh page, never
    /// mutates a shared one, so a fork's view is frozen at fork time.
    overlay: Mutex<HashMap<u32, Arc<PageBuf>>>,
    /// Pages allocated past the extent (pool-local id space only).
    overflow: AtomicU32,
}

impl ExtentBackend {
    /// Views pages `[base, base + extent_pages)` of `file`.
    ///
    /// # Panics
    /// Panics if the extent reaches past the end of the file.
    pub fn new(file: Arc<FileBackend>, base: u32, extent_pages: u32) -> Self {
        let end = u64::from(base) + u64::from(extent_pages);
        assert!(
            end <= u64::from(file.num_pages()),
            "extent [{base}, {end}) reaches past the file's {} pages",
            file.num_pages()
        );
        ExtentBackend {
            file,
            base,
            extent_pages,
            overlay: Mutex::new(HashMap::new()),
            overflow: AtomicU32::new(0),
        }
    }
}

impl StorageBackend for ExtentBackend {
    fn read_page(&self, pid: PageId, buf: &mut [u8]) {
        if let Some(page) = self.overlay.lock().get(&pid.0) {
            buf.copy_from_slice(page.bytes());
            return;
        }
        if pid.0 < self.extent_pages {
            self.file.read_page(PageId(self.base + pid.0), buf);
        } else {
            // Allocated after open but never written: zero fill.
            buf.fill(0);
        }
    }

    fn write_page(&self, pid: PageId, buf: &[u8]) {
        // Replace, never mutate: a fork sharing the old `Arc` page keeps
        // seeing the pre-write content.
        self.overlay.lock().insert(pid.0, Arc::new(page_from(buf)));
    }

    fn allocate(&self) -> PageId {
        PageId(self.extent_pages + self.overflow.fetch_add(1, Ordering::SeqCst))
    }

    fn num_pages(&self) -> u32 {
        self.extent_pages + self.overflow.load(Ordering::SeqCst)
    }

    /// No-op: writes never reach the file (copy-on-write overlay).
    fn sync(&self) -> std::io::Result<()> {
        Ok(())
    }

    /// Number of pages modified or allocated since open (0 for a
    /// read-only workload — the file alone still backs every page).
    fn overlay_pages(&self) -> usize {
        self.overlay.lock().len()
    }

    /// A flat sibling: same sealed file extent, a snapshot of the
    /// current overlay (cheap `Arc` clones per page), and an
    /// independent overflow cursor. Forking a fork yields another
    /// sibling of the *file*, so chains never deepen.
    fn cow_fork(&self) -> Option<Arc<dyn StorageBackend>> {
        let overlay = self.overlay.lock().clone();
        Some(Arc::new(ExtentBackend {
            file: self.file.clone(),
            base: self.base,
            extent_pages: self.extent_pages,
            overflow: AtomicU32::new(self.overflow.load(Ordering::SeqCst)),
            overlay: Mutex::new(overlay),
        }))
    }
}

/// A copy-on-write view over any sealed [`StorageBackend`].
///
/// This is how an engine fork snapshots a structure whose pool sits on
/// a plain backend ([`MemBackend`] from a fresh build, typically): the
/// base is frozen at fork time (`base_pages` captures its size), reads
/// fall through overlay → base → zero fill, and every write or
/// allocation lands in the overlay. Forking a `CowBackend` produces a
/// *flat* sibling over the same base — overlay pages are shared by
/// `Arc` and replaced (never mutated) on write — so generations of
/// forks cost O(overlay) each, not O(chain depth) per read.
pub struct CowBackend {
    base: Arc<dyn StorageBackend>,
    /// Base size at fork time; the base is sealed by contract (the
    /// forking pool flushed and stopped writing), so this never drifts.
    base_pages: u32,
    overlay: Mutex<HashMap<u32, Arc<PageBuf>>>,
    overflow: AtomicU32,
}

impl CowBackend {
    /// A COW view over `base`, frozen at its current size.
    pub fn over(base: Arc<dyn StorageBackend>) -> Self {
        let base_pages = base.num_pages();
        CowBackend {
            base,
            base_pages,
            overlay: Mutex::new(HashMap::new()),
            overflow: AtomicU32::new(0),
        }
    }
}

impl StorageBackend for CowBackend {
    fn read_page(&self, pid: PageId, buf: &mut [u8]) {
        if let Some(page) = self.overlay.lock().get(&pid.0) {
            buf.copy_from_slice(page.bytes());
            return;
        }
        if pid.0 < self.base_pages {
            self.base.read_page(pid, buf);
        } else {
            buf.fill(0);
        }
    }

    fn write_page(&self, pid: PageId, buf: &[u8]) {
        self.overlay.lock().insert(pid.0, Arc::new(page_from(buf)));
    }

    fn allocate(&self) -> PageId {
        PageId(self.base_pages + self.overflow.fetch_add(1, Ordering::SeqCst))
    }

    fn num_pages(&self) -> u32 {
        self.base_pages + self.overflow.load(Ordering::SeqCst)
    }

    /// No-op: writes never reach the base (copy-on-write overlay).
    fn sync(&self) -> std::io::Result<()> {
        Ok(())
    }

    fn overlay_pages(&self) -> usize {
        self.overlay.lock().len()
    }

    fn cow_fork(&self) -> Option<Arc<dyn StorageBackend>> {
        let overlay = self.overlay.lock().clone();
        Some(Arc::new(CowBackend {
            base: self.base.clone(),
            base_pages: self.base_pages,
            overflow: AtomicU32::new(self.overflow.load(Ordering::SeqCst)),
            overlay: Mutex::new(overlay),
        }))
    }
}

/// Disk manager wrapping a backend; a thin layer that owns allocation
/// accounting (physical transfer counting lives in the buffer pool).
/// The backend is held by `Arc` so [`DiskManager::fork_cow`] can share
/// a sealed base image across copy-on-write forks.
pub struct DiskManager {
    backend: Arc<dyn StorageBackend>,
}

impl DiskManager {
    /// Creates a manager over an in-memory backend.
    pub fn in_memory() -> Self {
        DiskManager { backend: Arc::new(MemBackend::new()) }
    }

    /// Creates a manager over a fresh file backend.
    pub fn in_file<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        Ok(DiskManager { backend: Arc::new(FileBackend::create(path)?) })
    }

    /// Wraps a custom backend.
    pub fn with_backend(backend: Box<dyn StorageBackend>) -> Self {
        DiskManager { backend: Arc::from(backend) }
    }

    /// Forks into an independent copy-on-write manager: the fork sees
    /// the current page image, and writes on the fork never reach this
    /// manager's backend (nor vice versa). COW-aware backends
    /// ([`ExtentBackend`], [`CowBackend`]) produce flat siblings over
    /// their sealed base; plain backends are wrapped in a fresh
    /// [`CowBackend`] over the shared `Arc`. **Contract:** the caller
    /// must have flushed this manager's dirty state down to the backend
    /// first and must not write through `self` afterwards (the buffer
    /// pool's `cow_fork` enforces both).
    pub fn fork_cow(&self) -> DiskManager {
        let backend = self
            .backend
            .cow_fork()
            .unwrap_or_else(|| Arc::new(CowBackend::over(self.backend.clone())));
        DiskManager { backend }
    }

    /// Pages in the backend's copy-on-write overlay (0 for plain
    /// backends).
    pub fn overlay_pages(&self) -> usize {
        self.backend.overlay_pages()
    }

    /// Reads page `pid` into `buf`.
    pub fn read_page(&self, pid: PageId, buf: &mut [u8]) {
        self.backend.read_page(pid, buf);
    }

    /// Writes `buf` to page `pid`.
    pub fn write_page(&self, pid: PageId, buf: &[u8]) {
        self.backend.write_page(pid, buf);
    }

    /// Allocates a fresh page.
    pub fn allocate(&self) -> PageId {
        self.backend.allocate()
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> u32 {
        self.backend.num_pages()
    }

    /// Total allocated bytes.
    pub fn allocated_bytes(&self) -> u64 {
        u64::from(self.num_pages()) * PAGE_SIZE as u64
    }

    /// Flushes the backend to durable storage (see
    /// [`StorageBackend::sync`]).
    pub fn sync(&self) -> std::io::Result<()> {
        self.backend.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(backend: &dyn StorageBackend) {
        let p0 = backend.allocate();
        let p1 = backend.allocate();
        assert_eq!(p0, PageId(0));
        assert_eq!(p1, PageId(1));
        let mut w = vec![0u8; PAGE_SIZE];
        w[0] = 0xAB;
        w[PAGE_SIZE - 1] = 0xCD;
        backend.write_page(p1, &w);
        let mut r = vec![0u8; PAGE_SIZE];
        backend.read_page(p1, &mut r);
        assert_eq!(r, w);
        backend.read_page(p0, &mut r);
        assert!(r.iter().all(|&b| b == 0), "unwritten page reads as zeroes");
        assert_eq!(backend.num_pages(), 2);
    }

    #[test]
    fn mem_backend_roundtrip() {
        roundtrip(&MemBackend::new());
    }

    #[test]
    fn file_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("xtwig-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.db");
        roundtrip(&FileBackend::create(&path).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_backend_reopen_preserves_pages() {
        let dir = std::env::temp_dir().join(format!("xtwig-disk2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reopen.db");
        {
            let b = FileBackend::create(&path).unwrap();
            let p = b.allocate();
            let mut w = vec![7u8; PAGE_SIZE];
            w[3] = 9;
            b.write_page(p, &w);
        }
        {
            let b = FileBackend::open(&path).unwrap();
            assert_eq!(b.num_pages(), 1);
            let mut r = vec![0u8; PAGE_SIZE];
            b.read_page(PageId(0), &mut r);
            assert_eq!(r[3], 9);
            assert_eq!(r[0], 7);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_misaligned_length() {
        let dir = std::env::temp_dir().join(format!("xtwig-disk3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("misaligned.db");
        {
            let b = FileBackend::create(&path).unwrap();
            let p = b.allocate();
            b.write_page(p, &vec![1u8; PAGE_SIZE]);
        }
        // Chop half a page off: a torn last page must be rejected, not
        // silently truncated away.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(PAGE_SIZE as u64 / 2).unwrap();
        drop(f);
        let err = FileBackend::open(&path).expect_err("misaligned file must not open");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("not a multiple"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sync_smoke() {
        let dir = std::env::temp_dir().join(format!("xtwig-disk4-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sync.db");
        let b = FileBackend::create(&path).unwrap();
        let p = b.allocate();
        b.write_page(p, &vec![3u8; PAGE_SIZE]);
        b.sync().unwrap();
        assert!(MemBackend::new().sync().is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn extent_backend_views_slice_and_copy_on_writes() {
        let dir = std::env::temp_dir().join(format!("xtwig-disk5-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("extent.db");
        {
            let b = FileBackend::create(&path).unwrap();
            for i in 0..4u8 {
                let p = b.allocate();
                b.write_page(p, &vec![i; PAGE_SIZE]);
            }
        }
        let file = Arc::new(FileBackend::open(&path).unwrap());
        let ext = ExtentBackend::new(file.clone(), 1, 2); // file pages 1..3
        assert_eq!(ext.num_pages(), 2);
        let mut buf = vec![0u8; PAGE_SIZE];
        ext.read_page(PageId(0), &mut buf);
        assert!(buf.iter().all(|&b| b == 1), "extent page 0 = file page 1");
        ext.read_page(PageId(1), &mut buf);
        assert!(buf.iter().all(|&b| b == 2));
        // Writes land in the overlay, never in the file.
        ext.write_page(PageId(0), &vec![9u8; PAGE_SIZE]);
        ext.read_page(PageId(0), &mut buf);
        assert!(buf.iter().all(|&b| b == 9));
        assert_eq!(ext.overlay_pages(), 1);
        let mut raw = vec![0u8; PAGE_SIZE];
        file.read_page(PageId(1), &mut raw);
        assert!(raw.iter().all(|&b| b == 1), "file untouched by extent writes");
        // Allocation extends past the extent, zero-filled until written.
        let p = ext.allocate();
        assert_eq!(p, PageId(2));
        assert_eq!(ext.num_pages(), 3);
        ext.read_page(p, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "reaches past")]
    fn extent_backend_rejects_out_of_range_extent() {
        let dir = std::env::temp_dir().join(format!("xtwig-disk6-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("extent-oob.db");
        {
            let b = FileBackend::create(&path).unwrap();
            b.allocate();
            b.write_page(PageId(0), &vec![0u8; PAGE_SIZE]);
        }
        let file = Arc::new(FileBackend::open(&path).unwrap());
        let _ = ExtentBackend::new(file, 0, 2);
    }

    #[test]
    fn cow_backend_isolates_writes_from_its_base() {
        let base: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        base.allocate();
        base.write_page(PageId(0), &vec![5u8; PAGE_SIZE]);
        let cow = CowBackend::over(base.clone());
        assert_eq!(cow.num_pages(), 1);
        let mut buf = vec![0u8; PAGE_SIZE];
        cow.read_page(PageId(0), &mut buf);
        assert!(buf.iter().all(|&b| b == 5), "fork sees the base image");
        // Writes land in the overlay only.
        cow.write_page(PageId(0), &vec![9u8; PAGE_SIZE]);
        assert_eq!(cow.overlay_pages(), 1);
        cow.read_page(PageId(0), &mut buf);
        assert!(buf.iter().all(|&b| b == 9));
        base.read_page(PageId(0), &mut buf);
        assert!(buf.iter().all(|&b| b == 5), "base untouched by COW writes");
        // Allocation extends past the frozen base, zero-filled.
        let p = cow.allocate();
        assert_eq!(p, PageId(1));
        cow.read_page(p, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(base.num_pages(), 1, "base never grows through the fork");
    }

    #[test]
    fn cow_fork_chains_stay_flat_and_independent() {
        let base: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        base.allocate();
        base.write_page(PageId(0), &vec![1u8; PAGE_SIZE]);
        let gen1 = CowBackend::over(base);
        gen1.write_page(PageId(0), &vec![2u8; PAGE_SIZE]);
        // Fork gen1 → gen2 sees gen1's overlay snapshot.
        let gen2 = gen1.cow_fork().expect("CowBackend forks");
        let mut buf = vec![0u8; PAGE_SIZE];
        gen2.read_page(PageId(0), &mut buf);
        assert!(buf.iter().all(|&b| b == 2));
        // Diverge both sides: neither write is visible to the other.
        gen2.write_page(PageId(0), &vec![3u8; PAGE_SIZE]);
        gen1.write_page(PageId(0), &vec![4u8; PAGE_SIZE]);
        gen1.read_page(PageId(0), &mut buf);
        assert!(buf.iter().all(|&b| b == 4));
        gen2.read_page(PageId(0), &mut buf);
        assert!(buf.iter().all(|&b| b == 3));
        // A long fork chain stays O(overlay): every generation reads
        // its own snapshot correctly.
        let mut current = gen2;
        for v in 10u8..20 {
            let next = current.cow_fork().expect("flat fork");
            next.write_page(PageId(0), &vec![v; PAGE_SIZE]);
            next.read_page(PageId(0), &mut buf);
            assert!(buf.iter().all(|&b| b == v));
            current = next;
        }
        // gen2's view (held via `current`'s ancestor) never moved.
        gen1.read_page(PageId(0), &mut buf);
        assert!(buf.iter().all(|&b| b == 4));
    }

    #[test]
    fn extent_backend_cow_fork_snapshots_the_overlay() {
        let dir = std::env::temp_dir().join(format!("xtwig-disk7-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("extent-fork.db");
        {
            let b = FileBackend::create(&path).unwrap();
            for i in 0..3u8 {
                let p = b.allocate();
                b.write_page(p, &vec![i; PAGE_SIZE]);
            }
        }
        let file = Arc::new(FileBackend::open(&path).unwrap());
        let ext = ExtentBackend::new(file, 0, 3);
        ext.write_page(PageId(1), &vec![7u8; PAGE_SIZE]);
        let fork = ext.cow_fork().expect("ExtentBackend forks");
        let mut buf = vec![0u8; PAGE_SIZE];
        fork.read_page(PageId(1), &mut buf);
        assert!(buf.iter().all(|&b| b == 7), "fork sees pre-fork overlay writes");
        // Post-fork writes diverge.
        ext.write_page(PageId(1), &vec![8u8; PAGE_SIZE]);
        fork.read_page(PageId(1), &mut buf);
        assert!(buf.iter().all(|&b| b == 7), "fork frozen at fork time");
        ext.read_page(PageId(1), &mut buf);
        assert!(buf.iter().all(|&b| b == 8));
        // Unwritten pages still come from the shared file on both sides.
        fork.read_page(PageId(2), &mut buf);
        assert!(buf.iter().all(|&b| b == 2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_manager_fork_cow_wraps_plain_backends() {
        let dm = DiskManager::in_memory();
        dm.allocate();
        dm.write_page(PageId(0), &vec![6u8; PAGE_SIZE]);
        assert_eq!(dm.overlay_pages(), 0, "plain backend has no overlay");
        let fork = dm.fork_cow();
        let mut buf = vec![0u8; PAGE_SIZE];
        fork.read_page(PageId(0), &mut buf);
        assert!(buf.iter().all(|&b| b == 6));
        fork.write_page(PageId(0), &vec![1u8; PAGE_SIZE]);
        assert_eq!(fork.overlay_pages(), 1);
        dm.read_page(PageId(0), &mut buf);
        assert!(buf.iter().all(|&b| b == 6), "original unaffected");
        // Forking the fork uses the COW backend's flat fork.
        let fork2 = fork.fork_cow();
        fork2.read_page(PageId(0), &mut buf);
        assert!(buf.iter().all(|&b| b == 1));
    }

    #[test]
    fn disk_manager_accounting() {
        let dm = DiskManager::in_memory();
        dm.allocate();
        dm.allocate();
        dm.allocate();
        assert_eq!(dm.num_pages(), 3);
        assert_eq!(dm.allocated_bytes(), 3 * PAGE_SIZE as u64);
    }

    #[test]
    fn concurrent_allocation_is_unique() {
        let b = std::sync::Arc::new(MemBackend::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                (0..50).map(|_| b.allocate().0).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u32> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 200);
    }
}
