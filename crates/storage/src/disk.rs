//! Disk manager: page allocation and transfer against a backend.
//!
//! Two backends are provided. [`MemBackend`] keeps pages in a `Vec` — used
//! by tests and by benchmarks that want to count I/O without disk noise
//! (the paper similarly disabled the OS file cache to isolate buffer-pool
//! behaviour). [`FileBackend`] stores pages in a real file for
//! out-of-memory datasets.

use crate::page::{PageBuf, PageId, PAGE_SIZE};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};

/// Abstract page store.
pub trait StorageBackend: Send + Sync {
    /// Reads page `pid` into `buf`.
    fn read_page(&self, pid: PageId, buf: &mut [u8]);
    /// Writes `buf` to page `pid`.
    fn write_page(&self, pid: PageId, buf: &[u8]);
    /// Allocates a fresh zeroed page and returns its id.
    fn allocate(&self) -> PageId;
    /// Number of allocated pages.
    fn num_pages(&self) -> u32;
}

/// In-memory backend.
#[derive(Default)]
pub struct MemBackend {
    pages: Mutex<Vec<PageBuf>>,
}

impl MemBackend {
    /// Creates an empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StorageBackend for MemBackend {
    fn read_page(&self, pid: PageId, buf: &mut [u8]) {
        let pages = self.pages.lock();
        buf.copy_from_slice(pages[pid.0 as usize].bytes());
    }

    fn write_page(&self, pid: PageId, buf: &[u8]) {
        let mut pages = self.pages.lock();
        pages[pid.0 as usize].bytes_mut().copy_from_slice(buf);
    }

    fn allocate(&self) -> PageId {
        let mut pages = self.pages.lock();
        let pid = PageId(u32::try_from(pages.len()).expect("page-count overflow"));
        pages.push(PageBuf::zeroed());
        pid
    }

    fn num_pages(&self) -> u32 {
        self.pages.lock().len() as u32
    }
}

/// File-backed backend. Pages are stored contiguously at
/// `pid * PAGE_SIZE`.
pub struct FileBackend {
    file: Mutex<File>,
    next: AtomicU32,
}

impl FileBackend {
    /// Creates (truncating) a backend file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        Ok(FileBackend { file: Mutex::new(file), next: AtomicU32::new(0) })
    }

    /// Opens an existing backend file at `path`.
    pub fn open<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        let pages = u32::try_from(len / PAGE_SIZE as u64).expect("file too large");
        Ok(FileBackend { file: Mutex::new(file), next: AtomicU32::new(pages) })
    }
}

impl StorageBackend for FileBackend {
    fn read_page(&self, pid: PageId, buf: &mut [u8]) {
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(u64::from(pid.0) * PAGE_SIZE as u64)).expect("seek");
        // A fresh page may not have been written yet; treat short reads as
        // zero fill.
        let mut read = 0usize;
        while read < buf.len() {
            match file.read(&mut buf[read..]) {
                Ok(0) => break,
                Ok(n) => read += n,
                Err(e) => panic!("page read failed: {e}"),
            }
        }
        buf[read..].fill(0);
    }

    fn write_page(&self, pid: PageId, buf: &[u8]) {
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(u64::from(pid.0) * PAGE_SIZE as u64)).expect("seek");
        file.write_all(buf).expect("page write failed");
    }

    fn allocate(&self) -> PageId {
        PageId(self.next.fetch_add(1, Ordering::SeqCst))
    }

    fn num_pages(&self) -> u32 {
        self.next.load(Ordering::SeqCst)
    }
}

/// Disk manager wrapping a backend; a thin layer that owns allocation
/// accounting (physical transfer counting lives in the buffer pool).
pub struct DiskManager {
    backend: Box<dyn StorageBackend>,
}

impl DiskManager {
    /// Creates a manager over an in-memory backend.
    pub fn in_memory() -> Self {
        DiskManager { backend: Box::new(MemBackend::new()) }
    }

    /// Creates a manager over a fresh file backend.
    pub fn in_file<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        Ok(DiskManager { backend: Box::new(FileBackend::create(path)?) })
    }

    /// Wraps a custom backend.
    pub fn with_backend(backend: Box<dyn StorageBackend>) -> Self {
        DiskManager { backend }
    }

    /// Reads page `pid` into `buf`.
    pub fn read_page(&self, pid: PageId, buf: &mut [u8]) {
        self.backend.read_page(pid, buf);
    }

    /// Writes `buf` to page `pid`.
    pub fn write_page(&self, pid: PageId, buf: &[u8]) {
        self.backend.write_page(pid, buf);
    }

    /// Allocates a fresh page.
    pub fn allocate(&self) -> PageId {
        self.backend.allocate()
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> u32 {
        self.backend.num_pages()
    }

    /// Total allocated bytes.
    pub fn allocated_bytes(&self) -> u64 {
        u64::from(self.num_pages()) * PAGE_SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(backend: &dyn StorageBackend) {
        let p0 = backend.allocate();
        let p1 = backend.allocate();
        assert_eq!(p0, PageId(0));
        assert_eq!(p1, PageId(1));
        let mut w = vec![0u8; PAGE_SIZE];
        w[0] = 0xAB;
        w[PAGE_SIZE - 1] = 0xCD;
        backend.write_page(p1, &w);
        let mut r = vec![0u8; PAGE_SIZE];
        backend.read_page(p1, &mut r);
        assert_eq!(r, w);
        backend.read_page(p0, &mut r);
        assert!(r.iter().all(|&b| b == 0), "unwritten page reads as zeroes");
        assert_eq!(backend.num_pages(), 2);
    }

    #[test]
    fn mem_backend_roundtrip() {
        roundtrip(&MemBackend::new());
    }

    #[test]
    fn file_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("xtwig-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.db");
        roundtrip(&FileBackend::create(&path).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_backend_reopen_preserves_pages() {
        let dir = std::env::temp_dir().join(format!("xtwig-disk2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reopen.db");
        {
            let b = FileBackend::create(&path).unwrap();
            let p = b.allocate();
            let mut w = vec![7u8; PAGE_SIZE];
            w[3] = 9;
            b.write_page(p, &w);
        }
        {
            let b = FileBackend::open(&path).unwrap();
            assert_eq!(b.num_pages(), 1);
            let mut r = vec![0u8; PAGE_SIZE];
            b.read_page(PageId(0), &mut r);
            assert_eq!(r[3], 9);
            assert_eq!(r[0], 7);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_manager_accounting() {
        let dm = DiskManager::in_memory();
        dm.allocate();
        dm.allocate();
        dm.allocate();
        assert_eq!(dm.num_pages(), 3);
        assert_eq!(dm.allocated_bytes(), 3 * PAGE_SIZE as u64);
    }

    #[test]
    fn concurrent_allocation_is_unique() {
        let b = std::sync::Arc::new(MemBackend::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                (0..50).map(|_| b.allocate().0).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u32> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 200);
    }
}
