//! I/O statistics counters.
//!
//! The paper reports warm-cache execution times on DB2; the cross-machine
//! stable analogue is the count of *logical* page accesses (buffer-pool
//! requests) and *physical* reads (buffer misses). The benchmark harness
//! reports both, alongside wall-clock time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Thread-safe I/O counters shared by a buffer pool and its clients.
#[derive(Debug, Default)]
pub struct IoStats {
    /// Buffer-pool page requests (hits + misses).
    pub logical_reads: AtomicU64,
    /// Pages fetched from the backend on a miss.
    pub physical_reads: AtomicU64,
    /// Pages written back to the backend.
    pub physical_writes: AtomicU64,
    /// Pages evicted from the pool.
    pub evictions: AtomicU64,
    /// Pages allocated.
    pub allocations: AtomicU64,
    /// Frame pins acquired (cumulative; never decremented on unpin).
    pub pins: AtomicU64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn record_logical(&self) {
        self.logical_reads.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_physical_read(&self) {
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_physical_write(&self) {
        self.physical_writes.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_allocation(&self) {
        self.allocations.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_pin(&self) {
        self.pins.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            logical_reads: self.logical_reads.load(Ordering::Relaxed),
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            physical_writes: self.physical_writes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
            pins: self.pins.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.logical_reads.store(0, Ordering::Relaxed);
        self.physical_reads.store(0, Ordering::Relaxed);
        self.physical_writes.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.allocations.store(0, Ordering::Relaxed);
        self.pins.store(0, Ordering::Relaxed);
    }
}

/// Immutable copy of [`IoStats`] counters, with delta arithmetic for
/// before/after measurements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    /// Buffer-pool page requests (hits + misses).
    pub logical_reads: u64,
    /// Pages fetched from the backend on a miss.
    pub physical_reads: u64,
    /// Pages written back to the backend.
    pub physical_writes: u64,
    /// Pages evicted from the pool.
    pub evictions: u64,
    /// Pages allocated.
    pub allocations: u64,
    /// Frame pins acquired.
    pub pins: u64,
}

impl IoStatsSnapshot {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            logical_reads: self.logical_reads.saturating_sub(earlier.logical_reads),
            physical_reads: self.physical_reads.saturating_sub(earlier.physical_reads),
            physical_writes: self.physical_writes.saturating_sub(earlier.physical_writes),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            allocations: self.allocations.saturating_sub(earlier.allocations),
            pins: self.pins.saturating_sub(earlier.pins),
        }
    }

    /// Buffer hit ratio in [0, 1]; 1.0 when there were no reads.
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            1.0
        } else {
            1.0 - (self.physical_reads as f64 / self.logical_reads as f64)
        }
    }
}

/// Cheap cloneable handle onto one pool's counters, for observability
/// layers that sample page reads/misses/pins without holding the pool
/// itself (obtained via `BufferPool::counters`).
///
/// Reads are single relaxed atomic loads; cloning is one `Arc` clone.
/// The handle stays valid (and keeps its final values) after the pool
/// is dropped.
#[derive(Debug, Clone)]
pub struct PoolCounters {
    stats: Arc<IoStats>,
}

impl PoolCounters {
    /// Wraps a pool's shared counters.
    pub(crate) fn new(stats: Arc<IoStats>) -> Self {
        PoolCounters { stats }
    }

    /// Buffer-pool page requests (hits + misses).
    pub fn page_reads(&self) -> u64 {
        self.stats.logical_reads.load(Ordering::Relaxed)
    }

    /// Buffer misses (pages read from the backend).
    pub fn misses(&self) -> u64 {
        self.stats.physical_reads.load(Ordering::Relaxed)
    }

    /// Frame pins acquired (cumulative).
    pub fn pins(&self) -> u64 {
        self.stats.pins.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }
}

impl std::fmt::Display for IoStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "logical={} physical_r={} physical_w={} evict={} alloc={} hit={:.1}%",
            self.logical_reads,
            self.physical_reads,
            self.physical_writes,
            self.evictions,
            self.allocations,
            self.hit_ratio() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = IoStats::new();
        s.record_logical();
        s.record_logical();
        s.record_physical_read();
        s.record_physical_write();
        s.record_eviction();
        s.record_allocation();
        s.record_pin();
        let snap = s.snapshot();
        assert_eq!(snap.logical_reads, 2);
        assert_eq!(snap.physical_reads, 1);
        assert_eq!(snap.physical_writes, 1);
        assert_eq!(snap.evictions, 1);
        assert_eq!(snap.allocations, 1);
        assert_eq!(snap.pins, 1);
        s.reset();
        assert_eq!(s.snapshot(), IoStatsSnapshot::default());
    }

    #[test]
    fn snapshot_delta() {
        let s = IoStats::new();
        s.record_logical();
        let a = s.snapshot();
        s.record_logical();
        s.record_physical_read();
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.logical_reads, 1);
        assert_eq!(d.physical_reads, 1);
    }

    #[test]
    fn hit_ratio_bounds() {
        let empty = IoStatsSnapshot::default();
        assert_eq!(empty.hit_ratio(), 1.0);
        let all_miss =
            IoStatsSnapshot { logical_reads: 4, physical_reads: 4, ..Default::default() };
        assert_eq!(all_miss.hit_ratio(), 0.0);
        let half = IoStatsSnapshot { logical_reads: 4, physical_reads: 2, ..Default::default() };
        assert!((half.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn pool_counters_track_shared_stats() {
        let stats = Arc::new(IoStats::new());
        let handle = PoolCounters::new(stats.clone());
        let clone = handle.clone();
        stats.record_logical();
        stats.record_physical_read();
        stats.record_pin();
        stats.record_pin();
        assert_eq!(handle.page_reads(), 1);
        assert_eq!(handle.misses(), 1);
        assert_eq!(clone.pins(), 2);
        drop(stats);
        // The handle outlives its pool and keeps the final values.
        assert_eq!(clone.snapshot().pins, 2);
    }
}
