//! Page-based storage substrate.
//!
//! The paper runs its indexes inside DB2 with a 40 MB buffer pool and the
//! OS file cache disabled, so that the reported numbers reflect database
//! buffer management rather than memory-resident data (§5.1.1). This crate
//! is the equivalent substrate for the reproduction:
//!
//! * [`page`] — fixed 8 KiB pages.
//! * [`disk`] — a disk manager with file-backed and in-memory backends.
//! * [`buffer`] — a buffer pool with LRU eviction, pin counts, and dirty
//!   tracking.
//! * [`stats`] — logical/physical I/O counters; logical page accesses are
//!   the machine-independent metric the benchmark harness reports next to
//!   wall-clock times.

pub mod buffer;
pub mod disk;
pub mod page;
pub mod stats;

pub use buffer::{BufferPool, PageReadGuard, PageWriteGuard};
pub use disk::{CowBackend, DiskManager, ExtentBackend, FileBackend, MemBackend, StorageBackend};
pub use page::{PageBuf, PageId, PAGE_SIZE};
pub use stats::{IoStats, IoStatsSnapshot, PoolCounters};
