//! Buffer pool with LRU eviction, pin counts, and dirty-page write-back.
//!
//! Mirrors the role of the paper's 40 MB DB2 buffer pool (§5.1.1): all
//! page access from the B+-tree and heap-file layers goes through
//! [`BufferPool::fetch`] / [`BufferPool::fetch_mut`], so logical and
//! physical I/O are observable per experiment.
//!
//! Concurrency: the page table and replacement state sit behind one
//! mutex; page contents sit behind per-frame `RwLock`s. Pins are counted
//! so a resident, in-use page is never evicted. Eviction picks the
//! least-recently-used unpinned frame (timestamp scan — O(frames), which
//! is fine at the pool sizes used here).
//!
//! Read-path concurrency audit (the invariants `xtwig-service` relies
//! on; guarded by `tests/pool_stress.rs`):
//!
//! * A frame's pin count only rises 0→1 under the table mutex (hit path
//!   in `lookup_or_load`, install path in `install`), so `pick_victim`
//!   — also under the mutex — can never evict a frame that a guard is
//!   about to reference.
//! * Page-content locks are only acquired while holding the table mutex
//!   for frames with **zero** pins (eviction write-back, `flush_all`),
//!   where no outstanding guard can hold the content lock — otherwise a
//!   reader that holds a page guard and fetches a second page (which
//!   needs the mutex) could deadlock against the mutex holder waiting
//!   on its page lock. This is why `flush_all` skips pinned frames.
//! * `clear_cache` requires quiescence (it panics on pinned pages); it
//!   is a bench/ablation facility, not a serving-path operation.
//!
//! Write-path concurrency audit (for the sharded index builds in
//! `xtwig-core::parallel`): `allocate` is safe to call from any number
//! of threads — the backend hands out ids under its own mutex/atomic,
//! `install` pins the fresh frame under the table mutex before the
//! guard is handed out, and the returned write guard owns the content
//! lock. What concurrent allocation does **not** give is a
//! deterministic id order, which is why the sharded builders
//! deliberately keep all allocation on the calling thread (workers only
//! enumerate and sort rows) so a parallel build's page image stays
//! byte-identical to the sequential one. `pool_stress` exercises the
//! multi-threaded allocate path.

use crate::disk::DiskManager;
use crate::page::{PageBuf, PageId, PAGE_SIZE};
use crate::stats::{IoStats, PoolCounters};
use parking_lot::{ArcRwLockReadGuard, ArcRwLockWriteGuard, Mutex, RawRwLock, RwLock};
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

struct Frame {
    data: Arc<RwLock<PageBuf>>,
    pin: AtomicUsize,
    dirty: AtomicBool,
    last_used: AtomicU64,
}

struct PoolInner {
    /// page id -> frame index
    table: HashMap<PageId, usize>,
    /// frame index -> resident page id (INVALID when free)
    resident: Vec<PageId>,
    free: Vec<usize>,
}

/// A fixed-capacity page cache over a [`DiskManager`].
pub struct BufferPool {
    disk: DiskManager,
    frames: Vec<Frame>,
    inner: Mutex<PoolInner>,
    clock: AtomicU64,
    stats: Arc<IoStats>,
}

impl BufferPool {
    /// Creates a pool of `capacity` frames over `disk`.
    pub fn new(disk: DiskManager, capacity: usize) -> Self {
        assert!(capacity >= 2, "buffer pool needs at least 2 frames");
        let frames = (0..capacity)
            .map(|_| Frame {
                data: Arc::new(RwLock::new(PageBuf::zeroed())),
                pin: AtomicUsize::new(0),
                dirty: AtomicBool::new(false),
                last_used: AtomicU64::new(0),
            })
            .collect();
        BufferPool {
            disk,
            frames,
            inner: Mutex::new(PoolInner {
                table: HashMap::new(),
                resident: vec![PageId::INVALID; capacity],
                free: (0..capacity).rev().collect(),
            }),
            clock: AtomicU64::new(1),
            stats: Arc::new(IoStats::new()),
        }
    }

    /// Convenience: in-memory pool with `capacity` frames.
    pub fn in_memory(capacity: usize) -> Self {
        BufferPool::new(DiskManager::in_memory(), capacity)
    }

    /// Pool sized to hold `bytes` of pages (rounded up), like "a 40 MB
    /// buffer pool".
    pub fn with_bytes(disk: DiskManager, bytes: u64) -> Self {
        // Saturate rather than unwrap: a byte budget beyond the address
        // space clamps to the largest representable frame count.
        let frames = bytes.div_ceil(PAGE_SIZE as u64).min(u64::from(u32::MAX)) as usize;
        BufferPool::new(disk, frames.max(2))
    }

    /// The shared I/O statistics.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// A cheap cloneable handle onto this pool's page-read/miss/pin
    /// counters, for observability layers that sample them without
    /// holding the pool.
    pub fn counters(&self) -> PoolCounters {
        PoolCounters::new(self.stats.clone())
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Pages allocated in the underlying disk manager.
    pub fn num_pages(&self) -> u32 {
        self.disk.num_pages()
    }

    /// Bytes allocated in the underlying disk manager.
    pub fn allocated_bytes(&self) -> u64 {
        self.disk.allocated_bytes()
    }

    /// FNV-1a hash over the byte content of every allocated page, in
    /// page-id order. Dirty resident frames are read through the pool,
    /// so the hash reflects the latest content even before write-back.
    /// Two pools built the same way hash equal iff their page images
    /// are byte-identical — the assertion behind the sharded-build
    /// equivalence tests (`QueryEngine::structure_digest`).
    pub fn content_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for pid in 0..self.num_pages() {
            let guard = self.fetch(PageId(pid));
            for &b in guard.iter() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// Pages in the underlying backend's copy-on-write overlay (0 for
    /// plain backends) — observability for the MVCC fork path.
    pub fn overlay_pages(&self) -> usize {
        self.disk.overlay_pages()
    }

    /// Forks this pool into an independent copy-on-write sibling: the
    /// fork starts cold over a [`DiskManager::fork_cow`] view of the
    /// current page image, so writes through the fork never reach this
    /// pool's backend (and vice versa).
    ///
    /// Dirty resident frames are flushed down to the backend first so
    /// the fork's view is complete. Frames pinned *dirty* by an
    /// outstanding write guard cannot be flushed safely (see
    /// [`BufferPool::flush_all`]); the fork is refused with the skipped
    /// count — `Err` means a concurrent writer owns part of the image,
    /// and the caller retries once that writer finishes. Read pins on
    /// clean frames never block a fork.
    ///
    /// **Contract:** after a successful fork, this pool must not be
    /// written again — it is the sealed base the fork's COW view reads
    /// through. The engine-level fork upholds this by always forking
    /// the newest generation and retiring the old one to read-only
    /// service.
    pub fn cow_fork(&self) -> Result<BufferPool, usize> {
        let skipped = self.flush_all();
        if skipped > 0 {
            return Err(skipped);
        }
        Ok(BufferPool::new(self.disk.fork_cow(), self.capacity()))
    }

    /// Allocates a fresh zeroed page and returns it pinned for writing.
    pub fn allocate(&self) -> (PageId, PageWriteGuard<'_>) {
        let pid = self.disk.allocate();
        self.stats.record_allocation();
        let frame_idx = self.install(pid, false);
        let frame = &self.frames[frame_idx];
        frame.dirty.store(true, Ordering::Relaxed);
        let guard = frame.data.write_arc();
        (
            pid,
            PageWriteGuard {
                guard,
                _pin: PinToken { pool: self, frame_idx },
                pool: self,
                frame_idx,
            },
        )
    }

    /// Fetches page `pid` for reading.
    pub fn fetch(&self, pid: PageId) -> PageReadGuard<'_> {
        self.stats.record_logical();
        let frame_idx = self.lookup_or_load(pid);
        let guard = self.frames[frame_idx].data.read_arc();
        PageReadGuard { guard, _pin: PinToken { pool: self, frame_idx } }
    }

    /// Fetches page `pid` for writing; marks it dirty.
    pub fn fetch_mut(&self, pid: PageId) -> PageWriteGuard<'_> {
        self.stats.record_logical();
        let frame_idx = self.lookup_or_load(pid);
        let frame = &self.frames[frame_idx];
        frame.dirty.store(true, Ordering::Relaxed);
        let guard = frame.data.write_arc();
        PageWriteGuard { guard, _pin: PinToken { pool: self, frame_idx }, pool: self, frame_idx }
    }

    /// Writes all dirty **unpinned** resident pages back to disk, and
    /// returns the number of dirty pages it had to *skip* because they
    /// were pinned.
    ///
    /// Pinned frames are skipped: their content lock may be held by an
    /// outstanding guard whose owner could be blocked on the table
    /// mutex we hold here (see the module-level audit) — and they stay
    /// dirty, so eviction or a later flush still writes them back. For
    /// cache hygiene ([`BufferPool::clear_cache`]) that is harmless and
    /// the count is ignored; a persistence pass, however, needs every
    /// page on the backend, so it treats `skipped > 0` as an error (a
    /// concurrent writer holds part of the image it is copying).
    pub fn flush_all(&self) -> usize {
        let inner = self.inner.lock();
        let mut skipped = 0usize;
        for (idx, &pid) in inner.resident.iter().enumerate() {
            if !pid.is_valid() {
                continue;
            }
            let frame = &self.frames[idx];
            if frame.pin.load(Ordering::SeqCst) != 0 {
                if frame.dirty.load(Ordering::Relaxed) {
                    skipped += 1;
                }
                continue;
            }
            if frame.dirty.swap(false, Ordering::Relaxed) {
                let data = frame.data.read();
                self.disk.write_page(pid, data.bytes());
                self.stats.record_physical_write();
            }
        }
        skipped
    }

    /// Drops every clean resident page so the next access is a physical
    /// read — the "cold cache" setting of the paper's omitted experiment.
    /// Dirty pages are flushed first. Panics if any page is pinned.
    pub fn clear_cache(&self) {
        self.flush_all();
        let mut inner = self.inner.lock();
        let mut freed = Vec::new();
        for (idx, pid) in inner.resident.iter_mut().enumerate() {
            if !pid.is_valid() {
                continue;
            }
            assert_eq!(
                self.frames[idx].pin.load(Ordering::SeqCst),
                0,
                "clear_cache with pinned pages"
            );
            freed.push((idx, *pid));
            *pid = PageId::INVALID;
        }
        for (idx, pid) in freed {
            inner.table.remove(&pid);
            inner.free.push(idx);
        }
    }

    fn touch(&self, frame_idx: usize) {
        let t = self.clock.fetch_add(1, Ordering::Relaxed);
        self.frames[frame_idx].last_used.store(t, Ordering::Relaxed);
    }

    /// Finds `pid`'s frame, loading it from disk (with eviction) if absent.
    /// The returned frame has its pin count already incremented.
    fn lookup_or_load(&self, pid: PageId) -> usize {
        {
            let inner = self.inner.lock();
            if let Some(&idx) = inner.table.get(&pid) {
                self.frames[idx].pin.fetch_add(1, Ordering::SeqCst);
                self.stats.record_pin();
                self.touch(idx);
                return idx;
            }
        }
        self.stats.record_physical_read();
        self.install(pid, true)
    }

    /// Installs `pid` into a frame (evicting if needed), optionally
    /// loading its content from disk. Returns the pinned frame index.
    fn install(&self, pid: PageId, load: bool) -> usize {
        let mut inner = self.inner.lock();
        // Re-check: another thread may have installed it concurrently.
        if let Some(&idx) = inner.table.get(&pid) {
            self.frames[idx].pin.fetch_add(1, Ordering::SeqCst);
            self.stats.record_pin();
            self.touch(idx);
            return idx;
        }
        let idx = if let Some(idx) = inner.free.pop() {
            idx
        } else {
            let victim = self.pick_victim(&inner);
            let old = inner.resident[victim];
            let frame = &self.frames[victim];
            if frame.dirty.swap(false, Ordering::Relaxed) {
                let data = frame.data.read();
                self.disk.write_page(old, data.bytes());
                self.stats.record_physical_write();
            }
            inner.table.remove(&old);
            self.stats.record_eviction();
            victim
        };
        let frame = &self.frames[idx];
        frame.pin.store(1, Ordering::SeqCst);
        self.stats.record_pin();
        {
            let mut data = frame.data.write();
            if load {
                self.disk.read_page(pid, data.bytes_mut());
            } else {
                data.bytes_mut().fill(0);
            }
        }
        inner.table.insert(pid, idx);
        inner.resident[idx] = pid;
        self.touch(idx);
        idx
    }

    fn pick_victim(&self, inner: &PoolInner) -> usize {
        let mut best: Option<(u64, usize)> = None;
        for (idx, &pid) in inner.resident.iter().enumerate() {
            if !pid.is_valid() {
                continue;
            }
            let frame = &self.frames[idx];
            if frame.pin.load(Ordering::SeqCst) != 0 {
                continue;
            }
            let t = frame.last_used.load(Ordering::Relaxed);
            if best.is_none_or(|(bt, _)| t < bt) {
                best = Some((t, idx));
            }
        }
        best.map(|(_, idx)| idx)
            .expect("buffer pool exhausted: every frame is pinned (pool too small for working set)")
    }
}

/// Decrements the frame pin count on drop. Declared *after* the page
/// guard inside [`PageReadGuard`]/[`PageWriteGuard`] so the data lock is
/// released before the pin drops (eviction then never waits on a lock).
struct PinToken<'a> {
    pool: &'a BufferPool,
    frame_idx: usize,
}

impl Drop for PinToken<'_> {
    fn drop(&mut self) {
        self.pool.frames[self.frame_idx].pin.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Shared read access to a pinned page.
pub struct PageReadGuard<'a> {
    guard: ArcRwLockReadGuard<RawRwLock, PageBuf>,
    _pin: PinToken<'a>,
}

impl Deref for PageReadGuard<'_> {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.guard.bytes()
    }
}

/// Exclusive write access to a pinned, dirty page.
pub struct PageWriteGuard<'a> {
    guard: ArcRwLockWriteGuard<RawRwLock, PageBuf>,
    _pin: PinToken<'a>,
    pool: &'a BufferPool,
    frame_idx: usize,
}

impl Deref for PageWriteGuard<'_> {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.guard.bytes()
    }
}

impl DerefMut for PageWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.guard.bytes_mut()
    }
}

impl PageWriteGuard<'_> {
    /// The pool this page belongs to (used by tests).
    pub fn pool_capacity(&self) -> usize {
        let _ = self.frame_idx;
        self.pool.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::put_u64;

    #[test]
    fn allocate_write_read_roundtrip() {
        let pool = BufferPool::in_memory(4);
        let (pid, mut g) = pool.allocate();
        put_u64(&mut g, 0, 42);
        drop(g);
        let g = pool.fetch(pid);
        assert_eq!(crate::page::get_u64(&g, 0), 42);
    }

    #[test]
    fn counters_handle_counts_reads_misses_and_pins() {
        let pool = BufferPool::in_memory(4);
        let counters = pool.counters();
        let (pid, g) = pool.allocate();
        assert_eq!(counters.pins(), 1); // allocate pins the fresh frame
        drop(g);
        let g = pool.fetch(pid); // hit: logical, no miss, one more pin
        drop(g);
        assert_eq!(counters.page_reads(), 1);
        assert_eq!(counters.misses(), 0);
        assert_eq!(counters.pins(), 2);
        pool.clear_cache();
        let g = pool.fetch(pid); // cold: logical + miss + pin
        drop(g);
        assert_eq!(counters.page_reads(), 2);
        assert_eq!(counters.misses(), 1);
        assert_eq!(counters.pins(), 3);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let pool = BufferPool::in_memory(2);
        let mut pids = Vec::new();
        for i in 0..10u64 {
            let (pid, mut g) = pool.allocate();
            put_u64(&mut g, 0, i);
            pids.push(pid);
        }
        // Everything must still be readable after heavy eviction.
        for (i, &pid) in pids.iter().enumerate() {
            let g = pool.fetch(pid);
            assert_eq!(crate::page::get_u64(&g, 0), i as u64);
        }
        let snap = pool.stats().snapshot();
        assert!(snap.evictions > 0);
        assert!(snap.physical_writes > 0);
    }

    #[test]
    fn warm_cache_has_no_physical_reads() {
        let pool = BufferPool::in_memory(8);
        let (pid, mut g) = pool.allocate();
        put_u64(&mut g, 0, 7);
        drop(g);
        pool.stats().reset();
        for _ in 0..5 {
            let g = pool.fetch(pid);
            assert_eq!(crate::page::get_u64(&g, 0), 7);
        }
        let snap = pool.stats().snapshot();
        assert_eq!(snap.logical_reads, 5);
        assert_eq!(snap.physical_reads, 0);
        assert_eq!(snap.hit_ratio(), 1.0);
    }

    #[test]
    fn clear_cache_forces_cold_reads() {
        let pool = BufferPool::in_memory(8);
        let (pid, mut g) = pool.allocate();
        put_u64(&mut g, 0, 9);
        drop(g);
        pool.clear_cache();
        pool.stats().reset();
        let g = pool.fetch(pid);
        assert_eq!(crate::page::get_u64(&g, 0), 9);
        assert_eq!(pool.stats().snapshot().physical_reads, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let pool = BufferPool::in_memory(2);
        let (p0, g) = pool.allocate();
        drop(g);
        let (p1, g) = pool.allocate();
        drop(g);
        // Touch p0 so p1 is LRU.
        drop(pool.fetch(p0));
        let (_p2, g) = pool.allocate(); // must evict p1
        drop(g);
        pool.stats().reset();
        drop(pool.fetch(p0)); // still resident
        assert_eq!(pool.stats().snapshot().physical_reads, 0);
        drop(pool.fetch(p1)); // was evicted
        assert_eq!(pool.stats().snapshot().physical_reads, 1);
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let pool = BufferPool::in_memory(3);
        let (p0, mut g0) = pool.allocate();
        put_u64(&mut g0, 0, 123);
        // Keep g0 pinned while cycling many pages through the pool.
        for _ in 0..20 {
            let (_, g) = pool.allocate();
            drop(g);
        }
        assert_eq!(crate::page::get_u64(&g0, 0), 123);
        drop(g0);
        let g = pool.fetch(p0);
        assert_eq!(crate::page::get_u64(&g, 0), 123);
    }

    #[test]
    #[should_panic(expected = "every frame is pinned")]
    fn exhausted_pool_panics() {
        let pool = BufferPool::in_memory(2);
        let (_, _g1) = pool.allocate();
        let (_, _g2) = pool.allocate();
        let (_, _g3) = pool.allocate();
    }

    #[test]
    fn concurrent_readers_share_pages() {
        let pool = std::sync::Arc::new(BufferPool::in_memory(16));
        let mut pids = Vec::new();
        for i in 0..8u64 {
            let (pid, mut g) = pool.allocate();
            put_u64(&mut g, 0, i * 11);
            pids.push(pid);
        }
        pool.flush_all();
        let pids = std::sync::Arc::new(pids);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let pool = pool.clone();
            let pids = pids.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..200 {
                    let pid = pids[round % pids.len()];
                    let g = pool.fetch(pid);
                    assert_eq!(crate::page::get_u64(&g, 0), (round % pids.len()) as u64 * 11);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn cow_fork_gives_an_isolated_writable_sibling() {
        let pool = BufferPool::in_memory(4);
        let (pid, mut g) = pool.allocate();
        put_u64(&mut g, 0, 11);
        drop(g);
        // Dirty-resident state must be visible through the fork (the
        // fork flushes first).
        let fork = pool.cow_fork().expect("no writer holds pages");
        assert_eq!(fork.capacity(), pool.capacity());
        assert_eq!(fork.num_pages(), pool.num_pages());
        assert_eq!(crate::page::get_u64(&fork.fetch(pid), 0), 11);
        // Writes through the fork land in its COW overlay only.
        put_u64(&mut fork.fetch_mut(pid), 0, 22);
        fork.flush_all();
        assert_eq!(fork.overlay_pages(), 1);
        assert_eq!(crate::page::get_u64(&fork.fetch(pid), 0), 22);
        assert_eq!(crate::page::get_u64(&pool.fetch(pid), 0), 11, "base image frozen");
        // Fork allocations never grow the base.
        let (p2, g) = fork.allocate();
        drop(g);
        assert_eq!(p2.0, pool.num_pages());
        assert_eq!(pool.num_pages(), 1);
        // A fork of the fork sees the fork's state (flat chain).
        let fork2 = fork.cow_fork().expect("fork of fork");
        assert_eq!(crate::page::get_u64(&fork2.fetch(pid), 0), 22);
    }

    #[test]
    fn cow_fork_refuses_while_a_writer_pins_a_dirty_page() {
        let pool = BufferPool::in_memory(4);
        let (_pid, mut g) = pool.allocate();
        put_u64(&mut g, 0, 5);
        // An outstanding write guard means the image could be torn.
        assert_eq!(pool.cow_fork().err(), Some(1));
        drop(g);
        assert!(pool.cow_fork().is_ok(), "fork succeeds once the writer finishes");
    }

    #[test]
    fn with_bytes_sizes_pool() {
        let pool = BufferPool::with_bytes(DiskManager::in_memory(), 40 * 1024 * 1024);
        assert_eq!(pool.capacity(), 40 * 1024 * 1024 / PAGE_SIZE);
    }
}
