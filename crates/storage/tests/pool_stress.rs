//! Multi-threaded `BufferPool` stress: guards the read-path concurrency
//! audit (see `src/buffer.rs` module docs) that `xtwig-service` relies
//! on for serving concurrent queries over shared index pools.
//!
//! Shape: a deliberately small pool (so eviction churns constantly)
//! under N reader threads doing pin/verify/unpin cycles, one writer
//! thread mutating a disjoint set of pages, and one thread hammering
//! `flush_all` (which must skip pinned frames rather than deadlock).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use xtwig_storage::page::{get_u64, put_u64, PageId};
use xtwig_storage::BufferPool;

/// Tiny deterministic generator (the vendored `rand` stub is aimed at
/// datagen; an LCG is all the churn schedule needs).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn seed_pages(pool: &BufferPool, n: u64, tag: u64) -> Vec<PageId> {
    (0..n)
        .map(|i| {
            let (pid, mut g) = pool.allocate();
            put_u64(&mut g, 0, tag + i * 17);
            pid
        })
        .collect()
}

#[test]
fn concurrent_readers_writer_and_flush_over_small_pool() {
    // 8 frames, 48 resident pages: every fetch is likely an eviction.
    let pool = Arc::new(BufferPool::in_memory(8));
    let read_pages = Arc::new(seed_pages(&pool, 32, 1_000));
    let write_pages = Arc::new(seed_pages(&pool, 16, 9_000));
    let stop = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    // Readers: pin, verify, occasionally hold a second pin (two guards
    // per thread at most — 4 threads * 2 pins < 8 frames, so the pool
    // can always make progress).
    for t in 0..4u64 {
        let pool = pool.clone();
        let pages = read_pages.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = Lcg(0xC0FFEE ^ t);
            for round in 0..2_000 {
                let i = (rng.next() as usize) % pages.len();
                let g = pool.fetch(pages[i]);
                assert_eq!(get_u64(&g, 0), 1_000 + i as u64 * 17, "round {round}");
                if rng.next().is_multiple_of(4) {
                    let j = (rng.next() as usize) % pages.len();
                    let g2 = pool.fetch(pages[j]);
                    assert_eq!(get_u64(&g2, 0), 1_000 + j as u64 * 17);
                }
            }
        }));
    }
    // Writer: bump counters on its own pages; values stay self-consistent.
    {
        let pool = pool.clone();
        let pages = write_pages.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = Lcg(0xBEEF);
            for _ in 0..2_000 {
                let i = (rng.next() as usize) % pages.len();
                let mut g = pool.fetch_mut(pages[i]);
                let v = get_u64(&g, 0);
                assert_eq!((v - 9_000 - i as u64 * 17) % 1_000_000, 0);
                put_u64(&mut g, 0, v + 1_000_000);
            }
        }));
    }
    // Flusher: flush_all concurrently with held pins must neither
    // deadlock nor panic (pinned frames are skipped).
    let flusher = {
        let pool = pool.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                pool.flush_all();
                std::thread::yield_now();
            }
        })
    };

    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    flusher.join().unwrap();

    // Post-churn: every page still readable with its final value intact.
    for (i, &pid) in read_pages.iter().enumerate() {
        let g = pool.fetch(pid);
        assert_eq!(get_u64(&g, 0), 1_000 + i as u64 * 17);
    }
    let mut writes = 0u64;
    for (i, &pid) in write_pages.iter().enumerate() {
        let g = pool.fetch(pid);
        let v = get_u64(&g, 0);
        assert_eq!((v - 9_000 - i as u64 * 17) % 1_000_000, 0);
        writes += (v - 9_000 - i as u64 * 17) / 1_000_000;
    }
    assert_eq!(writes, 2_000, "every write landed exactly once");
    let snap = pool.stats().snapshot();
    assert!(snap.evictions > 0, "small pool must churn");
    assert!(snap.logical_reads >= snap.physical_reads);
}

#[test]
fn flush_all_with_pinned_dirty_page_skips_it() {
    let pool = BufferPool::in_memory(4);
    let (pid, mut g) = pool.allocate();
    put_u64(&mut g, 0, 7);
    // Dirty + pinned: flush_all must return without touching it, and
    // report the skip so persistence can refuse to copy a torn image.
    assert_eq!(pool.flush_all(), 1);
    put_u64(&mut g, 0, 8);
    drop(g);
    // Unpinned now: the page is still dirty and a flush writes it back,
    // skipping nothing.
    let before = pool.stats().snapshot().physical_writes;
    assert_eq!(pool.flush_all(), 0);
    assert!(pool.stats().snapshot().physical_writes > before);
    assert_eq!(get_u64(&pool.fetch(pid), 0), 8);
}

#[test]
fn concurrent_allocation_hands_out_distinct_pages() {
    // The write-path audit in `buffer.rs`: allocate from many threads
    // must hand out distinct ids, never lose a page, and leave each
    // thread's writes intact. (The sharded index builders keep
    // allocation single-threaded for deterministic layout, but the pool
    // itself must stay correct under concurrent allocation.)
    let pool = Arc::new(BufferPool::in_memory(64));
    let mut handles = Vec::new();
    for t in 0..6u64 {
        let pool = pool.clone();
        handles.push(std::thread::spawn(move || {
            let mut mine = Vec::new();
            for i in 0..200u64 {
                let (pid, mut g) = pool.allocate();
                put_u64(&mut g, 0, t * 1_000_000 + i);
                drop(g);
                mine.push((pid, t * 1_000_000 + i));
            }
            mine
        }));
    }
    let mut all: Vec<(xtwig_storage::PageId, u64)> = Vec::new();
    for h in handles {
        all.extend(h.join().unwrap());
    }
    assert_eq!(all.len(), 6 * 200);
    let mut ids: Vec<u32> = all.iter().map(|(p, _)| p.0).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 6 * 200, "no page id handed out twice");
    assert_eq!(pool.num_pages(), 6 * 200);
    for (pid, expected) in all {
        assert_eq!(get_u64(&pool.fetch(pid), 0), expected);
    }
}

#[test]
fn pin_unpin_churn_many_threads_exact_counts() {
    // Pure pin/unpin churn on a pool exactly the size of the hot set:
    // no evictions, every fetch a hit, pins balancing back to zero.
    let pool = Arc::new(BufferPool::in_memory(8));
    let pages = Arc::new(seed_pages(&pool, 8, 100));
    pool.stats().reset();
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let pool = pool.clone();
        let pages = pages.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = Lcg(t + 1);
            for _ in 0..5_000 {
                let i = (rng.next() as usize) % pages.len();
                let g = pool.fetch(pages[i]);
                assert_eq!(get_u64(&g, 0), 100 + i as u64 * 17);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let snap = pool.stats().snapshot();
    assert_eq!(snap.logical_reads, 8 * 5_000);
    assert_eq!(snap.physical_reads, 0, "hot set fits: all hits");
    // All pins released: clear_cache's pin==0 assertion must pass.
    pool.clear_cache();
}
