//! Deterministic dataset generators and the paper's query workload.
//!
//! The paper evaluates on a 100 MB scaled XMark document and a 50 MB DBLP
//! snapshot (§5.1.1). Neither ships with this reproduction, so this crate
//! generates synthetic equivalents that preserve what the experiments
//! actually exercise:
//!
//! * the **element hierarchy** (XMark's deep site/regions/people/
//!   open_auctions structure vs. DBLP's shallow bibliography records),
//!   including the six region paths that make `//item` match six
//!   distinct schema paths (the §5.2.6 experiment), and
//! * the **selectivity profile** of every constant used by queries
//!   Q1x–Q15x and Q1d–Q3d (Figs. 7, 8, 10): e.g. `quantity = "5"`
//!   matches exactly one item while `quantity = "1"` matches ~51% of
//!   them, `@income = "9876.00"` matches ~8% of persons while
//!   `"46814.17"` matches one, and so on — all scaled by a single factor
//!   relative to the paper's 100 MB profile.
//!
//! Generation is fully deterministic for a `(scale, seed)` pair, and each
//! generator returns a *profile* recording the exact planted counts so
//! tests and benchmarks can assert result sizes instead of hard-coding
//! them.
//!
//! A third generator, [`skew`], plants exactly-Zipfian leaf values so
//! the cost-based optimizer's tests can exercise the merge/INLJ and
//! RP/DP crossover points of §5.2.3 from both sides.

pub mod dblp;
pub mod queries;
pub mod skew;
pub mod xmark;

pub use dblp::{generate_dblp, DblpConfig, DblpProfile};
pub use queries::{dblp_queries, xmark_queries, BenchQuery, Dataset, QueryGroup};
pub use skew::{generate_skewed, SkewConfig, SkewProfile};
pub use xmark::{generate_xmark, XmarkConfig, XmarkProfile};
