//! DBLP-like bibliography generator.
//!
//! DBLP is the paper's *shallow* dataset (depth ≤ 4, few distinct schema
//! paths): many small `inproceedings`/`article` documents under one
//! `dblp` root. The year skew reproduces Q1d–Q3d's selectivity sweep at
//! `scale = 1.0` (the paper's 50 MB snapshot):
//!
//! * `year = "1950"` → 1 record (Q1d, highly selective)
//! * `year = "1979"` → 1 647 records (Q2d)
//! * `year = "1998"` → 10 258 records (Q3d, unselective)
//!
//! Remaining years interpolate geometrically between those anchors.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use xtwig_xml::{NodeId, XmlForest};

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct DblpConfig {
    /// Fraction of the paper's 50 MB profile.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig { scale: 0.05, seed: 0xD0B5 }
    }
}

impl DblpConfig {
    /// Convenience constructor.
    pub fn with_scale(scale: f64) -> Self {
        DblpConfig { scale, ..Default::default() }
    }
}

/// Exact planted counts.
#[derive(Debug, Clone, Default)]
pub struct DblpProfile {
    /// Document root id.
    pub root: NodeId,
    /// Total `inproceedings` records.
    pub inproceedings: u64,
    /// Total `article` records.
    pub articles: u64,
    /// Records per year.
    pub per_year: BTreeMap<u32, u64>,
    /// Total element/attribute nodes generated.
    pub nodes: u64,
}

/// Paper-scale per-year record counts for `inproceedings`.
fn paper_year_count(year: u32) -> u64 {
    // Anchors from Fig. 7: (1950, 1), (1979, 1647), (1998, 10258).
    // Geometric interpolation/extrapolation between anchors.
    let anchors = [(1950u32, 1f64), (1979, 1_647.0), (1998, 10_258.0), (2002, 12_000.0)];
    if year <= anchors[0].0 {
        return anchors[0].1 as u64;
    }
    for w in anchors.windows(2) {
        let (y0, c0) = w[0];
        let (y1, c1) = w[1];
        if year <= y1 {
            let t = f64::from(year - y0) / f64::from(y1 - y0);
            return (c0 * (c1 / c0).powf(t)).round() as u64;
        }
    }
    anchors[3].1 as u64
}

/// Generates one DBLP-like document into `forest`.
pub fn generate_dblp(forest: &mut XmlForest, config: DblpConfig) -> DblpProfile {
    let s = config.scale;
    assert!(s > 0.0, "scale must be positive");
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut profile = DblpProfile::default();
    let before = forest.node_count() as u64;

    let mut b = forest.builder();
    let root = b.open("dblp");
    let mut key = 0u64;
    for year in 1950..=2002u32 {
        let count = if year == 1950 {
            // Exactly one at every scale (the Q1d singleton).
            1
        } else {
            ((paper_year_count(year) as f64) * s).round() as u64
        };
        if count == 0 {
            continue;
        }
        *profile.per_year.entry(year).or_insert(0) += count;
        let year_str = year.to_string();
        for _ in 0..count {
            // ~1 in 8 records is an article for schema-path variety.
            let is_article = key % 8 == 7;
            b.open(if is_article { "article" } else { "inproceedings" });
            b.attr("key", &format!("conf/xyz/{key}"));
            let n_authors = 1 + rng.gen_range(0..3);
            for a in 0..n_authors {
                b.leaf("author", &format!("Author {} {}", (key + a) % 997, a));
            }
            b.leaf("title", &format!("On the Matter of Topic {key}."));
            b.leaf("pages", &format!("{}-{}", key % 300 + 1, key % 300 + 12));
            b.leaf("year", &year_str);
            if is_article {
                b.leaf("journal", &format!("Journal of Things {}", key % 40));
                b.leaf("volume", &format!("{}", key % 90 + 1));
                profile.articles += 1;
            } else {
                b.leaf("booktitle", &format!("Conference {}", key % 60));
                if key.is_multiple_of(2) {
                    b.leaf("crossref", &format!("conf/xyz/{year}"));
                }
                profile.inproceedings += 1;
            }
            b.leaf("url", &format!("db/conf/xyz/{key}.html"));
            if key.is_multiple_of(3) {
                b.leaf("ee", &format!("https://doi.org/10.0000/{key}"));
            }
            b.close();
            key += 1;
        }
    }
    b.close(); // dblp
    b.finish();
    profile.root = root;
    profile.nodes = forest.node_count() as u64 - before;
    profile
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(scale: f64) -> (XmlForest, DblpProfile) {
        let mut f = XmlForest::new();
        let p = generate_dblp(&mut f, DblpConfig { scale, seed: 9 });
        (f, p)
    }

    #[test]
    fn year_anchors_match_fig7() {
        assert_eq!(paper_year_count(1950), 1);
        assert_eq!(paper_year_count(1979), 1_647);
        assert_eq!(paper_year_count(1998), 10_258);
    }

    #[test]
    fn singleton_year_survives_scaling() {
        let (_, p) = profile(0.02);
        assert_eq!(p.per_year[&1950], 1);
        assert!(p.per_year[&1998] > p.per_year[&1979]);
        let early = p.per_year.get(&1960).copied().unwrap_or(0);
        assert!(p.per_year[&1979] > early);
    }

    #[test]
    fn document_is_shallow() {
        let (f, _) = profile(0.01);
        assert!(f.max_depth() <= 4, "DBLP must stay shallow, got {}", f.max_depth());
    }

    #[test]
    fn per_year_counts_match_forest_scan() {
        let (f, p) = profile(0.01);
        let year = f.dict().lookup("year").unwrap();
        for (&y, &count) in &p.per_year {
            let scanned = f
                .iter_nodes()
                .filter(|&n| f.tag(n) == year && f.value_str(n) == Some(&y.to_string()))
                .count() as u64;
            assert_eq!(scanned, count, "year {y}");
        }
    }

    #[test]
    fn determinism() {
        let (f1, p1) = profile(0.01);
        let (f2, p2) = profile(0.01);
        assert_eq!(f1.node_count(), f2.node_count());
        assert_eq!(p1.per_year, p2.per_year);
    }

    #[test]
    fn has_both_record_kinds() {
        let (_, p) = profile(0.01);
        assert!(p.inproceedings > 0);
        assert!(p.articles > 0);
        assert!(p.inproceedings > p.articles);
    }
}
