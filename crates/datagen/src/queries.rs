//! The paper's query workload (Figs. 7, 8, 10).
//!
//! All 15 XMark queries and 3 DBLP queries, with the grouping metadata of
//! Fig. 10 (branch count, selectivity class, branch-point depth,
//! recursion count). One deviation is recorded here once: the paper
//! writes `incategory/category = 'category440'` in Q12x/Q13x, but XMark's
//! `category` is an *attribute* of `incategory`; we query
//! `incategory/@category`, which is what the paper's own dataset
//! contained.

use xtwig_xml::TwigPattern;

/// Which dataset a query targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// The XMark-like auction site.
    Xmark,
    /// The DBLP-like bibliography.
    Dblp,
}

/// The experiment group a query belongs to (Fig. 10 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryGroup {
    /// Q1–Q3: single fully-specified path, selectivity sweep (Fig. 11).
    SinglePath,
    /// Q4x–Q5x: twigs, all branches selective, high branch point (12a).
    TwigSelective,
    /// Q6x–Q7x: selective + unselective branches, high branch point (12b).
    TwigMixed,
    /// Q8x–Q9x: all branches unselective, high branch point (12c).
    TwigUnselective,
    /// Q10x–Q11x: low branch points (12d, the INLJ case).
    TwigLowBranch,
    /// Q12x–Q15x: a `//` branch point matching six schema paths (Fig 13).
    RecursiveTwig,
}

/// One workload query.
#[derive(Debug, Clone)]
pub struct BenchQuery {
    /// Paper identifier (`Q1x` … `Q15x`, `Q1d` … `Q3d`).
    pub id: &'static str,
    /// XPath text.
    pub xpath: &'static str,
    /// Branch count (Fig. 10).
    pub branches: usize,
    /// Leading/internal `//` count (Fig. 10).
    pub recursions: usize,
    /// Target dataset.
    pub dataset: Dataset,
    /// Fig. 10 group.
    pub group: QueryGroup,
}

impl BenchQuery {
    /// Parses the XPath into a twig.
    ///
    /// # Panics
    /// Panics if the workload text is malformed (covered by tests).
    pub fn twig(&self) -> TwigPattern {
        xtwig_core::parse_xpath(self.xpath).expect("workload query parses")
    }
}

/// Q1x–Q15x (Figs. 7 and 8).
pub fn xmark_queries() -> Vec<BenchQuery> {
    use Dataset::Xmark;
    use QueryGroup::*;
    vec![
        BenchQuery {
            id: "Q1x",
            xpath: "/site/regions/namerica/item/quantity[. = '5']",
            branches: 1,
            recursions: 0,
            dataset: Xmark,
            group: SinglePath,
        },
        BenchQuery {
            id: "Q2x",
            xpath: "/site/regions/namerica/item/quantity[. = '2']",
            branches: 1,
            recursions: 0,
            dataset: Xmark,
            group: SinglePath,
        },
        BenchQuery {
            id: "Q3x",
            xpath: "/site/regions/namerica/item/quantity[. = '1']",
            branches: 1,
            recursions: 0,
            dataset: Xmark,
            group: SinglePath,
        },
        BenchQuery {
            id: "Q4x",
            xpath: "/site[people/person/profile/@income = '46814.17']\
                    /open_auctions/open_auction[@increase = '75.00']",
            branches: 2,
            recursions: 0,
            dataset: Xmark,
            group: TwigSelective,
        },
        BenchQuery {
            id: "Q5x",
            xpath: "/site[people/person/profile/@income = '46814.17']\
                    [people/person/name = 'Hagen Artosi']\
                    /open_auctions/open_auction[@increase = '75.00']",
            branches: 3,
            recursions: 0,
            dataset: Xmark,
            group: TwigSelective,
        },
        BenchQuery {
            id: "Q6x",
            xpath: "/site[people/person/profile/@income = '9876.00']\
                    /open_auctions/open_auction[@increase = '75.00']",
            branches: 2,
            recursions: 0,
            dataset: Xmark,
            group: TwigMixed,
        },
        BenchQuery {
            id: "Q7x",
            xpath: "/site[people/person/profile/@income = '9876.00']\
                    [regions/namerica/item/location = 'united states']\
                    /open_auctions/open_auction[@increase = '75.00']",
            branches: 3,
            recursions: 0,
            dataset: Xmark,
            group: TwigMixed,
        },
        BenchQuery {
            id: "Q8x",
            xpath: "/site[people/person/profile/@income = '9876.00']\
                    /open_auctions/open_auction[@increase = '3.00']",
            branches: 2,
            recursions: 0,
            dataset: Xmark,
            group: TwigUnselective,
        },
        BenchQuery {
            id: "Q9x",
            xpath: "/site[people/person/profile/@income = '9876.00']\
                    [regions/namerica/item/location = 'united states']\
                    /open_auctions/open_auction[@increase = '3.00']",
            branches: 3,
            recursions: 0,
            dataset: Xmark,
            group: TwigUnselective,
        },
        BenchQuery {
            id: "Q10x",
            xpath: "/site/open_auctions/open_auction\
                    [annotation/author/@person = 'person22082']/time",
            branches: 2,
            recursions: 0,
            dataset: Xmark,
            group: TwigLowBranch,
        },
        BenchQuery {
            id: "Q11x",
            xpath: "/site/open_auctions/open_auction\
                    [annotation/author/@person = 'person22082']\
                    [bidder/@increase = '3.00']/time",
            branches: 3,
            recursions: 0,
            dataset: Xmark,
            group: TwigLowBranch,
        },
        BenchQuery {
            id: "Q12x",
            xpath: "/site//item[incategory/@category = 'category440']\
                    /mailbox/mail/date",
            branches: 2,
            recursions: 1,
            dataset: Xmark,
            group: RecursiveTwig,
        },
        BenchQuery {
            id: "Q13x",
            xpath: "/site//item[incategory/@category = 'category440']\
                    [mailbox/mail/date]/mailbox/mail/to",
            branches: 3,
            recursions: 1,
            dataset: Xmark,
            group: RecursiveTwig,
        },
        BenchQuery {
            id: "Q14x",
            xpath: "/site//item[quantity = '2'][location = 'united states']",
            branches: 2,
            recursions: 1,
            dataset: Xmark,
            group: RecursiveTwig,
        },
        BenchQuery {
            id: "Q15x",
            xpath: "/site//item[quantity = '2'][location = 'united states']\
                    /mailbox/mail/to",
            branches: 3,
            recursions: 1,
            dataset: Xmark,
            group: RecursiveTwig,
        },
    ]
}

/// Q1d–Q3d (Fig. 7).
pub fn dblp_queries() -> Vec<BenchQuery> {
    use Dataset::Dblp;
    vec![
        BenchQuery {
            id: "Q1d",
            xpath: "/dblp/inproceedings/year[. = '1950']",
            branches: 1,
            recursions: 0,
            dataset: Dblp,
            group: QueryGroup::SinglePath,
        },
        BenchQuery {
            id: "Q2d",
            xpath: "/dblp/inproceedings/year[. = '1979']",
            branches: 1,
            recursions: 0,
            dataset: Dblp,
            group: QueryGroup::SinglePath,
        },
        BenchQuery {
            id: "Q3d",
            xpath: "/dblp/inproceedings/year[. = '1998']",
            branches: 1,
            recursions: 0,
            dataset: Dblp,
            group: QueryGroup::SinglePath,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_parse() {
        for q in xmark_queries().iter().chain(dblp_queries().iter()) {
            let twig = q.twig();
            assert!(!twig.is_empty(), "{} produced an empty twig", q.id);
        }
    }

    #[test]
    fn workload_counts_match_fig10() {
        let xq = xmark_queries();
        assert_eq!(xq.len(), 15);
        assert_eq!(dblp_queries().len(), 3);
        // Fig. 10 row structure.
        assert_eq!(xq.iter().filter(|q| q.group == QueryGroup::SinglePath).count(), 3);
        assert_eq!(xq.iter().filter(|q| q.group == QueryGroup::RecursiveTwig).count(), 4);
        assert!(xq
            .iter()
            .filter(|q| q.group == QueryGroup::RecursiveTwig)
            .all(|q| q.recursions == 1));
        assert!(xq
            .iter()
            .filter(|q| q.group != QueryGroup::RecursiveTwig)
            .all(|q| q.recursions == 0));
    }

    #[test]
    fn branch_counts_match_twig_shape() {
        for q in xmark_queries() {
            let twig = q.twig();
            assert_eq!(
                twig.branch_count(),
                q.branches,
                "{}: {} vs twig {}",
                q.id,
                q.branches,
                twig.branch_count()
            );
        }
    }

    #[test]
    fn recursion_flags_match_twig_shape() {
        for q in xmark_queries().iter().chain(dblp_queries().iter()) {
            let twig = q.twig();
            assert_eq!(twig.has_recursion(), q.recursions > 0, "{} recursion flag mismatch", q.id);
        }
    }
}
