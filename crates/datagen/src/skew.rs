//! Skewed value-selectivity corpus: Zipfian leaf values.
//!
//! The paper's §5.2.3 observation — index-nested-loop plans win when
//! one branch is very selective and the branch point is low, merge
//! plans win when selectivities are comparable — is a statement about
//! the *value-frequency distribution* of the data. This generator
//! plants an exactly-Zipfian distribution so optimizer tests can walk a
//! query literal from the most common value (`k0`, merge territory) to
//! the rarest (INLJ territory) and watch the crossover, and so the
//! RP/DP rankings can be exercised on both sides of it.
//!
//! Shape (flat on purpose — the branch point `rec` has one instance
//! per record, the low-branch-point case of Fig. 12d):
//!
//! ```text
//! <db>
//!   <rec><key>k3</key><val>v0</val><info><note>…</note></info></rec>
//!   …
//! </db>
//! ```
//!
//! Value `k{i}` is planted with a count proportional to `1/(i+1)^s`
//! (every value gets at least one instance), placements shuffled by the
//! seed; counts are exact and recorded in the returned profile, so
//! tests pick crossover literals from data instead of guessing.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use xtwig_xml::XmlForest;

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct SkewConfig {
    /// Number of `<rec>` records.
    pub records: u64,
    /// Distinct `key`/`val` values (`k0`/`v0` … most common first).
    pub distinct_values: u64,
    /// Zipf exponent `s` (0 = uniform; 1 = classic Zipf; larger =
    /// steeper skew).
    pub zipf_s: f64,
    /// Placement-shuffle seed (counts are exact regardless).
    pub seed: u64,
}

impl Default for SkewConfig {
    fn default() -> Self {
        SkewConfig { records: 512, distinct_values: 16, zipf_s: 1.2, seed: 0x51AF }
    }
}

/// Exact planted counts, recorded during generation.
#[derive(Debug, Clone, Default)]
pub struct SkewProfile {
    /// Records emitted.
    pub records: u64,
    /// Instances of `key = "k{i}"`, most common first (non-increasing).
    pub key_counts: Vec<u64>,
    /// Instances of `val = "v{i}"` (same distribution, independent
    /// placement).
    pub val_counts: Vec<u64>,
    /// Total element/attribute nodes generated.
    pub nodes: u64,
}

impl SkewProfile {
    /// The rarest key literal (`k{n-1}`) — the INLJ side of the
    /// §5.2.3 crossover.
    pub fn rarest_key(&self) -> String {
        format!("k{}", self.key_counts.len().saturating_sub(1))
    }

    /// The most common key literal (`k0`) — the merge side.
    pub fn commonest_key(&self) -> String {
        "k0".to_owned()
    }
}

/// Exact Zipf allocation: every value gets one instance, the remainder
/// is split proportionally to `1/(i+1)^s` with largest-remainder
/// rounding, so `sum == total` and counts are non-increasing.
fn zipf_counts(total: u64, distinct: u64, s: f64) -> Vec<u64> {
    let n = distinct.min(total).max(1) as usize;
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
    let wsum: f64 = weights.iter().sum();
    let spare = total - n as u64; // one instance pre-planted per value
    let mut counts: Vec<u64> = vec![1; n];
    let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(n);
    let mut assigned = 0u64;
    for (i, w) in weights.iter().enumerate() {
        let exact = spare as f64 * w / wsum;
        let floor = exact.floor() as u64;
        counts[i] += floor;
        assigned += floor;
        fracs.push((i, exact - floor as f64));
    }
    // Largest remainders take the leftover, ties to the more common
    // value so the sequence stays non-increasing.
    fracs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    for &(i, _) in fracs.iter().take((spare - assigned) as usize) {
        counts[i] += 1;
    }
    counts
}

/// Generates one skewed document into `forest`.
pub fn generate_skewed(forest: &mut XmlForest, config: SkewConfig) -> SkewProfile {
    assert!(config.records > 0, "records must be positive");
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let key_counts = zipf_counts(config.records, config.distinct_values, config.zipf_s);
    let val_counts = key_counts.clone();

    let mut key_labels: Vec<usize> = Vec::with_capacity(config.records as usize);
    for (i, &c) in key_counts.iter().enumerate() {
        key_labels.extend(std::iter::repeat_n(i, c as usize));
    }
    let mut val_labels = key_labels.clone();
    key_labels.shuffle(&mut rng);
    val_labels.shuffle(&mut rng);

    let before_nodes = forest.node_count() as u64;
    let mut b = forest.builder();
    b.open("db");
    for (rec, (&k, &v)) in key_labels.iter().zip(&val_labels).enumerate() {
        b.open("rec");
        b.leaf("key", &format!("k{k}"));
        b.leaf("val", &format!("v{v}"));
        b.open("info");
        b.leaf("note", &format!("record number {rec}"));
        b.close();
        b.close();
    }
    b.close();
    b.finish();

    SkewProfile {
        records: config.records,
        key_counts,
        val_counts,
        nodes: forest.node_count() as u64 - before_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(config: SkewConfig) -> (XmlForest, SkewProfile) {
        let mut f = XmlForest::new();
        let p = generate_skewed(&mut f, config);
        (f, p)
    }

    #[test]
    fn counts_are_exact_zipf_and_sum_to_records() {
        let (f, p) = profile(SkewConfig::default());
        assert_eq!(p.key_counts.iter().sum::<u64>(), p.records);
        assert!(p.key_counts.windows(2).all(|w| w[0] >= w[1]), "non-increasing");
        assert!(p.key_counts.iter().all(|&c| c >= 1), "every literal exists");
        // s = 1.2: the head dominates, the tail is rare.
        assert!(p.key_counts[0] > p.records / 4);
        assert!(*p.key_counts.last().unwrap() < p.key_counts[0] / 8);
        // Planted counts match a forest scan.
        let key = f.dict().lookup("key").unwrap();
        for (i, &c) in p.key_counts.iter().enumerate() {
            let label = format!("k{i}");
            let scanned = f
                .iter_nodes()
                .filter(|&n| f.tag(n) == key && f.value_str(n) == Some(label.as_str()))
                .count() as u64;
            assert_eq!(scanned, c, "k{i}");
        }
    }

    #[test]
    fn determinism_and_seed_independence_of_counts() {
        let (f1, p1) = profile(SkewConfig::default());
        let (f2, p2) = profile(SkewConfig::default());
        assert_eq!(f1.node_count(), f2.node_count());
        assert_eq!(p1.key_counts, p2.key_counts);
        let (_, p3) = profile(SkewConfig { seed: 7, ..Default::default() });
        assert_eq!(p1.key_counts, p3.key_counts, "seed shuffles placement, not counts");
    }

    #[test]
    fn zero_exponent_degenerates_to_uniform() {
        let counts = zipf_counts(100, 10, 0.0);
        assert!(counts.iter().all(|&c| c == 10));
        let steep = zipf_counts(100, 10, 2.0);
        assert!(steep[0] > 50, "s=2 concentrates the head: {steep:?}");
    }

    #[test]
    fn crossover_literals_are_usable() {
        let (_, p) = profile(SkewConfig::default());
        assert_eq!(p.commonest_key(), "k0");
        assert_eq!(p.rarest_key(), "k15");
        let rare = *p.key_counts.last().unwrap();
        let common = p.key_counts[0];
        assert!(common >= 16 * rare, "skew must separate the crossover sides");
    }
}
