//! XMark-like auction-site generator.
//!
//! Reproduces the structure and the query-constant selectivities of the
//! paper's 100 MB scaled XMark dataset. At `scale = 1.0` the planted
//! counts match Fig. 7/8's per-branch result sizes:
//!
//! | constant                           | count at scale 1.0 |
//! |------------------------------------|--------------------|
//! | namerica item `quantity = "5"`     | 1     (Q1x)        |
//! | namerica item `quantity = "2"`     | 3 128 (Q2x)        |
//! | namerica item `quantity = "1"`     | 11 062 (Q3x)       |
//! | person `@income = "46814.17"`      | 1     (Q4x, Q5x)   |
//! | person `name = "Hagen Artosi"`     | 1     (Q5x)        |
//! | person `@income = "9876.00"`       | 2 038 (Q6x–Q9x)    |
//! | namerica item `location = "united states"` | 7 519 (Q7x, Q9x) |
//! | auction `@increase = "75.00"`      | 55    (Q4x–Q7x)    |
//! | auction `@increase = "3.00"`       | 5 172 (Q8x, Q9x)   |
//! | annotation author `= "person22082"`| 3     (Q10x, Q11x) |
//! | auction `time` elements            | 59 486 (Q10x)      |
//! | item `incategory/@category = "category440"` | 41 (Q12x) |
//! | all-region `location = "united states"` | 16 294 (Q14x) |
//! | item `mailbox/mail` elements       | 20 946 (Q12x–Q15x) |
//!
//! Items are spread over six region elements so that `//item` expands to
//! six distinct schema paths — the property §5.2.6 exploits.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use xtwig_xml::{NodeId, XmlForest};

/// Paper-scale (100 MB) reference counts.
mod paper {
    // Item totals are chosen so every Fig. 7/8 result size fits its
    // region: Q3x needs 11_062 quantity="1" items inside namerica alone,
    // and Q14x needs 16_294 - 7_519 = 8_775 US items outside namerica.
    pub const ITEMS: u64 = 30_000;
    pub const NAMERICA_ITEMS: u64 = 16_000;
    pub const Q1: u64 = 11_062; // namerica quantity=1
    pub const Q2: u64 = 3_128; // namerica quantity=2
    pub const US_NAMERICA: u64 = 7_519;
    pub const US_TOTAL: u64 = 16_294;
    pub const CATEGORY440: u64 = 41;
    pub const MAILS: u64 = 20_946;
    pub const PERSONS: u64 = 25_500;
    pub const INCOME_COMMON: u64 = 2_038; // 9876.00
    pub const AUCTIONS: u64 = 12_000;
    pub const INCREASE_75: u64 = 55;
    pub const INCREASE_3: u64 = 5_172;
    pub const TIMES: u64 = 59_486;
    pub const CATEGORIES: u64 = 1_000;
    pub const CLOSED_AUCTIONS: u64 = 3_000;
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct XmarkConfig {
    /// Fraction of the paper's 100 MB profile (1.0 ≈ paper scale).
    pub scale: f64,
    /// RNG seed (placement shuffles only; counts are exact).
    pub seed: u64,
}

impl Default for XmarkConfig {
    fn default() -> Self {
        XmarkConfig { scale: 0.05, seed: 0x5EED }
    }
}

impl XmarkConfig {
    /// Convenience constructor.
    pub fn with_scale(scale: f64) -> Self {
        XmarkConfig { scale, ..Default::default() }
    }
}

/// Exact planted counts, recorded during generation.
#[derive(Debug, Clone, Default)]
pub struct XmarkProfile {
    /// Document root id.
    pub root: NodeId,
    /// Total items across all regions.
    pub items: u64,
    /// Items under `namerica`.
    pub namerica_items: u64,
    /// namerica items with `quantity = "1"`.
    pub quantity1: u64,
    /// namerica items with `quantity = "2"`.
    pub quantity2: u64,
    /// namerica items with `quantity = "5"`.
    pub quantity5: u64,
    /// namerica items with `location = "united states"`.
    pub us_namerica: u64,
    /// Items in any region with `location = "united states"`.
    pub us_total: u64,
    /// Items with an `incategory/@category = "category440"`.
    pub category440: u64,
    /// Total `mailbox/mail` elements.
    pub mails: u64,
    /// Persons.
    pub persons: u64,
    /// Persons with `profile/@income = "9876.00"`.
    pub income_common: u64,
    /// Persons with `profile/@income = "46814.17"`.
    pub income_rich: u64,
    /// Persons named `Hagen Artosi`.
    pub hagen: u64,
    /// Open auctions.
    pub auctions: u64,
    /// Auctions with `@increase = "75.00"`.
    pub increase_75: u64,
    /// Auctions with `@increase = "3.00"`.
    pub increase_3: u64,
    /// Auctions whose annotation author is `person22082`.
    pub person22082: u64,
    /// Total `time` elements under auctions.
    pub times: u64,
    /// Total element/attribute nodes generated.
    pub nodes: u64,
}

fn scaled(n: u64, s: f64) -> u64 {
    ((n as f64) * s).round() as u64
}

fn scaled_min1(n: u64, s: f64) -> u64 {
    scaled(n, s).max(1)
}

/// Generates one XMark-like document into `forest`.
pub fn generate_xmark(forest: &mut XmlForest, config: XmarkConfig) -> XmarkProfile {
    let s = config.scale;
    assert!(s > 0.0, "scale must be positive");
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut profile = XmarkProfile::default();

    // ---- plan exact label assignments ---------------------------------
    let namerica_items = scaled_min1(paper::NAMERICA_ITEMS, s);
    let other_items_total = scaled_min1(paper::ITEMS - paper::NAMERICA_ITEMS, s);
    let q1 = scaled_min1(paper::Q1, s).min(namerica_items);
    let q2 = scaled_min1(paper::Q2, s).min(namerica_items.saturating_sub(q1));
    let q5 = 1u64.min(namerica_items.saturating_sub(q1 + q2));
    // quantity labels for namerica items (exact counts, shuffled).
    let mut na_quantity: Vec<&'static str> = Vec::with_capacity(namerica_items as usize);
    na_quantity.extend(std::iter::repeat_n("1", q1 as usize));
    na_quantity.extend(std::iter::repeat_n("2", q2 as usize));
    na_quantity.extend(std::iter::repeat_n("5", q5 as usize));
    while na_quantity.len() < namerica_items as usize {
        na_quantity.push(["3", "4", "6", "7"][rng.gen_range(0..4)]);
    }
    na_quantity.shuffle(&mut rng);

    let us_na = scaled_min1(paper::US_NAMERICA, s).min(namerica_items);
    let mut na_location: Vec<&'static str> = Vec::with_capacity(namerica_items as usize);
    na_location.extend(std::iter::repeat_n("united states", us_na as usize));
    while na_location.len() < namerica_items as usize {
        na_location.push(["canada", "mexico", "cuba"][rng.gen_range(0..3)]);
    }
    na_location.shuffle(&mut rng);

    let us_other = scaled(paper::US_TOTAL - paper::US_NAMERICA, s).min(other_items_total);
    let mut other_location: Vec<&'static str> = Vec::with_capacity(other_items_total as usize);
    other_location.extend(std::iter::repeat_n("united states", us_other as usize));
    while other_location.len() < other_items_total as usize {
        other_location
            .push(["germany", "france", "japan", "brazil", "kenya", "india"][rng.gen_range(0..6)]);
    }
    other_location.shuffle(&mut rng);

    let total_items = namerica_items + other_items_total;
    let cat440 = scaled_min1(paper::CATEGORY440, s).min(total_items);
    let mut cat_labels: Vec<bool> = vec![false; total_items as usize];
    for slot in cat_labels.iter_mut().take(cat440 as usize) {
        *slot = true;
    }
    cat_labels.shuffle(&mut rng);

    // mail count: ~0.96 per item at paper scale.
    let target_mails = scaled(paper::MAILS, s);

    let persons = scaled_min1(paper::PERSONS, s);
    let income_common = scaled_min1(paper::INCOME_COMMON, s).min(persons);
    let mut person_income: Vec<&'static str> = Vec::with_capacity(persons as usize);
    person_income.extend(std::iter::repeat_n("9876.00", income_common as usize));
    if person_income.len() < persons as usize {
        person_income.push("46814.17"); // the rich singleton
    }
    while person_income.len() < persons as usize {
        person_income.push(["12000.00", "34000.00", "55000.00", "78000.00"][rng.gen_range(0..4)]);
    }
    person_income.shuffle(&mut rng);

    let auctions = scaled_min1(paper::AUCTIONS, s);
    let inc75 = scaled_min1(paper::INCREASE_75, s).min(auctions);
    let inc3 = scaled_min1(paper::INCREASE_3, s).min(auctions.saturating_sub(inc75));
    let mut auction_increase: Vec<&'static str> = Vec::with_capacity(auctions as usize);
    auction_increase.extend(std::iter::repeat_n("75.00", inc75 as usize));
    auction_increase.extend(std::iter::repeat_n("3.00", inc3 as usize));
    while auction_increase.len() < auctions as usize {
        auction_increase.push(["1.50", "6.00", "12.00", "24.00"][rng.gen_range(0..4)]);
    }
    auction_increase.shuffle(&mut rng);

    let annot22082 = 3u64.min(auctions);
    let mut annot_person: Vec<bool> = vec![false; auctions as usize];
    for slot in annot_person.iter_mut().take(annot22082 as usize) {
        *slot = true;
    }
    annot_person.shuffle(&mut rng);

    let total_times = scaled_min1(paper::TIMES, s);
    let categories = scaled_min1(paper::CATEGORIES, s);
    let closed = scaled(paper::CLOSED_AUCTIONS, s);

    // ---- emit the document ---------------------------------------------
    let before_nodes = forest.node_count() as u64;
    let mut b = forest.builder();
    let root = b.open("site");

    // regions ------------------------------------------------------------
    b.open("regions");
    let region_names = ["africa", "asia", "australia", "europe", "namerica", "samerica"];
    // Distribute non-namerica items over the other five regions.
    let per_other = other_items_total / 5;
    let mut other_rem = other_items_total - per_other * 5;
    let mut item_counter = 0u64;
    let mut other_loc_iter = other_location.into_iter();
    let mut mails_emitted = 0u64;
    let mut items_emitted = 0u64;
    for region in region_names {
        b.open(region);
        let count = if region == "namerica" {
            namerica_items
        } else {
            let extra = if other_rem > 0 {
                other_rem -= 1;
                1
            } else {
                0
            };
            per_other + extra
        };
        for i in 0..count {
            b.open("item");
            b.attr("id", &format!("item{item_counter}"));
            let (loc, qty): (&str, &str) = if region == "namerica" {
                (na_location[i as usize], na_quantity[i as usize])
            } else {
                (other_loc_iter.next().unwrap_or("elsewhere"), "1")
            };
            b.leaf("location", loc);
            b.leaf("quantity", qty);
            b.leaf("name", &format!("thing number {item_counter}"));
            b.leaf("payment", "Cash, Money order");
            b.open("description");
            b.leaf("text", "gold plated and slightly used");
            b.close();
            b.leaf("shipping", "Will ship internationally");
            b.open("incategory");
            let cat = if cat_labels[item_counter as usize] {
                "category440".to_owned()
            } else {
                format!("category{}", rng.gen_range(0..categories.max(1)))
            };
            b.attr("category", &cat);
            b.close();
            // Mails: spread target_mails across items deterministically.
            // category440 items always get mail so Q12x/Q13x stay
            // non-empty at tiny scales.
            let mut mails_due = (target_mails * (items_emitted + 1)) / total_items.max(1);
            if cat_labels[item_counter as usize] && mails_due <= mails_emitted {
                mails_due = mails_emitted + 1;
            }
            if mails_due > mails_emitted {
                b.open("mailbox");
                while mails_emitted < mails_due {
                    b.open("mail");
                    b.leaf("from", &format!("person{}", rng.gen_range(0..persons)));
                    b.leaf("to", &format!("person{}", rng.gen_range(0..persons)));
                    b.leaf(
                        "date",
                        &format!("0{}/{}/2000", 1 + (mails_emitted % 9), 1 + (mails_emitted % 27)),
                    );
                    b.close();
                    mails_emitted += 1;
                }
                b.close();
            }
            b.close(); // item
            if region == "namerica" {
                profile.namerica_items += 1;
                match qty {
                    "1" => profile.quantity1 += 1,
                    "2" => profile.quantity2 += 1,
                    "5" => profile.quantity5 += 1,
                    _ => {}
                }
                if loc == "united states" {
                    profile.us_namerica += 1;
                }
            }
            if loc == "united states" {
                profile.us_total += 1;
            }
            if cat_labels[item_counter as usize] {
                profile.category440 += 1;
            }
            item_counter += 1;
            items_emitted += 1;
        }
        b.close(); // region
    }
    b.close(); // regions
    profile.items = item_counter;
    profile.mails = mails_emitted;

    // categories / catgraph ----------------------------------------------
    b.open("categories");
    for c in 0..categories {
        b.open("category");
        b.attr("id", &format!("category{c}"));
        b.leaf("name", &format!("category name {c}"));
        b.close();
    }
    b.close();
    b.open("catgraph");
    for c in 1..categories {
        b.open("edge");
        b.attr("from", &format!("category{}", c - 1));
        b.attr("to", &format!("category{c}"));
        b.close();
    }
    b.close();

    // people ---------------------------------------------------------------
    b.open("people");
    for p in 0..persons {
        b.open("person");
        b.attr("id", &format!("person{p}"));
        let name = if p == 0 { "Hagen Artosi".to_owned() } else { format!("Person Name{p}") };
        b.leaf("name", &name);
        if name == "Hagen Artosi" {
            profile.hagen += 1;
        }
        b.leaf("emailaddress", &format!("mailto:person{p}@example.org"));
        if p % 3 == 0 {
            b.leaf("phone", &format!("+1 ({}) 555-{:04}", 100 + p % 900, p % 10_000));
        }
        b.open("profile");
        let income = person_income[p as usize];
        b.attr("income", income);
        match income {
            "9876.00" => profile.income_common += 1,
            "46814.17" => profile.income_rich += 1,
            _ => {}
        }
        b.open("interest");
        b.attr("category", &format!("category{}", p % categories.max(1)));
        b.close();
        if p % 2 == 0 {
            b.leaf("education", "Graduate School");
        }
        b.leaf("business", if p % 4 == 0 { "Yes" } else { "No" });
        b.close(); // profile
        b.open("watches");
        b.open("watch");
        b.attr("open_auction", &format!("auction{}", p % auctions.max(1)));
        b.close();
        b.close();
        b.close(); // person
    }
    b.close(); // people
    profile.persons = persons;

    // open_auctions ---------------------------------------------------------
    b.open("open_auctions");
    let mut times_emitted = 0u64;
    for a in 0..auctions {
        b.open("open_auction");
        b.attr("id", &format!("auction{a}"));
        let inc = auction_increase[a as usize];
        b.attr("increase", inc);
        match inc {
            "75.00" => profile.increase_75 += 1,
            "3.00" => profile.increase_3 += 1,
            _ => {}
        }
        b.leaf("initial", &format!("{}.00", 10 + a % 190));
        b.leaf("current", &format!("{}.00", 20 + a % 290));
        // Bidders with their own @increase (Q11x probes bidder/@increase).
        let bidders = 1 + (a % 3);
        for bd in 0..bidders {
            b.open("bidder");
            b.attr("increase", inc);
            b.leaf("date", &format!("0{}/{}/2001", 1 + bd % 9, 1 + a % 27));
            b.open("personref");
            b.attr("person", &format!("person{}", (a + bd) % persons));
            b.close();
            b.close();
        }
        // time elements (Q10x's unselective branch): spread the target
        // across auctions deterministically.
        let due = (total_times * (a + 1)) / auctions;
        while times_emitted < due {
            b.leaf("time", &format!("{:02}:{:02}:00", times_emitted % 24, times_emitted % 60));
            times_emitted += 1;
        }
        b.open("itemref");
        b.attr("item", &format!("item{}", a % total_items.max(1)));
        b.close();
        b.open("seller");
        b.attr("person", &format!("person{}", a % persons));
        b.close();
        b.open("annotation");
        b.open("author");
        let annotator = if annot_person[a as usize] {
            "person22082".to_owned()
        } else {
            format!("person{}", (a * 7 + 1) % persons)
        };
        b.attr("person", &annotator);
        b.close();
        b.leaf("description", "the item is in good shape");
        b.close(); // annotation
        if annot_person[a as usize] {
            profile.person22082 += 1;
        }
        b.leaf("quantity", "1");
        b.leaf("type", if a % 2 == 0 { "Regular" } else { "Featured" });
        b.open("interval");
        b.leaf("start", "01/01/2001");
        b.leaf("end", "12/31/2001");
        b.close();
        b.close(); // open_auction
    }
    b.close(); // open_auctions
    profile.auctions = auctions;
    profile.times = times_emitted;

    // closed_auctions ---------------------------------------------------------
    b.open("closed_auctions");
    for c in 0..closed {
        b.open("closed_auction");
        b.open("seller");
        b.attr("person", &format!("person{}", c % persons));
        b.close();
        b.open("buyer");
        b.attr("person", &format!("person{}", (c + 1) % persons));
        b.close();
        b.open("itemref");
        b.attr("item", &format!("item{}", c % total_items.max(1)));
        b.close();
        b.leaf("price", &format!("{}.00", 30 + c % 400));
        b.leaf("date", "06/06/2001");
        b.leaf("quantity", "1");
        b.close();
    }
    b.close(); // closed_auctions

    b.close(); // site
    b.finish();
    profile.root = root;
    profile.nodes = forest.node_count() as u64 - before_nodes;
    profile
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(scale: f64) -> (XmlForest, XmarkProfile) {
        let mut f = XmlForest::new();
        let p = generate_xmark(&mut f, XmarkConfig { scale, seed: 42 });
        (f, p)
    }

    #[test]
    fn exact_singletons_survive_scaling() {
        let (_, p) = profile(0.01);
        assert_eq!(p.quantity5, 1);
        assert_eq!(p.income_rich, 1);
        assert_eq!(p.hagen, 1);
        assert_eq!(p.person22082, 3);
    }

    #[test]
    fn counts_track_paper_ratios() {
        let (_, p) = profile(0.02);
        // quantity=1 should be ~51% of namerica items.
        let ratio = p.quantity1 as f64 / p.namerica_items as f64;
        assert!((0.5..0.85).contains(&ratio), "q1 ratio {ratio}");
        // increase=3.00 ~43% of auctions; 75.00 rare.
        assert!(p.increase_3 > p.increase_75 * 20);
        // income 9876.00 ~8% of persons.
        let ri = p.income_common as f64 / p.persons as f64;
        assert!((0.04..0.16).contains(&ri), "income ratio {ri}");
        // times outnumber auctions ~5x.
        assert!(p.times > p.auctions * 3);
    }

    #[test]
    fn determinism() {
        let (f1, p1) = profile(0.01);
        let (f2, p2) = profile(0.01);
        assert_eq!(f1.node_count(), f2.node_count());
        assert_eq!(p1.items, p2.items);
        assert_eq!(p1.us_total, p2.us_total);
        // Different seed shifts placements but not counts.
        let mut f3 = XmlForest::new();
        let p3 = generate_xmark(&mut f3, XmarkConfig { scale: 0.01, seed: 7 });
        assert_eq!(p1.items, p3.items);
        assert_eq!(p1.quantity1, p3.quantity1);
    }

    #[test]
    fn six_region_paths_exist() {
        let (f, _) = profile(0.005);
        let regions: Vec<&str> =
            ["africa", "asia", "australia", "europe", "namerica", "samerica"].to_vec();
        for r in regions {
            assert!(f.dict().lookup(r).is_some(), "region {r} missing");
        }
        // //item must expand to six distinct schema paths.
        let item = f.dict().lookup("item").unwrap();
        let mut paths = std::collections::HashSet::new();
        for n in f.iter_nodes() {
            if f.tag(n) == item {
                paths.insert(f.root_path_tags(n));
            }
        }
        assert_eq!(paths.len(), 6);
    }

    #[test]
    fn document_is_deep() {
        // The paper contrasts deep XMark against shallow DBLP.
        let (f, _) = profile(0.005);
        assert!(f.max_depth() >= 6, "depth {}", f.max_depth());
    }

    #[test]
    fn profile_counts_match_forest_scan() {
        let (f, p) = profile(0.01);
        let quantity = f.dict().lookup("quantity").unwrap();
        let q1 = f
            .iter_nodes()
            .filter(|&n| f.tag(n) == quantity && f.value_str(n) == Some("1"))
            .filter(|&n| {
                // restrict to namerica items
                f.root_path_tags(n).iter().any(|&t| f.dict().name(t) == "namerica")
            })
            .count() as u64;
        assert_eq!(q1, p.quantity1);
        let income = f.dict().lookup("@income").unwrap();
        let rich = f
            .iter_nodes()
            .filter(|&n| f.tag(n) == income && f.value_str(n) == Some("46814.17"))
            .count() as u64;
        assert_eq!(rich, p.income_rich);
    }
}
