//! Slotted-page node layout.
//!
//! Every node is one 8 KiB page:
//!
//! ```text
//! offset  field
//! 0       node type        u8   (1 = leaf, 2 = internal)
//! 1       reserved         u8
//! 2       slot count       u16
//! 4       cell start       u16  (lowest byte offset used by cell data)
//! 6       right sibling    u32  (leaves; u32::MAX = none)
//! 10      leftmost child   u32  (internal nodes)
//! 14      fragmented bytes u16  (reclaimable by compaction)
//! 16..    slot array       u16 per slot (cell offsets, key-sorted)
//! ...     free space
//! ...     cells            grow downward from the page end
//! ```
//!
//! Leaf cell:     `[klen u16][vlen u16][key][value]`
//! Internal cell: `[klen u16][child u32][key]`
//!
//! Internal-node semantics: with leftmost child `c0` and sorted separator
//! entries `(s1,c1) … (sn,cn)`, subtree `c0` holds keys `< s1` and subtree
//! `ci` holds keys `>= si` and `< s(i+1)`.

use xtwig_storage::page::{get_u16, get_u32, put_u16, put_u32, PAGE_SIZE};

/// Node type byte for leaves.
pub const TYPE_LEAF: u8 = 1;
/// Node type byte for internal nodes.
pub const TYPE_INTERNAL: u8 = 2;
/// Header size in bytes.
pub const HDR: usize = 16;
/// Sentinel for "no sibling/child".
pub const NO_PAGE: u32 = u32::MAX;

/// Maximum key length accepted by the tree. A page must fit at least four
/// worst-case cells so splits always succeed.
pub const MAX_KEY: usize = 1536;
/// Maximum value length accepted by the tree.
pub const MAX_VAL: usize = (PAGE_SIZE - HDR) / 4 - MAX_KEY / 4 - 16;

const OFF_TYPE: usize = 0;
const OFF_NSLOTS: usize = 2;
const OFF_CELL_START: usize = 4;
const OFF_RIGHT: usize = 6;
const OFF_LEFTMOST: usize = 10;
const OFF_FRAG: usize = 14;

/// Initializes `page` as an empty leaf.
pub fn init_leaf(page: &mut [u8]) {
    page.fill(0);
    page[OFF_TYPE] = TYPE_LEAF;
    put_u16(page, OFF_NSLOTS, 0);
    put_u16(page, OFF_CELL_START, PAGE_SIZE as u16);
    put_u32(page, OFF_RIGHT, NO_PAGE);
    put_u32(page, OFF_LEFTMOST, NO_PAGE);
    put_u16(page, OFF_FRAG, 0);
}

/// Initializes `page` as an internal node with the given leftmost child.
pub fn init_internal(page: &mut [u8], leftmost: u32) {
    page.fill(0);
    page[OFF_TYPE] = TYPE_INTERNAL;
    put_u16(page, OFF_NSLOTS, 0);
    put_u16(page, OFF_CELL_START, PAGE_SIZE as u16);
    put_u32(page, OFF_RIGHT, NO_PAGE);
    put_u32(page, OFF_LEFTMOST, leftmost);
    put_u16(page, OFF_FRAG, 0);
}

/// True if `page` is a leaf.
#[inline]
pub fn is_leaf(page: &[u8]) -> bool {
    page[OFF_TYPE] == TYPE_LEAF
}

/// Number of slots.
#[inline]
pub fn nslots(page: &[u8]) -> usize {
    get_u16(page, OFF_NSLOTS) as usize
}

/// Right sibling page (leaves), `NO_PAGE` if none.
#[inline]
pub fn right_sibling(page: &[u8]) -> u32 {
    get_u32(page, OFF_RIGHT)
}

/// Sets the right sibling.
#[inline]
pub fn set_right_sibling(page: &mut [u8], pid: u32) {
    put_u32(page, OFF_RIGHT, pid);
}

/// Leftmost child (internal nodes).
#[inline]
pub fn leftmost_child(page: &[u8]) -> u32 {
    get_u32(page, OFF_LEFTMOST)
}

/// Sets the leftmost child (internal nodes).
#[inline]
pub fn set_leftmost_child(page: &mut [u8], pid: u32) {
    put_u32(page, OFF_LEFTMOST, pid);
}

#[inline]
fn slot_offset(page: &[u8], idx: usize) -> usize {
    get_u16(page, HDR + 2 * idx) as usize
}

/// Contiguous free bytes between the slot array and the cell region.
#[inline]
pub fn contiguous_free(page: &[u8]) -> usize {
    get_u16(page, OFF_CELL_START) as usize - (HDR + 2 * nslots(page))
}

/// Total reclaimable free bytes (contiguous + fragmented).
#[inline]
pub fn total_free(page: &[u8]) -> usize {
    contiguous_free(page) + get_u16(page, OFF_FRAG) as usize
}

// ---------------------------------------------------------------------
// Leaf accessors
// ---------------------------------------------------------------------

/// Key of leaf slot `idx`.
pub fn leaf_key(page: &[u8], idx: usize) -> &[u8] {
    let off = slot_offset(page, idx);
    let klen = get_u16(page, off) as usize;
    &page[off + 4..off + 4 + klen]
}

/// Value of leaf slot `idx`.
pub fn leaf_value(page: &[u8], idx: usize) -> &[u8] {
    let off = slot_offset(page, idx);
    let klen = get_u16(page, off) as usize;
    let vlen = get_u16(page, off + 2) as usize;
    &page[off + 4 + klen..off + 4 + klen + vlen]
}

/// Binary search for `key` in a leaf: `Ok(idx)` if present, `Err(idx)`
/// with the insertion position otherwise.
pub fn leaf_find(page: &[u8], key: &[u8]) -> Result<usize, usize> {
    let n = nslots(page);
    let mut lo = 0usize;
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        match leaf_key(page, mid).cmp(key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(mid),
        }
    }
    Err(lo)
}

fn leaf_cell_size(klen: usize, vlen: usize) -> usize {
    4 + klen + vlen
}

/// Inserts `(key, value)` at slot `idx`, returning `false` when the page
/// cannot fit the cell even after compaction.
pub fn leaf_insert_at(page: &mut [u8], idx: usize, key: &[u8], value: &[u8]) -> bool {
    let need = leaf_cell_size(key.len(), value.len()) + 2;
    if total_free(page) < need {
        return false;
    }
    if contiguous_free(page) < need {
        compact(page);
    }
    let n = nslots(page);
    debug_assert!(idx <= n);
    let cell_start = get_u16(page, OFF_CELL_START) as usize;
    let off = cell_start - leaf_cell_size(key.len(), value.len());
    put_u16(page, off, key.len() as u16);
    put_u16(page, off + 2, value.len() as u16);
    page[off + 4..off + 4 + key.len()].copy_from_slice(key);
    page[off + 4 + key.len()..off + 4 + key.len() + value.len()].copy_from_slice(value);
    put_u16(page, OFF_CELL_START, off as u16);
    // Shift slots right of idx.
    page.copy_within(HDR + 2 * idx..HDR + 2 * n, HDR + 2 * idx + 2);
    put_u16(page, HDR + 2 * idx, off as u16);
    put_u16(page, OFF_NSLOTS, (n + 1) as u16);
    true
}

/// Removes leaf slot `idx` (the cell bytes become fragmented space).
pub fn leaf_remove_at(page: &mut [u8], idx: usize) {
    let n = nslots(page);
    debug_assert!(idx < n);
    let off = slot_offset(page, idx);
    let klen = get_u16(page, off) as usize;
    let vlen = get_u16(page, off + 2) as usize;
    let frag = get_u16(page, OFF_FRAG) as usize + leaf_cell_size(klen, vlen);
    put_u16(page, OFF_FRAG, frag as u16);
    page.copy_within(HDR + 2 * (idx + 1)..HDR + 2 * n, HDR + 2 * idx);
    put_u16(page, OFF_NSLOTS, (n - 1) as u16);
}

// ---------------------------------------------------------------------
// Internal accessors
// ---------------------------------------------------------------------

/// Separator key of internal slot `idx`.
pub fn int_key(page: &[u8], idx: usize) -> &[u8] {
    let off = slot_offset(page, idx);
    let klen = get_u16(page, off) as usize;
    &page[off + 6..off + 6 + klen]
}

/// Child pointer of internal slot `idx`.
pub fn int_child(page: &[u8], idx: usize) -> u32 {
    let off = slot_offset(page, idx);
    get_u32(page, off + 2)
}

fn int_cell_size(klen: usize) -> usize {
    6 + klen
}

/// Index of the child to descend into for `key`: `0` means the leftmost
/// child, `i > 0` means the child of slot `i - 1`.
pub fn int_child_index(page: &[u8], key: &[u8]) -> usize {
    let n = nslots(page);
    // Find the rightmost separator <= key.
    let mut lo = 0usize;
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        if int_key(page, mid) <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Page id of the child at descend-index `idx` (0 = leftmost).
pub fn int_child_at(page: &[u8], idx: usize) -> u32 {
    if idx == 0 {
        leftmost_child(page)
    } else {
        int_child(page, idx - 1)
    }
}

/// Inserts separator `(key, child)` at slot `idx`; `false` if it cannot
/// fit even after compaction.
pub fn int_insert_at(page: &mut [u8], idx: usize, key: &[u8], child: u32) -> bool {
    let need = int_cell_size(key.len()) + 2;
    if total_free(page) < need {
        return false;
    }
    if contiguous_free(page) < need {
        compact(page);
    }
    let n = nslots(page);
    debug_assert!(idx <= n);
    let cell_start = get_u16(page, OFF_CELL_START) as usize;
    let off = cell_start - int_cell_size(key.len());
    put_u16(page, off, key.len() as u16);
    put_u32(page, off + 2, child);
    page[off + 6..off + 6 + key.len()].copy_from_slice(key);
    put_u16(page, OFF_CELL_START, off as u16);
    page.copy_within(HDR + 2 * idx..HDR + 2 * n, HDR + 2 * idx + 2);
    put_u16(page, HDR + 2 * idx, off as u16);
    put_u16(page, OFF_NSLOTS, (n + 1) as u16);
    true
}

/// Rewrites the cell region dropping fragmentation.
pub fn compact(page: &mut [u8]) {
    let n = nslots(page);
    let leaf = is_leaf(page);
    // Copy out live cells, then rebuild.
    let mut cells: Vec<Vec<u8>> = Vec::with_capacity(n);
    for i in 0..n {
        let off = slot_offset(page, i);
        let klen = get_u16(page, off) as usize;
        let size = if leaf {
            let vlen = get_u16(page, off + 2) as usize;
            leaf_cell_size(klen, vlen)
        } else {
            int_cell_size(klen)
        };
        cells.push(page[off..off + size].to_vec());
    }
    let mut cursor = PAGE_SIZE;
    for (i, cell) in cells.iter().enumerate() {
        cursor -= cell.len();
        page[cursor..cursor + cell.len()].copy_from_slice(cell);
        put_u16(page, HDR + 2 * i, cursor as u16);
    }
    put_u16(page, OFF_CELL_START, cursor as u16);
    put_u16(page, OFF_FRAG, 0);
}

/// The shortest separator `s` with `left < s <= right`
/// (requires `left < right`). Used for interior prefix truncation.
pub fn shortest_separator(left: &[u8], right: &[u8]) -> Vec<u8> {
    debug_assert!(left < right, "separator requires left < right");
    for i in 0..right.len() {
        if i >= left.len() || left[i] != right[i] {
            return right[..=i].to_vec();
        }
    }
    right.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> Vec<u8> {
        vec![0u8; PAGE_SIZE]
    }

    #[test]
    fn leaf_insert_find_roundtrip() {
        let mut p = page();
        init_leaf(&mut p);
        assert!(leaf_insert_at(&mut p, 0, b"mango", b"1"));
        assert!(leaf_insert_at(&mut p, 0, b"apple", b"2"));
        assert!(leaf_insert_at(&mut p, 2, b"zebra", b"3"));
        assert_eq!(nslots(&p), 3);
        assert_eq!(leaf_key(&p, 0), b"apple");
        assert_eq!(leaf_key(&p, 1), b"mango");
        assert_eq!(leaf_key(&p, 2), b"zebra");
        assert_eq!(leaf_value(&p, 0), b"2");
        assert_eq!(leaf_find(&p, b"mango"), Ok(1));
        assert_eq!(leaf_find(&p, b"banana"), Err(1));
        assert_eq!(leaf_find(&p, b"zzz"), Err(3));
    }

    #[test]
    fn leaf_remove_creates_fragmentation_and_compact_reclaims() {
        let mut p = page();
        init_leaf(&mut p);
        for i in 0..10 {
            let k = format!("key{i:02}");
            assert!(leaf_insert_at(&mut p, i, k.as_bytes(), b"valuevalue"));
        }
        let free_before = contiguous_free(&p);
        leaf_remove_at(&mut p, 3);
        leaf_remove_at(&mut p, 3);
        assert_eq!(nslots(&p), 8);
        assert_eq!(leaf_key(&p, 3), b"key05");
        assert!(total_free(&p) > contiguous_free(&p));
        compact(&mut p);
        assert_eq!(total_free(&p), contiguous_free(&p));
        assert!(contiguous_free(&p) > free_before);
        assert_eq!(leaf_key(&p, 0), b"key00");
        assert_eq!(leaf_value(&p, 7), b"valuevalue");
    }

    #[test]
    fn leaf_insert_reports_full() {
        let mut p = page();
        init_leaf(&mut p);
        let big_val = vec![7u8; 1000];
        let mut n = 0;
        while leaf_insert_at(&mut p, n, format!("k{n:03}").as_bytes(), &big_val) {
            n += 1;
        }
        assert!(n >= 7, "expected ~8 cells of 1 KB to fit, got {n}");
        assert!(!leaf_insert_at(&mut p, 0, b"x", &big_val));
        // A tiny cell can still fit.
        assert!(leaf_insert_at(&mut p, 0, b"a", b"b"));
    }

    #[test]
    fn internal_child_routing() {
        let mut p = page();
        init_internal(&mut p, 100);
        assert!(int_insert_at(&mut p, 0, b"g", 101));
        assert!(int_insert_at(&mut p, 1, b"p", 102));
        // keys < g -> leftmost; g <= k < p -> 101; k >= p -> 102
        assert_eq!(int_child_index(&p, b"a"), 0);
        assert_eq!(int_child_at(&p, 0), 100);
        assert_eq!(int_child_index(&p, b"g"), 1);
        assert_eq!(int_child_at(&p, 1), 101);
        assert_eq!(int_child_index(&p, b"k"), 1);
        assert_eq!(int_child_index(&p, b"p"), 2);
        assert_eq!(int_child_index(&p, b"z"), 2);
        assert_eq!(int_child_at(&p, 2), 102);
    }

    #[test]
    fn compact_preserves_internal_nodes() {
        let mut p = page();
        init_internal(&mut p, 5);
        for i in 0..20 {
            assert!(int_insert_at(&mut p, i, format!("sep{i:02}").as_bytes(), 10 + i as u32));
        }
        compact(&mut p);
        assert_eq!(leftmost_child(&p), 5);
        for i in 0..20 {
            assert_eq!(int_key(&p, i), format!("sep{i:02}").as_bytes());
            assert_eq!(int_child(&p, i), 10 + i as u32);
        }
    }

    #[test]
    fn shortest_separator_truncates() {
        assert_eq!(shortest_separator(b"abc", b"b"), b"b".to_vec());
        assert_eq!(shortest_separator(b"abc", b"abd"), b"abd".to_vec());
        assert_eq!(shortest_separator(b"ab", b"abc"), b"abc".to_vec());
        assert_eq!(shortest_separator(b"alpha", b"beta"), b"b".to_vec());
        assert_eq!(shortest_separator(b"", b"a"), b"a".to_vec());
        // Invariant left < sep <= right on a batch of random-ish pairs.
        let pairs: &[(&[u8], &[u8])] = &[
            (b"aaa", b"aab"),
            (b"a", b"aa"),
            (b"carrot", b"cat"),
            (b"x\x00", b"x\x01"),
            (b"\x00", b"\x01\xff"),
        ];
        for &(l, r) in pairs {
            let s = shortest_separator(l, r);
            assert!(l < s.as_slice(), "{l:?} < {s:?}");
            assert!(s.as_slice() <= r, "{s:?} <= {r:?}");
        }
    }

    #[test]
    fn sibling_links() {
        let mut p = page();
        init_leaf(&mut p);
        assert_eq!(right_sibling(&p), NO_PAGE);
        set_right_sibling(&mut p, 42);
        assert_eq!(right_sibling(&p), 42);
    }
}
