//! Sorted bulk loading.
//!
//! Every index in the reproduction is built by enumerating its rows,
//! sorting the encoded keys, and packing leaves left-to-right at a target
//! fill factor — the standard `CREATE INDEX` path. Interior levels are
//! assembled from (optionally prefix-truncated) separators.

use crate::node;
use crate::tree::{BTree, BTreeOptions};
use std::sync::Arc;
use xtwig_storage::{BufferPool, PageId, PAGE_SIZE};

/// Builds a B+-tree from an iterator of **strictly increasing** keys.
///
/// # Panics
/// Panics if keys are not strictly increasing, or exceed
/// [`node::MAX_KEY`]/[`node::MAX_VAL`].
pub fn bulk_build<I>(pool: Arc<BufferPool>, options: BTreeOptions, entries: I) -> BTree
where
    I: IntoIterator<Item = (Vec<u8>, Vec<u8>)>,
{
    let fill_limit =
        (((PAGE_SIZE - node::HDR) as f64) * options.fill_factor.clamp(0.1, 1.0)) as usize;
    let mut pages: u64 = 0;
    let mut n_entries: u64 = 0;

    let mut alloc = |init_leaf: bool, leftmost: u32| -> PageId {
        pages += 1;
        let (pid, mut guard) = pool.allocate();
        if init_leaf {
            node::init_leaf(&mut guard);
        } else {
            node::init_internal(&mut guard, leftmost);
        }
        pid
    };

    // ---- Leaf level ---------------------------------------------------
    // Each finished leaf is recorded as (first_key, last_key, pid).
    let mut leaves: Vec<(Vec<u8>, Vec<u8>, PageId)> = Vec::new();
    #[allow(clippy::type_complexity)]
    let mut cur: Option<(PageId, Vec<u8>, Vec<u8>, usize, usize)> = None; // pid, first, last, used, slot
    let mut prev_key: Option<Vec<u8>> = None;

    for (key, value) in entries {
        assert!(key.len() <= node::MAX_KEY, "key too long: {}", key.len());
        assert!(value.len() <= node::MAX_VAL, "value too long: {}", value.len());
        if let Some(p) = &prev_key {
            assert!(p < &key, "bulk_build requires strictly increasing keys");
        }
        let cell = 6 + key.len() + value.len();
        let start_new = match &cur {
            None => true,
            Some((_, _, _, used, _)) => used + cell > fill_limit,
        };
        if start_new {
            if let Some((pid, first, last, _, _)) = cur.take() {
                leaves.push((first, last, pid));
            }
            let pid = alloc(true, 0);
            cur = Some((pid, key.clone(), key.clone(), 0, 0));
        }
        let (pid, _, last, used, slot) = cur.as_mut().unwrap();
        {
            let mut guard = pool.fetch_mut(*pid);
            assert!(node::leaf_insert_at(&mut guard, *slot, &key, &value), "leaf cell must fit");
        }
        *last = key.clone();
        *used += cell;
        *slot += 1;
        n_entries += 1;
        prev_key = Some(key);
    }
    if let Some((pid, first, last, _, _)) = cur.take() {
        leaves.push((first, last, pid));
    }

    if leaves.is_empty() {
        let pid = alloc(true, 0);
        return BTree::from_parts(pool, options, pid, 1, 0, pages);
    }

    // Link leaf siblings.
    for w in leaves.windows(2) {
        let mut guard = pool.fetch_mut(w[0].2);
        node::set_right_sibling(&mut guard, w[1].2 .0);
    }

    // ---- Interior levels ----------------------------------------------
    // Each level entry: (separator_before_this_subtree, subtree_root).
    // The first entry of a level has no separator.
    let mut level: Vec<(Option<Vec<u8>>, PageId)> = Vec::with_capacity(leaves.len());
    for (i, (first, _, pid)) in leaves.iter().enumerate() {
        let sep = if i == 0 {
            None
        } else if options.prefix_truncation {
            Some(node::shortest_separator(&leaves[i - 1].1, first))
        } else {
            Some(first.clone())
        };
        level.push((sep, *pid));
    }

    let mut height = 1u32;
    while level.len() > 1 {
        height += 1;
        let mut next: Vec<(Option<Vec<u8>>, PageId)> = Vec::new();
        let mut i = 0usize;
        while i < level.len() {
            let node_sep = level[i].0.clone();
            let pid = alloc(false, level[i].1 .0);
            i += 1;
            let mut used = 0usize;
            let mut slot = 0usize;
            while i < level.len() {
                let sep = level[i].0.as_ref().expect("non-first entries carry separators");
                let cell = 8 + sep.len();
                if used + cell > fill_limit {
                    break;
                }
                let mut guard = pool.fetch_mut(pid);
                assert!(node::int_insert_at(&mut guard, slot, sep, level[i].1 .0));
                used += cell;
                slot += 1;
                i += 1;
            }
            // Guarantee progress: a node with zero separators is only legal
            // as a lone root; force at least one entry when more children
            // remain (cells are far smaller than a page, so this fits).
            if slot == 0 && i < level.len() {
                let sep = level[i].0.clone().expect("non-first entries carry separators");
                let mut guard = pool.fetch_mut(pid);
                assert!(node::int_insert_at(&mut guard, 0, &sep, level[i].1 .0));
                i += 1;
            }
            next.push((node_sep, pid));
        }
        level = next;
    }

    let root = level[0].1;
    BTree::from_parts(pool, options, root, height, n_entries, pages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::ScanEnd;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::in_memory(8192))
    }

    fn entry(i: u32) -> (Vec<u8>, Vec<u8>) {
        (format!("key{i:08}").into_bytes(), i.to_le_bytes().to_vec())
    }

    #[test]
    fn empty_build() {
        let t = bulk_build(pool(), BTreeOptions::default(), Vec::new());
        assert!(t.is_empty());
        assert_eq!(t.scan_all().count(), 0);
        t.check_invariants();
    }

    #[test]
    fn single_entry() {
        let t = bulk_build(pool(), BTreeOptions::default(), vec![entry(7)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(b"key00000007"), Some(7u32.to_le_bytes().to_vec()));
        t.check_invariants();
    }

    #[test]
    fn large_build_lookup_and_scan() {
        let n = 50_000u32;
        let t = bulk_build(pool(), BTreeOptions::default(), (0..n).map(entry));
        assert_eq!(t.len(), u64::from(n));
        assert!(t.stats().height >= 2, "height {}", t.stats().height);
        t.check_invariants();
        for i in [0, 1, 999, 25_000, n - 1] {
            let (k, v) = entry(i);
            assert_eq!(t.get(&k), Some(v));
        }
        assert_eq!(t.get(b"key99999999"), None);
        assert_eq!(t.scan_all().count(), n as usize);
        let sub: Vec<_> =
            t.range(b"key00010000", ScanEnd::Before(b"key00010100".to_vec())).collect();
        assert_eq!(sub.len(), 100);
    }

    #[test]
    fn bulk_build_matches_incremental_inserts() {
        let entries: Vec<_> = (0..3_000u32).map(entry).collect();
        let bulk = bulk_build(pool(), BTreeOptions::default(), entries.clone());
        let mut incr = BTree::new(pool());
        for (k, v) in &entries {
            incr.insert(k, v);
        }
        let a: Vec<_> = bulk.scan_all().collect();
        let b: Vec<_> = incr.scan_all().collect();
        assert_eq!(a, b);
        // Bulk loading should be at least as compact.
        assert!(bulk.stats().pages <= incr.stats().pages);
    }

    #[test]
    fn inserts_into_bulk_built_tree() {
        let mut t =
            bulk_build(pool(), BTreeOptions::default(), (0..1_000u32).map(|i| entry(i * 2)));
        for i in 0..1_000u32 {
            let (k, v) = entry(i * 2 + 1);
            t.insert(&k, &v);
        }
        assert_eq!(t.len(), 2_000);
        t.check_invariants();
        let keys: Vec<_> = t.scan_all().map(|(k, _)| k).collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_input() {
        bulk_build(pool(), BTreeOptions::default(), vec![entry(2), entry(1)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_duplicate_keys() {
        bulk_build(pool(), BTreeOptions::default(), vec![entry(1), entry(1)]);
    }

    #[test]
    fn fill_factor_trades_pages() {
        let dense = bulk_build(
            pool(),
            BTreeOptions { fill_factor: 1.0, ..Default::default() },
            (0..20_000).map(entry),
        );
        let sparse = bulk_build(
            pool(),
            BTreeOptions { fill_factor: 0.5, ..Default::default() },
            (0..20_000).map(entry),
        );
        assert!(dense.stats().pages < sparse.stats().pages);
        dense.check_invariants();
        sparse.check_invariants();
    }

    #[test]
    fn prefix_scan_on_bulk_tree() {
        let t = bulk_build(
            pool(),
            BTreeOptions::default(),
            (0..26u8).flat_map(|c| {
                (0..100u32).map(move |i| {
                    (vec![b'a' + c, b'/', (i / 10) as u8 + b'0', (i % 10) as u8 + b'0'], vec![c])
                })
            }),
        );
        assert_eq!(t.len(), 2_600);
        for c in 0..26u8 {
            let hits: Vec<_> = t.scan_prefix(&[b'a' + c]).collect();
            assert_eq!(hits.len(), 100);
            assert!(hits.iter().all(|(_, v)| v == &vec![c]));
        }
    }
}
