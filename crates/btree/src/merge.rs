//! K-way merge of sorted entry runs, for sharded bulk loads.
//!
//! A parallel index build enumerates and sorts its rows per shard, then
//! needs the union as one strictly increasing key sequence to feed
//! [`crate::bulk_build`]. [`merge_sorted_runs`] streams that union
//! without concatenating and re-sorting: the merged order over sorted
//! runs is exactly the order a single global sort would produce, so a
//! tree bulk-loaded from the merge is byte-identical to one loaded from
//! the sequential build's sorted vector.
//!
//! Ties across runs yield the lower-indexed run's entry first (a stable
//! merge); the index builders never produce duplicate keys, so in
//! practice `bulk_build`'s strictly-increasing assertion still guards
//! the merged stream.

/// Streaming merge over sorted runs; see the module docs.
pub struct MergeRuns {
    runs: Vec<std::vec::IntoIter<(Vec<u8>, Vec<u8>)>>,
    heads: Vec<Option<(Vec<u8>, Vec<u8>)>>,
}

/// Merges runs that are each sorted by key into one sorted stream.
///
/// The number of runs is expected to be small (one per build shard), so
/// the merge scans run heads linearly instead of maintaining a heap.
pub fn merge_sorted_runs(runs: Vec<Vec<(Vec<u8>, Vec<u8>)>>) -> MergeRuns {
    let mut iters: Vec<std::vec::IntoIter<(Vec<u8>, Vec<u8>)>> =
        runs.into_iter().map(Vec::into_iter).collect();
    let heads = iters.iter_mut().map(Iterator::next).collect();
    MergeRuns { runs: iters, heads }
}

impl Iterator for MergeRuns {
    type Item = (Vec<u8>, Vec<u8>);

    fn next(&mut self) -> Option<Self::Item> {
        let mut best: Option<usize> = None;
        for (i, head) in self.heads.iter().enumerate() {
            let Some((key, _)) = head else { continue };
            match best {
                None => best = Some(i),
                Some(b) => {
                    let (best_key, _) = self.heads[b].as_ref().unwrap();
                    if key < best_key {
                        best = Some(i);
                    }
                }
            }
        }
        let i = best?;
        let out = self.heads[i].take();
        self.heads[i] = self.runs[i].next();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(k: &str) -> (Vec<u8>, Vec<u8>) {
        (k.as_bytes().to_vec(), Vec::new())
    }

    #[test]
    fn merge_equals_global_sort() {
        let runs = vec![
            vec![e("a"), e("d"), e("g")],
            vec![e("b"), e("c")],
            Vec::new(),
            vec![e("e"), e("f"), e("h")],
        ];
        let mut expected: Vec<_> = runs.iter().flatten().cloned().collect();
        expected.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let merged: Vec<_> = merge_sorted_runs(runs).collect();
        assert_eq!(merged, expected);
    }

    #[test]
    fn empty_and_single_run() {
        assert_eq!(merge_sorted_runs(Vec::new()).count(), 0);
        assert_eq!(merge_sorted_runs(vec![Vec::new()]).count(), 0);
        let one: Vec<_> = merge_sorted_runs(vec![vec![e("x"), e("y")]]).collect();
        assert_eq!(one, vec![e("x"), e("y")]);
    }

    #[test]
    fn ties_prefer_lower_run() {
        let runs =
            vec![vec![(b"k".to_vec(), b"run0".to_vec())], vec![(b"k".to_vec(), b"run1".to_vec())]];
        let merged: Vec<_> = merge_sorted_runs(runs).collect();
        assert_eq!(merged[0].1, b"run0");
        assert_eq!(merged[1].1, b"run1");
    }

    #[test]
    fn bulk_build_from_merge_matches_sorted_vec() {
        use crate::builder::bulk_build;
        use crate::tree::BTreeOptions;
        use std::sync::Arc;
        use xtwig_storage::BufferPool;

        let all: Vec<_> = (0..5_000u32)
            .map(|i| (format!("k{i:06}").into_bytes(), i.to_le_bytes().to_vec()))
            .collect();
        // Deal entries round-robin into 3 runs, keeping each sorted.
        let mut runs = vec![Vec::new(), Vec::new(), Vec::new()];
        for (i, ent) in all.iter().enumerate() {
            runs[i % 3].push(ent.clone());
        }
        let merged = bulk_build(
            Arc::new(BufferPool::in_memory(4096)),
            BTreeOptions::default(),
            merge_sorted_runs(runs),
        );
        let sorted =
            bulk_build(Arc::new(BufferPool::in_memory(4096)), BTreeOptions::default(), all.clone());
        assert_eq!(merged.len(), sorted.len());
        let a: Vec<_> = merged.scan_all().collect();
        let b: Vec<_> = sorted.scan_all().collect();
        assert_eq!(a, b);
        assert_eq!(merged.stats().pages, sorted.stats().pages);
    }
}
