//! Disk-format B+-tree substrate.
//!
//! The paper's central implementation claim is that its indexes need
//! nothing beyond "the access methods of the underlying database system"
//! — i.e., ordinary B+-trees with prefix lookups (§1, §3). This crate is
//! that access method: a page-structured B+-tree over the
//! `xtwig-storage` buffer pool with
//!
//! * variable-length byte-string keys and values (composite keys are
//!   produced by the order-preserving codec in `xtwig-rel`),
//! * point lookups, inserts, deletes, range scans, and *prefix scans* —
//!   the operation that makes reversed schema paths answer `//` queries,
//! * shortest-separator prefix truncation in interior nodes (the analogue
//!   of the key prefix compression the paper cites in DB2, §3.1), and
//! * sorted bulk loading, used to build every index in one pass.
//!
//! Trees carry no on-page catalog of their own: the root page id and
//! shape counters live in the `BTree` struct, exposed via
//! [`tree::BTree::root`]/[`tree::BTree::stats`] and reattachable with
//! [`tree::BTree::from_parts`] — which is how `xtwig-core`'s index
//! persistence stores trees in its catalog page and reopens them from
//! disk without a rebuild.

pub mod builder;
pub mod merge;
pub mod node;
pub mod tree;

pub use builder::bulk_build;
pub use merge::{merge_sorted_runs, MergeRuns};
pub use tree::{BTree, BTreeOptions, BTreeStats, RangeScan};
