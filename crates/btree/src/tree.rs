//! The B+-tree proper: lookups, inserts, deletes, range and prefix scans.

use crate::node::{self, NO_PAGE};
use std::collections::VecDeque;
use std::sync::Arc;
use xtwig_storage::{BufferPool, PageId, PAGE_SIZE};

/// Build/behaviour options.
#[derive(Debug, Clone, Copy)]
pub struct BTreeOptions {
    /// Store shortest distinguishing separators in interior nodes instead
    /// of full keys (the DB2-style prefix compression the paper leans on
    /// in §3.1). Disable for the ablation benchmark.
    pub prefix_truncation: bool,
    /// Target fill fraction of leaf/internal pages during bulk build.
    pub fill_factor: f64,
}

impl Default for BTreeOptions {
    fn default() -> Self {
        BTreeOptions { prefix_truncation: true, fill_factor: 0.9 }
    }
}

/// Size/shape statistics for space reporting (Fig. 9).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BTreeStats {
    /// Number of key/value entries.
    pub entries: u64,
    /// Number of pages (leaf + internal).
    pub pages: u64,
    /// Tree height (1 = root is a leaf).
    pub height: u32,
}

impl BTreeStats {
    /// Total allocated bytes.
    pub fn bytes(&self) -> u64 {
        self.pages * PAGE_SIZE as u64
    }
}

/// A B+-tree bound to a buffer pool.
pub struct BTree {
    pool: Arc<BufferPool>,
    options: BTreeOptions,
    root: PageId,
    height: u32,
    entries: u64,
    pages: u64,
}

impl BTree {
    /// Creates an empty tree (root is an empty leaf).
    pub fn new(pool: Arc<BufferPool>) -> Self {
        Self::with_options(pool, BTreeOptions::default())
    }

    /// Creates an empty tree with explicit options.
    pub fn with_options(pool: Arc<BufferPool>, options: BTreeOptions) -> Self {
        let (root, mut guard) = pool.allocate();
        node::init_leaf(&mut guard);
        drop(guard);
        BTree { pool, options, root, height: 1, entries: 0, pages: 1 }
    }

    /// Reattaches a tree from its persisted shape: the root page id and
    /// the `height`/`entries`/`pages` counters recorded when the tree
    /// was built (bulk load keeps them exact; `xtwig-core`'s index
    /// persistence stores them in its catalog). The caller must hand
    /// back a pool whose page image contains the tree unchanged —
    /// nothing is validated here beyond what later operations assert.
    pub fn from_parts(
        pool: Arc<BufferPool>,
        options: BTreeOptions,
        root: PageId,
        height: u32,
        entries: u64,
        pages: u64,
    ) -> Self {
        BTree { pool, options, root, height, entries, pages }
    }

    /// The buffer pool backing this tree.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The root page id (persisted by the index catalog and fed back to
    /// [`BTree::from_parts`] on reopen).
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Build/behaviour options.
    pub fn options(&self) -> BTreeOptions {
        self.options
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Size/shape statistics.
    pub fn stats(&self) -> BTreeStats {
        BTreeStats { entries: self.entries, pages: self.pages, height: self.height }
    }

    /// Allocated bytes (page-granular), the Fig. 9 space metric.
    pub fn space_bytes(&self) -> u64 {
        self.pages * PAGE_SIZE as u64
    }

    fn alloc_page(&mut self) -> PageId {
        self.pages += 1;
        let (pid, guard) = self.pool.allocate();
        drop(guard);
        pid
    }

    /// Descends to the leaf that would contain `key`.
    fn find_leaf(&self, key: &[u8]) -> PageId {
        let mut pid = self.root;
        loop {
            let page = self.pool.fetch(pid);
            if node::is_leaf(&page) {
                return pid;
            }
            let idx = node::int_child_index(&page, key);
            let child = node::int_child_at(&page, idx);
            drop(page);
            pid = PageId(child);
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let leaf = self.find_leaf(key);
        let page = self.pool.fetch(leaf);
        match node::leaf_find(&page, key) {
            Ok(idx) => Some(node::leaf_value(&page, idx).to_vec()),
            Err(_) => None,
        }
    }

    /// True if `key` is present.
    pub fn contains(&self, key: &[u8]) -> bool {
        let leaf = self.find_leaf(key);
        let page = self.pool.fetch(leaf);
        node::leaf_find(&page, key).is_ok()
    }

    /// Inserts `(key, value)`; replaces and returns the previous value if
    /// the key already exists.
    ///
    /// # Panics
    /// Panics if `key`/`value` exceed [`node::MAX_KEY`]/[`node::MAX_VAL`].
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> Option<Vec<u8>> {
        assert!(key.len() <= node::MAX_KEY, "key too long: {}", key.len());
        assert!(value.len() <= node::MAX_VAL, "value too long: {}", value.len());
        let (old, split) = self.insert_rec(self.root, key, value);
        if let Some((sep, right)) = split {
            let new_root = self.alloc_page();
            let mut guard = self.pool.fetch_mut(new_root);
            node::init_internal(&mut guard, self.root.0);
            assert!(node::int_insert_at(&mut guard, 0, &sep, right.0));
            drop(guard);
            self.root = new_root;
            self.height += 1;
        }
        if old.is_none() {
            self.entries += 1;
        }
        old
    }

    /// Recursive insert; returns `(replaced_value, Some((separator,
    /// new_right_page)))` when this node split.
    #[allow(clippy::type_complexity)]
    fn insert_rec(
        &mut self,
        pid: PageId,
        key: &[u8],
        value: &[u8],
    ) -> (Option<Vec<u8>>, Option<(Vec<u8>, PageId)>) {
        let is_leaf = {
            let page = self.pool.fetch(pid);
            node::is_leaf(&page)
        };
        if is_leaf {
            let pool = Arc::clone(&self.pool);
            let mut page = pool.fetch_mut(pid);
            let mut old = None;
            let idx = match node::leaf_find(&page, key) {
                Ok(i) => {
                    old = Some(node::leaf_value(&page, i).to_vec());
                    node::leaf_remove_at(&mut page, i);
                    i
                }
                Err(i) => i,
            };
            if node::leaf_insert_at(&mut page, idx, key, value) {
                return (old, None);
            }
            // Split required.
            let split = self.split_leaf(&mut page, idx, key, value);
            (old, Some(split))
        } else {
            let (child_idx, child) = {
                let page = self.pool.fetch(pid);
                let idx = node::int_child_index(&page, key);
                (idx, PageId(node::int_child_at(&page, idx)))
            };
            let (old, split) = self.insert_rec(child, key, value);
            let Some((sep, new_child)) = split else {
                return (old, None);
            };
            let pool = Arc::clone(&self.pool);
            let mut page = pool.fetch_mut(pid);
            if node::int_insert_at(&mut page, child_idx, &sep, new_child.0) {
                return (old, None);
            }
            let split = self.split_internal(&mut page, child_idx, &sep, new_child);
            (old, Some(split))
        }
    }

    /// Splits a full leaf; `(idx, key, value)` is the pending insert.
    fn split_leaf(
        &mut self,
        page: &mut [u8],
        idx: usize,
        key: &[u8],
        value: &[u8],
    ) -> (Vec<u8>, PageId) {
        let n = node::nslots(page);
        let mut cells: Vec<(Vec<u8>, Vec<u8>)> = (0..n)
            .map(|i| (node::leaf_key(page, i).to_vec(), node::leaf_value(page, i).to_vec()))
            .collect();
        cells.insert(idx, (key.to_vec(), value.to_vec()));
        // Split point by accumulated bytes.
        let total: usize = cells.iter().map(|(k, v)| 6 + k.len() + v.len()).sum();
        let mut acc = 0usize;
        let mut mid = cells.len() / 2;
        for (i, (k, v)) in cells.iter().enumerate() {
            acc += 6 + k.len() + v.len();
            if acc * 2 >= total {
                mid = (i + 1).min(cells.len() - 1).max(1);
                break;
            }
        }
        let right_pid = self.alloc_page();
        let old_sibling = node::right_sibling(page);
        let mut right = self.pool.fetch_mut(right_pid);
        node::init_leaf(&mut right);
        node::set_right_sibling(&mut right, old_sibling);
        for (i, (k, v)) in cells[mid..].iter().enumerate() {
            assert!(node::leaf_insert_at(&mut right, i, k, v), "right split half must fit");
        }
        drop(right);
        node::init_leaf(page);
        node::set_right_sibling(page, right_pid.0);
        for (i, (k, v)) in cells[..mid].iter().enumerate() {
            assert!(node::leaf_insert_at(page, i, k, v), "left split half must fit");
        }
        let sep = if self.options.prefix_truncation {
            node::shortest_separator(&cells[mid - 1].0, &cells[mid].0)
        } else {
            cells[mid].0.clone()
        };
        (sep, right_pid)
    }

    /// Splits a full internal node; `(idx, key, child)` is the pending
    /// separator insert.
    fn split_internal(
        &mut self,
        page: &mut [u8],
        idx: usize,
        key: &[u8],
        child: PageId,
    ) -> (Vec<u8>, PageId) {
        let n = node::nslots(page);
        let mut entries: Vec<(Vec<u8>, u32)> =
            (0..n).map(|i| (node::int_key(page, i).to_vec(), node::int_child(page, i))).collect();
        entries.insert(idx, (key.to_vec(), child.0));
        let leftmost = node::leftmost_child(page);
        let mid = entries.len() / 2;
        let (promoted, right_leftmost) = (entries[mid].0.clone(), entries[mid].1);
        let right_pid = self.alloc_page();
        let mut right = self.pool.fetch_mut(right_pid);
        node::init_internal(&mut right, right_leftmost);
        for (i, (k, c)) in entries[mid + 1..].iter().enumerate() {
            assert!(node::int_insert_at(&mut right, i, k, *c), "right split half must fit");
        }
        drop(right);
        node::init_internal(page, leftmost);
        for (i, (k, c)) in entries[..mid].iter().enumerate() {
            assert!(node::int_insert_at(page, i, k, *c), "left split half must fit");
        }
        (promoted, right_pid)
    }

    /// Removes `key`; returns its value if it was present. Pages are not
    /// merged on underflow (indexes here are bulk-built and read-mostly;
    /// the update experiment measures entry-level maintenance cost, which
    /// does not require rebalancing).
    pub fn delete(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let leaf = self.find_leaf(key);
        let mut page = self.pool.fetch_mut(leaf);
        match node::leaf_find(&page, key) {
            Ok(idx) => {
                let old = node::leaf_value(&page, idx).to_vec();
                node::leaf_remove_at(&mut page, idx);
                self.entries -= 1;
                Some(old)
            }
            Err(_) => None,
        }
    }

    /// Scans all entries with `key >= lo`, ending per `end`.
    pub fn range(&self, lo: &[u8], end: ScanEnd) -> RangeScan<'_> {
        let leaf = self.find_leaf(lo);
        let start = {
            let page = self.pool.fetch(leaf);
            match node::leaf_find(&page, lo) {
                Ok(i) | Err(i) => i,
            }
        };
        let mut scan = RangeScan {
            tree: self,
            end,
            buffer: VecDeque::new(),
            next_page: leaf.0,
            next_slot: start,
            done: false,
        };
        scan.fill();
        scan
    }

    /// All entries whose key starts with `prefix`, in key order.
    ///
    /// This is the paper's core access pattern: a PCsubpath with a leading
    /// `//` becomes a prefix probe on `LeafValue · ReverseSchemaPath`.
    pub fn scan_prefix(&self, prefix: &[u8]) -> RangeScan<'_> {
        self.range(prefix, ScanEnd::Prefix(prefix.to_vec()))
    }

    /// Every entry in key order.
    pub fn scan_all(&self) -> RangeScan<'_> {
        self.range(&[], ScanEnd::Unbounded)
    }

    /// Checks structural invariants (key order within and across leaves,
    /// separator bounds). Test-support; O(n).
    pub fn check_invariants(&self) {
        let mut prev: Option<Vec<u8>> = None;
        for (k, _) in self.scan_all() {
            if let Some(p) = &prev {
                assert!(p < &k, "keys out of order: {p:?} !< {k:?}");
            }
            prev = Some(k);
        }
        let counted = self.scan_all().count() as u64;
        assert_eq!(counted, self.entries, "entry count mismatch");
        self.check_node(self.root, None, None, self.height);
    }

    fn check_node(&self, pid: PageId, lo: Option<&[u8]>, hi: Option<&[u8]>, depth: u32) {
        let page = self.pool.fetch(pid);
        if node::is_leaf(&page) {
            assert_eq!(depth, 1, "all leaves must be at the same depth");
            for i in 0..node::nslots(&page) {
                let k = node::leaf_key(&page, i);
                if let Some(lo) = lo {
                    assert!(k >= lo, "leaf key below separator");
                }
                if let Some(hi) = hi {
                    assert!(k < hi, "leaf key at/above next separator");
                }
            }
            return;
        }
        let n = node::nslots(&page);
        assert!(n >= 1, "internal node with no separators");
        let mut children = vec![node::leftmost_child(&page)];
        let mut seps: Vec<Vec<u8>> = Vec::new();
        for i in 0..n {
            seps.push(node::int_key(&page, i).to_vec());
            children.push(node::int_child(&page, i));
        }
        drop(page);
        for w in seps.windows(2) {
            assert!(w[0] < w[1], "separators out of order");
        }
        for (i, &c) in children.iter().enumerate() {
            let clo = if i == 0 { lo } else { Some(seps[i - 1].as_slice()) };
            let chi = if i == children.len() - 1 { hi } else { Some(seps[i].as_slice()) };
            self.check_node(PageId(c), clo, chi, depth - 1);
        }
    }
}

/// Scan termination condition.
#[derive(Debug, Clone)]
pub enum ScanEnd {
    /// Run to the end of the index.
    Unbounded,
    /// Stop at the first key `>= bound`.
    Before(Vec<u8>),
    /// Stop at the first key `> bound`.
    Through(Vec<u8>),
    /// Stop at the first key that does not start with the prefix.
    Prefix(Vec<u8>),
}

impl ScanEnd {
    fn admits(&self, key: &[u8]) -> bool {
        match self {
            ScanEnd::Unbounded => true,
            ScanEnd::Before(b) => key < b.as_slice(),
            ScanEnd::Through(b) => key <= b.as_slice(),
            ScanEnd::Prefix(p) => key.starts_with(p),
        }
    }
}

/// Iterator over `(key, value)` pairs in key order.
///
/// Buffers one leaf page at a time, so logical I/O is one page fetch per
/// visited leaf — the same unit a relational scan would report.
pub struct RangeScan<'t> {
    tree: &'t BTree,
    end: ScanEnd,
    buffer: VecDeque<(Vec<u8>, Vec<u8>)>,
    next_page: u32,
    next_slot: usize,
    done: bool,
}

impl RangeScan<'_> {
    fn fill(&mut self) {
        while self.buffer.is_empty() && !self.done {
            if self.next_page == NO_PAGE {
                self.done = true;
                return;
            }
            let page = self.tree.pool.fetch(PageId(self.next_page));
            let n = node::nslots(&page);
            for i in self.next_slot..n {
                let k = node::leaf_key(&page, i);
                if !self.end.admits(k) {
                    self.done = true;
                    break;
                }
                self.buffer.push_back((k.to_vec(), node::leaf_value(&page, i).to_vec()));
            }
            self.next_page = node::right_sibling(&page);
            self.next_slot = 0;
        }
    }
}

impl Iterator for RangeScan<'_> {
    type Item = (Vec<u8>, Vec<u8>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.buffer.is_empty() {
            self.fill();
        }
        self.buffer.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    fn tree() -> BTree {
        BTree::new(Arc::new(BufferPool::in_memory(512)))
    }

    #[test]
    fn empty_tree_behaviour() {
        let t = tree();
        assert!(t.is_empty());
        assert_eq!(t.get(b"x"), None);
        assert_eq!(t.scan_all().count(), 0);
        assert_eq!(t.scan_prefix(b"a").count(), 0);
        t.check_invariants();
    }

    #[test]
    fn insert_get_small() {
        let mut t = tree();
        assert_eq!(t.insert(b"b", b"2"), None);
        assert_eq!(t.insert(b"a", b"1"), None);
        assert_eq!(t.insert(b"c", b"3"), None);
        assert_eq!(t.get(b"a"), Some(b"1".to_vec()));
        assert_eq!(t.get(b"b"), Some(b"2".to_vec()));
        assert_eq!(t.get(b"c"), Some(b"3".to_vec()));
        assert_eq!(t.get(b"d"), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn insert_replaces_existing() {
        let mut t = tree();
        assert_eq!(t.insert(b"k", b"v1"), None);
        assert_eq!(t.insert(b"k", b"v2"), Some(b"v1".to_vec()));
        assert_eq!(t.get(b"k"), Some(b"v2".to_vec()));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn many_inserts_split_and_stay_sorted() {
        let mut t = tree();
        let n = 5_000u32;
        for i in 0..n {
            // Interleaved order to exercise splits at both ends.
            let k = if i % 2 == 0 { i } else { n * 2 - i };
            t.insert(format!("key{k:08}").as_bytes(), &k.to_le_bytes());
        }
        assert!(t.stats().height > 1, "tree should have split");
        assert!(t.stats().pages > 1);
        t.check_invariants();
        let keys: Vec<_> = t.scan_all().map(|(k, _)| k).collect();
        assert_eq!(keys.len(), n as usize);
        for w in keys.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn randomized_against_btreemap_model() {
        let mut rng = SmallRng::seed_from_u64(0xDECAF);
        let mut t = tree();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for _ in 0..4_000 {
            let op: u8 = rng.gen_range(0..10);
            let key = format!("k{:05}", rng.gen_range(0..800u32)).into_bytes();
            if op < 7 {
                let val = format!("v{}", rng.gen::<u32>()).into_bytes();
                assert_eq!(t.insert(&key, &val), model.insert(key, val));
            } else {
                assert_eq!(t.delete(&key), model.remove(&key));
            }
        }
        assert_eq!(t.len(), model.len() as u64);
        for (k, v) in &model {
            assert_eq!(t.get(k).as_ref(), Some(v));
        }
        let scanned: Vec<_> = t.scan_all().collect();
        let expected: Vec<_> = model.into_iter().collect();
        assert_eq!(scanned, expected);
        t.check_invariants();
    }

    #[test]
    fn prefix_scan_selects_exactly_prefixed_keys() {
        let mut t = tree();
        for i in 0..200u32 {
            t.insert(format!("aa{i:04}").as_bytes(), b"1");
            t.insert(format!("ab{i:04}").as_bytes(), b"2");
            t.insert(format!("b{i:04}").as_bytes(), b"3");
        }
        assert_eq!(t.scan_prefix(b"aa").count(), 200);
        assert_eq!(t.scan_prefix(b"ab").count(), 200);
        assert_eq!(t.scan_prefix(b"a").count(), 400);
        assert_eq!(t.scan_prefix(b"b").count(), 200);
        assert_eq!(t.scan_prefix(b"c").count(), 0);
        assert_eq!(t.scan_prefix(b"").count(), 600);
        for (k, v) in t.scan_prefix(b"ab") {
            assert!(k.starts_with(b"ab"));
            assert_eq!(v, b"2");
        }
    }

    #[test]
    fn range_bounds() {
        let mut t = tree();
        for i in 0..100u32 {
            t.insert(format!("{i:03}").as_bytes(), b"");
        }
        let upto: Vec<_> = t.range(b"010", ScanEnd::Before(b"020".to_vec())).collect();
        assert_eq!(upto.len(), 10);
        assert_eq!(upto[0].0, b"010");
        assert_eq!(upto[9].0, b"019");
        let through: Vec<_> = t.range(b"010", ScanEnd::Through(b"020".to_vec())).collect();
        assert_eq!(through.len(), 11);
        let from: Vec<_> = t.range(b"095", ScanEnd::Unbounded).collect();
        assert_eq!(from.len(), 5);
    }

    #[test]
    fn delete_then_reinsert() {
        let mut t = tree();
        for i in 0..1000u32 {
            t.insert(format!("k{i:05}").as_bytes(), &i.to_le_bytes());
        }
        for i in (0..1000u32).step_by(2) {
            assert!(t.delete(format!("k{i:05}").as_bytes()).is_some());
        }
        assert_eq!(t.len(), 500);
        assert_eq!(t.delete(b"k00000"), None);
        for i in (0..1000u32).step_by(2) {
            t.insert(format!("k{i:05}").as_bytes(), b"new");
        }
        assert_eq!(t.len(), 1000);
        assert_eq!(t.get(b"k00000"), Some(b"new".to_vec()));
        assert_eq!(t.get(b"k00001"), Some(1u32.to_le_bytes().to_vec()));
        t.check_invariants();
    }

    #[test]
    fn binary_keys_with_zero_bytes() {
        let mut t = tree();
        let keys: Vec<Vec<u8>> =
            vec![vec![0], vec![0, 0], vec![0, 1], vec![1, 0, 255], vec![255], vec![255, 0]];
        for (i, k) in keys.iter().enumerate() {
            t.insert(k, &[i as u8]);
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.get(k), Some(vec![i as u8]));
        }
        let scanned: Vec<_> = t.scan_all().map(|(k, _)| k).collect();
        let mut expected = keys.clone();
        expected.sort();
        assert_eq!(scanned, expected);
    }

    #[test]
    fn long_keys_near_limit() {
        let mut t = tree();
        for i in 0..40u32 {
            let mut k = vec![b'x'; crate::node::MAX_KEY - 4];
            k.extend_from_slice(&i.to_be_bytes());
            t.insert(&k, b"v");
        }
        assert_eq!(t.len(), 40);
        assert!(t.stats().height >= 2);
        t.check_invariants();
    }

    #[test]
    #[should_panic(expected = "key too long")]
    fn oversize_key_rejected() {
        let mut t = tree();
        t.insert(&vec![0u8; crate::node::MAX_KEY + 1], b"v");
    }

    #[test]
    fn prefix_truncation_reduces_interior_bytes() {
        // Keys share long common prefixes; with truncation the tree should
        // need no more pages than without (usually fewer interior bytes).
        let build = |trunc: bool| {
            let mut t = BTree::with_options(
                Arc::new(BufferPool::in_memory(4096)),
                BTreeOptions { prefix_truncation: trunc, ..Default::default() },
            );
            for i in 0..20_000u32 {
                let k = format!("/site/regions/namerica/item/{i:08}/quantity");
                t.insert(k.as_bytes(), b"1");
            }
            t.check_invariants();
            t.stats().pages
        };
        let with = build(true);
        let without = build(false);
        assert!(with <= without, "prefix truncation grew the tree: {with} > {without}");
    }

    #[test]
    fn scan_counts_one_logical_read_per_leaf() {
        let pool = Arc::new(BufferPool::in_memory(512));
        let mut t = BTree::new(pool.clone());
        for i in 0..2_000u32 {
            t.insert(format!("k{i:06}").as_bytes(), &[0u8; 32]);
        }
        let leaves = {
            // Count leaves by walking sibling pointers.
            let mut pid = t.find_leaf(b"");
            let mut count = 0u64;
            loop {
                count += 1;
                let page = pool.fetch(pid);
                let next = node::right_sibling(&page);
                if next == NO_PAGE {
                    break;
                }
                pid = PageId(next);
            }
            count
        };
        pool.stats().reset();
        let n = t.scan_all().count();
        assert_eq!(n, 2_000);
        let logical = pool.stats().snapshot().logical_reads;
        // Descent (height) + one fetch per leaf (+1 slack for the empty
        // tail probe).
        assert!(
            logical <= leaves + u64::from(t.stats().height) + 1,
            "scan used {logical} logical reads for {leaves} leaves"
        );
    }
}
