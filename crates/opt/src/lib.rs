//! Cost-based index-strategy selection for the twig engine.
//!
//! The paper's evaluation (Figs. 9–13) shows that no single index
//! configuration wins everywhere: ROOTPATHS dominates single-path and
//! recursive twigs, the Index Fabric ties it on fully-specified valued
//! paths, DATAPATHS wins when an index-nested-loop plan applies, and the
//! Edge family pays per-step walks that grow with candidate counts. A
//! production service should not require clients to have read the paper
//! to get the fast path — this crate operationalizes those findings as a
//! cost model, the way a relational optimizer folds access-path choice
//! into plan selection.
//!
//! The crate sits *below* `xtwig-core` in the dependency graph so the
//! engine itself can resolve [`Strategy::Auto`]; core supplies the
//! inputs through small data types:
//!
//! * [`Strategy`] — the seven concrete index configurations plus the
//!   [`Strategy::Auto`] pseudo-strategy the optimizer resolves.
//! * [`CardinalitySource`] — the statistics interface (implemented by
//!   core's `PathStats`, whose path table doubles as the DataGuide's
//!   path catalog): exact path counts, suffix sums, per-value leaf
//!   counts, tag counts, mean depth.
//! * [`Catalog`] / [`TreeProfile`] — physical shape of every built
//!   structure (pages, rows, B+-tree heights), measured from the built
//!   engine or a reopened index file.
//! * [`TwigCostInput`] — the planned query: its PCsubpath cover, how
//!   many rows feed `//` stitches, and the index-nested-loop
//!   alternative when the planner chose one.
//! * [`rank`] — the model itself: estimated page reads per strategy,
//!   sorted cheapest first, as [`StrategyChoice`] rows an EXPLAIN can
//!   print.
//!
//! Constants in [`calibration`] are derived from measured
//! estimated-vs-actual page reads by the `fig_optimizer` harness (see
//! `crates/bench`), which replays the suite corpora across all built
//! strategies and records `BENCH_opt.json`.

pub mod calibration;
pub mod cost;
pub mod estimate;
pub mod feedback;
pub mod strategy;

pub use calibration::Calibration;
pub use cost::{
    rank, Catalog, EdgeProfile, InljProbe, StrategyChoice, SubpathInput, TableSetProfile,
    TreeProfile, TwigCostInput,
};
pub use estimate::{leaf_candidates, pattern_matches, CardinalitySource};
pub use feedback::{AdviseReport, CalibrationLog, CalibrationSample, StrategyAdvice};
pub use strategy::{ParseStrategyError, Strategy};
