//! Cardinality estimation over collected path statistics.
//!
//! The estimator consumes the same statistics the paper's §5.1.1 setup
//! collects in DB2: instance counts per root-anchored schema path (which
//! is exactly the DataGuide's path catalog, annotated with counts),
//! per-`(leaf tag, value)` counts for bound predicates, and per-tag
//! totals. Core's `PathStats` implements [`CardinalitySource`]; the
//! trait keeps this crate below `xtwig-core` in the dependency graph so
//! the engine itself can consult the optimizer.

use xtwig_xml::TagId;

/// Statistics interface the estimator and cost model read.
///
/// All counts are instance counts (not distinct-value counts). The
/// default implementations derive the aggregate queries from the
/// primitive ones where possible.
pub trait CardinalitySource {
    /// Instances of the exact root-anchored schema path `tags`.
    fn path_instances(&self, tags: &[TagId]) -> u64;

    /// Instances summed over every distinct root path that *ends with*
    /// `tags` — the `//`-headed pattern count.
    fn suffix_instances(&self, tags: &[TagId]) -> u64;

    /// Distinct stored schema paths matching the pattern: 1/0 for an
    /// anchored pattern, the number of paths ending with `tags`
    /// otherwise. Drives the per-table probe counts of ASR and Join
    /// Indices (one table pair per matching path expression).
    fn matching_path_count(&self, tags: &[TagId], anchored: bool) -> u64;

    /// Instances of nodes with `tag`.
    fn tag_instances(&self, tag: TagId) -> u64;

    /// Instances of `(leaf tag, value)`.
    fn value_instances(&self, tag: TagId, value: &str) -> u64;

    /// Total element/attribute nodes.
    fn node_count(&self) -> u64;

    /// Mean root-path depth over all nodes — the expected backward-link
    /// walk length when a strategy has to recover ancestors it did not
    /// store.
    fn mean_depth(&self) -> f64;
}

/// Estimated matches of a PCsubpath pattern: the structural count
/// (exact path when anchored, suffix sum otherwise) capped by the bound
/// value's selectivity when the pattern carries one. Mirrors the
/// engine's planner estimate so ranking and step ordering agree.
pub fn pattern_matches<S: CardinalitySource + ?Sized>(
    stats: &S,
    tags: &[TagId],
    anchored: bool,
    value: Option<&str>,
) -> u64 {
    let last = *tags.last().expect("empty pattern");
    let structural =
        if anchored { stats.path_instances(tags) } else { stats.suffix_instances(tags) };
    match value {
        None => structural,
        Some(v) => structural.min(stats.value_instances(last, v)),
    }
}

/// Leaf candidates an Edge-family evaluation starts from: one value
/// probe (bound pattern) or a full tag scan (structural pattern).
pub fn leaf_candidates<S: CardinalitySource + ?Sized>(
    stats: &S,
    tags: &[TagId],
    value: Option<&str>,
) -> u64 {
    let last = *tags.last().expect("empty pattern");
    match value {
        Some(v) => stats.value_instances(last, v),
        None => stats.tag_instances(last),
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use std::collections::HashMap;

    /// A hand-filled statistics table for cost-model unit tests.
    #[derive(Default)]
    pub struct TableStats {
        pub paths: HashMap<Vec<TagId>, u64>,
        pub values: HashMap<(TagId, String), u64>,
        pub depth: f64,
    }

    impl TableStats {
        pub fn path(mut self, tags: &[u32], count: u64) -> Self {
            self.paths.insert(tags.iter().map(|&t| TagId(t)).collect(), count);
            self
        }

        pub fn value(mut self, tag: u32, value: &str, count: u64) -> Self {
            self.values.insert((TagId(tag), value.to_owned()), count);
            self
        }
    }

    impl CardinalitySource for TableStats {
        fn path_instances(&self, tags: &[TagId]) -> u64 {
            self.paths.get(tags).copied().unwrap_or(0)
        }

        fn suffix_instances(&self, tags: &[TagId]) -> u64 {
            self.paths.iter().filter(|(p, _)| p.ends_with(tags)).map(|(_, &c)| c).sum()
        }

        fn matching_path_count(&self, tags: &[TagId], anchored: bool) -> u64 {
            if anchored {
                u64::from(self.paths.contains_key(tags))
            } else {
                self.paths.keys().filter(|p| p.ends_with(tags)).count() as u64
            }
        }

        fn tag_instances(&self, tag: TagId) -> u64 {
            self.paths.iter().filter(|(p, _)| p.last() == Some(&tag)).map(|(_, &c)| c).sum()
        }

        fn value_instances(&self, tag: TagId, value: &str) -> u64 {
            self.values.get(&(tag, value.to_owned())).copied().unwrap_or(0)
        }

        fn node_count(&self) -> u64 {
            self.paths.values().sum()
        }

        fn mean_depth(&self) -> f64 {
            if self.depth > 0.0 {
                self.depth
            } else {
                let (mut weighted, mut total) = (0u64, 0u64);
                for (p, &c) in &self.paths {
                    weighted += p.len() as u64 * c;
                    total += c;
                }
                if total == 0 {
                    1.0
                } else {
                    weighted as f64 / total as f64
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::TableStats;
    use super::*;

    fn stats() -> TableStats {
        // /a(1)/b(2)/c(3): 10 instances of a/b/c, 4 of x/b/c, 100 of a.
        TableStats::default()
            .path(&[1], 100)
            .path(&[1, 2], 40)
            .path(&[1, 2, 3], 10)
            .path(&[9, 2, 3], 4)
            .value(3, "rare", 1)
            .value(3, "common", 12)
    }

    #[test]
    fn anchored_vs_suffix_counts() {
        let s = stats();
        let abc = [TagId(1), TagId(2), TagId(3)];
        let bc = [TagId(2), TagId(3)];
        assert_eq!(pattern_matches(&s, &abc, true, None), 10);
        assert_eq!(pattern_matches(&s, &bc, false, None), 14);
        assert_eq!(s.matching_path_count(&bc, false), 2);
        assert_eq!(s.matching_path_count(&abc, true), 1);
    }

    #[test]
    fn value_caps_structural_count() {
        let s = stats();
        let bc = [TagId(2), TagId(3)];
        assert_eq!(pattern_matches(&s, &bc, false, Some("rare")), 1);
        assert_eq!(pattern_matches(&s, &bc, false, Some("common")), 12);
        assert_eq!(pattern_matches(&s, &bc, false, Some("absent")), 0);
        assert_eq!(leaf_candidates(&s, &bc, Some("common")), 12);
        assert_eq!(leaf_candidates(&s, &bc, None), 14);
    }
}
