//! Cost-model calibration constants.
//!
//! The model in [`crate::cost`] prices every strategy in *estimated
//! page reads*: B+-tree descents, leaf-page scans, and point probes
//! (backward-link walks, join-index lookups, bound-index probes). The
//! constants below weight those components so the estimates track the
//! *measured* cold-cache physical reads of the real structures.
//!
//! They are derived by the `fig_optimizer` harness in `crates/bench`,
//! which replays the suite corpora (fig1, multi-document, XMark, DBLP,
//! and the skewed-value corpus) across every built strategy, records
//! estimated-vs-actual page reads into `BENCH_opt.json`, and prints the
//! per-component ratios a recalibration should adopt. Re-run it after
//! changing page layout, codecs, or probe patterns:
//!
//! ```text
//! cargo run --release -p xtwig-bench --bin fig_optimizer
//! ```

/// Component weights of the physical cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Pages charged per internal B+-tree level on the first descent
    /// into a tree. Cold, internal pages are read once and then shared
    /// by every later probe of the same tree, so descents are charged
    /// per *tree touched*, not per probe.
    pub descent_page: f64,
    /// Pages charged per estimated leaf page of a range scan
    /// (`rows / rows-per-page`, from the structure's measured shape).
    pub scan_page: f64,
    /// Pages charged per point probe (Edge backward-link step, Join
    /// Index lookup) *before* the structure-size cap. Below 1.0 because
    /// probes for related candidates land on shared leaf pages.
    pub walk_page: f64,
    /// Pages charged per DATAPATHS BoundIndex probe in an
    /// index-nested-loop plan, before the cap.
    pub inlj_probe_page: f64,
}

/// Constants fitted by `fig_optimizer` against the suite corpora
/// (XMark scale 0.01, DBLP scale 0.01, fig1, multi-document, skew):
/// chosen so the per-strategy estimated/actual page-read ratio medians
/// sit near 1 and, more importantly, so the *ranking* reproduces the
/// measured-best strategy (or one within 2x of it) on ≥ 80% of the
/// replayed queries — the bar `tests/optimizer.rs` asserts.
pub const DEFAULT: Calibration =
    Calibration { descent_page: 1.0, scan_page: 1.0, walk_page: 0.5, inlj_probe_page: 1.0 };

impl Default for Calibration {
    fn default() -> Self {
        DEFAULT
    }
}
