//! Runtime optimizer feedback: observed-vs-estimated cost samples.
//!
//! The cost model's constants ([`crate::calibration`]) are fitted
//! offline by `fig_optimizer`; nothing in the serving path checks how
//! the estimates track reality. [`CalibrationLog`] closes the first
//! half of that loop: every *traced* execution records one
//! [`CalibrationSample`] — query shape, executed strategy, estimated
//! page reads, actual physical reads — into a bounded per-engine ring,
//! and [`CalibrationLog::advise`] aggregates them into an
//! [`AdviseReport`]: per-strategy median actual/estimated ratios with
//! the calibration constant each one would rescale, plus the worst
//! individual misestimates. The report is advisory only — it never
//! mutates [`crate::Calibration`]; apply a suggestion by editing the
//! constants and re-running `fig_optimizer` to confirm the fit.

use crate::strategy::Strategy;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

/// One traced execution's estimate-vs-reality record.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationSample {
    /// Shape of the executed twig (literals elided).
    pub shape: String,
    /// The strategy that actually executed.
    pub strategy: Strategy,
    /// The cost model's estimated page reads for that strategy.
    pub est_reads: f64,
    /// Physical page reads the execution actually performed.
    pub actual_reads: u64,
    /// Execution wall time in microseconds.
    pub micros: u64,
}

impl CalibrationSample {
    /// Smoothed actual/estimated ratio: `(actual + 1) / (est + 1)`.
    ///
    /// The +1 on both sides keeps warm-cache executions (0 actual
    /// reads) and trivially cheap estimates from collapsing to 0 or
    /// dividing by ~0; a perfectly calibrated sample still lands at 1.
    pub fn ratio(&self) -> f64 {
        (self.actual_reads as f64 + 1.0) / (self.est_reads.max(0.0) + 1.0)
    }

    /// How wrong the estimate is, direction-free: `max(r, 1/r)`.
    pub fn error(&self) -> f64 {
        let r = self.ratio();
        r.max(1.0 / r)
    }
}

/// Bounded ring of [`CalibrationSample`]s, shared per engine.
///
/// Interior-mutable (engines record through `&self` on the query
/// path); the mutex is only taken on traced executions and when
/// summarizing, never on the untraced hot path.
#[derive(Debug)]
pub struct CalibrationLog {
    samples: Mutex<VecDeque<CalibrationSample>>,
    capacity: usize,
}

impl CalibrationLog {
    /// Default ring capacity used by engines.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// An empty log keeping at most `capacity` samples (oldest evicted
    /// first). A zero capacity keeps nothing.
    pub fn new(capacity: usize) -> Self {
        CalibrationLog { samples: Mutex::new(VecDeque::new()), capacity }
    }

    /// Appends a sample, evicting the oldest past capacity.
    pub fn record(&self, sample: CalibrationSample) {
        if self.capacity == 0 {
            return;
        }
        let mut samples = self.samples.lock().unwrap();
        if samples.len() == self.capacity {
            samples.pop_front();
        }
        samples.push_back(sample);
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.samples.lock().unwrap().len()
    }

    /// True when nothing has been recorded (or capacity is zero).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy of the held samples, oldest first.
    pub fn samples(&self) -> Vec<CalibrationSample> {
        self.samples.lock().unwrap().iter().cloned().collect()
    }

    /// Aggregates the held samples into per-strategy advice plus the
    /// `worst` most wrong individual samples.
    pub fn advise(&self, worst: usize) -> AdviseReport {
        let samples = self.samples();
        let mut per_strategy = Vec::new();
        for s in Strategy::ALL {
            let mut ratios: Vec<f64> =
                samples.iter().filter(|x| x.strategy == s).map(|x| x.ratio()).collect();
            if ratios.is_empty() {
                continue;
            }
            ratios.sort_by(|a, b| a.total_cmp(b));
            let median = ratios[ratios.len() / 2];
            per_strategy.push(StrategyAdvice {
                strategy: s,
                samples: ratios.len(),
                median_ratio: median,
                constant: constant_for(s),
                suggested_scale: median,
            });
        }
        per_strategy.sort_by(|a, b| {
            let err = |x: &StrategyAdvice| x.median_ratio.max(1.0 / x.median_ratio);
            err(b).total_cmp(&err(a))
        });
        let mut ranked = samples;
        ranked.sort_by(|a, b| b.error().total_cmp(&a.error()));
        ranked.truncate(worst);
        AdviseReport { per_strategy, worst: ranked }
    }
}

/// The calibration constant a strategy's misestimate would rescale:
/// leaf-scan strategies price in scanned pages, the Edge family in
/// per-candidate walk probes.
fn constant_for(strategy: Strategy) -> &'static str {
    match strategy {
        Strategy::RootPaths | Strategy::DataPaths | Strategy::Asr => "scan_page",
        Strategy::Edge
        | Strategy::DataGuideEdge
        | Strategy::IndexFabricEdge
        | Strategy::JoinIndex => "walk_page",
        Strategy::Auto => "-",
    }
}

/// Per-strategy aggregate of the recorded samples.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyAdvice {
    /// Strategy the samples executed under.
    pub strategy: Strategy,
    /// Number of samples.
    pub samples: usize,
    /// Median actual/estimated page-read ratio (1.0 = calibrated).
    pub median_ratio: f64,
    /// Which calibration constant this ratio would rescale.
    pub constant: &'static str,
    /// Suggested multiplier for that constant (the median ratio).
    pub suggested_scale: f64,
}

/// What `xtwig advise` prints: ranked misestimates and suggested
/// constant adjustments, worst first.
#[derive(Debug, Clone, PartialEq)]
pub struct AdviseReport {
    /// Per-strategy aggregates, most misestimated first.
    pub per_strategy: Vec<StrategyAdvice>,
    /// The individually worst samples, most wrong first.
    pub worst: Vec<CalibrationSample>,
}

impl fmt::Display for AdviseReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.per_strategy.is_empty() {
            return writeln!(f, "no traced executions recorded yet");
        }
        writeln!(
            f,
            "per-strategy estimate accuracy (ratio = actual/estimated physical reads):\n\
             {:<8} {:>8} {:>13}   suggested adjustment",
            "strategy", "samples", "median ratio"
        )?;
        for a in &self.per_strategy {
            writeln!(
                f,
                "{:<8} {:>8} {:>12.2}x   {} \u{00d7}{:.2}",
                a.strategy.label(),
                a.samples,
                a.median_ratio,
                a.constant,
                a.suggested_scale
            )?;
        }
        writeln!(f, "worst misestimates:")?;
        for s in &self.worst {
            writeln!(
                f,
                "{:>6.1}x  {:<8} est={:.1} actual={} shape={}",
                s.error(),
                s.strategy.label(),
                s.est_reads,
                s.actual_reads,
                s.shape
            )?;
        }
        write!(
            f,
            "(advisory only: apply by editing crates/opt/src/calibration.rs \
             and re-running fig_optimizer)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(strategy: Strategy, est: f64, actual: u64) -> CalibrationSample {
        CalibrationSample {
            shape: "//a/b".into(),
            strategy,
            est_reads: est,
            actual_reads: actual,
            micros: 10,
        }
    }

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let log = CalibrationLog::new(3);
        for i in 0..5 {
            log.record(sample(Strategy::RootPaths, 1.0, i));
        }
        let held = log.samples();
        assert_eq!(held.len(), 3);
        assert_eq!(held.iter().map(|s| s.actual_reads).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert!(CalibrationLog::new(0).is_empty());
    }

    #[test]
    fn ratio_is_smoothed_and_direction_free() {
        assert_eq!(sample(Strategy::RootPaths, 0.0, 0).ratio(), 1.0);
        let over = sample(Strategy::RootPaths, 1.0, 9); // 10/2 = 5x under-estimated
        assert_eq!(over.ratio(), 5.0);
        let under = sample(Strategy::RootPaths, 9.0, 1); // 2/10 = 0.2x over-estimated
        assert!((under.error() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn advise_aggregates_per_strategy_and_ranks_worst() {
        let log = CalibrationLog::new(64);
        for actual in [1u64, 3, 9] {
            log.record(sample(Strategy::RootPaths, 1.0, actual)); // ratios 1, 2, 5
        }
        log.record(sample(Strategy::Edge, 19.0, 0)); // 0.05x — most wrong
        let report = log.advise(2);
        assert_eq!(report.per_strategy.len(), 2);
        // Edge's 20x error outranks RP's median 2x.
        assert_eq!(report.per_strategy[0].strategy, Strategy::Edge);
        assert_eq!(report.per_strategy[0].constant, "walk_page");
        let rp = report.per_strategy.iter().find(|a| a.strategy == Strategy::RootPaths).unwrap();
        assert_eq!(rp.samples, 3);
        assert_eq!(rp.median_ratio, 2.0);
        assert_eq!(rp.constant, "scan_page");
        assert_eq!(report.worst.len(), 2);
        assert_eq!(report.worst[0].strategy, Strategy::Edge);
        let text = report.to_string();
        assert!(text.contains("scan_page"));
        assert!(text.contains("worst misestimates"));
    }

    #[test]
    fn empty_log_advises_nothing() {
        let report = CalibrationLog::new(8).advise(5);
        assert!(report.per_strategy.is_empty());
        assert!(report.to_string().contains("no traced executions"));
    }
}
