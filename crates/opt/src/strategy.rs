//! The index-configuration menu: the paper's seven concrete strategies
//! plus the `Auto` pseudo-strategy the cost model resolves.
//!
//! The enum lives in this crate (not in `xtwig-core`) because strategy
//! *choice* is the decision layer's vocabulary: the cost model ranks
//! [`Strategy`] values, and core re-exports the type so every existing
//! `xtwig_core::Strategy` path keeps working.

use std::fmt;

/// The seven index configurations of the paper's evaluation, plus
/// [`Strategy::Auto`] — "let the optimizer pick among the built ones".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// ROOTPATHS (RP).
    RootPaths,
    /// DATAPATHS (DP).
    DataPaths,
    /// Edge table with value/link indexes.
    Edge,
    /// Simulated DataGuide + Edge indexes (DG+Edge).
    DataGuideEdge,
    /// Simulated Index Fabric + Edge indexes (IF+Edge).
    IndexFabricEdge,
    /// Access Support Relations.
    Asr,
    /// Join Indices (+ Edge value index for constants).
    JoinIndex,
    /// Cost-based selection: the engine ranks the built configurations
    /// with the optimizer and executes the cheapest. Never a member of
    /// [`Strategy::ALL`] — it always resolves to a concrete strategy
    /// before any index is touched.
    Auto,
}

impl Strategy {
    /// All *concrete* strategies in the paper's reporting order
    /// ([`Strategy::Auto`] is a selection directive, not a
    /// configuration, and is deliberately excluded).
    pub const ALL: [Strategy; 7] = [
        Strategy::RootPaths,
        Strategy::DataPaths,
        Strategy::Edge,
        Strategy::DataGuideEdge,
        Strategy::IndexFabricEdge,
        Strategy::Asr,
        Strategy::JoinIndex,
    ];

    /// The paper's abbreviation (`auto` for the pseudo-strategy).
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::RootPaths => "RP",
            Strategy::DataPaths => "DP",
            Strategy::Edge => "Edge",
            Strategy::DataGuideEdge => "DG+Edge",
            Strategy::IndexFabricEdge => "IF+Edge",
            Strategy::Asr => "ASR",
            Strategy::JoinIndex => "JI",
            Strategy::Auto => "auto",
        }
    }

    /// True for [`Strategy::Auto`].
    pub fn is_auto(&self) -> bool {
        matches!(self, Strategy::Auto)
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // pad() (not write_str) so callers' width/alignment flags work.
        f.pad(self.label())
    }
}

/// Error for `Strategy::from_str`: the string names no known strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseStrategyError(pub String);

impl fmt::Display for ParseStrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown strategy {:?} (expected one of RP, DP, Edge, DG+Edge, IF+Edge, ASR, JI, \
             or auto)",
            self.0
        )
    }
}

impl std::error::Error for ParseStrategyError {}

impl std::str::FromStr for Strategy {
    type Err = ParseStrategyError;

    /// Parses the paper's reporting-order abbreviations (`RP`, `DP`,
    /// `Edge`, `DG+Edge`, `IF+Edge`, `ASR`, `JI`) case-insensitively,
    /// the long-form aliases the CLI historically accepted, and `auto`
    /// for cost-based selection.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_uppercase().as_str() {
            "RP" | "ROOTPATHS" => Ok(Strategy::RootPaths),
            "DP" | "DATAPATHS" => Ok(Strategy::DataPaths),
            "EDGE" => Ok(Strategy::Edge),
            "DG" | "DG+EDGE" | "DATAGUIDE" => Ok(Strategy::DataGuideEdge),
            "IF" | "IF+EDGE" | "FABRIC" => Ok(Strategy::IndexFabricEdge),
            "ASR" => Ok(Strategy::Asr),
            "JI" | "JOININDEX" => Ok(Strategy::JoinIndex),
            "AUTO" => Ok(Strategy::Auto),
            _ => Err(ParseStrategyError(s.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip_through_fromstr() {
        for s in Strategy::ALL {
            assert_eq!(s.label().parse::<Strategy>(), Ok(s));
            assert_eq!(s.label().to_lowercase().parse::<Strategy>(), Ok(s));
            assert!(!s.is_auto());
        }
        assert_eq!("auto".parse::<Strategy>(), Ok(Strategy::Auto));
        assert_eq!("AUTO".parse::<Strategy>(), Ok(Strategy::Auto));
        assert!(Strategy::Auto.is_auto());
    }

    #[test]
    fn auto_is_not_a_concrete_strategy() {
        assert!(!Strategy::ALL.contains(&Strategy::Auto));
    }

    #[test]
    fn parse_error_enumerates_every_valid_name() {
        let msg = "nope".parse::<Strategy>().unwrap_err().to_string();
        for s in Strategy::ALL {
            assert!(msg.contains(s.label()), "{msg:?} must name {}", s.label());
        }
        assert!(msg.contains("auto"), "{msg:?} must name auto");
    }
}
