//! The per-strategy physical cost model.
//!
//! For each built strategy the model prices a planned twig in estimated
//! page reads, mirroring how the engine actually executes it
//! (see `xtwig-core`'s `engine::eval_free` and the §3 stitch phase):
//!
//! * **RP / DP** — one B+-tree range probe per PCsubpath (descent +
//!   leaf pages holding the matches). Under an index-nested-loop plan
//!   DATAPATHS instead pays one BoundIndex probe per distinct head.
//! * **Edge** — one value-index probe for the leaf candidates, then a
//!   backward-link walk per candidate per step (§5.2.1's join chain).
//! * **DG+Edge** — a DataGuide probe for anchored structural paths, an
//!   Edge value probe for the constant, and walks only when interior
//!   ids are consumed; `//`-headed patterns fall back to the Edge chain.
//! * **IF+Edge** — one fabric probe for fully-specified valued paths
//!   (the Fig. 11 case); anything else falls back to the Edge chain.
//! * **ASR** — one probe per matching path table, scanning the
//!   value-prefixed rows of each.
//! * **JI** — Edge value probe for constants, then one join-index
//!   lookup per candidate per matching expression (per interior step
//!   when interior ids are needed).
//!
//! Two cross-cutting terms make the Fig. 12/13 orderings come out:
//! point probes are capped at the probed structure's page count (cold
//! physical reads cannot exceed the pages that exist), and strategies
//! whose matches do not carry full root IdLists (the Edge family) pay
//! an ancestor-recovery walk per row that feeds a `//` stitch, which is
//! exactly why ROOTPATHS wins recursive twigs in the paper.

use crate::calibration::Calibration;
use crate::estimate::{leaf_candidates, pattern_matches, CardinalitySource};
use crate::strategy::Strategy;
use xtwig_xml::TagId;

/// Measured shape of one B+-tree.
#[derive(Debug, Clone, Copy, Default)]
pub struct TreeProfile {
    /// Total pages (internal + leaf).
    pub pages: u64,
    /// Stored entries.
    pub rows: u64,
    /// Levels above the leaves (0 for a single-page tree).
    pub height: u32,
}

impl TreeProfile {
    /// Entries per page, floored at 1 to keep divisions sane.
    pub fn rows_per_page(&self) -> f64 {
        (self.rows as f64 / self.pages.max(1) as f64).max(1.0)
    }

    /// Estimated leaf pages holding `rows` entries, capped at the
    /// tree's total size and weighted by the calibration's scan-page
    /// factor.
    fn leaf_pages(&self, rows: f64, cal: &Calibration) -> f64 {
        (rows / self.rows_per_page()).ceil().min(self.pages as f64) * cal.scan_page
    }

    /// One descent's internal-page charge.
    fn descent(&self, cal: &Calibration) -> f64 {
        cal.descent_page * f64::from(self.height)
    }

    /// `probes` point probes, page-capped.
    fn point_probes(&self, probes: f64, cal: &Calibration) -> f64 {
        (probes * cal.walk_page).min(self.pages as f64)
    }
}

/// Measured shape of the Edge configuration's index trees.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgeProfile {
    /// The `(tag, value, id)` value index.
    pub value: TreeProfile,
    /// The backward-link index (`id -> parent`).
    pub blink: TreeProfile,
    /// The forward-link index (`parent, tag -> id`).
    pub flink: TreeProfile,
    /// Heap pages of the base Edge relation.
    pub heap_pages: u64,
}

/// Measured shape of a per-path table set (ASR, Join Indices).
#[derive(Debug, Clone, Copy, Default)]
pub struct TableSetProfile {
    /// Number of per-path tables (table *pairs* for Join Indices).
    pub tables: u64,
    /// Total pages across the tables.
    pub pages: u64,
    /// Total rows across the tables.
    pub rows: u64,
    /// Maximum tree height across the tables.
    pub height: u32,
}

impl TableSetProfile {
    fn as_tree(&self) -> TreeProfile {
        TreeProfile { pages: self.pages, rows: self.rows, height: self.height }
    }
}

/// Physical shapes of every built structure — the optimizer's catalog,
/// measured from a built engine or a reopened `.xtwig` file.
#[derive(Debug, Clone, Copy, Default)]
pub struct Catalog {
    /// ROOTPATHS tree.
    pub rp: Option<TreeProfile>,
    /// DATAPATHS tree.
    pub dp: Option<TreeProfile>,
    /// Edge configuration (shared by DG+Edge, IF+Edge, JI).
    pub edge: Option<EdgeProfile>,
    /// DataGuide tree.
    pub dg: Option<TreeProfile>,
    /// Index Fabric tree.
    pub fab: Option<TreeProfile>,
    /// Access Support Relations tables.
    pub asr: Option<TableSetProfile>,
    /// Join Index table pairs.
    pub ji: Option<TableSetProfile>,
}

impl Catalog {
    /// True when the strategy's structures are all present (mirrors the
    /// engine's `has_strategy`). [`Strategy::Auto`] is available as soon
    /// as any concrete strategy is.
    pub fn has(&self, strategy: Strategy) -> bool {
        match strategy {
            Strategy::RootPaths => self.rp.is_some(),
            Strategy::DataPaths => self.dp.is_some(),
            Strategy::Edge => self.edge.is_some(),
            Strategy::DataGuideEdge => self.dg.is_some() && self.edge.is_some(),
            Strategy::IndexFabricEdge => self.fab.is_some() && self.edge.is_some(),
            Strategy::Asr => self.asr.is_some(),
            Strategy::JoinIndex => self.ji.is_some() && self.edge.is_some(),
            Strategy::Auto => Strategy::ALL.iter().any(|&s| self.has(s)),
        }
    }
}

/// One PCsubpath of the planned cover, as the cost model sees it.
#[derive(Debug, Clone)]
pub struct SubpathInput {
    /// Step tags, root-most first.
    pub tags: Vec<TagId>,
    /// Anchored at a document root (`/a/…`) vs. `//`-headed.
    pub anchored: bool,
    /// Equality predicate on the final step's value.
    pub value: Option<String>,
    /// True when the execution consumes interior step ids (join keys,
    /// probe anchors, output) — the leaf-only fast paths of DG+Edge,
    /// IF+Edge and JI only apply when this is false.
    pub interior_needed: bool,
}

/// One BoundIndex probe step of an index-nested-loop plan.
#[derive(Debug, Clone, Copy)]
pub struct InljProbe {
    /// Estimated distinct head bindings driving the probe.
    pub heads: u64,
    /// Estimated rows the probes fetch in total.
    pub rows: u64,
}

/// The planned twig, reduced to what the cost model prices.
#[derive(Debug, Clone, Default)]
pub struct TwigCostInput {
    /// The PCsubpath cover.
    pub subpaths: Vec<SubpathInput>,
    /// Estimated rows feeding `//` stitches whose ancestors must be
    /// recovered (zero for single-segment twigs).
    pub ancestor_rows: u64,
    /// When the planner chose an index-nested-loop plan: the driver
    /// subpath's index and the probe steps. Only DATAPATHS executes
    /// this; every other strategy is priced on the merge plan.
    pub inlj: Option<(usize, Vec<InljProbe>)>,
}

/// One ranked alternative: a strategy with its estimated cost.
#[derive(Debug, Clone, Copy)]
pub struct StrategyChoice {
    /// The strategy priced.
    pub strategy: Strategy,
    /// Estimated page reads (the ranking key).
    pub est_page_reads: f64,
    /// Estimated index probes.
    pub est_probes: f64,
    /// Estimated match rows fetched.
    pub est_rows: f64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Cost {
    pages: f64,
    probes: f64,
    rows: f64,
}

impl Cost {
    fn add(&mut self, other: Cost) {
        self.pages += other.pages;
        self.probes += other.probes;
        self.rows += other.rows;
    }
}

/// Ranks every strategy the catalog has built, cheapest first (ties
/// break in [`Strategy::ALL`] reporting order, so the result is
/// deterministic).
pub fn rank<S: CardinalitySource + ?Sized>(
    stats: &S,
    catalog: &Catalog,
    input: &TwigCostInput,
    cal: &Calibration,
) -> Vec<StrategyChoice> {
    let mut out: Vec<StrategyChoice> = Strategy::ALL
        .iter()
        .filter(|&&s| catalog.has(s))
        .map(|&s| {
            let c = twig_cost(s, stats, catalog, input, cal);
            StrategyChoice {
                strategy: s,
                est_page_reads: c.pages,
                est_probes: c.probes,
                est_rows: c.rows,
            }
        })
        .collect();
    out.sort_by(|a, b| a.est_page_reads.partial_cmp(&b.est_page_reads).expect("costs are finite"));
    out
}

fn twig_cost<S: CardinalitySource + ?Sized>(
    strategy: Strategy,
    stats: &S,
    catalog: &Catalog,
    input: &TwigCostInput,
    cal: &Calibration,
) -> Cost {
    let mut total = Cost::default();
    // DATAPATHS under an INLJ plan: the driver subpath runs free, every
    // other step is bound probes grouped by head.
    if strategy == Strategy::DataPaths {
        if let Some((driver, probes)) = &input.inlj {
            let dp = catalog.dp.expect("catalog.has checked");
            total.add(subpath_cost(strategy, stats, catalog, &input.subpaths[*driver], cal));
            for p in probes {
                total.pages += dp.descent(cal)
                    + (p.heads as f64 * cal.inlj_probe_page).min(dp.pages as f64)
                    + dp.leaf_pages(p.rows as f64, cal);
                total.probes += p.heads as f64;
                total.rows += p.rows as f64;
            }
            return total;
        }
    }
    for sp in &input.subpaths {
        total.add(subpath_cost(strategy, stats, catalog, sp, cal));
    }
    // Ancestor recovery for `//` stitches: strategies whose matches
    // carry full root IdLists (RP, DP, ASR) read them off the match;
    // the Edge family walks backward links per row.
    if input.ancestor_rows > 0
        && !matches!(strategy, Strategy::RootPaths | Strategy::DataPaths | Strategy::Asr)
    {
        let edge = catalog.edge.expect("Edge-family strategies carry an Edge profile");
        let walk_probes = input.ancestor_rows as f64 * stats.mean_depth();
        total.pages += edge.blink.descent(cal) + edge.blink.point_probes(walk_probes, cal);
        total.probes += walk_probes;
    }
    total
}

/// Prices one PCsubpath lookup under `strategy`'s probe pattern.
fn subpath_cost<S: CardinalitySource + ?Sized>(
    strategy: Strategy,
    stats: &S,
    catalog: &Catalog,
    sp: &SubpathInput,
    cal: &Calibration,
) -> Cost {
    let value = sp.value.as_deref();
    let m = pattern_matches(stats, &sp.tags, sp.anchored, value) as f64;
    let k = sp.tags.len();
    match strategy {
        Strategy::RootPaths => {
            let t = catalog.rp.expect("catalog.has checked");
            Cost { pages: t.descent(cal) + t.leaf_pages(m, cal), probes: 1.0, rows: m }
        }
        Strategy::DataPaths => {
            let t = catalog.dp.expect("catalog.has checked");
            Cost { pages: t.descent(cal) + t.leaf_pages(m, cal), probes: 1.0, rows: m }
        }
        Strategy::Edge => edge_chain_cost(stats, catalog, sp, m, cal),
        Strategy::DataGuideEdge => {
            if !sp.anchored {
                return edge_chain_cost(stats, catalog, sp, m, cal);
            }
            let dg = catalog.dg.expect("catalog.has checked");
            let edge = catalog.edge.expect("catalog.has checked");
            let ms = stats.path_instances(&sp.tags) as f64;
            let mut c =
                Cost { pages: dg.descent(cal) + dg.leaf_pages(ms, cal), probes: 1.0, rows: ms };
            if let Some(v) = value {
                let vc = stats.value_instances(*sp.tags.last().unwrap(), v) as f64;
                c.pages += edge.value.descent(cal) + edge.value.leaf_pages(vc, cal);
                c.probes += 1.0;
                c.rows += vc;
            }
            c.add(interior_walks(edge, m, k, sp.interior_needed, cal));
            c
        }
        Strategy::IndexFabricEdge => {
            let fab = catalog.fab.expect("catalog.has checked");
            let edge = catalog.edge.expect("catalog.has checked");
            if !(sp.anchored && value.is_some()) {
                return edge_chain_cost(stats, catalog, sp, m, cal);
            }
            // The Fig. 11 case: a fully-specified valued path is one
            // fabric probe.
            let mut c =
                Cost { pages: fab.descent(cal) + fab.leaf_pages(m, cal), probes: 1.0, rows: m };
            c.add(interior_walks(edge, m, k, sp.interior_needed, cal));
            c
        }
        Strategy::Asr => {
            let asr = catalog.asr.expect("catalog.has checked").as_tree();
            let p = stats.matching_path_count(&sp.tags, sp.anchored).max(1) as f64;
            // One probe per matching table, each scanning its
            // value-prefixed rows (the whole table when structural).
            let scanned = if value.is_some() { m } else { m.max(1.0) };
            Cost { pages: p * asr.descent(cal) + asr.leaf_pages(scanned, cal), probes: p, rows: m }
        }
        Strategy::JoinIndex => {
            let ji = catalog.ji.expect("catalog.has checked").as_tree();
            let edge = catalog.edge.expect("catalog.has checked");
            let p = stats.matching_path_count(&sp.tags, sp.anchored) as f64;
            match value {
                Some(v) => {
                    let vc = stats.value_instances(*sp.tags.last().unwrap(), v) as f64;
                    // One backward probe per candidate per expression —
                    // per interior step when interior ids are needed.
                    let per_cand =
                        if sp.interior_needed { (k - 1) as f64 } else { f64::from(k > 1) };
                    let probes = vc * p * per_cand;
                    Cost {
                        pages: edge.value.descent(cal)
                            + edge.value.leaf_pages(vc, cal)
                            + if probes > 0.0 { ji.descent(cal) } else { 0.0 }
                            + ji.point_probes(probes, cal),
                        probes: 1.0 + probes,
                        rows: m,
                    }
                }
                None => {
                    // Structural: scan every matching expression's pair
                    // table, plus interior recovery probes.
                    let interior_probes = if k > 2 { m * (k - 2) as f64 } else { 0.0 };
                    Cost {
                        pages: p.max(1.0) * ji.descent(cal)
                            + ji.leaf_pages(m, cal)
                            + ji.point_probes(interior_probes, cal),
                        probes: p + interior_probes,
                        rows: m,
                    }
                }
            }
        }
        Strategy::Auto => unreachable!("Auto is resolved before costing"),
    }
}

/// §5.2.1's Edge join chain: a value-index probe for the leaf
/// candidates, then a backward-link walk per candidate per remaining
/// step (plus the root check for anchored patterns).
fn edge_chain_cost<S: CardinalitySource + ?Sized>(
    stats: &S,
    catalog: &Catalog,
    sp: &SubpathInput,
    m: f64,
    cal: &Calibration,
) -> Cost {
    let edge = catalog.edge.expect("Edge strategies carry an Edge profile");
    let cand = leaf_candidates(stats, &sp.tags, sp.value.as_deref()) as f64;
    let steps = (sp.tags.len() - 1) as f64 + f64::from(sp.anchored);
    let walk_probes = cand * steps;
    let mut pages = edge.value.descent(cal) + edge.value.leaf_pages(cand, cal);
    if walk_probes > 0.0 {
        pages += edge.blink.descent(cal) + edge.blink.point_probes(walk_probes, cal);
    }
    Cost { pages, probes: 1.0 + walk_probes, rows: m }
}

/// Backward-link recovery of interior step ids for known leaf matches
/// (`materialize_by_walking` in the engine) — only paid when the
/// execution consumes interior ids.
fn interior_walks(
    edge: EdgeProfile,
    m: f64,
    k: usize,
    interior_needed: bool,
    cal: &Calibration,
) -> Cost {
    if !interior_needed || k <= 1 {
        return Cost::default();
    }
    let probes = m * (k - 1) as f64;
    Cost {
        pages: edge.blink.descent(cal) + edge.blink.point_probes(probes, cal),
        probes,
        rows: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::testutil::TableStats;

    /// A catalog shaped like a mid-sized corpus: RP/DP trees, an Edge
    /// configuration, and the small auxiliary structures.
    fn catalog() -> Catalog {
        let tree = |pages, rows, height| TreeProfile { pages, rows, height };
        Catalog {
            rp: Some(tree(100, 10_000, 2)),
            dp: Some(tree(400, 40_000, 2)),
            edge: Some(EdgeProfile {
                value: tree(80, 10_000, 2),
                blink: tree(60, 10_000, 2),
                flink: tree(60, 10_000, 2),
                heap_pages: 120,
            }),
            dg: Some(tree(4, 10_000, 1)),
            fab: Some(tree(40, 4_000, 2)),
            asr: Some(TableSetProfile { tables: 20, pages: 150, rows: 10_000, height: 1 }),
            ji: Some(TableSetProfile { tables: 40, pages: 500, rows: 40_000, height: 1 }),
        }
    }

    /// Stats with a selective value and an unselective one on path
    /// a(1)/b(2)/c(3).
    fn stats() -> TableStats {
        TableStats::default()
            .path(&[1], 100)
            .path(&[1, 2], 2_000)
            .path(&[1, 2, 3], 2_000)
            .value(3, "rare", 2)
            .value(3, "common", 1_500)
    }

    fn sp(tags: &[u32], anchored: bool, value: Option<&str>, interior: bool) -> SubpathInput {
        SubpathInput {
            tags: tags.iter().map(|&t| TagId(t)).collect(),
            anchored,
            value: value.map(str::to_owned),
            interior_needed: interior,
        }
    }

    fn cost_of(choices: &[StrategyChoice], s: Strategy) -> f64 {
        choices.iter().find(|c| c.strategy == s).expect("strategy ranked").est_page_reads
    }

    #[test]
    fn rank_covers_exactly_the_built_strategies_sorted() {
        let input = TwigCostInput {
            subpaths: vec![sp(&[1, 2, 3], true, Some("rare"), false)],
            ..Default::default()
        };
        let choices = rank(&stats(), &catalog(), &input, &Calibration::default());
        assert_eq!(choices.len(), Strategy::ALL.len());
        assert!(choices.windows(2).all(|w| w[0].est_page_reads <= w[1].est_page_reads));

        let partial = Catalog { rp: catalog().rp, ..Default::default() };
        let choices = rank(&stats(), &partial, &input, &Calibration::default());
        assert_eq!(choices.len(), 1);
        assert_eq!(choices[0].strategy, Strategy::RootPaths);
    }

    #[test]
    fn fabric_ties_rootpaths_on_fully_specified_valued_paths() {
        // Fig. 11: a fully-specified valued single path is one probe for
        // RP and IF alike; the Edge chain pays per-candidate walks.
        let input = TwigCostInput {
            subpaths: vec![sp(&[1, 2, 3], true, Some("rare"), false)],
            ..Default::default()
        };
        let choices = rank(&stats(), &catalog(), &input, &Calibration::default());
        let rp = cost_of(&choices, Strategy::RootPaths);
        let fab = cost_of(&choices, Strategy::IndexFabricEdge);
        let edge = cost_of(&choices, Strategy::Edge);
        assert!((rp - fab).abs() <= 3.0, "RP {rp} vs IF {fab} should be close");
        assert!(edge > rp, "Edge chain ({edge}) must cost more than RP ({rp})");
    }

    #[test]
    fn edge_family_pays_for_unselective_chains() {
        // A structural suffix pattern with many candidates: RP answers
        // with one range scan, the Edge family walks per candidate.
        let input =
            TwigCostInput { subpaths: vec![sp(&[2, 3], false, None, false)], ..Default::default() };
        let choices = rank(&stats(), &catalog(), &input, &Calibration::default());
        assert!(cost_of(&choices, Strategy::Edge) > 3.0 * cost_of(&choices, Strategy::RootPaths));
    }

    #[test]
    fn ancestor_recovery_penalizes_leaf_only_strategies() {
        let no_stitch = TwigCostInput {
            subpaths: vec![sp(&[1, 2, 3], true, Some("rare"), false)],
            ..Default::default()
        };
        let stitch = TwigCostInput { ancestor_rows: 500, ..no_stitch.clone() };
        let cal = Calibration::default();
        let (s, c) = (stats(), catalog());
        let before = rank(&s, &c, &no_stitch, &cal);
        let after = rank(&s, &c, &stitch, &cal);
        // RP is unaffected; the fabric pays the walk.
        assert_eq!(cost_of(&before, Strategy::RootPaths), cost_of(&after, Strategy::RootPaths));
        assert!(
            cost_of(&after, Strategy::IndexFabricEdge)
                > cost_of(&before, Strategy::IndexFabricEdge)
        );
    }

    #[test]
    fn inlj_input_reprices_datapaths_only() {
        let merge = TwigCostInput {
            subpaths: vec![
                sp(&[2, 3], false, Some("rare"), false),
                sp(&[2, 3], false, None, false),
            ],
            ..Default::default()
        };
        let inlj = TwigCostInput {
            inlj: Some((0, vec![InljProbe { heads: 2, rows: 2 }])),
            ..merge.clone()
        };
        let cal = Calibration::default();
        let (s, c) = (stats(), catalog());
        let m = rank(&s, &c, &merge, &cal);
        let i = rank(&s, &c, &inlj, &cal);
        assert!(
            cost_of(&i, Strategy::DataPaths) < cost_of(&m, Strategy::DataPaths),
            "two selective probes must beat scanning 2000 unselective rows"
        );
        assert_eq!(
            cost_of(&i, Strategy::RootPaths),
            cost_of(&m, Strategy::RootPaths),
            "other strategies are priced on the merge plan either way"
        );
    }

    #[test]
    fn point_probes_are_capped_by_structure_size() {
        // A wildly unselective chain cannot cost more pages than the
        // blink tree plus the value index hold.
        let input = TwigCostInput {
            subpaths: vec![sp(&[1, 2, 3], true, None, true)],
            ..Default::default()
        };
        let c = catalog();
        let choices = rank(&stats(), &c, &input, &Calibration::default());
        let edge = c.edge.unwrap();
        let bound = (edge.value.pages + edge.blink.pages + 10) as f64;
        assert!(cost_of(&choices, Strategy::Edge) <= bound);
    }

    #[test]
    fn auto_availability_follows_any_built() {
        assert!(catalog().has(Strategy::Auto));
        assert!(!Catalog::default().has(Strategy::Auto));
        let dg_only = Catalog { dg: Some(TreeProfile::default()), ..Default::default() };
        assert!(!dg_only.has(Strategy::DataGuideEdge), "DG+Edge needs the Edge structures");
        assert!(!dg_only.has(Strategy::Auto));
    }
}
