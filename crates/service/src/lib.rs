//! # xtwig-service — a concurrent twig query service
//!
//! The paper evaluates ROOTPATHS/DATAPATHS one query at a time inside a
//! relational engine; this crate is the serving layer a production
//! deployment puts in front of those indexes. A [`TwigService`] owns a
//! shared [`QueryEngine`](xtwig_core::QueryEngine) (over an
//! `Arc<XmlForest>`, so the engine is `Send + Sync`) and answers many
//! concurrent twig queries through a fixed worker pool:
//!
//! * **Submission API** — [`TwigService::submit`] enqueues a query and
//!   returns a [`Ticket`]; workers resolve tickets as they drain the
//!   queue. Per-query deadlines reject work that waited too long, and
//!   [`TwigService::shutdown`] drains the queue then joins the workers.
//! * **Plan cache** — keyed by canonicalized twig *shape* (tags, axes,
//!   value-predicate structure, output node), so repeated shapes skip
//!   `decompose`/`choose_plan` and differ only in the literals rebound
//!   into the cached cover (parameterized-plan semantics; the shape
//!   reuse argument follows the tree-pattern survey literature).
//! * **Result cache** — an LRU over exact queries with generation-based
//!   invalidation: every committed [`TwigService::apply_update`]
//!   publishes a new generation, atomically staling every cached
//!   result (and the cache refuses to let a slow writer's stale answer
//!   clobber a newer generation's entry).
//! * **Batched execution** — [`TwigService::submit_batch`] evaluates a
//!   group of queries with a shared probe memo, so queries sharing a
//!   PCsubpath (same tags/anchoring/value) hit the indexes once.
//! * **Snapshot-isolated maintenance** — [`TwigService::apply_update`]
//!   commits a batch of [`UpdateOp`]s by forking the current engine
//!   (copy-on-write — no page copies) and publishing the fork as the
//!   next epoch; readers pin an epoch and never block on a writer.
//!   Every op is journaled, and [`TwigService::rebuild_parallel`]
//!   replays the journal onto the freshly built engine before swapping
//!   it in, so rebuilds cannot lose concurrent updates.
//!   [`TwigService::persist`] folds the accumulated overlay pages into
//!   a new base image on disk.
//! * **Stats** — [`TwigService::stats`] snapshots cache hit rates,
//!   queue depth, per-strategy latency histograms, and per-strategy
//!   cost counters (probes, rows fetched, logical/physical page reads,
//!   optimizer picks), and renders them as JSON for the bench harness.
//! * **Auto strategy selection** — submissions may name
//!   [`Strategy::Auto`](xtwig_core::Strategy::Auto): the worker
//!   resolves it through the engine's cost model (memoized per shape in
//!   the plan cache), keys the result cache on the resolved concrete
//!   strategy, and counts each pick in the stats.
//! * **Direct dispatch + admission control** — [`TwigService::execute`]
//!   answers on the caller's thread (the network front end's
//!   one-connection-one-dispatcher model), and every door — queued or
//!   direct, single or batch — draws from one bounded [`Admission`]
//!   budget that sheds load with a typed
//!   [`ServiceError::Overloaded`] instead of queueing without bound.
//! * **Multi-index catalog** — a [`Catalog`] serves many persisted
//!   `.xtwig` indexes by name, opening them on demand and keeping an
//!   LRU of attached services (eviction never cuts off in-flight
//!   holders; they keep their `Arc`).
//!
//! ## Quickstart
//!
//! ```
//! use xtwig_service::{ServiceOptions, TwigService};
//! use xtwig_core::{parse_xpath, Strategy};
//! use xtwig_core::engine::EngineOptions;
//! use xtwig_xml::tree::fig1_book_document;
//!
//! let service = TwigService::build(
//!     fig1_book_document(),
//!     EngineOptions { pool_pages: 256, ..Default::default() },
//!     ServiceOptions { workers: 4, ..Default::default() },
//! );
//! let twig = parse_xpath("/book[title='XML']//author[fn='jane'][ln='doe']").unwrap();
//! let ticket = service.submit(&twig, Strategy::RootPaths).unwrap();
//! let answer = ticket.wait().unwrap();
//! assert_eq!(answer.ids.len(), 1);
//! service.shutdown();
//! ```

pub mod admission;
pub mod cache;
pub mod catalog;
pub mod events;
pub mod metrics;
pub mod service;
pub mod shape;
pub mod stats;

pub use admission::{Admission, Permit};
pub use cache::{CacheStats, PlanCache, ResultCache};
pub use catalog::{Catalog, CatalogEntry, CatalogError, CatalogOptions, CatalogStats};
pub use events::{Event, EventJournal, JournalEntry, EVENT_KINDS};
pub use metrics::{render_metrics, MetricsRegistry, SlowQuery};
pub use service::{
    BatchTicket, RequestCtx, ServiceAnswer, ServiceError, ServiceOptions, SharedEngine, Ticket,
    TwigService, UpdateOp,
};
pub use shape::{exact_key, shape_key};
pub use stats::{
    json_escape, LatencySnapshot, ServiceSnapshot, ServiceStats, StrategyCostSnapshot,
};
