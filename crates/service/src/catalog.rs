//! Multi-index catalog: many persisted `.xtwig` indexes served by
//! name, attached on demand, bounded by an LRU of live engines.
//!
//! One process, many corpora: a deployment keeps a directory of
//! persisted index files (one per tenant, document collection, or
//! shard) and the catalog maps each *name* to its file. Nothing is
//! loaded up front — [`Catalog::get`] attaches an index the first time
//! it is asked for (a [`TwigService::open`], i.e. zero rebuild,
//! digest-verified) and hands out `Arc<TwigService>` clones after that.
//! At most [`CatalogOptions::max_attached`] services stay attached;
//! asking for a cold index past the bound detaches the least recently
//! used one. Detaching drops the catalog's `Arc` only — connections
//! still executing against the evicted service keep their clone, and
//! the service shuts down (draining its queue) when the last clone
//! goes away, so eviction can never cut an in-flight query short.

use crate::events::{Event, EventJournal};
use crate::service::{ServiceOptions, TwigService};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xtwig_core::persist::OpenError;

/// Catalog construction options.
#[derive(Debug, Clone)]
pub struct CatalogOptions {
    /// Attached-engine LRU capacity (minimum 1; default 8).
    pub max_attached: usize,
    /// Options every attached [`TwigService`] is opened with.
    pub service: ServiceOptions,
}

impl Default for CatalogOptions {
    fn default() -> Self {
        CatalogOptions { max_attached: 8, service: ServiceOptions::default() }
    }
}

/// Why a catalog lookup failed.
#[derive(Debug)]
pub enum CatalogError {
    /// No index of that name is registered.
    UnknownIndex(String),
    /// The registered file failed to open (missing, corrupt, version
    /// mismatch — the wrapped [`OpenError`] says which).
    Open {
        /// The index name whose file failed to open.
        name: String,
        /// The underlying open failure.
        error: OpenError,
    },
    /// A registry directory scan failed (see [`Catalog::scan_dir`]).
    Scan {
        /// The directory being scanned.
        dir: PathBuf,
        /// The underlying I/O failure.
        error: std::io::Error,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::UnknownIndex(name) => write!(f, "unknown index {name:?}"),
            CatalogError::Open { name, error } => write!(f, "cannot open index {name:?}: {error}"),
            CatalogError::Scan { dir, error } => {
                write!(f, "cannot scan index directory {}: {error}", dir.display())
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// One registered index, as reported by [`Catalog::entries`].
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// The serving name.
    pub name: String,
    /// The `.xtwig` file behind it.
    pub path: PathBuf,
    /// Whether an engine is currently attached.
    pub attached: bool,
}

/// Catalog counters (monotonic).
#[derive(Debug, Clone, Copy, Default)]
pub struct CatalogStats {
    /// `get` calls answered by an already-attached service.
    pub hits: u64,
    /// `get` calls that opened the index file (cold attach).
    pub opens: u64,
    /// Attached services displaced by the LRU bound.
    pub evictions: u64,
}

/// The attached-service LRU: most recently used last.
#[derive(Default)]
struct Attached {
    entries: Vec<(String, Arc<TwigService>)>,
}

impl Attached {
    fn position(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|(n, _)| n == name)
    }

    /// Moves `name` to the most-recently-used slot and returns it.
    fn touch(&mut self, name: &str) -> Option<Arc<TwigService>> {
        let pos = self.position(name)?;
        let entry = self.entries.remove(pos);
        let service = entry.1.clone();
        self.entries.push(entry);
        Some(service)
    }
}

/// A named collection of persisted indexes with open-on-demand
/// attachment. See the module docs for the serving model.
pub struct Catalog {
    registry: Mutex<BTreeMap<String, PathBuf>>,
    attached: Mutex<Attached>,
    options: CatalogOptions,
    /// One journal for the whole catalog: every attached service emits
    /// into it (injected via [`ServiceOptions::events`]), so the wire
    /// `Events` opcode serves a single cross-index stream.
    events: Arc<EventJournal>,
    hits: AtomicU64,
    opens: AtomicU64,
    evictions: AtomicU64,
}

impl Catalog {
    /// An empty catalog; register indexes with [`Catalog::register`].
    /// Adopts [`ServiceOptions::events`] when the caller supplies a
    /// journal, otherwise creates one of
    /// [`ServiceOptions::event_capacity`] entries shared by every
    /// service this catalog attaches.
    pub fn new(mut options: CatalogOptions) -> Catalog {
        let events = options
            .service
            .events
            .clone()
            .unwrap_or_else(|| Arc::new(EventJournal::new(options.service.event_capacity)));
        options.service.events = Some(events.clone());
        Catalog {
            registry: Mutex::new(BTreeMap::new()),
            attached: Mutex::new(Attached::default()),
            options,
            events,
            hits: AtomicU64::new(0),
            opens: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The catalog-wide event journal (shared with every attached
    /// service and the network server).
    pub fn events(&self) -> Arc<EventJournal> {
        self.events.clone()
    }

    /// A catalog pre-registered with every `*.xtwig` file directly
    /// under `dir`, each served under its file stem (`books.xtwig` →
    /// `books`). Files are not opened — registration is free; the first
    /// `get` pays the attach.
    pub fn scan_dir<P: AsRef<Path>>(
        dir: P,
        options: CatalogOptions,
    ) -> Result<Catalog, CatalogError> {
        let dir = dir.as_ref();
        let scan_err = |error: std::io::Error| CatalogError::Scan { dir: dir.to_path_buf(), error };
        let catalog = Catalog::new(options);
        for entry in std::fs::read_dir(dir).map_err(scan_err)? {
            let path = entry.map_err(scan_err)?.path();
            if path.extension().is_some_and(|e| e == "xtwig") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    catalog.register(stem, &path);
                }
            }
        }
        Ok(catalog)
    }

    /// Registers (or re-points) `name` at `path`. A service already
    /// attached under that name keeps serving the old file until it is
    /// evicted or detached — re-registration changes what the *next*
    /// attach opens.
    pub fn register<P: AsRef<Path>>(&self, name: &str, path: P) {
        self.registry.lock().insert(name.to_owned(), path.as_ref().to_path_buf());
    }

    /// Resolves `name` to a serving [`TwigService`], attaching it from
    /// its file on first use and evicting the least recently used
    /// attachment beyond the capacity bound.
    pub fn get(&self, name: &str) -> Result<Arc<TwigService>, CatalogError> {
        let path = self
            .registry
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| CatalogError::UnknownIndex(name.to_owned()))?;
        // The attach lock is held across the open: concurrent gets of
        // one cold index must not both pay the file open (and the
        // second would clobber the first's caches).
        let mut attached = self.attached.lock();
        if let Some(service) = attached.touch(name) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(service);
        }
        let service = Arc::new(
            TwigService::open(&path, self.options.service.clone())
                .map_err(|error| CatalogError::Open { name: name.to_owned(), error })?,
        );
        self.opens.fetch_add(1, Ordering::Relaxed);
        self.events.emit(Event::CatalogAttached { name: name.to_owned() });
        attached.entries.push((name.to_owned(), service.clone()));
        let capacity = self.options.max_attached.max(1);
        while attached.entries.len() > capacity {
            let (evicted_name, evicted) = attached.entries.remove(0);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            self.events.emit(Event::CatalogEvicted { name: evicted_name });
            // Dropped outside the registry: in-flight holders keep
            // their clone; the service drains when the last one drops.
            drop(evicted);
        }
        Ok(service)
    }

    /// Detaches `name` now (the registration stays). Returns whether an
    /// attached service was dropped.
    pub fn detach(&self, name: &str) -> bool {
        let mut attached = self.attached.lock();
        match attached.position(name) {
            Some(pos) => {
                attached.entries.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Every registered index, attached or not, in name order.
    pub fn entries(&self) -> Vec<CatalogEntry> {
        let registry = self.registry.lock();
        let attached = self.attached.lock();
        registry
            .iter()
            .map(|(name, path)| CatalogEntry {
                name: name.clone(),
                path: path.clone(),
                attached: attached.position(name).is_some(),
            })
            .collect()
    }

    /// Registered index count.
    pub fn len(&self) -> usize {
        self.registry.lock().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.registry.lock().is_empty()
    }

    /// Monotonic hit/open/eviction counters.
    pub fn stats(&self) -> CatalogStats {
        CatalogStats {
            hits: self.hits.load(Ordering::Relaxed),
            opens: self.opens.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests assert; unwrap is the assert
mod tests {
    use super::*;
    use xtwig_core::engine::{EngineOptions, QueryEngine, Strategy};
    use xtwig_core::parse_xpath;
    use xtwig_xml::tree::fig1_book_document;

    fn persist_fig1(dir: &Path, name: &str) -> PathBuf {
        let engine = QueryEngine::build(
            fig1_book_document(),
            EngineOptions {
                strategies: vec![Strategy::RootPaths, Strategy::DataPaths],
                pool_pages: 256,
                ..Default::default()
            },
        );
        let path = dir.join(format!("{name}.xtwig"));
        engine.persist(&path).unwrap();
        path
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xtwig-catalog-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn open_on_demand_then_lru_hit() {
        let dir = tmpdir("hit");
        persist_fig1(&dir, "books");
        let catalog = Catalog::scan_dir(&dir, CatalogOptions::default()).unwrap();
        assert_eq!(catalog.len(), 1);
        assert!(!catalog.entries()[0].attached, "registration does not attach");
        let twig = parse_xpath("//author[fn='jane']").unwrap();
        let svc = catalog.get("books").unwrap();
        assert_eq!(svc.submit(&twig, Strategy::RootPaths).unwrap().wait().unwrap().ids.len(), 2);
        let again = catalog.get("books").unwrap();
        assert!(Arc::ptr_eq(&svc, &again), "second get reuses the attached service");
        let stats = catalog.stats();
        assert_eq!((stats.opens, stats.hits, stats.evictions), (1, 1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_and_unopenable_indexes_fail_typed() {
        let dir = tmpdir("err");
        let catalog = Catalog::new(CatalogOptions::default());
        assert!(matches!(catalog.get("nope"), Err(CatalogError::UnknownIndex(_))));
        let bogus = dir.join("bogus.xtwig");
        std::fs::write(&bogus, b"not an index").unwrap();
        catalog.register("bogus", &bogus);
        match catalog.get("bogus") {
            Err(CatalogError::Open { name, .. }) => assert_eq!(name, "bogus"),
            Err(other) => panic!("expected Open error, got {other}"),
            Ok(_) => panic!("expected Open error, got a service"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_evicts_the_coldest_attachment_without_cutting_holders() {
        let dir = tmpdir("lru");
        for name in ["a", "b", "c"] {
            persist_fig1(&dir, name);
        }
        let catalog = Catalog::scan_dir(
            &dir,
            CatalogOptions { max_attached: 2, ..CatalogOptions::default() },
        )
        .unwrap();
        let a = catalog.get("a").unwrap();
        let _b = catalog.get("b").unwrap();
        // Touch `a` so `b` is now the LRU candidate.
        let _ = catalog.get("a").unwrap();
        let _c = catalog.get("c").unwrap(); // evicts b
        let entries = catalog.entries();
        let attached: Vec<&str> =
            entries.iter().filter(|e| e.attached).map(|e| e.name.as_str()).collect();
        assert_eq!(attached, vec!["a", "c"]);
        assert_eq!(catalog.stats().evictions, 1);
        // The evicted-and-reattached path pays a second open.
        let b2 = catalog.get("b").unwrap();
        assert_eq!(catalog.stats().opens, 4);
        // A holder of the pre-eviction Arc keeps serving meanwhile.
        let twig = parse_xpath("//author").unwrap();
        assert_eq!(a.submit(&twig, Strategy::RootPaths).unwrap().wait().unwrap().ids.len(), 3);
        assert_eq!(b2.submit(&twig, Strategy::RootPaths).unwrap().wait().unwrap().ids.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn detach_drops_the_attachment_but_keeps_the_registration() {
        let dir = tmpdir("detach");
        persist_fig1(&dir, "x");
        let catalog = Catalog::scan_dir(&dir, CatalogOptions::default()).unwrap();
        let _ = catalog.get("x").unwrap();
        assert!(catalog.detach("x"));
        assert!(!catalog.detach("x"), "already detached");
        assert!(!catalog.entries()[0].attached);
        assert!(catalog.get("x").is_ok(), "still registered: reattaches");
        assert_eq!(catalog.stats().opens, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
