//! Metrics aggregation and exposition: per-shape counters, the
//! slow-query log, and the Prometheus-style text rendering behind
//! [`TwigService::metrics_text`](crate::TwigService::metrics_text).
//!
//! The registry sits beside [`crate::stats::ServiceStats`] rather than
//! inside it: the stats struct is pure lock-free atomics on the hot
//! path, while the registry's two maps (shapes, slow queries) take a
//! mutex — acceptable because shape observation is one short-held lock
//! per *executed* query (cache hits skip it) and slow-query capture
//! only fires past the latency threshold.
//!
//! Exposition format is the Prometheus text format: `# HELP`/`# TYPE`
//! headers, `name{label="value"} 123` samples, histogram
//! `_bucket`/`_sum`/`_count` triples with cumulative `le` bounds.
//! Label values are escaped with [`crate::stats::json_escape`] (the
//! Prometheus escapes are the JSON subset `\\`, `\"`, `\n`).

use crate::stats::{json_escape, ServiceSnapshot};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use xtwig_core::Strategy;
use xtwig_storage::PoolCounters;

/// One slow (or explicitly sampled) query's record: what ran, how long
/// it took, and the traced span tree of a read-only re-execution.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// The query's XPath rendering.
    pub query: String,
    /// The concrete strategy that executed it.
    pub strategy: Strategy,
    /// Original (untraced) execution latency in microseconds.
    pub micros: u64,
    /// Index generation the query executed against.
    pub generation: u64,
    /// Rendered span tree ([`xtwig_core::Trace::render`]) of the traced
    /// re-execution.
    pub spans: String,
    /// Wire request id (0 for local, un-stamped submissions); the
    /// `Trace` opcode fetches records by this id.
    pub request_id: u64,
    /// Peer address of the connection that issued the query (empty for
    /// local submissions).
    pub peer: String,
}

#[derive(Default)]
struct ShapeCounters {
    executed: u64,
    total_micros: u64,
}

/// Aggregates what the atomic stats can't: per-shape traffic (a bounded
/// map) and the slow-query ring buffer.
pub struct MetricsRegistry {
    shapes: Mutex<HashMap<String, ShapeCounters>>,
    /// Executions observed after the shape map filled up.
    shape_overflow: AtomicU64,
    slow: Mutex<VecDeque<SlowQuery>>,
    /// Cumulative slow queries observed (the ring only keeps the tail).
    slow_total: AtomicU64,
    slow_threshold_micros: u64,
    slow_capacity: usize,
}

impl MetricsRegistry {
    /// Distinct shapes tracked before new shapes fold into the
    /// overflow counter (the map must not grow without bound under
    /// adversarial query streams).
    pub const SHAPE_CAPACITY: usize = 512;

    /// A registry logging queries at or above `slow_threshold_micros`
    /// (`None` disables the slow-query log) into a ring of
    /// `slow_capacity` entries.
    pub fn new(slow_threshold_micros: Option<u64>, slow_capacity: usize) -> Self {
        MetricsRegistry {
            shapes: Mutex::new(HashMap::new()),
            shape_overflow: AtomicU64::new(0),
            slow: Mutex::new(VecDeque::new()),
            slow_total: AtomicU64::new(0),
            slow_threshold_micros: slow_threshold_micros.unwrap_or(u64::MAX),
            slow_capacity,
        }
    }

    /// Accounts one executed query under its shape key.
    pub fn observe_shape(&self, shape: &str, elapsed: Duration) {
        let micros = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let mut shapes = self.shapes.lock();
        if let Some(c) = shapes.get_mut(shape) {
            c.executed += 1;
            c.total_micros += micros;
        } else if shapes.len() < Self::SHAPE_CAPACITY {
            shapes.insert(shape.to_owned(), ShapeCounters { executed: 1, total_micros: micros });
        } else {
            self.shape_overflow.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// True when a query this slow should be captured into the log.
    pub fn is_slow(&self, elapsed: Duration) -> bool {
        self.slow_capacity > 0 && elapsed.as_micros() >= u128::from(self.slow_threshold_micros)
    }

    /// Appends a slow-query record, evicting the oldest past capacity.
    pub fn record_slow(&self, entry: SlowQuery) {
        self.slow_total.fetch_add(1, Ordering::Relaxed);
        self.push_record(entry);
    }

    /// Appends an explicitly sampled record (trace requested by the
    /// client) without counting it as slow — the ring serves `Trace`
    /// lookups, but `xtwig_slow_queries_total` stays an SLO signal.
    pub fn record_sampled(&self, entry: SlowQuery) {
        self.push_record(entry);
    }

    fn push_record(&self, entry: SlowQuery) {
        if self.slow_capacity == 0 {
            return;
        }
        let mut slow = self.slow.lock();
        if slow.len() == self.slow_capacity {
            slow.pop_front();
        }
        slow.push_back(entry);
    }

    /// Finds the most recent retained record stamped with
    /// `request_id` (0 never matches — local submissions share it).
    pub fn find_trace(&self, request_id: u64) -> Option<SlowQuery> {
        if request_id == 0 {
            return None;
        }
        self.slow.lock().iter().rev().find(|s| s.request_id == request_id).cloned()
    }

    /// The retained slow-query records, oldest first.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow.lock().iter().cloned().collect()
    }

    /// Slow queries ever observed (>= the retained count).
    pub fn slow_total(&self) -> u64 {
        self.slow_total.load(Ordering::Relaxed)
    }

    /// `(shape, executed, total_micros)` rows, busiest first (ties
    /// broken by shape for deterministic output).
    pub fn shape_rows(&self) -> Vec<(String, u64, u64)> {
        let shapes = self.shapes.lock();
        let mut rows: Vec<(String, u64, u64)> =
            shapes.iter().map(|(k, c)| (k.clone(), c.executed, c.total_micros)).collect();
        drop(shapes);
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        rows
    }

    /// Executions dropped from per-shape attribution after the map
    /// filled up.
    pub fn shape_overflow(&self) -> u64 {
        self.shape_overflow.load(Ordering::Relaxed)
    }
}

/// One row of a fn-pointer metric table: name, help text, accessor.
type MetricRow<T> = (&'static str, &'static str, fn(&T) -> u64);

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    header(out, name, help, "counter");
    let _ = writeln!(out, "{name} {value}");
}

fn gauge(out: &mut String, name: &str, help: &str, value: u64) {
    header(out, name, help, "gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// Renders the full exposition from a stats snapshot, the engine's
/// per-pool counter handles, the registry, and the event journal. Free
/// function so tests can render without standing up a worker pool.
pub fn render_metrics(
    snapshot: &ServiceSnapshot,
    pools: &[(&'static str, PoolCounters)],
    registry: &MetricsRegistry,
    journal: &crate::events::EventJournal,
) -> String {
    let mut out = String::with_capacity(4096);
    counter(&mut out, "xtwig_queries_submitted_total", "Queries accepted", snapshot.submitted);
    counter(&mut out, "xtwig_queries_completed_total", "Queries answered", snapshot.completed);
    counter(
        &mut out,
        "xtwig_queries_failed_total",
        "Queries resolved with an error",
        snapshot.failed,
    );
    counter(
        &mut out,
        "xtwig_deadline_missed_total",
        "Queries rejected for missing their queueing deadline",
        snapshot.deadline_missed,
    );
    counter(&mut out, "xtwig_updates_total", "Index-maintenance transactions", snapshot.updates);
    counter(
        &mut out,
        "xtwig_rebuilds_total",
        "Engine rebuild-and-swap operations",
        snapshot.rebuilds,
    );
    counter(&mut out, "xtwig_plan_cache_hits_total", "Plan-cache hits", snapshot.plan_cache.hits);
    counter(
        &mut out,
        "xtwig_plan_cache_misses_total",
        "Plan-cache misses",
        snapshot.plan_cache.misses,
    );
    counter(
        &mut out,
        "xtwig_result_cache_hits_total",
        "Result-cache hits",
        snapshot.result_cache.hits,
    );
    counter(
        &mut out,
        "xtwig_result_cache_misses_total",
        "Result-cache misses",
        snapshot.result_cache.misses,
    );
    gauge(&mut out, "xtwig_queue_depth", "Jobs currently queued", snapshot.queue_depth as u64);
    gauge(
        &mut out,
        "xtwig_in_flight",
        "Queries admitted and not yet resolved",
        snapshot.in_flight as u64,
    );
    counter(
        &mut out,
        "xtwig_overloaded_total",
        "Submissions rejected by admission control",
        snapshot.overloaded,
    );
    gauge(&mut out, "xtwig_generation", "Current invalidation generation", snapshot.generation);

    // Per-strategy execution costs.
    let cost_metrics: [MetricRow<crate::stats::StrategyCostSnapshot>; 6] = [
        ("xtwig_strategy_executed_total", "Queries executed per strategy", |c| c.executed),
        ("xtwig_strategy_auto_picks_total", "Auto submissions routed per strategy", |c| {
            c.auto_picks
        }),
        ("xtwig_strategy_probes_total", "Index probes per strategy", |c| c.probes),
        ("xtwig_strategy_rows_fetched_total", "Match rows fetched per strategy", |c| {
            c.rows_fetched
        }),
        ("xtwig_strategy_logical_reads_total", "Buffer-pool page requests per strategy", |c| {
            c.logical_reads
        }),
        ("xtwig_strategy_physical_reads_total", "Backend page reads per strategy", |c| {
            c.physical_reads
        }),
    ];
    for (name, help, get) in cost_metrics {
        header(&mut out, name, help, "counter");
        for c in &snapshot.costs {
            let _ = writeln!(out, "{name}{{strategy=\"{}\"}} {}", c.strategy.label(), get(c));
        }
    }

    // Per-strategy latency histograms (log2 buckets; `le` bounds are
    // the bucket upper bounds in microseconds, cumulative).
    header(
        &mut out,
        "xtwig_query_latency_micros",
        "Execution latency per strategy (microseconds)",
        "histogram",
    );
    for l in &snapshot.latency {
        let label = l.strategy.label();
        let mut cumulative = 0u64;
        for (i, &b) in l.buckets.iter().enumerate() {
            cumulative += b;
            let _ = writeln!(
                out,
                "xtwig_query_latency_micros_bucket{{strategy=\"{label}\",le=\"{}\"}} {cumulative}",
                1u64 << i
            );
        }
        let _ = writeln!(
            out,
            "xtwig_query_latency_micros_bucket{{strategy=\"{label}\",le=\"+Inf\"}} {}",
            l.count
        );
        let _ = writeln!(
            out,
            "xtwig_query_latency_micros_sum{{strategy=\"{label}\"}} {}",
            l.total_micros
        );
        let _ =
            writeln!(out, "xtwig_query_latency_micros_count{{strategy=\"{label}\"}} {}", l.count);
    }

    // Per-pool page counters (cumulative since engine build).
    let pool_metrics: [MetricRow<PoolCounters>; 3] = [
        ("xtwig_pool_page_reads_total", "Buffer-pool page requests per pool", |p| p.page_reads()),
        ("xtwig_pool_misses_total", "Buffer-pool misses per pool", |p| p.misses()),
        ("xtwig_pool_pins_total", "Page pins acquired per pool", |p| p.pins()),
    ];
    for (name, help, get) in pool_metrics {
        header(&mut out, name, help, "counter");
        for (pool, counters) in pools {
            let _ = writeln!(out, "{name}{{pool=\"{pool}\"}} {}", get(counters));
        }
    }

    // Per-shape traffic.
    header(&mut out, "xtwig_shape_queries_total", "Queries executed per twig shape", "counter");
    let rows = registry.shape_rows();
    for (shape, executed, _) in &rows {
        let _ = writeln!(
            out,
            "xtwig_shape_queries_total{{shape=\"{}\"}} {executed}",
            json_escape(shape)
        );
    }
    header(
        &mut out,
        "xtwig_shape_latency_micros_total",
        "Summed execution latency per twig shape (microseconds)",
        "counter",
    );
    for (shape, _, micros) in &rows {
        let _ = writeln!(
            out,
            "xtwig_shape_latency_micros_total{{shape=\"{}\"}} {micros}",
            json_escape(shape)
        );
    }
    counter(
        &mut out,
        "xtwig_shape_overflow_total",
        "Executions not attributed to a shape (shape map full)",
        registry.shape_overflow(),
    );
    counter(
        &mut out,
        "xtwig_slow_queries_total",
        "Queries at or above the slow-query threshold",
        registry.slow_total(),
    );

    // Event-journal families: per-kind emission counts (every kind is
    // present every scrape, so the family is stable) plus ring drops.
    header(&mut out, "xtwig_events_total", "Serving-layer events emitted per kind", "counter");
    for (kind, count) in journal.kind_counts() {
        let _ = writeln!(out, "xtwig_events_total{{kind=\"{kind}\"}} {count}");
    }
    counter(
        &mut out,
        "xtwig_events_dropped_total",
        "Journal entries evicted by the ring bound",
        journal.dropped(),
    );
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests assert; unwrap is the assert
mod tests {
    use super::*;

    fn slow(query: &str, micros: u64) -> SlowQuery {
        SlowQuery {
            query: query.to_owned(),
            strategy: Strategy::RootPaths,
            micros,
            generation: 0,
            spans: String::new(),
            request_id: 0,
            peer: String::new(),
        }
    }

    fn slow_with_id(query: &str, request_id: u64) -> SlowQuery {
        SlowQuery { request_id, ..slow(query, 100) }
    }

    #[test]
    fn find_trace_prefers_newest_and_ignores_zero() {
        let r = MetricsRegistry::new(Some(100), 4);
        r.record_slow(slow_with_id("old", 7));
        r.record_sampled(slow_with_id("new", 7));
        r.record_sampled(slow_with_id("other", 9));
        assert_eq!(r.find_trace(7).unwrap().query, "new");
        assert_eq!(r.find_trace(9).unwrap().query, "other");
        assert!(r.find_trace(0).is_none());
        assert!(r.find_trace(42).is_none());
        // Sampled records do not inflate the slow counter.
        assert_eq!(r.slow_total(), 1);
    }

    #[test]
    fn slow_ring_evicts_oldest_but_total_keeps_counting() {
        let r = MetricsRegistry::new(Some(100), 2);
        assert!(!r.is_slow(Duration::from_micros(99)));
        assert!(r.is_slow(Duration::from_micros(100)));
        for i in 0..5 {
            r.record_slow(slow(&format!("q{i}"), 100 + i));
        }
        let kept = r.slow_queries();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].query, "q3");
        assert_eq!(kept[1].query, "q4");
        assert_eq!(r.slow_total(), 5);
    }

    #[test]
    fn disabled_slow_log_never_matches() {
        let r = MetricsRegistry::new(None, 32);
        assert!(!r.is_slow(Duration::from_secs(3600)));
        let zero_cap = MetricsRegistry::new(Some(0), 0);
        assert!(!zero_cap.is_slow(Duration::ZERO));
    }

    #[test]
    fn shape_map_bounds_and_overflows() {
        let r = MetricsRegistry::new(None, 0);
        for i in 0..MetricsRegistry::SHAPE_CAPACITY + 3 {
            r.observe_shape(&format!("shape{i}"), Duration::from_micros(10));
        }
        assert_eq!(r.shape_rows().len(), MetricsRegistry::SHAPE_CAPACITY);
        assert_eq!(r.shape_overflow(), 3);
        // Existing shapes keep accumulating after the map fills.
        r.observe_shape("shape0", Duration::from_micros(5));
        let row = r.shape_rows().into_iter().find(|(s, ..)| s == "shape0").unwrap();
        assert_eq!(row.1, 2);
        assert_eq!(row.2, 15);
    }

    #[test]
    fn shape_rows_sort_busiest_first_then_by_name() {
        let r = MetricsRegistry::new(None, 0);
        r.observe_shape("b", Duration::from_micros(1));
        r.observe_shape("a", Duration::from_micros(1));
        r.observe_shape("a", Duration::from_micros(1));
        r.observe_shape("c", Duration::from_micros(1));
        let rows = r.shape_rows();
        assert_eq!(rows.iter().map(|(s, ..)| s.as_str()).collect::<Vec<_>>(), ["a", "b", "c"]);
    }
}
