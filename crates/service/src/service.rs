//! The concurrent query service: submission API, worker pool, deadlines,
//! graceful shutdown, and the snapshot-isolated maintenance path.
//!
//! Threading model — two dispatch doors over one execution path, both
//! behind the same [`Admission`] budget (bounded in-flight queries,
//! typed [`ServiceError::Overloaded`] rejection):
//!
//! * **Direct dispatch** ([`TwigService::execute`] /
//!   [`TwigService::execute_batch`]): the query runs synchronously on
//!   the *caller's* thread against a pinned epoch — no queue, no
//!   handoff, no shared consumer lock. This is how the network front
//!   end serves: each connection thread dispatches its own queries, so
//!   concurrency scales with connections and cores instead of
//!   serializing through one channel (the old shared-`mpsc`-behind-a-
//!   mutex worker queue was single-core-shaped and is gone).
//! * **Queued dispatch** ([`TwigService::submit`] and friends): the
//!   query is cloned into a `Job` pushed onto a condvar-backed deque
//!   (`JobQueue`) that `workers` std threads drain; each job carries
//!   a [`Ticket`] slot (mutex + condvar) the submitter waits on.
//!   Deadlines bound queue residence; shutdown closes the queue and
//!   drains what is already accepted.
//!
//! Concurrency model (MVCC over the copy-on-write page layer): the
//! engine lives inside an immutable `EngineEpoch` — engine plus the
//! generation it serves — behind an `RwLock<Arc<EngineEpoch>>` held
//! only long enough to clone or swap the `Arc`. Readers **pin** the
//! current epoch and execute with no lock held, so a query never waits
//! on maintenance. Writers serialize on a maintenance mutex that also
//! owns the update journal: [`TwigService::apply_update`] forks the
//! newest epoch (`QueryEngine::fork` — a page-free copy-on-write
//! snapshot), applies its [`UpdateOp`]s to the fork, appends them to
//! the journal, and publishes the fork as the next epoch;
//! [`TwigService::rebuild_parallel`] rebuilds from the forest with no
//! lock held, then **replays the journal** onto the new engine under
//! the maintenance lock before swapping it in, so a rebuild can never
//! lose a committed update.

use crate::admission::{Admission, Permit};
use crate::cache::{PlanCache, ResultCache};
use crate::events::{Event, EventJournal};
use crate::metrics::{render_metrics, MetricsRegistry, SlowQuery};
use crate::shape::{exact_key, shape_key};
use crate::stats::{ServiceSnapshot, ServiceStats};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xtwig_core::engine::{EngineOptions, ProbeMemo, QueryMetrics};
use xtwig_core::persist::{PersistError, PersistReport};
use xtwig_core::plan::PlanKind;
use xtwig_core::{QueryEngine, Strategy};
use xtwig_xml::{TagId, TwigPattern, XmlForest};

/// The engine type a service shares across worker threads.
pub type SharedEngine = QueryEngine<Arc<XmlForest>>;

/// Why a submission or wait failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
    /// The requested strategy's structures were not built.
    StrategyNotBuilt(Strategy),
    /// The query was still queued when its deadline passed.
    DeadlineExceeded,
    /// The job was dropped without an answer (worker panic or teardown).
    Canceled,
    /// The admission budget is exhausted: too many queries in flight.
    /// Typed so callers (and the wire protocol) can back off instead of
    /// piling onto an overloaded service.
    Overloaded {
        /// Queries in flight when the submission was refused.
        in_flight: usize,
        /// The configured [`ServiceOptions::max_in_flight`] bound.
        limit: usize,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::StrategyNotBuilt(s) => write!(f, "strategy {s} was not built"),
            ServiceError::DeadlineExceeded => write!(f, "query deadline exceeded while queued"),
            ServiceError::Canceled => write!(f, "query canceled without an answer"),
            ServiceError::Overloaded { in_flight, limit } => {
                write!(f, "service overloaded: {in_flight} queries in flight (limit {limit})")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// Service construction options.
#[derive(Debug, Clone)]
pub struct ServiceOptions {
    /// Worker threads (minimum 1; default 4).
    pub workers: usize,
    /// Enable the shape-keyed plan cache (default true).
    pub plan_cache: bool,
    /// Distinct shapes the plan cache may hold (default 4096).
    pub plan_cache_capacity: usize,
    /// Result-cache entries; 0 disables result caching (default 1024).
    pub result_cache_capacity: usize,
    /// Deadline applied to submissions that don't carry their own.
    pub default_deadline: Option<Duration>,
    /// Executions at or above this many microseconds are captured into
    /// the slow-query log with a traced re-execution (`None` disables
    /// the log; default).
    pub slow_query_micros: Option<u64>,
    /// Slow-query records retained, oldest evicted first (default 32).
    pub slow_query_capacity: usize,
    /// Admission bound: queries in flight (queued + executing, across
    /// both dispatch doors) beyond which submissions are refused with
    /// [`ServiceError::Overloaded`]. `0` disables the bound (default
    /// 1024).
    pub max_in_flight: usize,
    /// Event journal this service emits into. `None` (default) gives
    /// the service a private journal of [`ServiceOptions::event_capacity`]
    /// entries; the catalog injects one shared journal so every index's
    /// events land in a single stream the wire `Events` opcode serves.
    pub events: Option<Arc<EventJournal>>,
    /// Ring capacity of a privately created journal (default 256).
    pub event_capacity: usize,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            workers: 4,
            plan_cache: true,
            plan_cache_capacity: 4096,
            result_cache_capacity: 1024,
            default_deadline: None,
            slow_query_micros: None,
            slow_query_capacity: 32,
            max_in_flight: 1024,
            events: None,
            event_capacity: 256,
        }
    }
}

/// Per-request context the wire front end threads through direct
/// dispatch: the client-stamped request id, whether the client asked
/// for a trace capture, and the connection's peer address. Local
/// submissions use the default (id 0, unsampled, no peer).
#[derive(Debug, Clone, Default)]
pub struct RequestCtx {
    /// Client-stamped wire request id (0 = unstamped/local).
    pub request_id: u64,
    /// True when the client requested a traced execution: the result
    /// cache is bypassed and a span tree is captured regardless of the
    /// slow threshold, retrievable via the `Trace` opcode.
    pub sample: bool,
    /// Peer address of the issuing connection (empty for local).
    pub peer: String,
}

/// One answered query.
#[derive(Debug, Clone)]
pub struct ServiceAnswer {
    /// Distinct ids bound to the twig's output node (shared: cache hits
    /// hand out the same allocation).
    pub ids: Arc<BTreeSet<u64>>,
    /// The plan kind that ran (or originally ran, for cache hits).
    pub plan: PlanKind,
    /// Strategy that answered — the optimizer's concrete pick when the
    /// query was submitted with [`Strategy::Auto`].
    pub strategy: Strategy,
    /// True when served from the result cache.
    pub from_cache: bool,
    /// Execution metrics; zeroed for cache hits (no index work done).
    pub metrics: QueryMetrics,
}

// ---------------------------------------------------------------------------
// Tickets
// ---------------------------------------------------------------------------

type JobResult = Result<Vec<ServiceAnswer>, ServiceError>;

struct Slot {
    state: StdMutex<Option<JobResult>>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot { state: StdMutex::new(None), cv: Condvar::new() })
    }

    /// First resolution wins; later calls (e.g. the cancel-on-drop
    /// guard after a normal resolve) are no-ops.
    fn resolve(&self, result: JobResult) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.is_none() {
            *state = Some(result);
            self.cv.notify_all();
        }
    }

    fn wait(&self) -> JobResult {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            state = self.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Like [`Slot::wait`] but gives up after `timeout`, leaving the
    /// slot intact (a later wait can still take the result).
    fn wait_timeout(&self, timeout: Duration) -> Option<JobResult> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = state.take() {
                return Some(result);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (s, _) =
                self.cv.wait_timeout(state, deadline - now).unwrap_or_else(|e| e.into_inner());
            state = s;
        }
    }
}

/// Handle to one in-flight query.
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// Blocks until the worker resolves the query.
    pub fn wait(self) -> Result<ServiceAnswer, ServiceError> {
        // A resolved single-query job always carries one answer; an
        // empty vector would mean a worker bug, which surfaces as a
        // typed error instead of panicking the waiting thread.
        self.slot.wait().and_then(|mut answers| answers.pop().ok_or(ServiceError::Canceled))
    }

    /// Waits at most `timeout` for the answer; `None` leaves the ticket
    /// usable for a later `wait`/`wait_timeout`. This is the caller-side
    /// bound — the submission deadline only rejects work still *queued*
    /// when it expires, it cannot preempt an executing worker.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<ServiceAnswer, ServiceError>> {
        self.slot
            .wait_timeout(timeout)
            .map(|r| r.and_then(|mut answers| answers.pop().ok_or(ServiceError::Canceled)))
    }
}

/// Handle to one in-flight batch.
pub struct BatchTicket {
    slot: Arc<Slot>,
}

impl BatchTicket {
    /// Blocks until the worker resolves the batch; answers are in
    /// submission order.
    pub fn wait(self) -> Result<Vec<ServiceAnswer>, ServiceError> {
        self.slot.wait()
    }
}

// ---------------------------------------------------------------------------
// Jobs and workers
// ---------------------------------------------------------------------------

enum JobKind {
    Single(TwigPattern, Strategy),
    Batch(Vec<TwigPattern>, Strategy),
}

struct Job {
    kind: JobKind,
    deadline: Option<Instant>,
    slot: Arc<Slot>,
    /// Admission units held for the whole queued + executing lifetime;
    /// released when the job is dropped, i.e. exactly when it resolves.
    _permit: Option<Permit>,
}

/// The worker queue: a plain deque under a mutex with a condvar, shared
/// by every worker. This replaced the original `mpsc::Receiver` behind
/// a `Mutex` (where a worker had to win two locks to take a job and
/// at most one could block on `recv`): workers park on the condvar and
/// each push wakes exactly one. Closing the queue wakes everyone;
/// already-accepted jobs drain before workers exit (graceful shutdown).
struct JobQueue {
    inner: StdMutex<JobQueueInner>,
    cv: Condvar,
}

struct JobQueueInner {
    jobs: VecDeque<Job>,
    open: bool,
}

impl JobQueue {
    fn new() -> Arc<JobQueue> {
        Arc::new(JobQueue {
            inner: StdMutex::new(JobQueueInner { jobs: VecDeque::new(), open: true }),
            cv: Condvar::new(),
        })
    }

    /// Enqueues `job`, or hands it back when the queue is closed.
    fn push(&self, job: Job) -> Result<(), Job> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if !inner.open {
            return Err(job);
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.cv.notify_one();
        Ok(())
    }

    /// Takes the next job, blocking while the queue is open and empty.
    /// `None` means closed *and* drained — the worker should exit.
    fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if !inner.open {
                return None;
            }
            inner = self.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops accepting jobs and wakes every parked worker to drain.
    fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.open = false;
        drop(inner);
        self.cv.notify_all();
    }

    fn is_open(&self) -> bool {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).open
    }
}

impl JobKind {
    /// Queries this job carries (stats count queries, not jobs).
    fn query_count(&self) -> u64 {
        match self {
            JobKind::Single(..) => 1,
            JobKind::Batch(twigs, _) => twigs.len() as u64,
        }
    }
}

impl Drop for Job {
    fn drop(&mut self) {
        // Covers worker panics and teardown paths: a job never resolved
        // by execution resolves to Canceled instead of hanging waiters.
        self.slot.resolve(Err(ServiceError::Canceled));
    }
}

/// One immutable engine generation. An epoch is never mutated after
/// publication: writers fork the newest epoch's engine, mutate the
/// fork, and publish a *new* epoch. Readers that cloned the `Arc` keep
/// a consistent snapshot — engine state and the generation it serves
/// are one atomic unit, so a result computed against an epoch can
/// always be cached under exactly that epoch's generation.
struct EngineEpoch {
    engine: SharedEngine,
    generation: u64,
}

/// One logical index-maintenance operation, applied to every
/// maintainable structure the engine built (ROOTPATHS and DATAPATHS)
/// and journaled so a concurrent rebuild can replay it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateOp {
    /// Insert a root-to-node data path: `tags[i]` labels the node with
    /// id `ids[i]`, `value` is the leaf's value (if any).
    InsertPath {
        /// Schema path, root first.
        tags: Vec<TagId>,
        /// Node-id list, parallel to `tags`.
        ids: Vec<u64>,
        /// Leaf value of the path's head node.
        value: Option<String>,
    },
    /// Delete a previously inserted data path (same shape as insert).
    DeletePath {
        /// Schema path, root first.
        tags: Vec<TagId>,
        /// Node-id list, parallel to `tags`.
        ids: Vec<u64>,
        /// Leaf value the path was inserted with.
        value: Option<String>,
    },
}

/// Applies one op to every maintainable structure the engine built.
/// Returns true when at least one structure changed.
fn apply_op(engine: &mut SharedEngine, op: &UpdateOp) -> bool {
    let mut changed = false;
    match op {
        UpdateOp::InsertPath { tags, ids, value } => {
            if let Some(rp) = engine.rootpaths_mut() {
                rp.insert_path(tags, ids, value.as_deref());
                changed = true;
            }
            if let Some(dp) = engine.datapaths_mut() {
                dp.insert_path(tags, ids, value.as_deref());
                changed = true;
            }
        }
        UpdateOp::DeletePath { tags, ids, value } => {
            if let Some(rp) = engine.rootpaths_mut() {
                changed |= rp.delete_path(tags, ids, value.as_deref());
            }
            if let Some(dp) = engine.datapaths_mut() {
                changed |= dp.delete_path(tags, ids, value.as_deref());
            }
        }
    }
    changed
}

/// Writer-side state, serialized by the maintenance mutex: the journal
/// of every update committed since the engine was built (or last
/// rebuilt *and* folded — see [`TwigService::rebuild_parallel`], which
/// replays it, and [`TwigService::persist`], which folds the page
/// overlay but keeps the journal for rebuilds from the forest).
struct Maintenance {
    journal: Vec<UpdateOp>,
}

struct Shared {
    /// The published epoch. The lock is held only to clone (readers) or
    /// swap (writers) the `Arc` — never across query execution or index
    /// mutation, so readers and writers never wait on each other's
    /// *work*, only on a pointer exchange.
    epoch: RwLock<Arc<EngineEpoch>>,
    /// Serializes writers ([`TwigService::apply_update`],
    /// [`TwigService::rebuild_parallel`], [`TwigService::persist`]) and
    /// owns the journal. Lock order: maintenance before epoch.
    maintenance: Mutex<Maintenance>,
    plan_cache: PlanCache,
    result_cache: ResultCache,
    /// Lock-free mirror of the published epoch's generation (for
    /// [`TwigService::generation`] and stats).
    generation: AtomicU64,
    stats: ServiceStats,
    metrics: MetricsRegistry,
    /// Structured event journal (shared with the catalog/server when
    /// injected via [`ServiceOptions::events`]).
    events: Arc<EventJournal>,
    /// Which strategies the *current* engine has built — atomic because
    /// [`TwigService::rebuild_parallel`] may swap in an engine with a
    /// different strategy set while submissions race the check.
    available: [AtomicBool; Strategy::ALL.len()],
}

impl Shared {
    /// Pins the published epoch: clones the `Arc` under a momentary
    /// read lock. Everything pinned stays readable (and consistent)
    /// for as long as the clone lives, however many swaps happen.
    fn pin(&self) -> Arc<EngineEpoch> {
        self.epoch.read().clone()
    }

    /// Publishes `next` as the current epoch and mirrors its generation.
    /// Returns the displaced epoch so callers drop it outside the lock.
    fn publish(&self, next: Arc<EngineEpoch>) -> Arc<EngineEpoch> {
        let mut slot = self.epoch.write();
        self.generation.store(next.generation, Ordering::SeqCst);
        std::mem::replace(&mut *slot, next)
    }

    fn set_available(&self, engine: &SharedEngine) {
        for (slot, s) in self.available.iter().zip(Strategy::ALL.iter()) {
            slot.store(engine.has_strategy(*s), Ordering::SeqCst);
        }
    }
}

/// Forks `epoch`'s engine, retrying while a concurrent reader pins a
/// freshly dirtied page (transient — see [`xtwig_core::ForkError`]).
/// Callers hold the maintenance lock, so no *writer* races the fork.
fn fork_engine(epoch: &EngineEpoch) -> SharedEngine {
    loop {
        match epoch.engine.fork() {
            Ok(engine) => return engine,
            Err(xtwig_core::ForkError::PinnedPages { .. }) => std::thread::yield_now(),
        }
    }
}

/// A multi-threaded twig query service over one shared [`SharedEngine`].
pub struct TwigService {
    shared: Arc<Shared>,
    queue: Arc<JobQueue>,
    admission: Arc<Admission>,
    workers: Vec<JoinHandle<()>>,
    default_deadline: Option<Duration>,
}

impl TwigService {
    /// Builds the engine over `forest` and starts the worker pool.
    pub fn build(forest: XmlForest, engine: EngineOptions, options: ServiceOptions) -> Self {
        TwigService::over(QueryEngine::build(Arc::new(forest), engine), options)
    }

    /// Reopens a persisted index file (see `xtwig-core`'s
    /// [`QueryEngine::persist`](xtwig_core::QueryEngine::persist)) and
    /// starts the worker pool over it — a service restart without
    /// paying the index build: no enumeration, no sorting, no bulk
    /// loads; the stored per-strategy digests are verified against the
    /// reopened page images before any query is accepted.
    pub fn open<P: AsRef<std::path::Path>>(
        path: P,
        options: ServiceOptions,
    ) -> Result<Self, xtwig_core::persist::OpenError> {
        Ok(TwigService::over(QueryEngine::open(path)?, options))
    }

    /// Starts a worker pool over an already-built shared engine.
    pub fn over(engine: SharedEngine, options: ServiceOptions) -> Self {
        let available = std::array::from_fn(|i| {
            AtomicBool::new(Strategy::ALL.get(i).is_some_and(|s| engine.has_strategy(*s)))
        });
        let events = options
            .events
            .clone()
            .unwrap_or_else(|| Arc::new(EventJournal::new(options.event_capacity)));
        let shared = Arc::new(Shared {
            epoch: RwLock::new(Arc::new(EngineEpoch { engine, generation: 0 })),
            maintenance: Mutex::new(Maintenance { journal: Vec::new() }),
            plan_cache: PlanCache::new(options.plan_cache, options.plan_cache_capacity),
            result_cache: ResultCache::new(options.result_cache_capacity),
            generation: AtomicU64::new(0),
            stats: ServiceStats::default(),
            metrics: MetricsRegistry::new(options.slow_query_micros, options.slow_query_capacity),
            events,
            available,
        });
        let queue = JobQueue::new();
        let mut workers = Vec::new();
        for i in 0..options.workers.max(1) {
            let shared = shared.clone();
            let worker_queue = queue.clone();
            match std::thread::Builder::new()
                .name(format!("xtwig-worker-{i}"))
                .spawn(move || worker_loop(&shared, &worker_queue))
            {
                Ok(handle) => workers.push(handle),
                // Spawn failure (OS thread exhaustion) degrades the
                // pool instead of panicking the attaching thread —
                // which is a *connection* thread when the catalog
                // attaches an index on first use.
                Err(_) => break,
            }
        }
        if workers.is_empty() {
            // With no workers, queued submissions would park forever;
            // closing the queue makes them fail fast with a typed
            // ShuttingDown. Direct dispatch (`execute`) still serves.
            queue.close();
        }
        TwigService {
            shared,
            queue,
            admission: Admission::new(options.max_in_flight),
            workers,
            default_deadline: options.default_deadline,
        }
    }

    /// Submits one query; the returned [`Ticket`] resolves when a
    /// worker answers it.
    pub fn submit(&self, twig: &TwigPattern, strategy: Strategy) -> Result<Ticket, ServiceError> {
        self.submit_with_deadline(twig, strategy, self.default_deadline)
    }

    /// [`TwigService::submit`] with an explicit queueing deadline,
    /// enforced when a worker dequeues the job: a query still queued
    /// past its deadline resolves to [`ServiceError::DeadlineExceeded`]
    /// at that point. It bounds queue residence, not the caller's wait —
    /// `Ticket::wait` still blocks until a worker picks the job up (use
    /// [`Ticket::wait_timeout`] for a caller-side bound), and a query
    /// already executing runs to completion (workers are not preempted).
    pub fn submit_with_deadline(
        &self,
        twig: &TwigPattern,
        strategy: Strategy,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServiceError> {
        let slot = self.enqueue(JobKind::Single(twig.clone(), strategy), strategy, deadline)?;
        Ok(Ticket { slot })
    }

    /// Submits a batch answered as one unit on one worker, with index
    /// probes deduplicated across the batch's shared PCsubpaths.
    pub fn submit_batch(
        &self,
        twigs: &[TwigPattern],
        strategy: Strategy,
    ) -> Result<BatchTicket, ServiceError> {
        let slot = self.enqueue(
            JobKind::Batch(twigs.to_vec(), strategy),
            strategy,
            self.default_deadline,
        )?;
        Ok(BatchTicket { slot })
    }

    fn enqueue(
        &self,
        kind: JobKind,
        strategy: Strategy,
        deadline: Option<Duration>,
    ) -> Result<Arc<Slot>, ServiceError> {
        // Auto needs any built strategy — the optimizer only ranks
        // what exists.
        if !strategy_available(&self.shared, strategy) {
            return Err(ServiceError::StrategyNotBuilt(strategy));
        }
        if !self.queue.is_open() {
            return Err(ServiceError::ShuttingDown);
        }
        let queries = kind.query_count();
        let Some(permit) = self.admission.try_acquire(queries as usize) else {
            return Err(self.reject_overloaded());
        };
        let slot = Slot::new();
        let job = Job {
            kind,
            deadline: deadline.map(|d| Instant::now() + d),
            slot: slot.clone(),
            _permit: Some(permit),
        };
        self.shared.stats.enqueue(queries);
        if let Err(job) = self.queue.push(job) {
            // The queue closed between the open check and the push; the
            // dropped job resolves its slot to Canceled, but no ticket
            // ever sees it — the caller gets the typed rejection.
            self.shared.stats.dequeue();
            drop(job);
            return Err(ServiceError::ShuttingDown);
        }
        Ok(slot)
    }

    /// Answers `twig` synchronously on the **caller's** thread — the
    /// direct-dispatch door the network front end uses (one connection
    /// thread = one dispatcher; see the module docs). Shares everything
    /// with the queued path: the pinned-epoch snapshot discipline, plan
    /// and result caches, stats, and the admission budget. Rejects with
    /// [`ServiceError::Overloaded`] when the budget is exhausted and
    /// [`ServiceError::ShuttingDown`] after shutdown began.
    pub fn execute(
        &self,
        twig: &TwigPattern,
        strategy: Strategy,
    ) -> Result<ServiceAnswer, ServiceError> {
        self.execute_with(twig, strategy, &RequestCtx::default())
    }

    /// [`TwigService::execute`] with a wire [`RequestCtx`]: the request
    /// id and peer stamp any slow-query capture, and `ctx.sample`
    /// forces a traced execution (bypassing the result cache) whose
    /// span tree the `Trace` opcode can fetch by id.
    pub fn execute_with(
        &self,
        twig: &TwigPattern,
        strategy: Strategy,
        ctx: &RequestCtx,
    ) -> Result<ServiceAnswer, ServiceError> {
        self.check_strategy_available(strategy)?;
        if !self.queue.is_open() {
            return Err(ServiceError::ShuttingDown);
        }
        let Some(_permit) = self.admission.try_acquire(1) else {
            return Err(self.reject_overloaded());
        };
        self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        match answer_one(&self.shared, twig, strategy, ctx) {
            Ok(answer) => {
                self.shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                Ok(answer)
            }
            Err(e) => {
                self.shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// [`TwigService::execute`] for a batch: answered on the caller's
    /// thread as one unit against one pinned epoch, with index probes
    /// deduplicated across the batch's shared PCsubpaths. The whole
    /// batch draws its member count from the admission budget.
    pub fn execute_batch(
        &self,
        twigs: &[TwigPattern],
        strategy: Strategy,
    ) -> Result<Vec<ServiceAnswer>, ServiceError> {
        self.check_strategy_available(strategy)?;
        if !self.queue.is_open() {
            return Err(ServiceError::ShuttingDown);
        }
        let Some(_permit) = self.admission.try_acquire(twigs.len()) else {
            return Err(self.reject_overloaded());
        };
        self.shared.stats.submitted.fetch_add(twigs.len() as u64, Ordering::Relaxed);
        answer_batch(&self.shared, twigs, strategy)
    }

    /// Builds the typed Overloaded rejection and journals it — every
    /// admission refusal (queued, direct, batch) leaves an event.
    fn reject_overloaded(&self) -> ServiceError {
        let in_flight = self.admission.in_flight();
        let limit = self.admission.limit();
        self.shared
            .events
            .emit(Event::AdmissionRejected { in_flight: in_flight as u64, limit: limit as u64 });
        ServiceError::Overloaded { in_flight, limit }
    }

    /// The submit-time availability check both doors share (see
    /// `answer_one` for the execution-time recheck that closes the
    /// rebuild TOCTOU).
    fn check_strategy_available(&self, strategy: Strategy) -> Result<(), ServiceError> {
        if strategy_available(&self.shared, strategy) {
            Ok(())
        } else {
            Err(ServiceError::StrategyNotBuilt(strategy))
        }
    }

    /// Commits a batch of index-maintenance operations atomically and
    /// returns the generation that serves them.
    ///
    /// Snapshot isolation, not mutual exclusion: the writer forks the
    /// newest epoch's engine ([`QueryEngine::fork`] — copy-on-write, no
    /// page copies), applies every op to the fork, journals the ops for
    /// future rebuilds, and publishes the fork as the next epoch. In-
    /// flight queries keep reading the epoch they pinned and **never
    /// block on this writer**; queries submitted after the publish see
    /// every op. Concurrent writers serialize on the maintenance lock.
    pub fn apply_update(&self, ops: Vec<UpdateOp>) -> u64 {
        let mut maint = self.shared.maintenance.lock();
        let current = self.shared.pin();
        let mut engine = fork_engine(&current);
        for op in &ops {
            apply_op(&mut engine, op);
        }
        let op_count = ops.len() as u64;
        self.shared.stats.journal_ops.fetch_add(op_count, Ordering::Relaxed);
        maint.journal.extend(ops);
        let generation = current.generation + 1;
        drop(current);
        let old = self.shared.publish(Arc::new(EngineEpoch { engine, generation }));
        self.shared.stats.updates.fetch_add(1, Ordering::Relaxed);
        drop(maint);
        self.shared.events.emit(Event::UpdateCommitted { generation, ops: op_count });
        // Displaced epoch may hold the last reference to forked pools;
        // drop it outside both locks.
        drop(old);
        generation
    }

    /// Rebuilds every index configuration with the shard-parallel
    /// builder and swaps the new engine in — **without draining
    /// readers**: the build runs over the shared `Arc<XmlForest>`
    /// handle with no lock held, so queries keep executing against the
    /// old epoch for the whole build, and in-flight queries that pinned
    /// it finish on it even after the swap.
    ///
    /// Updates are never lost to the race between building and
    /// swapping: the forest is static, so the fresh engine knows
    /// nothing of any [`TwigService::apply_update`] ever committed —
    /// before the swap, the **full journal is replayed** onto it under
    /// the maintenance lock (which also blocks new updates for the
    /// replay's duration, bounded by journal length, not build time).
    /// The new epoch's generation supersedes every earlier one, staling
    /// all cached results, and the strategy-availability flags are
    /// refreshed for the new engine's strategy set.
    pub fn rebuild_parallel(&self, options: EngineOptions, shards: usize) {
        let forest = self.shared.pin().engine.forest_handle();
        let mut new_engine = QueryEngine::build_parallel(forest, options, shards);
        let (old, generation, replayed_ops) = {
            let maint = self.shared.maintenance.lock();
            for op in &maint.journal {
                apply_op(&mut new_engine, op);
            }
            let replayed = maint.journal.len() as u64;
            self.shared.stats.replayed_ops.fetch_add(replayed, Ordering::Relaxed);
            self.shared.set_available(&new_engine);
            let generation = self.shared.pin().generation + 1;
            self.shared.stats.rebuilds.fetch_add(1, Ordering::Relaxed);
            let old = self.shared.publish(Arc::new(EngineEpoch { engine: new_engine, generation }));
            (old, generation, replayed)
        };
        self.shared.events.emit(Event::RebuildSwapped { generation, replayed_ops });
        // Tear the old epoch down (up to seven strategies' pools and
        // trees) only after releasing the locks — readers must not
        // stall behind the deallocation.
        drop(old);
    }

    /// Persists the current epoch's indexes to one `.xtwig` file,
    /// **folding** every copy-on-write overlay page accumulated by
    /// [`TwigService::apply_update`] into the new base image (the
    /// persist path reads pages through the pools, overlay-first).
    /// Reopening the file yields an engine with the updates applied and
    /// an empty overlay. Queries keep running against the pinned epoch
    /// throughout; concurrent updates serialize behind the fold.
    pub fn persist<P: AsRef<std::path::Path>>(
        &self,
        path: P,
    ) -> Result<PersistReport, PersistError> {
        let path = path.as_ref();
        let maint = self.shared.maintenance.lock();
        let epoch = self.shared.pin();
        let report = epoch.engine.persist(path)?;
        self.shared.stats.folds.fetch_add(1, Ordering::Relaxed);
        drop(maint);
        self.shared.events.emit(Event::PersistFolded { path: path.display().to_string() });
        Ok(report)
    }

    /// Runs a read-only closure against a pinned epoch's engine
    /// (sequential-baseline comparisons, stats reporting). The closure
    /// sees one consistent snapshot and holds **no lock** — concurrent
    /// updates and rebuilds proceed freely and are invisible to it.
    pub fn with_engine<R>(&self, f: impl FnOnce(&SharedEngine) -> R) -> R {
        let epoch = self.shared.pin();
        f(&epoch.engine)
    }

    /// Current invalidation generation.
    pub fn generation(&self) -> u64 {
        self.shared.generation.load(Ordering::SeqCst)
    }

    /// Snapshot of every service metric.
    pub fn stats(&self) -> ServiceSnapshot {
        let s = &self.shared.stats;
        ServiceSnapshot {
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            failed: s.failed.load(Ordering::Relaxed),
            deadline_missed: s.deadline_missed.load(Ordering::Relaxed),
            updates: s.updates.load(Ordering::Relaxed),
            rebuilds: s.rebuilds.load(Ordering::Relaxed),
            journal_ops: s.journal_ops.load(Ordering::Relaxed),
            replayed_ops: s.replayed_ops.load(Ordering::Relaxed),
            folds: s.folds.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            batch_queries: s.batch_queries.load(Ordering::Relaxed),
            memo_hits: s.memo_hits.load(Ordering::Relaxed),
            memo_misses: s.memo_misses.load(Ordering::Relaxed),
            queue_depth: s.queue_depth.load(Ordering::Relaxed),
            queue_high_water: s.queue_high_water.load(Ordering::Relaxed),
            in_flight: self.admission.in_flight(),
            admission_limit: self.admission.limit(),
            overloaded: self.admission.rejected(),
            generation: self.generation(),
            plan_cache: self.shared.plan_cache.stats(),
            result_cache: self.shared.result_cache.stats(),
            latency: s.latency_snapshots(),
            costs: s.cost_snapshots(),
        }
    }

    /// Worker threads serving the queue.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Renders every service metric in the Prometheus text exposition
    /// format: submission/cache counters, per-strategy execution costs
    /// and log2 latency histograms, per-pool page-read/miss/pin
    /// counters from the current engine, per-shape traffic, and the
    /// slow-query count. Scrape-safe: holds no lock across query
    /// execution (the engine is pinned like any reader).
    pub fn metrics_text(&self) -> String {
        let snapshot = self.stats();
        let pools = self.with_engine(|e| e.pool_counters());
        render_metrics(&snapshot, &pools, &self.shared.metrics, &self.shared.events)
    }

    /// The retained slow-query records, oldest first (see
    /// [`ServiceOptions::slow_query_micros`]).
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.shared.metrics.slow_queries()
    }

    /// The event journal this service emits into (shared when the
    /// catalog injected one; see [`ServiceOptions::events`]).
    pub fn events(&self) -> Arc<EventJournal> {
        self.shared.events.clone()
    }

    /// The newest retained trace record stamped with `request_id`
    /// (slow-query capture or an explicitly sampled request).
    pub fn find_trace(&self, request_id: u64) -> Option<SlowQuery> {
        self.shared.metrics.find_trace(request_id)
    }

    /// Graceful shutdown: stop accepting submissions, let the workers
    /// drain every queued job, then join them.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        self.queue.close(); // rejects new pushes; workers drain what's queued
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for TwigService {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}

/// The submit-time availability check both dispatch doors share. A
/// strategy missing from `Strategy::ALL` reads as unavailable (a typed
/// `StrategyNotBuilt`), never as a panic.
fn strategy_available(shared: &Shared, strategy: Strategy) -> bool {
    if strategy.is_auto() {
        shared.available.iter().any(|a| a.load(Ordering::SeqCst))
    } else {
        Strategy::ALL
            .iter()
            .position(|s| *s == strategy)
            .and_then(|i| shared.available.get(i))
            .is_some_and(|a| a.load(Ordering::SeqCst))
    }
}

fn worker_loop(shared: &Shared, queue: &JobQueue) {
    while let Some(job) = queue.pop() {
        shared.stats.dequeue();
        run_job(shared, job);
    }
    // `pop` returned None: queue closed and drained — shutdown.
}

fn run_job(shared: &Shared, job: Job) {
    let queries = job.kind.query_count();
    if job.deadline.is_some_and(|d| Instant::now() > d) {
        shared.stats.deadline_missed.fetch_add(queries, Ordering::Relaxed);
        shared.stats.failed.fetch_add(queries, Ordering::Relaxed);
        job.slot.resolve(Err(ServiceError::DeadlineExceeded));
        return;
    }
    match &job.kind {
        JobKind::Single(twig, strategy) => {
            match answer_one(shared, twig, *strategy, &RequestCtx::default()) {
                Ok(answer) => {
                    shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                    job.slot.resolve(Ok(vec![answer]));
                }
                Err(e) => {
                    shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                    job.slot.resolve(Err(e));
                }
            }
        }
        JobKind::Batch(twigs, strategy) => {
            job.slot.resolve(answer_batch(shared, twigs, *strategy));
        }
    }
}

/// Answers a batch as one unit: one pinned epoch, one shared probe
/// memo, full completion/failure accounting. Shared by the queued path
/// (`run_job`) and the direct-dispatch door
/// ([`TwigService::execute_batch`]).
fn answer_batch(
    shared: &Shared,
    twigs: &[TwigPattern],
    strategy: Strategy,
) -> Result<Vec<ServiceAnswer>, ServiceError> {
    let queries = twigs.len() as u64;
    // ONE pinned epoch for the whole batch: the memo must not
    // straddle an update, or matches memoized before it could
    // be re-served — and cached — under the post-update
    // generation. The epoch carries its own generation, so the
    // batch's snapshot and its cache tag cannot disagree.
    let epoch = shared.pin();
    let mut memo = ProbeMemo::new();
    let answers: Result<Vec<ServiceAnswer>, ServiceError> = {
        // Recheck against the engine actually executing: a
        // rebuild may have dropped the strategy after submit's
        // availability check passed (see `answer_one`).
        if epoch.engine.has_strategy(strategy) {
            Ok(twigs
                .iter()
                .map(|t| {
                    answer_pinned(
                        shared,
                        &epoch.engine,
                        t,
                        strategy,
                        Some(&mut memo),
                        epoch.generation,
                    )
                })
                .collect())
        } else {
            Err(ServiceError::StrategyNotBuilt(strategy))
        }
    };
    match answers {
        Ok(answers) => {
            let memo_stats = memo.stats();
            shared.stats.batches.fetch_add(1, Ordering::Relaxed);
            shared.stats.batch_queries.fetch_add(queries, Ordering::Relaxed);
            shared.stats.memo_hits.fetch_add(memo_stats.hits, Ordering::Relaxed);
            shared.stats.memo_misses.fetch_add(memo_stats.misses, Ordering::Relaxed);
            shared.stats.completed.fetch_add(queries, Ordering::Relaxed);
            Ok(answers)
        }
        Err(e) => {
            shared.stats.failed.fetch_add(queries, Ordering::Relaxed);
            Err(e)
        }
    }
}

/// Answers one single-submission query against a pinned epoch. The
/// epoch binds engine state and generation into one atomic unit: a
/// result computed here is cached under the pinned epoch's generation,
/// so an update publishing generation N+1 mid-execution cannot cause a
/// stale result to be tagged fresh (the cache also refuses to clobber
/// a newer-generation entry). Result-cache hits return without
/// executing at all. (A rebuild that dropped the strategy published a
/// higher generation; a worker that pinned the old epoch *before* the
/// swap may still serve one cached pre-rebuild answer — correct data
/// for the epoch that was live when the query was accepted, after
/// which the entry is stale.)
///
/// Errs with [`ServiceError::StrategyNotBuilt`] when a rebuild dropped
/// the strategy between submit's availability check and execution —
/// the recheck is against the pinned engine this worker actually
/// executes on, so a query never reaches an unbuilt structure (whose
/// accessor would panic and kill the worker thread).
fn answer_one(
    shared: &Shared,
    twig: &TwigPattern,
    strategy: Strategy,
    ctx: &RequestCtx,
) -> Result<ServiceAnswer, ServiceError> {
    let epoch = shared.pin();
    let key = exact_key(twig);
    // Concrete strategies check the result cache before touching the
    // engine. Auto must compile (cheap on a plan-cache hit) to learn
    // its concrete key first — see `answer_miss`. A sampled request
    // skips the cache: the client asked for a trace of a real
    // execution, so a cache hit would return nothing to trace.
    if !strategy.is_auto() && !ctx.sample {
        if let Some((ids, plan)) = shared.result_cache.get(&key, strategy, epoch.generation) {
            return Ok(ServiceAnswer {
                ids,
                plan,
                strategy,
                from_cache: true,
                metrics: QueryMetrics::default(),
            });
        }
    }
    if !epoch.engine.has_strategy(strategy) {
        return Err(ServiceError::StrategyNotBuilt(strategy));
    }
    Ok(answer_miss(shared, &epoch.engine, twig, strategy, None, epoch.generation, key, ctx))
}

/// Answers one query of a batch against the batch's pinned epoch and
/// its generation (see `run_job`'s batch arm for why both are shared).
fn answer_pinned(
    shared: &Shared,
    engine: &SharedEngine,
    twig: &TwigPattern,
    strategy: Strategy,
    memo: Option<&mut ProbeMemo>,
    generation: u64,
) -> ServiceAnswer {
    let key = exact_key(twig);
    if !strategy.is_auto() {
        if let Some((ids, plan)) = shared.result_cache.get(&key, strategy, generation) {
            return ServiceAnswer {
                ids,
                plan,
                strategy,
                from_cache: true,
                metrics: QueryMetrics::default(),
            };
        }
    }
    answer_miss(shared, engine, twig, strategy, memo, generation, key, &RequestCtx::default())
}

/// The execution path: compile and resolve the strategy (through the
/// plan cache — an Auto submission resolves to its shape's memoized
/// concrete pick), check/fill the result cache *under the resolved
/// strategy* (so auto and explicit submissions of one query share
/// entries), execute, and record latency and cost counters.
#[allow(clippy::too_many_arguments)] // internal plumbing shared by three call sites
fn answer_miss(
    shared: &Shared,
    engine: &SharedEngine,
    twig: &TwigPattern,
    requested: Strategy,
    memo: Option<&mut ProbeMemo>,
    generation: u64,
    key: String,
    ctx: &RequestCtx,
) -> ServiceAnswer {
    let (compiled, plan, strategy) =
        match shared.plan_cache.compile_resolved(engine, twig, requested) {
            // Unknown tag: the answer is necessarily empty (§2.2); still
            // cacheable under the current generation when the request
            // named a concrete strategy (nothing resolved, nothing
            // executed, no latency sample). An Auto request resolves
            // nothing here, and the lookup paths only read concrete keys,
            // so caching under `Auto` would waste an LRU slot on an entry
            // no one can hit.
            Err(_) => {
                let ids = Arc::new(BTreeSet::new());
                if !requested.is_auto() {
                    shared.result_cache.insert(
                        key,
                        requested,
                        ids.clone(),
                        PlanKind::Merge,
                        generation,
                    );
                }
                return ServiceAnswer {
                    ids,
                    plan: PlanKind::Merge,
                    strategy: requested,
                    from_cache: false,
                    metrics: QueryMetrics::default(),
                };
            }
            Ok(resolved) => resolved,
        };
    if requested.is_auto() {
        shared.stats.record_auto_pick(strategy);
        // The pick's concrete key may already be cached (by an earlier
        // auto submission or an explicit one). A sampled request skips
        // the hit for the same reason `answer_one` does.
        if !ctx.sample {
            if let Some((ids, plan)) = shared.result_cache.get(&key, strategy, generation) {
                return ServiceAnswer {
                    ids,
                    plan,
                    strategy,
                    from_cache: true,
                    metrics: QueryMetrics::default(),
                };
            }
        }
    }
    let answer = engine.answer_compiled_with(&compiled, &plan, strategy, memo);
    shared.stats.record_latency(strategy, answer.metrics.elapsed);
    shared.stats.record_cost(strategy, &answer.metrics);
    shared.metrics.observe_shape(&shape_key(twig), answer.metrics.elapsed);
    let slow = shared.metrics.is_slow(answer.metrics.elapsed);
    if slow || ctx.sample {
        // Capture the pipeline breakdown with a read-only traced
        // re-execution against the same pinned epoch (the result is
        // discarded — only the span tree is kept). Costs one extra
        // execution, paid only for queries already past the threshold
        // or explicitly sampled by the client.
        let mut trace = xtwig_core::Trace::new();
        let _ = engine.answer_compiled_traced(&compiled, &plan, strategy, None, &mut trace);
        let micros = answer.metrics.elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let record = SlowQuery {
            query: twig.to_string(),
            strategy,
            micros,
            generation,
            spans: trace.render(),
            request_id: ctx.request_id,
            peer: ctx.peer.clone(),
        };
        if slow {
            shared.metrics.record_slow(record);
            shared.events.emit(Event::SlowQuery {
                query: twig.to_string(),
                micros,
                request_id: ctx.request_id,
                peer: ctx.peer.clone(),
            });
        } else {
            shared.metrics.record_sampled(record);
        }
    }
    let ids = Arc::new(answer.ids);
    shared.result_cache.insert(key, strategy, ids.clone(), answer.plan, generation);
    ServiceAnswer { ids, plan: answer.plan, strategy, from_cache: false, metrics: answer.metrics }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests assert; unwrap is the assert
mod tests {
    use super::*;
    use xtwig_core::parse_xpath;
    use xtwig_xml::tree::fig1_book_document;

    fn small_service(workers: usize) -> TwigService {
        TwigService::build(
            fig1_book_document(),
            EngineOptions { pool_pages: 256, ..Default::default() },
            ServiceOptions { workers, ..Default::default() },
        )
    }

    #[test]
    fn execute_answers_on_the_caller_thread_and_shares_the_caches() {
        let svc = small_service(1);
        let twig = parse_xpath("/book[title='XML']//author[fn='jane'][ln='doe']").unwrap();
        let a = svc.execute(&twig, Strategy::RootPaths).unwrap();
        assert_eq!(a.ids.len(), 1);
        assert!(!a.from_cache);
        // A queued submission of the same query hits the result cache
        // populated by the direct dispatch — one cache, two doors.
        let b = svc.submit(&twig, Strategy::RootPaths).unwrap().wait().unwrap();
        assert!(b.from_cache);
        assert!(Arc::ptr_eq(&a.ids, &b.ids));
        let stats = svc.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.in_flight, 0, "permits released when queries resolve");
        svc.shutdown();
    }

    #[test]
    fn execute_batch_matches_queued_batch_answers() {
        let svc = small_service(1);
        let twigs: Vec<TwigPattern> = ["//author[fn='jane']", "//author[fn='john']"]
            .iter()
            .map(|q| parse_xpath(q).unwrap())
            .collect();
        let direct = svc.execute_batch(&twigs, Strategy::DataPaths).unwrap();
        let queued = svc.submit_batch(&twigs, Strategy::DataPaths).unwrap().wait().unwrap();
        assert_eq!(direct.len(), queued.len());
        for (d, q) in direct.iter().zip(queued.iter()) {
            assert_eq!(d.ids, q.ids);
        }
        let stats = svc.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.batch_queries, 4);
        svc.shutdown();
    }

    #[test]
    fn exhausted_admission_budget_rejects_both_doors_and_recovers() {
        let svc = TwigService::build(
            fig1_book_document(),
            EngineOptions { pool_pages: 256, ..Default::default() },
            ServiceOptions { workers: 1, max_in_flight: 1, ..Default::default() },
        );
        let twig = parse_xpath("//author[fn='jane']").unwrap();
        let hold = svc.admission.try_acquire(1).unwrap();
        match svc.execute(&twig, Strategy::RootPaths) {
            Err(ServiceError::Overloaded { in_flight, limit }) => {
                assert_eq!((in_flight, limit), (1, 1));
            }
            other => panic!("expected Overloaded, got {:?}", other.map(|a| a.ids)),
        }
        assert!(matches!(
            svc.submit(&twig, Strategy::RootPaths),
            Err(ServiceError::Overloaded { .. })
        ));
        // A batch larger than the whole budget can never be admitted.
        let twigs = vec![twig.clone(), twig.clone()];
        drop(hold);
        assert!(matches!(
            svc.execute_batch(&twigs, Strategy::RootPaths),
            Err(ServiceError::Overloaded { .. })
        ));
        // Releasing the unit restores single-query service.
        let a = svc.execute(&twig, Strategy::RootPaths).unwrap();
        assert!(!a.ids.is_empty());
        let stats = svc.stats();
        assert_eq!(stats.overloaded, 3);
        assert_eq!(stats.admission_limit, 1);
        assert_eq!(stats.in_flight, 0);
        svc.shutdown();
    }

    #[test]
    fn submit_and_wait_roundtrip() {
        let svc = small_service(2);
        let twig = parse_xpath("/book[title='XML']//author[fn='jane'][ln='doe']").unwrap();
        let a = svc.submit(&twig, Strategy::RootPaths).unwrap().wait().unwrap();
        assert_eq!(a.ids.len(), 1);
        assert!(!a.from_cache);
        // Resubmission: result-cache hit with the same shared ids.
        let b = svc.submit(&twig, Strategy::RootPaths).unwrap().wait().unwrap();
        assert!(b.from_cache);
        assert!(Arc::ptr_eq(&a.ids, &b.ids));
        let stats = svc.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.result_cache.hits, 1);
        svc.shutdown();
    }

    #[test]
    fn plan_cache_reuses_shapes_across_literals() {
        let svc = small_service(1);
        for v in ["jane", "john", "nobody"] {
            let twig = parse_xpath(&format!("//author[fn='{v}']")).unwrap();
            svc.submit(&twig, Strategy::DataPaths).unwrap().wait().unwrap();
        }
        let stats = svc.stats();
        assert_eq!(stats.plan_cache.misses, 1, "one shape compiled once");
        assert_eq!(stats.plan_cache.hits, 2);
        svc.shutdown();
    }

    #[test]
    fn auto_submissions_resolve_and_share_the_concrete_cache_key() {
        let svc = small_service(2);
        let twig = parse_xpath("/book[title='XML']//author[fn='jane'][ln='doe']").unwrap();
        let a = svc.submit(&twig, Strategy::Auto).unwrap().wait().unwrap();
        assert!(!a.strategy.is_auto(), "answer must report the optimizer's concrete pick");
        assert_eq!(a.ids.len(), 1);
        assert!(!a.from_cache);
        // A second auto submission of the same query hits the result
        // cache under the resolved concrete key…
        let b = svc.submit(&twig, Strategy::Auto).unwrap().wait().unwrap();
        assert!(b.from_cache);
        assert_eq!(b.strategy, a.strategy);
        assert!(Arc::ptr_eq(&a.ids, &b.ids));
        // …and so does an *explicit* submission of the picked strategy.
        let c = svc.submit(&twig, a.strategy).unwrap().wait().unwrap();
        assert!(c.from_cache, "auto and explicit submissions share cache entries");
        let stats = svc.stats();
        let picks: u64 = stats.costs.iter().map(|c| c.auto_picks).sum();
        assert_eq!(picks, 2, "each auto submission counts one optimizer pick");
        let picked = stats.costs.iter().find(|c| c.strategy == a.strategy).unwrap();
        assert_eq!(picked.auto_picks, 2);
        assert_eq!(picked.executed, 1, "one execution, one cache hit");
        assert!(picked.probes > 0 && picked.logical_reads > 0);
        svc.shutdown();
    }

    #[test]
    fn auto_resolution_is_memoized_per_shape_in_the_plan_cache() {
        let svc = small_service(1);
        // Same shape, different literals: one compile, one ranking.
        for v in ["jane", "john", "nobody"] {
            let twig = parse_xpath(&format!("//author[fn='{v}']")).unwrap();
            let a = svc.submit(&twig, Strategy::Auto).unwrap().wait().unwrap();
            assert!(!a.strategy.is_auto());
        }
        let stats = svc.stats();
        assert_eq!(stats.plan_cache.misses, 1, "one shape compiled once");
        assert_eq!(stats.plan_cache.hits, 2);
        assert_eq!(stats.costs.iter().map(|c| c.auto_picks).sum::<u64>(), 3);
        svc.shutdown();
    }

    #[test]
    fn auto_requires_some_built_strategy() {
        let svc = TwigService::build(
            fig1_book_document(),
            EngineOptions {
                strategies: vec![Strategy::Asr],
                pool_pages: 256,
                ..Default::default()
            },
            ServiceOptions { workers: 1, ..Default::default() },
        );
        let twig = parse_xpath("//author").unwrap();
        // Auto is accepted whenever anything is built, and resolves
        // within the built subset.
        let a = svc.submit(&twig, Strategy::Auto).unwrap().wait().unwrap();
        assert_eq!(a.strategy, Strategy::Asr);
        assert_eq!(a.ids.len(), 3);
        svc.shutdown();
    }

    #[test]
    fn memoized_auto_pick_survives_rebuilds_that_drop_the_picked_strategy() {
        // The plan cache memoizes the optimizer's pick per shape; a
        // rebuild may swap in an engine without that strategy. The
        // stale pick must re-resolve against the live engine — never
        // reach an unbuilt structure (whose accessor would panic and
        // permanently kill the worker thread).
        let svc = small_service(1);
        let twig = parse_xpath("//author[fn='jane']").unwrap();
        let first = svc.submit(&twig, Strategy::Auto).unwrap().wait().unwrap();
        let picked = first.strategy;
        assert!(!picked.is_auto());
        // Rebuild with every strategy EXCEPT the memoized pick.
        let remaining: Vec<Strategy> =
            Strategy::ALL.iter().copied().filter(|s| *s != picked).collect();
        svc.rebuild_parallel(
            EngineOptions { strategies: remaining.clone(), pool_pages: 256, ..Default::default() },
            2,
        );
        let after = svc.submit(&twig, Strategy::Auto).unwrap().wait().unwrap();
        assert!(remaining.contains(&after.strategy), "re-resolved within the new subset");
        assert_eq!(*after.ids, *first.ids);
        // The worker survived and keeps serving.
        let alive = svc.submit(&twig, Strategy::Auto).unwrap().wait().unwrap();
        assert_eq!(*alive.ids, *first.ids);
        svc.shutdown();
    }

    #[test]
    fn batch_accepts_auto() {
        let svc = small_service(2);
        let twigs: Vec<TwigPattern> = ["//author[fn='jane']/ln", "//author[fn='jane']"]
            .iter()
            .map(|q| parse_xpath(q).unwrap())
            .collect();
        let answers = svc.submit_batch(&twigs, Strategy::Auto).unwrap().wait().unwrap();
        assert_eq!(answers.len(), 2);
        for (t, a) in twigs.iter().zip(&answers) {
            assert!(!a.strategy.is_auto());
            let expected = svc.with_engine(|e| e.answer(t, Strategy::RootPaths).ids);
            assert_eq!(*a.ids, expected, "{t}");
        }
        svc.shutdown();
    }

    #[test]
    fn strategy_not_built_is_rejected_at_submit() {
        let svc = TwigService::build(
            fig1_book_document(),
            EngineOptions {
                strategies: vec![Strategy::RootPaths],
                pool_pages: 256,
                ..Default::default()
            },
            ServiceOptions { workers: 1, ..Default::default() },
        );
        let twig = parse_xpath("//author").unwrap();
        assert_eq!(
            svc.submit(&twig, Strategy::Edge).err(),
            Some(ServiceError::StrategyNotBuilt(Strategy::Edge))
        );
        assert!(svc.submit(&twig, Strategy::RootPaths).is_ok());
        svc.shutdown();
    }

    /// The §7 maintenance ops the update tests insert: one new author
    /// path with `fn='ada'` (author node id 900).
    fn ada_ops(svc: &TwigService) -> Vec<UpdateOp> {
        let tags: Vec<TagId> = svc.with_engine(|engine| {
            let dict = engine.forest().dict();
            ["book", "allauthors", "author", "fn"].iter().map(|t| dict.lookup(t).unwrap()).collect()
        });
        vec![
            UpdateOp::InsertPath { tags: tags[..3].to_vec(), ids: vec![1, 5, 900], value: None },
            UpdateOp::InsertPath { tags, ids: vec![1, 5, 900, 901], value: Some("ada".into()) },
        ]
    }

    #[test]
    fn update_bumps_generation_and_invalidates_results() {
        let svc = small_service(2);
        let twig = parse_xpath("//author[fn='ada']").unwrap();
        let before = svc.submit(&twig, Strategy::RootPaths).unwrap().wait().unwrap();
        assert!(before.ids.is_empty());
        let ops = ada_ops(&svc);
        assert_eq!(svc.apply_update(ops), 1);
        assert_eq!(svc.generation(), 1);
        let after = svc.submit(&twig, Strategy::RootPaths).unwrap().wait().unwrap();
        assert!(!after.from_cache, "stale cached empty answer must not be served");
        assert_eq!(after.ids.iter().copied().collect::<Vec<_>>(), vec![900]);
        assert_eq!(svc.stats().result_cache.invalidated, 1);
        assert_eq!(svc.stats().journal_ops, 2);
        svc.shutdown();
    }

    #[test]
    fn delete_op_reverts_an_insert_on_every_maintainable_structure() {
        let svc = small_service(1);
        let ops = ada_ops(&svc);
        svc.apply_update(ops.clone());
        let twig = parse_xpath("//author[fn='ada']").unwrap();
        for s in [Strategy::RootPaths, Strategy::DataPaths] {
            assert_eq!(svc.submit(&twig, s).unwrap().wait().unwrap().ids.len(), 1, "{s}");
        }
        let deletes: Vec<UpdateOp> = ops
            .into_iter()
            .rev()
            .map(|op| match op {
                UpdateOp::InsertPath { tags, ids, value } => {
                    UpdateOp::DeletePath { tags, ids, value }
                }
                UpdateOp::DeletePath { .. } => unreachable!(),
            })
            .collect();
        assert_eq!(svc.apply_update(deletes), 2);
        for s in [Strategy::RootPaths, Strategy::DataPaths] {
            assert!(svc.submit(&twig, s).unwrap().wait().unwrap().ids.is_empty(), "{s}");
        }
        svc.shutdown();
    }

    #[test]
    fn rebuild_replays_the_journal_so_no_update_is_lost() {
        // The lost-update bug this PR fixes: a rebuild re-reads the
        // static forest, which knows nothing of index-only updates. The
        // journal replay must restore every committed op — including
        // ops committed *before* the rebuild started.
        let svc = small_service(2);
        svc.apply_update(ada_ops(&svc));
        let twig = parse_xpath("//author[fn='ada']").unwrap();
        svc.rebuild_parallel(EngineOptions { pool_pages: 256, ..Default::default() }, 2);
        let stats = svc.stats();
        assert_eq!(stats.rebuilds, 1);
        assert_eq!(stats.replayed_ops, 2, "full journal replayed onto the fresh engine");
        for s in [Strategy::RootPaths, Strategy::DataPaths] {
            let a = svc.submit(&twig, s).unwrap().wait().unwrap();
            assert_eq!(
                a.ids.iter().copied().collect::<Vec<_>>(),
                vec![900],
                "{s}: update survived the rebuild"
            );
        }
        // A second rebuild replays the (still-retained) journal again.
        svc.rebuild_parallel(EngineOptions { pool_pages: 256, ..Default::default() }, 2);
        assert_eq!(svc.stats().replayed_ops, 4);
        let again = svc.submit(&twig, Strategy::RootPaths).unwrap().wait().unwrap();
        assert_eq!(again.ids.len(), 1);
        svc.shutdown();
    }

    #[test]
    fn pinned_snapshot_stays_consistent_while_updates_publish() {
        // A reader holding an epoch must not observe an update that
        // commits while it reads — and must not block the writer.
        let svc = Arc::new(small_service(2));
        let twig = parse_xpath("//author[fn='ada']").unwrap();
        let ops = ada_ops(&svc);
        let (entered_tx, entered_rx) = std::sync::mpsc::channel::<()>();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let reader = {
            let svc = svc.clone();
            let twig = twig.clone();
            std::thread::spawn(move || {
                svc.with_engine(|engine| {
                    entered_tx.send(()).unwrap();
                    // Hold the snapshot open until the writer commits.
                    release_rx.recv().unwrap();
                    engine.answer(&twig, Strategy::RootPaths).ids.len()
                })
            })
        };
        entered_rx.recv().unwrap();
        // The writer publishes while the reader's snapshot is open —
        // if readers held a lock, this would deadlock.
        svc.apply_update(ops);
        assert_eq!(svc.generation(), 1);
        release_tx.send(()).unwrap();
        let seen = reader.join().unwrap();
        assert_eq!(seen, 0, "pinned snapshot predates the update");
        // A fresh pin sees the committed update.
        let now = svc.with_engine(|e| e.answer(&twig, Strategy::RootPaths).ids.len());
        assert_eq!(now, 1);
        Arc::try_unwrap(svc).map(TwigService::shutdown).ok().unwrap();
    }

    #[test]
    fn persist_folds_overlay_updates_into_the_file() {
        let dir = std::env::temp_dir().join(format!("xtwig-svc-fold-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("folded.xtwig");
        let svc = small_service(1);
        svc.apply_update(ada_ops(&svc));
        let report = svc.persist(&path).unwrap();
        assert!(report.file_bytes > 0);
        assert_eq!(svc.stats().folds, 1);
        svc.shutdown();
        // Reopen: the update is part of the base image now.
        let reopened = TwigService::open(&path, ServiceOptions::default()).unwrap();
        let twig = parse_xpath("//author[fn='ada']").unwrap();
        for s in [Strategy::RootPaths, Strategy::DataPaths] {
            let a = reopened.submit(&twig, s).unwrap().wait().unwrap();
            assert_eq!(a.ids.iter().copied().collect::<Vec<_>>(), vec![900], "{s}");
        }
        reopened.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rebuild_swaps_engine_and_invalidates_results() {
        let svc = small_service(2);
        let twig = parse_xpath("//author[fn='jane']").unwrap();
        let before = svc.submit(&twig, Strategy::RootPaths).unwrap().wait().unwrap();
        assert_eq!(before.ids.len(), 2);
        // Cached now; a rebuild must stale the cache even though the
        // answer set is unchanged (the indexes were reconstructed).
        svc.rebuild_parallel(EngineOptions { pool_pages: 256, ..Default::default() }, 4);
        assert_eq!(svc.generation(), 1);
        assert_eq!(svc.stats().rebuilds, 1);
        let after = svc.submit(&twig, Strategy::RootPaths).unwrap().wait().unwrap();
        assert!(!after.from_cache, "rebuild must invalidate cached results");
        assert_eq!(*after.ids, *before.ids);
        svc.shutdown();
    }

    #[test]
    fn rebuild_can_change_the_strategy_set() {
        let svc = TwigService::build(
            fig1_book_document(),
            EngineOptions {
                strategies: vec![Strategy::RootPaths],
                pool_pages: 256,
                ..Default::default()
            },
            ServiceOptions { workers: 2, ..Default::default() },
        );
        let twig = parse_xpath("//author").unwrap();
        assert!(svc.submit(&twig, Strategy::DataPaths).is_err());
        svc.rebuild_parallel(
            EngineOptions {
                strategies: vec![Strategy::RootPaths, Strategy::DataPaths],
                pool_pages: 256,
                ..Default::default()
            },
            2,
        );
        let a = svc.submit(&twig, Strategy::DataPaths).unwrap().wait().unwrap();
        assert_eq!(a.ids.len(), 3);
        // Dropping a strategy makes it unavailable again.
        svc.rebuild_parallel(
            EngineOptions {
                strategies: vec![Strategy::RootPaths],
                pool_pages: 256,
                ..Default::default()
            },
            2,
        );
        assert_eq!(
            svc.submit(&twig, Strategy::DataPaths).err(),
            Some(ServiceError::StrategyNotBuilt(Strategy::DataPaths))
        );
        svc.shutdown();
    }

    #[test]
    fn queued_query_against_dropped_strategy_cannot_kill_the_worker() {
        // TOCTOU guard: a query can pass submit's availability check,
        // queue, and only reach a worker after a rebuild dropped its
        // strategy. The worker must resolve it (StrategyNotBuilt) via
        // the engine recheck — never touch the unbuilt structure, whose
        // accessor would panic and permanently kill the worker thread.
        let both = || EngineOptions {
            strategies: vec![Strategy::RootPaths, Strategy::DataPaths],
            pool_pages: 256,
            ..Default::default()
        };
        let svc = TwigService::over(
            QueryEngine::build(Arc::new(fig1_book_document()), both()),
            ServiceOptions { workers: 1, result_cache_capacity: 0, ..Default::default() },
        );
        // Occupy the single worker so the DP query sits in the queue.
        let filler: Vec<TwigPattern> =
            (0..64).map(|_| parse_xpath("//section/head").unwrap()).collect();
        let batch = svc.submit_batch(&filler, Strategy::RootPaths).unwrap();
        let twig = parse_xpath("//author").unwrap();
        let queued = svc.submit(&twig, Strategy::DataPaths).unwrap();
        // Drop DataPaths while the query is (likely still) queued.
        svc.rebuild_parallel(
            EngineOptions {
                strategies: vec![Strategy::RootPaths],
                pool_pages: 256,
                ..Default::default()
            },
            2,
        );
        match queued.wait() {
            // Worker dequeued after the swap: rejected by the recheck.
            Err(ServiceError::StrategyNotBuilt(Strategy::DataPaths)) => {}
            // Worker won the race and executed against the old engine.
            Ok(a) => assert_eq!(a.ids.len(), 3),
            Err(e) => panic!("unexpected error {e}"),
        }
        batch.wait().unwrap();
        // Either way the worker must still be alive and serving.
        let alive = svc.submit(&twig, Strategy::RootPaths).unwrap().wait().unwrap();
        assert_eq!(alive.ids.len(), 3);
        svc.shutdown();
    }

    #[test]
    fn queries_keep_serving_across_concurrent_rebuilds() {
        // Readers and rebuilds interleave: every answer must come from
        // either the old or the new engine — both correct — and nothing
        // deadlocks or errors.
        let svc = Arc::new(small_service(3));
        let twig = parse_xpath("/book[title='XML']//author[fn='jane'][ln='doe']").unwrap();
        let expected = svc.submit(&twig, Strategy::RootPaths).unwrap().wait().unwrap().ids;
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let rebuilder = {
            let svc = svc.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    svc.rebuild_parallel(
                        EngineOptions { pool_pages: 256, ..Default::default() },
                        3,
                    );
                }
            })
        };
        for _ in 0..60 {
            let a = svc.submit(&twig, Strategy::RootPaths).unwrap().wait().unwrap();
            assert_eq!(*a.ids, *expected);
        }
        stop.store(true, Ordering::SeqCst);
        rebuilder.join().unwrap();
        assert!(svc.stats().rebuilds >= 1);
        match Arc::try_unwrap(svc) {
            Ok(svc) => svc.shutdown(),
            Err(_) => panic!("service still shared"),
        }
    }

    #[test]
    fn batch_resolves_in_order_and_dedupes_probes() {
        let svc = small_service(2);
        // Distinct queries (identical ones would hit the result cache
        // before reaching the engine) sharing the //author/fn='jane'
        // PCsubpath: the batch memo answers it once.
        let twigs: Vec<TwigPattern> = ["//author[fn='jane']/ln", "//author[fn='jane']"]
            .iter()
            .map(|q| parse_xpath(q).unwrap())
            .collect();
        let answers = svc.submit_batch(&twigs, Strategy::RootPaths).unwrap().wait().unwrap();
        assert_eq!(answers.len(), 2);
        let sequential: Vec<_> = svc
            .with_engine(|e| twigs.iter().map(|t| e.answer(t, Strategy::RootPaths).ids).collect());
        for (a, s) in answers.iter().zip(&sequential) {
            assert_eq!(*a.ids, *s);
        }
        let stats = svc.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batch_queries, 2);
        assert!(stats.memo_hits > 0, "shared subpath memoized across the batch");
        // Batch members count as queries on both sides of the ledger.
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, stats.submitted);
        svc.shutdown();
    }

    #[test]
    fn expired_deadline_rejects_queued_query() {
        let svc = small_service(1);
        // A deadline already in the past when the worker dequeues.
        let twig = parse_xpath("//author").unwrap();
        let t = svc.submit_with_deadline(&twig, Strategy::RootPaths, Some(Duration::ZERO)).unwrap();
        match t.wait() {
            Err(ServiceError::DeadlineExceeded) => {
                assert_eq!(svc.stats().deadline_missed, 1);
            }
            Ok(_) => {
                // Scheduling race: the worker dequeued within the same
                // instant. Either outcome is legal; an answer must be
                // correct though.
            }
            Err(e) => panic!("unexpected error {e}"),
        }
        svc.shutdown();
    }

    #[test]
    fn wait_timeout_leaves_ticket_usable() {
        let svc = small_service(1);
        let twig = parse_xpath("//author").unwrap();
        let t = svc.submit(&twig, Strategy::RootPaths).unwrap();
        // Whether or not the first bounded wait wins the race, a
        // follow-up wait must deliver the answer exactly once.
        let first = t.wait_timeout(Duration::from_millis(200));
        match first {
            Some(r) => assert!(!r.unwrap().ids.is_empty()),
            None => assert!(!t.wait().unwrap().ids.is_empty()),
        }
        svc.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_work_and_rejects_new() {
        let svc = small_service(2);
        let twig = parse_xpath("//section/head").unwrap();
        let tickets: Vec<Ticket> =
            (0..32).map(|_| svc.submit(&twig, Strategy::Edge).unwrap()).collect();
        svc.shutdown();
        for t in tickets {
            let a = t.wait().expect("queued work drains during graceful shutdown");
            assert!(!a.ids.is_empty());
        }
    }

    #[test]
    fn metrics_text_and_slow_query_log() {
        let svc = TwigService::build(
            fig1_book_document(),
            EngineOptions { pool_pages: 256, ..Default::default() },
            ServiceOptions {
                workers: 1,
                // Zero threshold: every executed query is "slow".
                slow_query_micros: Some(0),
                slow_query_capacity: 4,
                ..Default::default()
            },
        );
        let twig = parse_xpath("//author[fn='jane']").unwrap();
        svc.submit(&twig, Strategy::RootPaths).unwrap().wait().unwrap();
        let text = svc.metrics_text();
        assert!(text.contains("xtwig_queries_completed_total 1"), "{text}");
        assert!(text.contains("xtwig_strategy_executed_total{strategy=\"RP\"} 1"));
        assert!(text.contains("xtwig_pool_page_reads_total{pool=\"rootpaths\"}"));
        assert!(text.contains("xtwig_query_latency_micros_bucket{strategy=\"RP\",le=\"+Inf\"} 1"));
        assert!(text.contains("xtwig_shape_queries_total{shape="));
        assert!(text.contains("xtwig_slow_queries_total 1"));
        let slow = svc.slow_queries();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].strategy, Strategy::RootPaths);
        assert_eq!(slow[0].generation, 0);
        assert!(slow[0].spans.contains("execute"), "{}", slow[0].spans);
        assert!(slow[0].query.contains("author"));
        // A cache hit does no index work: not slow, not re-counted.
        svc.submit(&twig, Strategy::RootPaths).unwrap().wait().unwrap();
        assert_eq!(svc.slow_queries().len(), 1);
        svc.shutdown();
    }

    /// Panics a thread while it holds `mutex`-like state guarded by
    /// `lock`, leaving the lock poisoned for every later acquirer.
    fn poison_by_panicking_holder<T: Send + Sync + 'static>(
        target: Arc<T>,
        hold: impl Fn(&T) + Send + 'static,
    ) {
        let handle = std::thread::spawn(move || {
            hold(&target);
        });
        assert!(handle.join().is_err(), "holder thread must panic to poison the lock");
    }

    #[test]
    fn poisoned_slot_lock_still_resolves_waiters() {
        let slot = Slot::new();
        poison_by_panicking_holder(slot.clone(), |slot| {
            let _guard = slot.state.lock().unwrap();
            panic!("poison the slot state lock");
        });
        assert!(slot.state.lock().is_err(), "lock must actually be poisoned");
        // Resolve and wait both cross the poisoned lock without
        // panicking — the waiter gets its answer, not a propagated
        // poison panic.
        slot.resolve(Ok(Vec::new()));
        assert!(slot.wait().is_ok());
    }

    #[test]
    fn poisoned_queue_lock_still_serves_queries() {
        let svc = small_service(2);
        poison_by_panicking_holder(svc.queue.clone(), |queue| {
            let _guard = queue.inner.lock().unwrap();
            panic!("poison the job queue lock");
        });
        assert!(svc.queue.inner.lock().is_err(), "lock must actually be poisoned");
        // The connection path — submit, worker pop, resolve — still
        // works end to end across the poisoned mutex.
        let twig = parse_xpath("/book[title='XML']//author[fn='jane'][ln='doe']").unwrap();
        let answer = svc.submit(&twig, Strategy::RootPaths).unwrap().wait().unwrap();
        assert_eq!(answer.ids.len(), 1);
        // Shutdown also crosses the poisoned lock (close + drain).
        svc.shutdown();
    }

    #[test]
    fn dropped_service_cancels_nothing_silently() {
        // Drop without explicit shutdown must still drain (Drop calls
        // do_shutdown) — tickets all resolve.
        let twig = parse_xpath("//title").unwrap();
        let tickets: Vec<Ticket> = {
            let svc = small_service(2);
            (0..8).map(|_| svc.submit(&twig, Strategy::RootPaths).unwrap()).collect()
            // svc dropped here
        };
        for t in tickets {
            assert!(t.wait().is_ok());
        }
    }
}
