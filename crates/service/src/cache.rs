//! Plan and result caches for the query service.
//!
//! Both caches are internally synchronized (one short-held mutex each)
//! so workers use them through `&self` while holding the engine's read
//! lock; neither ever calls back into the engine while locked, so lock
//! order is trivially acyclic.

use crate::shape::shape_key;
use parking_lot::Mutex;
use std::borrow::Borrow;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xtwig_core::decompose::{CompiledTwig, UnknownTag};
use xtwig_core::plan::{PlanKind, QueryPlan};
use xtwig_core::{QueryEngine, Strategy};
use xtwig_xml::{TwigPattern, XmlForest};

/// Hit/miss counters shared by both caches.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through.
    pub misses: u64,
    /// Entries discarded because their generation went stale (result
    /// cache only).
    pub invalidated: u64,
}

impl CacheStats {
    /// Hit fraction in [0, 1]; 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

/// Shape-keyed cache of compiled plans.
///
/// A hit skips `decompose`/`choose_plan` entirely: the cached cover is
/// rebound onto the incoming twig (literals re-read, structure reused).
/// The plan itself is the one chosen for the first-seen literals —
/// parameterized-plan semantics, like a relational engine's statement
/// cache. The same semantics extend to cost-based strategy selection:
/// an entry memoizes the [`Strategy::Auto`] resolution for its shape,
/// so repeated auto submissions rank the strategies once and every
/// later query of the shape keys its cached results on the resolved
/// *concrete* strategy. Plans never go stale under the §7 updates path
/// (decomposition depends on the tag dictionary, not the data), so
/// there is no generation here. Capacity overflow evicts the
/// oldest-inserted shape (FIFO — misses only cost a recompile, so
/// recency tracking on the hit path isn't worth its bookkeeping).
pub struct PlanCache {
    inner: Mutex<PlanCacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    enabled: bool,
    capacity: usize,
}

/// One cached shape: the compiled cover and plan, plus the memoized
/// optimizer pick for `Strategy::Auto` submissions of this shape
/// (resolved lazily, from the first-seen literals). The pick is
/// revalidated against the live engine on every use — a
/// `rebuild_parallel` may swap in an engine whose strategy set no
/// longer contains it, and a stale pick must re-resolve rather than
/// reach an unbuilt structure (whose accessor would panic the worker).
struct PlanEntry {
    compiled: CompiledTwig,
    plan: QueryPlan,
    auto_pick: Mutex<Option<Strategy>>,
}

struct PlanCacheInner {
    map: HashMap<String, Arc<PlanEntry>>,
    /// Insertion order, oldest first (FIFO eviction).
    order: VecDeque<String>,
}

impl PlanCache {
    /// A cache holding at most `capacity` shapes; disabled when
    /// `enabled` is false (every compile goes to the engine).
    pub fn new(enabled: bool, capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(PlanCacheInner { map: HashMap::new(), order: VecDeque::new() }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            enabled,
            capacity: capacity.max(1),
        }
    }

    /// Compiles `twig` through the cache.
    pub fn compile<F: Borrow<XmlForest>>(
        &self,
        engine: &QueryEngine<F>,
        twig: &TwigPattern,
    ) -> Result<(CompiledTwig, QueryPlan), UnknownTag> {
        if !self.enabled {
            return engine.compile(twig);
        }
        let entry = self.entry(engine, twig)?;
        let compiled = entry.compiled.rebind(twig);
        let plan = entry.plan.rebind(&compiled);
        Ok((compiled, plan))
    }

    /// [`PlanCache::compile`] plus strategy resolution: `Auto` resolves
    /// through the shape's memoized optimizer pick (computed once from
    /// the first-seen literals — the same parameterized-plan semantics
    /// the plan itself uses), concrete strategies pass through. The
    /// returned strategy is always concrete, so callers key their
    /// result caches on it.
    pub fn compile_resolved<F: Borrow<XmlForest>>(
        &self,
        engine: &QueryEngine<F>,
        twig: &TwigPattern,
        strategy: Strategy,
    ) -> Result<(CompiledTwig, QueryPlan, Strategy), UnknownTag> {
        if !self.enabled {
            let (compiled, plan) = engine.compile(twig)?;
            let resolved = engine.resolve_strategy(strategy, &compiled, &plan);
            return Ok((compiled, plan, resolved));
        }
        let entry = self.entry(engine, twig)?;
        let compiled = entry.compiled.rebind(twig);
        let plan = entry.plan.rebind(&compiled);
        let resolved = if strategy.is_auto() {
            let mut pick = entry.auto_pick.lock();
            match *pick {
                // A memoized pick is only trusted while the current
                // engine still has it built.
                Some(s) if engine.has_strategy(s) => s,
                _ => {
                    let s = engine.resolve_strategy(Strategy::Auto, &entry.compiled, &entry.plan);
                    *pick = Some(s);
                    s
                }
            }
        } else {
            strategy
        };
        Ok((compiled, plan, resolved))
    }

    /// The cached entry for `twig`'s shape, compiling and admitting it
    /// on a miss.
    fn entry<F: Borrow<XmlForest>>(
        &self,
        engine: &QueryEngine<F>,
        twig: &TwigPattern,
    ) -> Result<Arc<PlanEntry>, UnknownTag> {
        let key = shape_key(twig);
        let cached = self.inner.lock().map.get(&key).cloned();
        if let Some(entry) = cached {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(entry);
        }
        let (compiled, plan) = engine.compile(twig)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(PlanEntry { compiled, plan, auto_pick: Mutex::new(None) });
        let mut inner = self.inner.lock();
        if let Some(existing) = inner.map.get(&key) {
            // A racing worker admitted the shape first; share its entry
            // (and its memoized pick).
            return Ok(existing.clone());
        }
        inner.map.insert(key.clone(), entry.clone());
        inner.order.push_back(key);
        while inner.map.len() > self.capacity {
            // `order` tracks every entry; an empty queue here would mean
            // the invariant broke, and stopping eviction (a bounded
            // overshoot) beats panicking on a serving path.
            let Some(victim) = inner.order.pop_front() else { break };
            inner.map.remove(&victim);
        }
        Ok(entry)
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidated: 0,
        }
    }

    /// Number of cached shapes.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when no shape is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

/// One cached answer.
struct CachedResult {
    ids: Arc<BTreeSet<u64>>,
    plan: PlanKind,
    /// Index generation the answer was computed under (read *before*
    /// execution, so an update racing with the computation stales it).
    generation: u64,
    /// Recency stamp; also the entry's key in the LRU order map.
    stamp: u64,
}

/// LRU cache of exact-query answers with generation-based invalidation.
///
/// An entry is valid only while the service generation equals the one
/// captured before computing it; [`crate::TwigService::apply_update`]
/// bumps the generation, which lazily evicts every older entry on its
/// next lookup. Recency is a `BTreeMap<stamp, key>` alongside the entry
/// map: touch = move to a fresh stamp, evict = pop the smallest stamp.
pub struct ResultCache {
    inner: Mutex<ResultCacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
    capacity: usize,
}

struct ResultCacheInner {
    map: HashMap<(String, Strategy), CachedResult>,
    lru: BTreeMap<u64, (String, Strategy)>,
    clock: u64,
}

impl ResultCache {
    /// A cache of at most `capacity` answers; 0 disables caching.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(ResultCacheInner {
                map: HashMap::new(),
                lru: BTreeMap::new(),
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            capacity,
        }
    }

    /// Looks up an answer valid at `generation`; touches it on hit.
    pub fn get(
        &self,
        key: &str,
        strategy: Strategy,
        generation: u64,
    ) -> Option<(Arc<BTreeSet<u64>>, PlanKind)> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut inner = self.inner.lock();
        let full_key = (key.to_owned(), strategy);
        match inner.map.get(&full_key) {
            Some(entry) if entry.generation == generation => {
                let (ids, plan, old_stamp) = (entry.ids.clone(), entry.plan, entry.stamp);
                inner.clock += 1;
                let stamp = inner.clock;
                inner.lru.remove(&old_stamp);
                inner.lru.insert(stamp, full_key.clone());
                if let Some(entry) = inner.map.get_mut(&full_key) {
                    entry.stamp = stamp;
                }
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((ids, plan))
            }
            Some(_) => {
                // Stale generation: drop the entry now rather than at
                // eviction time.
                if let Some(entry) = inner.map.remove(&full_key) {
                    inner.lru.remove(&entry.stamp);
                }
                self.invalidated.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts an answer computed under `generation`, evicting the
    /// least-recently-used entries beyond capacity.
    ///
    /// An insert never clobbers an entry carrying a **newer**
    /// generation: a slow worker that pinned epoch N finishing after a
    /// fast worker already cached the same query under N+1 must not
    /// replace the fresh answer with its stale one (which the next
    /// N+1 lookup would then serve as current).
    pub fn insert(
        &self,
        key: String,
        strategy: Strategy,
        ids: Arc<BTreeSet<u64>>,
        plan: PlanKind,
        generation: u64,
    ) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        let full_key = (key, strategy);
        if let Some(existing) = inner.map.get(&full_key) {
            if existing.generation > generation {
                return;
            }
        }
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some(old) =
            inner.map.insert(full_key.clone(), CachedResult { ids, plan, generation, stamp })
        {
            inner.lru.remove(&old.stamp);
        }
        inner.lru.insert(stamp, full_key);
        while inner.map.len() > self.capacity {
            // Same discipline as plan-cache eviction: if the LRU index
            // ever desynced, stop evicting instead of panicking.
            let Some((_, victim)) = inner.lru.pop_first() else { break };
            inner.map.remove(&victim);
        }
    }

    /// Hit/miss/invalidation counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
        }
    }

    /// Number of live entries (stale ones included until touched).
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests assert; unwrap is the assert
mod tests {
    use super::*;
    use xtwig_core::engine::EngineOptions;
    use xtwig_core::parse_xpath;
    use xtwig_xml::tree::fig1_book_document;

    fn ids(v: &[u64]) -> Arc<BTreeSet<u64>> {
        Arc::new(v.iter().copied().collect())
    }

    #[test]
    fn plan_cache_hits_on_shape_and_rebinds_literals() {
        let f = fig1_book_document();
        let engine =
            QueryEngine::build(&f, EngineOptions { pool_pages: 256, ..Default::default() });
        let cache = PlanCache::new(true, 64);
        let a = parse_xpath("//author[fn='jane']/ln").unwrap();
        let b = parse_xpath("//author[fn='john']/ln").unwrap();
        let (ca, _) = cache.compile(&engine, &a).unwrap();
        assert_eq!(cache.stats().misses, 1);
        let (cb, pb) = cache.compile(&engine, &b).unwrap();
        assert_eq!(cache.stats().hits, 1, "same shape must hit");
        // The rebind carried the new literal into the cover and plan.
        let valued: Vec<_> = cb.subpaths.iter().filter_map(|sp| sp.q.value.as_deref()).collect();
        assert_eq!(valued, vec!["john"]);
        assert_eq!(ca.subpaths.len(), cb.subpaths.len());
        for step in &pb.steps {
            if let Some(probe) = &step.probe {
                if let Some(v) = &probe.pattern.value {
                    assert_eq!(v, "john");
                }
            }
        }
        // Execution through the rebound pair matches direct answering.
        let direct = engine.answer(&b, Strategy::RootPaths);
        let rebound = engine.answer_compiled(&cb, &pb, Strategy::RootPaths);
        assert_eq!(direct.ids, rebound.ids);
    }

    #[test]
    fn plan_cache_evicts_oldest_shape_beyond_capacity() {
        let f = fig1_book_document();
        let engine =
            QueryEngine::build(&f, EngineOptions { pool_pages: 256, ..Default::default() });
        let cache = PlanCache::new(true, 2);
        for q in ["/book/title", "/book/year", "//author/fn"] {
            cache.compile(&engine, &parse_xpath(q).unwrap()).unwrap();
        }
        assert_eq!(cache.len(), 2, "capacity enforced by eviction, not by refusal");
        // The newest shape must be cached (FIFO evicted the oldest).
        cache.compile(&engine, &parse_xpath("//author/fn").unwrap()).unwrap();
        assert_eq!(cache.stats().hits, 1);
        // The evicted oldest shape recompiles — and is re-admitted.
        cache.compile(&engine, &parse_xpath("/book/title").unwrap()).unwrap();
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn disabled_plan_cache_always_misses_through_to_engine() {
        let f = fig1_book_document();
        let engine =
            QueryEngine::build(&f, EngineOptions { pool_pages: 256, ..Default::default() });
        let cache = PlanCache::new(false, 64);
        let a = parse_xpath("//author/fn").unwrap();
        cache.compile(&engine, &a).unwrap();
        cache.compile(&engine, &a).unwrap();
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn result_cache_lru_evicts_oldest_untouched() {
        let cache = ResultCache::new(2);
        cache.insert("a".into(), Strategy::RootPaths, ids(&[1]), PlanKind::Merge, 0);
        cache.insert("b".into(), Strategy::RootPaths, ids(&[2]), PlanKind::Merge, 0);
        // Touch "a" so "b" is LRU, then overflow.
        assert!(cache.get("a", Strategy::RootPaths, 0).is_some());
        cache.insert("c".into(), Strategy::RootPaths, ids(&[3]), PlanKind::Merge, 0);
        assert!(cache.get("b", Strategy::RootPaths, 0).is_none(), "b evicted");
        assert!(cache.get("a", Strategy::RootPaths, 0).is_some());
        assert!(cache.get("c", Strategy::RootPaths, 0).is_some());
    }

    #[test]
    fn result_cache_generation_invalidates() {
        let cache = ResultCache::new(8);
        cache.insert("q".into(), Strategy::DataPaths, ids(&[7]), PlanKind::Merge, 0);
        assert!(cache.get("q", Strategy::DataPaths, 0).is_some());
        assert!(cache.get("q", Strategy::DataPaths, 1).is_none(), "stale generation");
        assert_eq!(cache.stats().invalidated, 1);
        assert_eq!(cache.len(), 0, "stale entry dropped eagerly");
    }

    #[test]
    fn stale_generation_insert_never_clobbers_a_newer_entry() {
        // The lost-race the guard closes: worker A pins generation 0,
        // worker B pins generation 1 (post-update) and caches its
        // answer first; A's late insert must be dropped, or the next
        // generation-1 lookup would serve A's pre-update ids as fresh.
        let cache = ResultCache::new(8);
        cache.insert("q".into(), Strategy::RootPaths, ids(&[1, 2]), PlanKind::Merge, 1);
        cache.insert("q".into(), Strategy::RootPaths, ids(&[1]), PlanKind::Merge, 0);
        let (got, _) = cache.get("q", Strategy::RootPaths, 1).expect("fresh entry survives");
        assert_eq!(got.iter().copied().collect::<Vec<_>>(), vec![1, 2]);
        // And the stale result can never be served under generation 0
        // either — that generation is gone for good.
        assert!(cache.get("q", Strategy::RootPaths, 0).is_none());
    }

    #[test]
    fn same_generation_reinsert_still_updates_the_entry() {
        let cache = ResultCache::new(8);
        cache.insert("q".into(), Strategy::RootPaths, ids(&[1]), PlanKind::Merge, 3);
        cache.insert("q".into(), Strategy::RootPaths, ids(&[1]), PlanKind::IndexNestedLoop, 3);
        let (_, plan) = cache.get("q", Strategy::RootPaths, 3).unwrap();
        assert_eq!(plan, PlanKind::IndexNestedLoop);
        // A newer-generation insert replaces an older entry as before.
        cache.insert("q".into(), Strategy::RootPaths, ids(&[2]), PlanKind::Merge, 4);
        let (got, _) = cache.get("q", Strategy::RootPaths, 4).unwrap();
        assert_eq!(got.iter().copied().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn result_cache_keys_include_strategy() {
        let cache = ResultCache::new(8);
        cache.insert("q".into(), Strategy::RootPaths, ids(&[1]), PlanKind::Merge, 0);
        assert!(cache.get("q", Strategy::Edge, 0).is_none());
    }

    #[test]
    fn zero_capacity_disables_result_cache() {
        let cache = ResultCache::new(0);
        cache.insert("q".into(), Strategy::RootPaths, ids(&[1]), PlanKind::Merge, 0);
        assert!(cache.get("q", Strategy::RootPaths, 0).is_none());
        assert!(cache.is_empty());
    }
}
