//! Canonical cache keys for twig patterns.
//!
//! The plan cache is keyed by twig **shape**: the indexed node structure
//! (tags, axes, child edges), which nodes carry a value predicate, and
//! the output node — everything except the predicate *literals*. Two
//! twigs with equal shape keys are identical up to those literals, so
//! their node indices line up and one cached
//! (`CompiledTwig`, `QueryPlan`) pair serves both after
//! [`CompiledTwig::rebind`](xtwig_core::decompose::CompiledTwig::rebind).
//!
//! The result cache is keyed by the **exact** key: shape plus literals —
//! the full identity of a query's answer (for a fixed index generation).
//!
//! Keys serialize the `TwigPattern::nodes` array in index order rather
//! than any tree traversal: equality of the serialized form then implies
//! equality of the indexed representation itself, which is exactly the
//! contract value rebinding needs. (The parser produces deterministic
//! indices for a given XPath string, so textual resubmissions of the
//! same query — or of a same-shaped query with other constants — share
//! an entry.)

use std::fmt::Write as _;
use xtwig_xml::TwigPattern;

/// Shape key: structure + value-predicate positions, literals elided.
pub fn shape_key(twig: &TwigPattern) -> String {
    key(twig, false)
}

/// Exact key: shape plus the predicate literals.
pub fn exact_key(twig: &TwigPattern) -> String {
    key(twig, true)
}

fn key(twig: &TwigPattern, with_values: bool) -> String {
    let mut s = String::with_capacity(twig.nodes.len() * 16 + 8);
    let _ = write!(s, "{}@{}", twig.root_axis, twig.output);
    for node in &twig.nodes {
        // Debug formatting quotes and escapes, so tags or literals
        // containing the separator characters cannot forge a key.
        let _ = write!(s, ";{:?}", node.tag);
        match (&node.value, with_values) {
            (Some(v), true) => {
                let _ = write!(s, "={v:?}");
            }
            (Some(_), false) => s.push_str("=?"),
            (None, _) => {}
        }
        for (axis, c) in &node.children {
            let _ = write!(s, "|{axis}{c}");
        }
    }
    s
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests assert; unwrap is the assert
mod tests {
    use super::*;
    use xtwig_core::parse_xpath;

    #[test]
    fn same_shape_different_literals_share_a_shape_key() {
        let a = parse_xpath("/book[title='XML']//author[fn='jane']").unwrap();
        let b = parse_xpath("/book[title='SQL']//author[fn='john']").unwrap();
        assert_eq!(shape_key(&a), shape_key(&b));
        assert_ne!(exact_key(&a), exact_key(&b));
    }

    #[test]
    fn exact_key_is_stable_for_resubmission() {
        let a = parse_xpath("//author[fn='jane']/ln").unwrap();
        let b = parse_xpath("//author[fn='jane']/ln").unwrap();
        assert_eq!(exact_key(&a), exact_key(&b));
    }

    #[test]
    fn structure_differences_change_the_shape_key() {
        let shapes = [
            "/book/title",
            "//book/title",         // root axis differs
            "/book//title",         // inner axis differs
            "/book/title[. = 'x']", // value presence differs
            "/book[title]/year",    // output node differs from /book/title
            "/book/year",           // tag differs
        ];
        let keys: Vec<String> =
            shapes.iter().map(|q| shape_key(&parse_xpath(q).unwrap())).collect();
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "{} vs {}", shapes[i], shapes[j]);
            }
        }
    }

    #[test]
    fn hostile_tag_text_cannot_forge_separators() {
        use xtwig_xml::{Axis, TwigPattern};
        // A tag textually containing the separator syntax must not
        // collide with the structure it mimics.
        let mut a = TwigPattern::single(Axis::Child, "a", None);
        a.add_child(0, Axis::Child, "b|1", None);
        let mut b = TwigPattern::single(Axis::Child, "a", None);
        b.add_child(0, Axis::Child, "b", None);
        b.add_child(1, Axis::Child, "c", None);
        assert_ne!(shape_key(&a), shape_key(&b));
    }
}
