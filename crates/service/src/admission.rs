//! Admission control: a bounded in-flight query budget shared by every
//! submission path.
//!
//! The service used to accept unboundedly — a traffic spike queued
//! thousands of jobs behind a fixed worker pool, and every caller saw
//! worst-case latency while memory grew with the backlog. Admission
//! control converts that failure mode into fast, typed rejection:
//! [`Admission::try_acquire`] either hands back an RAII [`Permit`]
//! (released when the query resolves, however it resolves) or reports
//! the budget exhausted, which the service surfaces as
//! [`crate::ServiceError::Overloaded`] and the network front end as a
//! typed overload response the client can back off on.
//!
//! The budget counts *queries*, not jobs or connections: a batch of N
//! twigs takes N units, and a direct [`crate::TwigService::execute`]
//! call takes one, so queued and executing work draw from one pool no
//! matter which door it came in through.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A bounded in-flight budget. Cheap to share: one atomic counter, no
/// locks, no waiting — admission either succeeds immediately or fails
/// immediately (load shedding, not queueing; the queue is behind it).
#[derive(Debug)]
pub struct Admission {
    /// Maximum in-flight units; `0` disables the bound.
    limit: usize,
    in_flight: AtomicUsize,
    high_water: AtomicUsize,
    rejected: AtomicU64,
}

impl Admission {
    /// Creates a budget of `limit` in-flight units (`0` = unbounded).
    pub fn new(limit: usize) -> Arc<Admission> {
        Arc::new(Admission {
            limit,
            in_flight: AtomicUsize::new(0),
            high_water: AtomicUsize::new(0),
            rejected: AtomicU64::new(0),
        })
    }

    /// Tries to reserve `units` units of the budget. `None` means the
    /// budget is exhausted (the rejection is counted); a returned
    /// [`Permit`] releases its units on drop. Zero-unit requests are
    /// normalized to one — every admitted query costs something.
    pub fn try_acquire(self: &Arc<Self>, units: usize) -> Option<Permit> {
        let units = units.max(1);
        if self.limit == 0 {
            self.note_acquired(units);
            return Some(Permit { admission: self.clone(), units });
        }
        let mut current = self.in_flight.load(Ordering::Relaxed);
        loop {
            if current + units > self.limit {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            match self.in_flight.compare_exchange_weak(
                current,
                current + units,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.high_water.fetch_max(current + units, Ordering::Relaxed);
                    return Some(Permit { admission: self.clone(), units });
                }
                Err(seen) => current = seen,
            }
        }
    }

    fn note_acquired(&self, units: usize) {
        let now = self.in_flight.fetch_add(units, Ordering::AcqRel) + units;
        self.high_water.fetch_max(now, Ordering::Relaxed);
    }

    /// Units currently admitted and not yet released.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// The configured bound (`0` = unbounded).
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Highest concurrent in-flight count observed.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Acquisitions refused because the budget was exhausted.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

/// RAII reservation of in-flight units; dropping it releases them.
/// Permits ride inside jobs, so a query releases its units exactly when
/// it resolves — answered, errored, deadline-missed, or canceled.
#[derive(Debug)]
pub struct Permit {
    admission: Arc<Admission>,
    units: usize,
}

impl Permit {
    /// Units this permit holds.
    pub fn units(&self) -> usize {
        self.units
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.admission.in_flight.fetch_sub(self.units, Ordering::AcqRel);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests assert; unwrap is the assert
mod tests {
    use super::*;

    #[test]
    fn bounded_budget_rejects_at_the_limit_and_recovers() {
        let a = Admission::new(2);
        let p1 = a.try_acquire(1).unwrap();
        let p2 = a.try_acquire(1).unwrap();
        assert_eq!(a.in_flight(), 2);
        assert!(a.try_acquire(1).is_none(), "budget exhausted");
        assert_eq!(a.rejected(), 1);
        drop(p1);
        let p3 = a.try_acquire(1).expect("released unit is reusable");
        assert_eq!(a.in_flight(), 2);
        drop(p2);
        drop(p3);
        assert_eq!(a.in_flight(), 0);
        assert_eq!(a.high_water(), 2);
    }

    #[test]
    fn batch_units_draw_from_the_same_pool() {
        let a = Admission::new(4);
        let batch = a.try_acquire(3).unwrap();
        assert_eq!(batch.units(), 3);
        assert!(a.try_acquire(2).is_none(), "3 + 2 exceeds 4");
        let single = a.try_acquire(1).unwrap();
        assert_eq!(a.in_flight(), 4);
        drop(batch);
        drop(single);
        assert_eq!(a.in_flight(), 0);
    }

    #[test]
    fn zero_limit_is_unbounded_and_zero_units_cost_one() {
        let a = Admission::new(0);
        let permits: Vec<Permit> = (0..100).map(|_| a.try_acquire(0).unwrap()).collect();
        assert_eq!(a.in_flight(), 100, "zero-unit requests normalized to one");
        assert_eq!(a.rejected(), 0);
        drop(permits);
        assert_eq!(a.in_flight(), 0);
    }

    #[test]
    fn oversized_request_against_a_bounded_budget_is_rejected_outright() {
        let a = Admission::new(2);
        assert!(a.try_acquire(3).is_none(), "a request larger than the whole budget cannot fit");
        assert_eq!(a.in_flight(), 0);
    }

    #[test]
    fn concurrent_acquisition_never_exceeds_the_limit() {
        let a = Admission::new(8);
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let a = a.clone();
                let peak = peak.clone();
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        if let Some(p) = a.try_acquire(2) {
                            peak.fetch_max(a.in_flight(), Ordering::Relaxed);
                            drop(p);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::Relaxed) <= 8);
        assert_eq!(a.in_flight(), 0);
    }
}
