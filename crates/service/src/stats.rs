//! Service-level statistics: counters, queue gauges, and per-strategy
//! latency histograms, all lock-free atomics so the hot path never
//! blocks on bookkeeping.

use crate::cache::CacheStats;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;
use xtwig_core::{QueryMetrics, Strategy};

/// Power-of-two latency buckets: bucket `i` counts queries whose
/// latency in microseconds lies in `[2^(i-1), 2^i)` (bucket 0: < 1 µs).
const BUCKETS: usize = 26; // up to ~33 s, far beyond any twig query

struct StrategyLatency {
    count: AtomicU64,
    total_micros: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl StrategyLatency {
    fn new() -> Self {
        StrategyLatency {
            count: AtomicU64::new(0),
            total_micros: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, elapsed: Duration) {
        let micros = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (64 - micros.leading_zeros() as usize).min(BUCKETS - 1);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        // `bucket` is clamped to BUCKETS-1 above; the get() keeps the
        // recording path structurally panic-free anyway.
        if let Some(b) = self.buckets.get(bucket) {
            b.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn snapshot(&self, strategy: Strategy) -> LatencySnapshot {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = self.count.load(Ordering::Relaxed);
        let total = self.total_micros.load(Ordering::Relaxed);
        LatencySnapshot {
            strategy,
            count,
            total_micros: total,
            mean_micros: if count == 0 { 0.0 } else { total as f64 / count as f64 },
            p50_micros: percentile_upper_bound(&buckets, count, 0.50),
            p95_micros: percentile_upper_bound(&buckets, count, 0.95),
            buckets,
        }
    }
}

/// Cumulative execution-cost counters of one strategy: the per-answer
/// `QueryMetrics` the engine reports (probes, rows fetched, logical and
/// physical page reads), summed over every executed query, plus how
/// often the optimizer routed a [`Strategy::Auto`] submission here.
/// These make optimizer accuracy observable in production: divergence
/// between picks and measured physical reads shows up directly in the
/// stats JSON.
struct StrategyCost {
    executed: AtomicU64,
    auto_picks: AtomicU64,
    probes: AtomicU64,
    rows_fetched: AtomicU64,
    logical_reads: AtomicU64,
    physical_reads: AtomicU64,
}

impl StrategyCost {
    fn new() -> Self {
        StrategyCost {
            executed: AtomicU64::new(0),
            auto_picks: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            rows_fetched: AtomicU64::new(0),
            logical_reads: AtomicU64::new(0),
            physical_reads: AtomicU64::new(0),
        }
    }

    fn record(&self, metrics: &QueryMetrics) {
        self.executed.fetch_add(1, Ordering::Relaxed);
        self.probes.fetch_add(metrics.probes, Ordering::Relaxed);
        self.rows_fetched.fetch_add(metrics.rows_fetched, Ordering::Relaxed);
        self.logical_reads.fetch_add(metrics.logical_reads, Ordering::Relaxed);
        self.physical_reads.fetch_add(metrics.physical_reads, Ordering::Relaxed);
    }

    fn snapshot(&self, strategy: Strategy) -> StrategyCostSnapshot {
        StrategyCostSnapshot {
            strategy,
            executed: self.executed.load(Ordering::Relaxed),
            auto_picks: self.auto_picks.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            rows_fetched: self.rows_fetched.load(Ordering::Relaxed),
            logical_reads: self.logical_reads.load(Ordering::Relaxed),
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
        }
    }
}

/// Escapes a string for embedding in a double-quoted JSON string
/// literal: backslash, quote, and control characters. Prometheus label
/// values use the same escapes (`\\`, `\"`, `\n`), so the metrics
/// exposition shares this helper.
pub fn json_escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Upper bound (bucket boundary) of the requested percentile.
fn percentile_upper_bound(buckets: &[u64], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = (count as f64 * q).ceil() as u64;
    let mut seen = 0;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return 1u64 << i;
        }
    }
    1u64 << (buckets.len() - 1)
}

/// Internal live counters of a [`crate::TwigService`].
pub struct ServiceStats {
    pub(crate) submitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) deadline_missed: AtomicU64,
    pub(crate) updates: AtomicU64,
    pub(crate) rebuilds: AtomicU64,
    pub(crate) journal_ops: AtomicU64,
    pub(crate) replayed_ops: AtomicU64,
    pub(crate) folds: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batch_queries: AtomicU64,
    pub(crate) memo_hits: AtomicU64,
    pub(crate) memo_misses: AtomicU64,
    pub(crate) queue_depth: AtomicUsize,
    pub(crate) queue_high_water: AtomicUsize,
    latency: Vec<StrategyLatency>, // indexed by position in Strategy::ALL
    costs: Vec<StrategyCost>,      // indexed by position in Strategy::ALL
}

impl Default for ServiceStats {
    fn default() -> Self {
        ServiceStats {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            deadline_missed: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
            journal_ops: AtomicU64::new(0),
            replayed_ops: AtomicU64::new(0),
            folds: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_queries: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            queue_high_water: AtomicUsize::new(0),
            latency: Strategy::ALL.iter().map(|_| StrategyLatency::new()).collect(),
            costs: Strategy::ALL.iter().map(|_| StrategyCost::new()).collect(),
        }
    }
}

/// Maps a strategy to its parallel-array slot; `None` (rather than a
/// panic) for a strategy `Strategy::ALL` does not enumerate.
fn strategy_slot<T>(slots: &[T], strategy: Strategy) -> Option<&T> {
    Strategy::ALL.iter().position(|s| *s == strategy).and_then(|i| slots.get(i))
}

impl ServiceStats {
    /// Accounts one enqueued job carrying `queries` queries (batches
    /// count every member, so `submitted`/`completed`/`failed` share
    /// query units; the queue gauges count jobs).
    pub(crate) fn enqueue(&self, queries: u64) {
        self.submitted.fetch_add(queries, Ordering::Relaxed);
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    pub(crate) fn dequeue(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn record_latency(&self, strategy: Strategy, elapsed: Duration) {
        // A strategy outside `ALL` loses its sample instead of
        // panicking the recording thread; stats are best-effort.
        let Some(slot) = strategy_slot(&self.latency, strategy) else { return };
        slot.record(elapsed);
    }

    /// Accounts one executed answer's engine metrics against its
    /// (concrete) strategy.
    pub(crate) fn record_cost(&self, strategy: Strategy, metrics: &QueryMetrics) {
        let Some(slot) = strategy_slot(&self.costs, strategy) else { return };
        slot.record(metrics);
    }

    /// Accounts one `Strategy::Auto` submission the optimizer routed to
    /// `strategy`.
    pub(crate) fn record_auto_pick(&self, strategy: Strategy) {
        let Some(slot) = strategy_slot(&self.costs, strategy) else { return };
        slot.auto_picks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn latency_snapshots(&self) -> Vec<LatencySnapshot> {
        self.latency
            .iter()
            .zip(Strategy::ALL.iter())
            .filter(|(l, _)| l.count.load(Ordering::Relaxed) > 0)
            .map(|(l, s)| l.snapshot(*s))
            .collect()
    }

    pub(crate) fn cost_snapshots(&self) -> Vec<StrategyCostSnapshot> {
        self.costs
            .iter()
            .zip(Strategy::ALL.iter())
            .filter(|(c, _)| {
                c.executed.load(Ordering::Relaxed) > 0 || c.auto_picks.load(Ordering::Relaxed) > 0
            })
            .map(|(c, s)| c.snapshot(*s))
            .collect()
    }
}

/// Latency distribution of one strategy.
#[derive(Debug, Clone)]
pub struct LatencySnapshot {
    /// The strategy measured.
    pub strategy: Strategy,
    /// Queries executed (cache hits are not latency-measured).
    pub count: u64,
    /// Summed execution latency in microseconds.
    pub total_micros: u64,
    /// Mean execution latency in microseconds.
    pub mean_micros: f64,
    /// Median upper bound (power-of-two bucket boundary).
    pub p50_micros: u64,
    /// 95th-percentile upper bound.
    pub p95_micros: u64,
    /// Raw power-of-two bucket counts.
    pub buckets: Vec<u64>,
}

/// Cumulative execution-cost counters of one strategy.
#[derive(Debug, Clone, Copy)]
pub struct StrategyCostSnapshot {
    /// The strategy measured.
    pub strategy: Strategy,
    /// Queries executed against it (cache hits excluded — they do no
    /// index work).
    pub executed: u64,
    /// `Strategy::Auto` submissions the optimizer routed here.
    pub auto_picks: u64,
    /// Index probes issued.
    pub probes: u64,
    /// Match rows fetched.
    pub rows_fetched: u64,
    /// Buffer-pool page requests.
    pub logical_reads: u64,
    /// Pages read from the storage backend (cold portion).
    pub physical_reads: u64,
}

/// A point-in-time view of every service metric, renderable as JSON for
/// the bench harness.
#[derive(Debug, Clone)]
pub struct ServiceSnapshot {
    /// Queries accepted (single submissions plus batch members).
    pub submitted: u64,
    /// Queries answered successfully.
    pub completed: u64,
    /// Queries resolved with an error.
    pub failed: u64,
    /// Queries rejected for missing their deadline while queued.
    pub deadline_missed: u64,
    /// Index-maintenance transactions applied.
    pub updates: u64,
    /// Full engine rebuild-and-swap operations completed.
    pub rebuilds: u64,
    /// Update ops committed to the maintenance journal.
    pub journal_ops: u64,
    /// Journal ops replayed onto freshly rebuilt engines (cumulative
    /// across rebuilds — each rebuild replays the full journal).
    pub replayed_ops: u64,
    /// Persist calls that folded the copy-on-write overlay into a new
    /// base image.
    pub folds: u64,
    /// Batches executed.
    pub batches: u64,
    /// Queries submitted through batches.
    pub batch_queries: u64,
    /// FreeIndex probes answered from a batch memo.
    pub memo_hits: u64,
    /// FreeIndex probes a batch actually issued.
    pub memo_misses: u64,
    /// Jobs currently queued.
    pub queue_depth: usize,
    /// Highest queue depth observed.
    pub queue_high_water: usize,
    /// Queries currently admitted and not yet resolved (queued plus
    /// executing, across both dispatch doors).
    pub in_flight: usize,
    /// The configured admission bound (`0` = unbounded).
    pub admission_limit: usize,
    /// Submissions rejected by admission control.
    pub overloaded: u64,
    /// Current invalidation generation.
    pub generation: u64,
    /// Plan-cache counters.
    pub plan_cache: CacheStats,
    /// Result-cache counters.
    pub result_cache: CacheStats,
    /// Per-strategy execution latency (strategies with traffic only).
    pub latency: Vec<LatencySnapshot>,
    /// Per-strategy execution costs and optimizer picks (strategies
    /// with traffic only).
    pub costs: Vec<StrategyCostSnapshot>,
}

impl ServiceSnapshot {
    /// Renders the snapshot as a JSON object (hand-rolled: the build
    /// has no crates.io access for serde; schema is flat and stable).
    pub fn to_json(&self, indent: &str) -> String {
        let lat: Vec<String> = self
            .latency
            .iter()
            .map(|l| {
                format!(
                    "{indent}    {{\"strategy\": \"{}\", \"count\": {}, \"mean_micros\": {:.1}, \
                     \"p50_micros\": {}, \"p95_micros\": {}}}",
                    json_escape(&l.strategy.to_string()),
                    l.count,
                    l.mean_micros,
                    l.p50_micros,
                    l.p95_micros
                )
            })
            .collect();
        let costs: Vec<String> = self
            .costs
            .iter()
            .map(|c| {
                format!(
                    "{indent}    {{\"strategy\": \"{}\", \"executed\": {}, \"auto_picks\": {}, \
                     \"probes\": {}, \"rows_fetched\": {}, \"logical_reads\": {}, \
                     \"physical_reads\": {}}}",
                    json_escape(&c.strategy.to_string()),
                    c.executed,
                    c.auto_picks,
                    c.probes,
                    c.rows_fetched,
                    c.logical_reads,
                    c.physical_reads
                )
            })
            .collect();
        format!(
            "{indent}{{\n\
             {indent}  \"submitted\": {},\n\
             {indent}  \"completed\": {},\n\
             {indent}  \"failed\": {},\n\
             {indent}  \"deadline_missed\": {},\n\
             {indent}  \"updates\": {},\n\
             {indent}  \"rebuilds\": {},\n\
             {indent}  \"journal_ops\": {},\n\
             {indent}  \"replayed_ops\": {},\n\
             {indent}  \"folds\": {},\n\
             {indent}  \"batches\": {},\n\
             {indent}  \"batch_queries\": {},\n\
             {indent}  \"memo_hits\": {},\n\
             {indent}  \"memo_misses\": {},\n\
             {indent}  \"queue_depth\": {},\n\
             {indent}  \"queue_high_water\": {},\n\
             {indent}  \"in_flight\": {},\n\
             {indent}  \"admission_limit\": {},\n\
             {indent}  \"overloaded\": {},\n\
             {indent}  \"generation\": {},\n\
             {indent}  \"plan_cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}}},\n\
             {indent}  \"result_cache\": {{\"hits\": {}, \"misses\": {}, \"invalidated\": {}, \"hit_rate\": {:.4}}},\n\
             {indent}  \"latency\": [\n{}\n{indent}  ],\n\
             {indent}  \"costs\": [\n{}\n{indent}  ]\n\
             {indent}}}",
            self.submitted,
            self.completed,
            self.failed,
            self.deadline_missed,
            self.updates,
            self.rebuilds,
            self.journal_ops,
            self.replayed_ops,
            self.folds,
            self.batches,
            self.batch_queries,
            self.memo_hits,
            self.memo_misses,
            self.queue_depth,
            self.queue_high_water,
            self.in_flight,
            self.admission_limit,
            self.overloaded,
            self.generation,
            self.plan_cache.hits,
            self.plan_cache.misses,
            self.plan_cache.hit_rate(),
            self.result_cache.hits,
            self.result_cache.misses,
            self.result_cache.invalidated,
            self.result_cache.hit_rate(),
            lat.join(",\n"),
            costs.join(",\n"),
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests assert; unwrap is the assert
mod tests {
    use super::*;

    #[test]
    fn latency_buckets_and_percentiles() {
        let l = StrategyLatency::new();
        for micros in [1u64, 2, 3, 700, 900, 1_500] {
            l.record(Duration::from_micros(micros));
        }
        let s = l.snapshot(Strategy::RootPaths);
        assert_eq!(s.count, 6);
        assert!(s.mean_micros > 100.0);
        // p50 falls in the small buckets, p95 in the ~2ms bucket.
        assert!(s.p50_micros <= 16, "{}", s.p50_micros);
        assert!(s.p95_micros >= 1_024, "{}", s.p95_micros);
    }

    #[test]
    fn cost_counters_accumulate_per_strategy() {
        let stats = ServiceStats::default();
        let m = QueryMetrics {
            probes: 3,
            rows_fetched: 10,
            logical_reads: 7,
            physical_reads: 2,
            elapsed: Duration::from_micros(5),
        };
        stats.record_cost(Strategy::RootPaths, &m);
        stats.record_cost(Strategy::RootPaths, &m);
        stats.record_auto_pick(Strategy::RootPaths);
        stats.record_auto_pick(Strategy::Edge);
        let costs = stats.cost_snapshots();
        assert_eq!(costs.len(), 2, "only strategies with traffic appear");
        let rp = costs.iter().find(|c| c.strategy == Strategy::RootPaths).unwrap();
        assert_eq!(rp.executed, 2);
        assert_eq!(rp.auto_picks, 1);
        assert_eq!(rp.probes, 6);
        assert_eq!(rp.rows_fetched, 20);
        assert_eq!(rp.logical_reads, 14);
        assert_eq!(rp.physical_reads, 4);
        let edge = costs.iter().find(|c| c.strategy == Strategy::Edge).unwrap();
        assert_eq!(edge.executed, 0, "a pick that hit the result cache executes nothing");
        assert_eq!(edge.auto_picks, 1);
    }

    #[test]
    fn json_escape_handles_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape(r#"say "hi""#), r#"say \"hi\""#);
        assert_eq!(json_escape(r"a\b"), r"a\\b");
        assert_eq!(json_escape("line\nbreak\ttab\rcr"), "line\\nbreak\\ttab\\rcr");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        // Non-ASCII passes through unescaped (JSON strings are UTF-8).
        assert_eq!(json_escape("café→"), "café→");
    }

    #[test]
    fn snapshot_json_is_well_formed_enough() {
        let stats = ServiceStats::default();
        stats.record_latency(Strategy::Edge, Duration::from_micros(42));
        stats.record_cost(
            Strategy::Edge,
            &QueryMetrics {
                probes: 4,
                rows_fetched: 2,
                logical_reads: 9,
                physical_reads: 1,
                elapsed: Duration::from_micros(42),
            },
        );
        let snap = ServiceSnapshot {
            submitted: 1,
            completed: 1,
            failed: 0,
            deadline_missed: 0,
            updates: 0,
            rebuilds: 0,
            journal_ops: 0,
            replayed_ops: 0,
            folds: 0,
            batches: 0,
            batch_queries: 0,
            memo_hits: 0,
            memo_misses: 0,
            queue_depth: 0,
            queue_high_water: 1,
            in_flight: 0,
            admission_limit: 1024,
            overloaded: 0,
            generation: 0,
            plan_cache: CacheStats { hits: 1, misses: 1, invalidated: 0 },
            result_cache: CacheStats::default(),
            latency: stats.latency_snapshots(),
            costs: stats.cost_snapshots(),
        };
        let json = snap.to_json("");
        assert!(json.contains("\"plan_cache\""));
        assert!(json.contains("\"hit_rate\": 0.5000"));
        assert!(json.contains("\"strategy\": \"Edge\""));
        assert!(json.contains("\"costs\""));
        assert!(json.contains("\"auto_picks\": 0"));
        assert!(json.contains("\"physical_reads\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
