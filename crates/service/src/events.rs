//! Structured event journal for the serving layer.
//!
//! A bounded, sequence-numbered ring of typed events emitted from the
//! service, admission, catalog, and MVCC paths. Consumers (the `Events`
//! wire opcode, `xtwig top`, the metrics renderer) read the journal by
//! cursor: `since(after, max)` returns entries with `seq > after`, so a
//! client can tail the journal without the server tracking per-client
//! state. When the ring is full the oldest entry is dropped and a
//! `dropped` counter records the loss — a follower that sees a gap in
//! `seq` knows it fell behind.
//!
//! Emission cost is one short mutex hold (push + counter bump); with
//! sampling off, the serving hot path (`answer_one`) emits nothing, so
//! journal overhead stays out of query latency entirely.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Every kind string the journal can emit, in a stable order. Shared
/// with the metrics renderer so `xtwig_events_total{kind=...}` exposes
/// a complete (zero-initialised) family rather than only kinds that
/// happened to fire.
pub const EVENT_KINDS: &[&str] = &[
    "conn-open",
    "conn-close",
    "admission-rejected",
    "catalog-attached",
    "catalog-evicted",
    "update-committed",
    "rebuild-swapped",
    "persist-folded",
    "slow-query",
    "server-error",
];

/// One typed serving-layer event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A client connection was accepted.
    ConnOpen { peer: String },
    /// A client connection ended, with its lifetime accounting.
    ConnClose {
        peer: String,
        frames_in: u64,
        frames_out: u64,
        bytes_in: u64,
        bytes_out: u64,
        errors: u64,
    },
    /// Admission control turned a request away at the door.
    AdmissionRejected { in_flight: u64, limit: u64 },
    /// The catalog opened (attached) a persisted index.
    CatalogAttached { name: String },
    /// The catalog evicted an attached index to stay under its cap.
    CatalogEvicted { name: String },
    /// An update batch committed and published a new engine epoch.
    UpdateCommitted { generation: u64, ops: u64 },
    /// A background rebuild swapped in, after replaying the journal.
    RebuildSwapped { generation: u64, replayed_ops: u64 },
    /// The in-memory engine was folded to disk.
    PersistFolded { path: String },
    /// A query crossed the slow threshold; id + peer make it
    /// attributable to a wire request.
    SlowQuery { query: String, micros: u64, request_id: u64, peer: String },
    /// A server-side fault that did not kill the connection (e.g. a
    /// failed `set_read_timeout`).
    ServerError { detail: String },
}

impl Event {
    /// Stable kebab-case kind, used as the metrics label and the wire
    /// event discriminator.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::ConnOpen { .. } => "conn-open",
            Event::ConnClose { .. } => "conn-close",
            Event::AdmissionRejected { .. } => "admission-rejected",
            Event::CatalogAttached { .. } => "catalog-attached",
            Event::CatalogEvicted { .. } => "catalog-evicted",
            Event::UpdateCommitted { .. } => "update-committed",
            Event::RebuildSwapped { .. } => "rebuild-swapped",
            Event::PersistFolded { .. } => "persist-folded",
            Event::SlowQuery { .. } => "slow-query",
            Event::ServerError { .. } => "server-error",
        }
    }

    /// One-line human detail (no kind prefix, no timestamp).
    pub fn detail(&self) -> String {
        match self {
            Event::ConnOpen { peer } => format!("peer={peer}"),
            Event::ConnClose { peer, frames_in, frames_out, bytes_in, bytes_out, errors } => {
                format!(
                    "peer={peer} frames_in={frames_in} frames_out={frames_out} \
                     bytes_in={bytes_in} bytes_out={bytes_out} errors={errors}"
                )
            }
            Event::AdmissionRejected { in_flight, limit } => {
                format!("in_flight={in_flight} limit={limit}")
            }
            Event::CatalogAttached { name } => format!("index={name}"),
            Event::CatalogEvicted { name } => format!("index={name}"),
            Event::UpdateCommitted { generation, ops } => {
                format!("generation={generation} ops={ops}")
            }
            Event::RebuildSwapped { generation, replayed_ops } => {
                format!("generation={generation} replayed_ops={replayed_ops}")
            }
            Event::PersistFolded { path } => format!("path={path}"),
            Event::SlowQuery { query, micros, request_id, peer } => {
                format!("request_id={request_id} peer={peer} micros={micros} query={query}")
            }
            Event::ServerError { detail } => detail.clone(),
        }
    }
}

/// One journal entry: an event plus its position and wall-clock stamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Monotonic sequence number, starting at 1. Gaps (relative to a
    /// reader's cursor) mean the ring dropped entries.
    pub seq: u64,
    /// Microseconds since the Unix epoch at emission time.
    pub unix_micros: u64,
    pub event: Event,
}

impl JournalEntry {
    /// `#seq [kind] detail` — the text form used by `xtwig client
    /// events` and the access log.
    pub fn render_text(&self) -> String {
        format!("#{} [{}] {}", self.seq, self.event.kind(), self.event.detail())
    }

    /// Single-object JSON form (stable key order).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"seq\": {}, \"unix_micros\": {}, \"kind\": \"{}\", \"detail\": \"{}\"}}",
            self.seq,
            self.unix_micros,
            self.event.kind(),
            crate::stats::json_escape(&self.event.detail())
        )
    }
}

struct Ring {
    entries: VecDeque<JournalEntry>,
    /// Next sequence number to hand out (first emit gets seq 1).
    next_seq: u64,
    dropped: u64,
    counts: BTreeMap<&'static str, u64>,
}

/// The bounded journal. Cheap to share (`Arc<EventJournal>`); all state
/// sits behind one mutex held only for push/copy.
pub struct EventJournal {
    ring: Mutex<Ring>,
    capacity: usize,
}

impl std::fmt::Debug for EventJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventJournal")
            .field("capacity", &self.capacity)
            .field("total", &self.total())
            .field("dropped", &self.dropped())
            .finish()
    }
}

fn now_unix_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0)
}

impl EventJournal {
    /// A journal keeping at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> EventJournal {
        let capacity = capacity.max(1);
        EventJournal {
            ring: Mutex::new(Ring {
                entries: VecDeque::with_capacity(capacity.min(1024)),
                next_seq: 1,
                dropped: 0,
                counts: BTreeMap::new(),
            }),
            capacity,
        }
    }

    /// Appends an event; returns its sequence number. Never blocks
    /// beyond the ring mutex and never allocates past the capacity.
    pub fn emit(&self, event: Event) -> u64 {
        let stamp = now_unix_micros();
        let mut ring = match self.ring.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let seq = ring.next_seq;
        ring.next_seq += 1;
        *ring.counts.entry(event.kind()).or_insert(0) += 1;
        if ring.entries.len() >= self.capacity {
            ring.entries.pop_front();
            ring.dropped += 1;
        }
        ring.entries.push_back(JournalEntry { seq, unix_micros: stamp, event });
        seq
    }

    /// Entries with `seq > after`, oldest first, at most `max` (a
    /// `max` of 0 returns nothing).
    pub fn since(&self, after: u64, max: usize) -> Vec<JournalEntry> {
        let ring = match self.ring.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        ring.entries.iter().filter(|e| e.seq > after).take(max).cloned().collect()
    }

    /// Total events ever emitted (including dropped ones).
    pub fn total(&self) -> u64 {
        let ring = match self.ring.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        ring.next_seq - 1
    }

    /// Entries evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        let ring = match self.ring.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        ring.dropped
    }

    /// Per-kind emission counts over every kind in [`EVENT_KINDS`]
    /// (kinds that never fired report 0 — metrics families must be
    /// stable across scrapes).
    pub fn kind_counts(&self) -> Vec<(&'static str, u64)> {
        let ring = match self.ring.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        EVENT_KINDS.iter().map(|&k| (k, ring.counts.get(k).copied().unwrap_or(0))).collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests assert; unwrap is the assert
mod tests {
    use super::*;

    #[test]
    fn seq_numbers_are_monotonic_from_one() {
        let j = EventJournal::new(8);
        assert_eq!(j.emit(Event::CatalogAttached { name: "a".into() }), 1);
        assert_eq!(j.emit(Event::CatalogEvicted { name: "a".into() }), 2);
        assert_eq!(j.total(), 2);
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest_at_capacity() {
        let j = EventJournal::new(2);
        for gen in 1..=5u64 {
            j.emit(Event::UpdateCommitted { generation: gen, ops: 1 });
        }
        assert_eq!(j.total(), 5);
        assert_eq!(j.dropped(), 3);
        let tail = j.since(0, 16);
        assert_eq!(tail.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![4, 5]);
    }

    #[test]
    fn since_cursor_and_max_bound() {
        let j = EventJournal::new(16);
        for _ in 0..6 {
            j.emit(Event::AdmissionRejected { in_flight: 4, limit: 4 });
        }
        let page = j.since(2, 3);
        assert_eq!(page.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![3, 4, 5]);
        assert!(j.since(6, 3).is_empty());
        assert!(j.since(0, 0).is_empty());
    }

    #[test]
    fn kind_counts_cover_every_kind() {
        let j = EventJournal::new(8);
        j.emit(Event::ConnOpen { peer: "p".into() });
        j.emit(Event::ConnOpen { peer: "q".into() });
        let counts = j.kind_counts();
        assert_eq!(counts.len(), EVENT_KINDS.len());
        assert!(counts.contains(&("conn-open", 2)));
        assert!(counts.contains(&("slow-query", 0)));
    }

    #[test]
    fn renders_text_and_json() {
        let j = EventJournal::new(4);
        j.emit(Event::SlowQuery {
            query: "//a[b=\"c\"]".into(),
            micros: 1500,
            request_id: 7,
            peer: "127.0.0.1:9".into(),
        });
        let e = j.since(0, 1).pop().unwrap();
        let text = e.render_text();
        assert!(text.starts_with("#1 [slow-query] "), "{text}");
        assert!(text.contains("request_id=7"), "{text}");
        let json = e.render_json();
        assert!(json.contains("\"kind\": \"slow-query\""), "{json}");
        // The embedded quote must be escaped.
        assert!(json.contains("\\\"c\\\""), "{json}");
        assert!(e.unix_micros > 0);
    }

    #[test]
    fn every_event_kind_is_in_the_stable_list() {
        let events = vec![
            Event::ConnOpen { peer: String::new() },
            Event::ConnClose {
                peer: String::new(),
                frames_in: 0,
                frames_out: 0,
                bytes_in: 0,
                bytes_out: 0,
                errors: 0,
            },
            Event::AdmissionRejected { in_flight: 0, limit: 0 },
            Event::CatalogAttached { name: String::new() },
            Event::CatalogEvicted { name: String::new() },
            Event::UpdateCommitted { generation: 0, ops: 0 },
            Event::RebuildSwapped { generation: 0, replayed_ops: 0 },
            Event::PersistFolded { path: String::new() },
            Event::SlowQuery {
                query: String::new(),
                micros: 0,
                request_id: 0,
                peer: String::new(),
            },
            Event::ServerError { detail: String::new() },
        ];
        for e in events {
            assert!(EVENT_KINDS.contains(&e.kind()), "{} missing from EVENT_KINDS", e.kind());
        }
    }
}
