//! Order-preservation contract of the key codec (paper §4.2: composite
//! B+-tree keys must sort by memcmp exactly as their typed components
//! sort), checked from outside the crate: deterministic round-trips plus
//! property tests that encoded ordering always matches value ordering.

use proptest::prelude::*;
use std::cmp::Ordering;
use xtwig_rel::codec::{
    dec_i64, dec_null, dec_str, dec_u64, decode_idlist, enc_str, encode_idlist, read_varint,
    write_varint, IdListCodec, KeyBuf,
};

fn key_str(s: &str) -> Vec<u8> {
    let mut k = KeyBuf::new();
    k.push_str(s);
    k.finish()
}

fn key_i64(v: i64) -> Vec<u8> {
    let mut k = KeyBuf::new();
    k.push_i64(v);
    k.finish()
}

fn key_u64(v: u64) -> Vec<u8> {
    let mut k = KeyBuf::new();
    k.push_u64(v);
    k.finish()
}

#[test]
fn roundtrip_every_component_kind() {
    for s in ["", "a", "doe", "smith, j.", "nul\0inside", "ünïcødé 中文", "\0\0"] {
        let enc = enc_str(s);
        let (dec, next) = dec_str(&enc, 0);
        assert_eq!(dec, s);
        assert_eq!(next, enc.len());
    }
    for v in [i64::MIN, i64::MIN + 1, -65_536, -1, 0, 1, 42, i64::MAX - 1, i64::MAX] {
        assert_eq!(dec_i64(&key_i64(v), 0), (v, 9));
    }
    for v in [0u64, 1, 255, 256, u64::MAX - 1, u64::MAX] {
        assert_eq!(dec_u64(&key_u64(v), 0), (v, 9));
    }
    let null = KeyBuf::new().push_null().as_bytes().to_vec();
    assert_eq!(dec_null(&null, 0), Some(null.len()));
}

#[test]
fn roundtrip_composite_keys_componentwise() {
    // A (tag, value, id) key like the DATAPATHS leaf-value index uses.
    let mut k = KeyBuf::new();
    k.push_str("author");
    k.push_str("jane\0doe");
    k.push_u64(814);
    let bytes = k.finish();
    let (tag, pos) = dec_str(&bytes, 0);
    let (value, pos) = dec_str(&bytes, pos);
    let (id, pos) = dec_u64(&bytes, pos);
    assert_eq!((tag.as_str(), value.as_str(), id), ("author", "jane\0doe", 814));
    assert_eq!(pos, bytes.len());
}

#[test]
fn varint_roundtrip_and_length_monotonicity() {
    let mut last_len = 0;
    for v in [0u64, 1, 127, 128, 16_383, 16_384, 1 << 21, 1 << 28, u32::MAX as u64, u64::MAX] {
        let mut buf = Vec::new();
        write_varint(&mut buf, v);
        assert_eq!(read_varint(&buf, 0), (v, buf.len()));
        assert!(buf.len() >= last_len, "varint length must grow with magnitude");
        last_len = buf.len();
    }
}

#[test]
fn idlist_codecs_roundtrip_sorted_runs() {
    let runs: &[&[u64]] = &[
        &[],
        &[7],
        &[1, 2, 3, 4, 5],
        &[100, 10_000, 10_001, 9_999_999],
        &[u64::MAX - 2, u64::MAX - 1, u64::MAX],
    ];
    for run in runs {
        for codec in [IdListCodec::Delta, IdListCodec::Plain] {
            assert_eq!(&decode_idlist(codec, &encode_idlist(codec, run)), run);
        }
    }
}

#[test]
fn mixed_type_ordering_null_int_string() {
    // The codec's type tags define NULL < integers < strings; a sorted
    // heterogeneous column must keep that order byte-wise.
    let keys = [
        KeyBuf::new().push_null().as_bytes().to_vec(),
        key_i64(i64::MIN),
        key_i64(0),
        key_i64(i64::MAX),
        key_str(""),
        key_str("a"),
    ];
    for pair in keys.windows(2) {
        assert!(pair[0] < pair[1], "{:?} !< {:?}", pair[0], pair[1]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn encoded_string_order_matches_value_order(a in ".{0,32}", b in ".{0,32}") {
        prop_assert_eq!(key_str(&a).cmp(&key_str(&b)), a.as_bytes().cmp(b.as_bytes()));
    }

    #[test]
    fn encoded_i64_order_matches_value_order(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(key_i64(a).cmp(&key_i64(b)), a.cmp(&b));
    }

    #[test]
    fn encoded_u64_order_matches_value_order(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(key_u64(a).cmp(&key_u64(b)), a.cmp(&b));
    }

    #[test]
    fn composite_key_order_is_lexicographic_by_components(
        s1 in ".{0,12}", id1 in any::<u64>(),
        s2 in ".{0,12}", id2 in any::<u64>(),
    ) {
        let mk = |s: &str, id: u64| {
            let mut k = KeyBuf::new();
            k.push_str(s);
            k.push_u64(id);
            k.finish()
        };
        let expected = match s1.as_bytes().cmp(s2.as_bytes()) {
            Ordering::Equal => id1.cmp(&id2),
            other => other,
        };
        prop_assert_eq!(mk(&s1, id1).cmp(&mk(&s2, id2)), expected);
    }

    #[test]
    fn string_roundtrip_including_embedded_nuls(
        raw in proptest::collection::vec(any::<u8>(), 0..24),
    ) {
        // Arbitrary bytes forced into a string: keep only valid UTF-8,
        // which still yields plenty of NUL and high-bit content.
        let s = String::from_utf8_lossy(&raw).into_owned();
        let enc = enc_str(&s);
        let (dec, next) = dec_str(&enc, 0);
        prop_assert_eq!(dec, s);
        prop_assert_eq!(next, enc.len());
    }

    #[test]
    fn delta_idlist_roundtrips_any_sorted_list(
        start in any::<u32>(),
        gaps in proptest::collection::vec(1u64..100_000, 0..32),
    ) {
        let mut ids = vec![u64::from(start)];
        for g in gaps {
            ids.push(ids.last().unwrap() + g);
        }
        for codec in [IdListCodec::Delta, IdListCodec::Plain] {
            prop_assert_eq!(decode_idlist(codec, &encode_idlist(codec, &ids)), ids.clone());
        }
    }
}
