//! Slotted-page heap files.
//!
//! The Edge table baseline (paper §5.1) stores one row per XML edge in a
//! heap file; all other relations in the reproduction are index-organized
//! in B+-trees. Rows are byte strings (see [`crate::value`] for the row
//! format); pages use the classic slot-array layout.

use std::sync::Arc;
use xtwig_storage::page::{get_u16, put_u16, PAGE_SIZE};
use xtwig_storage::{BufferPool, PageId};

const OFF_NSLOTS: usize = 0;
const OFF_CELL_START: usize = 2;
const HDR: usize = 4;

/// Location of a row: `(page index within the heap, slot)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId {
    /// Index into the heap's page list.
    pub page: u32,
    /// Slot within the page.
    pub slot: u16,
}

/// An append-only heap file.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    pages: Vec<PageId>,
    rows: u64,
}

impl HeapFile {
    /// Creates an empty heap file in `pool`.
    pub fn new(pool: Arc<BufferPool>) -> Self {
        HeapFile { pool, pages: Vec::new(), rows: 0 }
    }

    /// Reattaches a heap file from its persisted shape: the ordered page
    /// list and row count recorded when it was built (see
    /// `xtwig-core`'s index persistence). The pool must contain those
    /// pages unchanged.
    pub fn from_parts(pool: Arc<BufferPool>, pages: Vec<PageId>, rows: u64) -> Self {
        HeapFile { pool, pages, rows }
    }

    /// The ordered page ids backing this heap (persisted by the index
    /// catalog and fed back to [`HeapFile::from_parts`] on reopen).
    pub fn page_ids(&self) -> &[PageId] {
        &self.pages
    }

    /// Number of rows.
    pub fn len(&self) -> u64 {
        self.rows
    }

    /// True when no row has been appended.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of pages.
    pub fn num_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Allocated bytes (the Fig. 9 space metric).
    pub fn space_bytes(&self) -> u64 {
        self.num_pages() * PAGE_SIZE as u64
    }

    /// Appends a row, returning its id.
    ///
    /// # Panics
    /// Panics if the row exceeds one page.
    pub fn append(&mut self, row: &[u8]) -> RecordId {
        let need = row.len() + 2; // cell + slot
        assert!(need + HDR <= PAGE_SIZE, "row of {} bytes exceeds page", row.len());
        if let Some(&last) = self.pages.last() {
            let fits = {
                let page = self.pool.fetch(last);
                free_space(&page) >= need
            };
            if fits {
                return self.append_to(self.pages.len() - 1, last, row);
            }
        }
        let (pid, mut guard) = self.pool.allocate();
        put_u16(&mut guard, OFF_NSLOTS, 0);
        put_u16(&mut guard, OFF_CELL_START, PAGE_SIZE as u16);
        drop(guard);
        self.pages.push(pid);
        self.append_to(self.pages.len() - 1, pid, row)
    }

    fn append_to(&mut self, page_idx: usize, pid: PageId, row: &[u8]) -> RecordId {
        let mut page = self.pool.fetch_mut(pid);
        let n = get_u16(&page, OFF_NSLOTS) as usize;
        let cell_start = get_u16(&page, OFF_CELL_START) as usize;
        let off = cell_start - row.len();
        page[off..off + row.len()].copy_from_slice(row);
        put_u16(&mut page, OFF_CELL_START, off as u16);
        put_u16(&mut page, HDR + 2 * n, off as u16);
        // Slot length is implied: cells are packed downward, so the cell
        // at slot i spans [offset_i, previous cell_start). Store lengths
        // explicitly instead, to keep reads simple:
        put_u16(&mut page, OFF_NSLOTS, (n + 1) as u16);
        drop(page);
        self.rows += 1;
        RecordId { page: page_idx as u32, slot: n as u16 }
    }

    /// Reads the row at `rid`.
    pub fn get(&self, rid: RecordId) -> Vec<u8> {
        let pid = self.pages[rid.page as usize];
        let page = self.pool.fetch(pid);
        let (start, end) = cell_bounds(&page, rid.slot as usize);
        page[start..end].to_vec()
    }

    /// Iterates all rows in insertion order, one page fetch per page.
    pub fn scan(&self) -> HeapScan<'_> {
        HeapScan { heap: self, page_idx: 0, buffer: Vec::new(), buffer_pos: 0 }
    }
}

fn free_space(page: &[u8]) -> usize {
    let n = get_u16(page, OFF_NSLOTS) as usize;
    get_u16(page, OFF_CELL_START) as usize - (HDR + 2 * n)
}

fn cell_bounds(page: &[u8], slot: usize) -> (usize, usize) {
    let n = get_u16(page, OFF_NSLOTS) as usize;
    debug_assert!(slot < n);
    let start = get_u16(page, HDR + 2 * slot) as usize;
    let end = if slot == 0 { PAGE_SIZE } else { get_u16(page, HDR + 2 * (slot - 1)) as usize };
    (start, end)
}

/// Iterator over all rows of a heap file.
pub struct HeapScan<'h> {
    heap: &'h HeapFile,
    page_idx: usize,
    buffer: Vec<(RecordId, Vec<u8>)>,
    buffer_pos: usize,
}

impl Iterator for HeapScan<'_> {
    type Item = (RecordId, Vec<u8>);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.buffer_pos < self.buffer.len() {
                let item = self.buffer[self.buffer_pos].clone();
                self.buffer_pos += 1;
                return Some(item);
            }
            if self.page_idx >= self.heap.pages.len() {
                return None;
            }
            let pid = self.heap.pages[self.page_idx];
            let page = self.heap.pool.fetch(pid);
            let n = get_u16(&page, OFF_NSLOTS) as usize;
            self.buffer.clear();
            self.buffer_pos = 0;
            for slot in 0..n {
                let (start, end) = cell_bounds(&page, slot);
                self.buffer.push((
                    RecordId { page: self.page_idx as u32, slot: slot as u16 },
                    page[start..end].to_vec(),
                ));
            }
            self.page_idx += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{deserialize_tuple, serialize_tuple, Value};

    fn heap() -> HeapFile {
        HeapFile::new(Arc::new(BufferPool::in_memory(256)))
    }

    #[test]
    fn append_get_roundtrip() {
        let mut h = heap();
        let r1 = h.append(b"hello");
        let r2 = h.append(b"world!");
        assert_eq!(h.get(r1), b"hello");
        assert_eq!(h.get(r2), b"world!");
        assert_eq!(h.len(), 2);
        assert_eq!(h.num_pages(), 1);
    }

    #[test]
    fn rows_spill_across_pages() {
        let mut h = heap();
        let row = vec![9u8; 1000];
        let mut rids = Vec::new();
        for _ in 0..50 {
            rids.push(h.append(&row));
        }
        assert!(h.num_pages() > 1);
        for rid in rids {
            assert_eq!(h.get(rid), row);
        }
    }

    #[test]
    fn scan_returns_all_rows_in_order() {
        let mut h = heap();
        let rows: Vec<Vec<u8>> = (0..500u32).map(|i| format!("row-{i}").into_bytes()).collect();
        for r in &rows {
            h.append(r);
        }
        let scanned: Vec<Vec<u8>> = h.scan().map(|(_, r)| r).collect();
        assert_eq!(scanned, rows);
    }

    #[test]
    fn scan_yields_valid_record_ids() {
        let mut h = heap();
        for i in 0..300u32 {
            h.append(&i.to_le_bytes());
        }
        for (rid, row) in h.scan() {
            assert_eq!(h.get(rid), row);
        }
    }

    #[test]
    fn tuple_rows_roundtrip_through_heap() {
        let mut h = heap();
        let t = vec![Value::Int(1), Value::Str("book".into()), Value::Null];
        let rid = h.append(&serialize_tuple(&t));
        assert_eq!(deserialize_tuple(&h.get(rid)), t);
    }

    #[test]
    fn empty_heap_scan() {
        let h = heap();
        assert_eq!(h.scan().count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.space_bytes(), 0);
    }

    #[test]
    fn zero_length_rows() {
        let mut h = heap();
        let r1 = h.append(b"");
        let r2 = h.append(b"x");
        let r3 = h.append(b"");
        assert_eq!(h.get(r1), b"");
        assert_eq!(h.get(r2), b"x");
        assert_eq!(h.get(r3), b"");
        assert_eq!(h.scan().count(), 3);
    }
}
