//! Mini relational engine substrate.
//!
//! The paper's thesis is that twig indexes should be "tightly integrated
//! with relational query processors" (§1): index probes must look like
//! ordinary index scans, and plans must compose with the system's join
//! operators (index-nested-loop, sort-merge, hash). This crate provides
//! that relational machinery:
//!
//! * [`value`] — typed values, tuples, and row (de)serialization.
//! * [`codec`] — the order-preserving composite-key codec that turns
//!   `(LeafValue, ReverseSchemaPath, …)` rows into B+-tree keys whose
//!   byte order equals tuple order, so prefix probes implement both
//!   anchored and `//`-headed PCsubpath lookups.
//! * [`heap`] — slotted-page heap files (the Edge table lives here).
//! * [`exec`] — pull-based operators: scans, filter/project, sort,
//!   sort-merge join, hash join, index-nested-loop join.
//! * [`stats`] — per-column statistics for selectivity estimation.

pub mod codec;
pub mod exec;
pub mod heap;
pub mod stats;
pub mod value;

pub use heap::{HeapFile, RecordId};
pub use value::{ColType, Tuple, Value};
