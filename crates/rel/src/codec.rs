//! Order-preserving composite-key codec and IdList compression.
//!
//! B+-tree keys are byte strings compared lexicographically, so every
//! index key in the reproduction is built by concatenating
//! order-preserving encodings of its components:
//!
//! * `null`   → `0x01`
//! * integer  → `0x02` + sign-flipped big-endian 8 bytes
//! * raw u64  → `0x03` + big-endian 8 bytes (node ids, uniquifiers)
//! * string   → `0x04` + bytes with `0x00` escaped as `0x00 0xFF`,
//!   terminated by `0x00 0x01`
//!
//! The escape/terminator scheme keeps prefix relationships intact:
//! `enc(s)` is a byte-prefix of `enc(s')` only in controlled positions,
//! and `s < t ⇔ enc(s) < enc(t)`.
//!
//! Schema-path *designator* sequences (paper §3.1) are encoded by
//! `xtwig-core` with their own non-zero alphabet and do not pass through
//! the string encoder; they are appended with [`KeyBuf::push_raw`].
//!
//! This module also implements the paper's lossless IdList compression
//! (§4.1): differential (delta) varint encoding, exploiting that ids
//! along a path are strictly increasing under pre-order numbering.

/// Incremental builder for composite keys.
#[derive(Debug, Default, Clone)]
pub struct KeyBuf(Vec<u8>);

const T_NULL: u8 = 0x01;
const T_INT: u8 = 0x02;
const T_U64: u8 = 0x03;
const T_STR: u8 = 0x04;

impl KeyBuf {
    /// Empty key.
    pub fn new() -> Self {
        KeyBuf(Vec::with_capacity(32))
    }

    /// Appends a NULL component.
    pub fn push_null(&mut self) -> &mut Self {
        self.0.push(T_NULL);
        self
    }

    /// Appends a signed integer component.
    pub fn push_i64(&mut self, v: i64) -> &mut Self {
        self.0.push(T_INT);
        self.0.extend_from_slice(&((v as u64) ^ (1u64 << 63)).to_be_bytes());
        self
    }

    /// Appends an unsigned 64-bit component (node ids).
    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        self.0.push(T_U64);
        self.0.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a string component (escaped + terminated).
    pub fn push_str(&mut self, s: &str) -> &mut Self {
        self.0.push(T_STR);
        for &b in s.as_bytes() {
            if b == 0x00 {
                self.0.extend_from_slice(&[0x00, 0xFF]);
            } else {
                self.0.push(b);
            }
        }
        self.0.extend_from_slice(&[0x00, 0x01]);
        self
    }

    /// Appends pre-encoded bytes verbatim (designator sequences manage
    /// their own alphabet/termination).
    pub fn push_raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.0.extend_from_slice(bytes);
        self
    }

    /// Finishes the key.
    pub fn finish(self) -> Vec<u8> {
        self.0
    }

    /// Current encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if no component has been pushed.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Encodes a string exactly as [`KeyBuf::push_str`] (convenience).
pub fn enc_str(s: &str) -> Vec<u8> {
    let mut k = KeyBuf::new();
    k.push_str(s);
    k.finish()
}

/// Decodes a string component starting at `pos`; returns `(string,
/// next_pos)`.
///
/// # Panics
/// Panics on malformed input.
pub fn dec_str(bytes: &[u8], pos: usize) -> (String, usize) {
    assert_eq!(bytes[pos], T_STR, "expected string component");
    let mut out = Vec::new();
    let mut i = pos + 1;
    loop {
        match bytes[i] {
            0x00 => match bytes[i + 1] {
                0x01 => return (String::from_utf8(out).expect("key utf8"), i + 2),
                0xFF => {
                    out.push(0x00);
                    i += 2;
                }
                other => panic!("bad escape byte {other:#x}"),
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
}

/// Decodes a u64 component at `pos`; returns `(value, next_pos)`.
pub fn dec_u64(bytes: &[u8], pos: usize) -> (u64, usize) {
    assert_eq!(bytes[pos], T_U64, "expected u64 component");
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[pos + 1..pos + 9]);
    (u64::from_be_bytes(b), pos + 9)
}

/// Decodes an i64 component at `pos`; returns `(value, next_pos)`.
pub fn dec_i64(bytes: &[u8], pos: usize) -> (i64, usize) {
    assert_eq!(bytes[pos], T_INT, "expected int component");
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[pos + 1..pos + 9]);
    ((u64::from_be_bytes(b) ^ (1u64 << 63)) as i64, pos + 9)
}

/// True if the component at `pos` is NULL; returns `next_pos` when so.
pub fn dec_null(bytes: &[u8], pos: usize) -> Option<usize> {
    (bytes[pos] == T_NULL).then_some(pos + 1)
}

// ---------------------------------------------------------------------
// Varints and IdList compression
// ---------------------------------------------------------------------

/// Appends a LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint at `pos`; returns `(value, next_pos)`.
pub fn read_varint(bytes: &[u8], pos: usize) -> (u64, usize) {
    let mut v = 0u64;
    let mut shift = 0u32;
    let mut i = pos;
    loop {
        let b = bytes[i];
        v |= u64::from(b & 0x7F) << shift;
        i += 1;
        if b & 0x80 == 0 {
            return (v, i);
        }
        shift += 7;
        assert!(shift < 64, "varint overflow");
    }
}

/// IdList storage format (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IdListCodec {
    /// Differential varint encoding — the paper's lossless compression.
    #[default]
    Delta,
    /// Fixed 8-byte ids — the uncompressed baseline for the ablation.
    Plain,
}

/// Encodes `ids` (strictly increasing) with the chosen codec, prefixed by
/// the list length as a varint.
pub fn encode_idlist(codec: IdListCodec, ids: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + ids.len() * 2);
    write_varint(&mut out, ids.len() as u64);
    match codec {
        IdListCodec::Delta => {
            let mut prev = 0u64;
            for (i, &id) in ids.iter().enumerate() {
                if i == 0 {
                    write_varint(&mut out, id);
                } else {
                    debug_assert!(id > prev, "IdList ids must strictly increase");
                    write_varint(&mut out, id - prev);
                }
                prev = id;
            }
        }
        IdListCodec::Plain => {
            for &id in ids {
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
    }
    out
}

/// Decodes an IdList produced by [`encode_idlist`].
pub fn decode_idlist(codec: IdListCodec, bytes: &[u8]) -> Vec<u64> {
    let (n, mut pos) = read_varint(bytes, 0);
    let mut out = Vec::with_capacity(n as usize);
    match codec {
        IdListCodec::Delta => {
            let mut prev = 0u64;
            for i in 0..n {
                let (v, next) = read_varint(bytes, pos);
                pos = next;
                let id = if i == 0 { v } else { prev + v };
                out.push(id);
                prev = id;
            }
        }
        IdListCodec::Plain => {
            for _ in 0..n {
                let mut b = [0u8; 8];
                b.copy_from_slice(&bytes[pos..pos + 8]);
                out.push(u64::from_le_bytes(b));
                pos += 8;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn str_encoding_roundtrip() {
        for s in ["", "jane", "united states", "a\x00b", "\x00", "ünïcødé", "a\x00\x00"] {
            let enc = enc_str(s);
            let (dec, next) = dec_str(&enc, 0);
            assert_eq!(dec, s);
            assert_eq!(next, enc.len());
        }
    }

    #[test]
    fn numeric_roundtrip() {
        for v in [i64::MIN, -1, 0, 1, i64::MAX] {
            let mut k = KeyBuf::new();
            k.push_i64(v);
            let enc = k.finish();
            assert_eq!(dec_i64(&enc, 0), (v, 9));
        }
        for v in [0u64, 1, u64::MAX, 1 << 40] {
            let mut k = KeyBuf::new();
            k.push_u64(v);
            let enc = k.finish();
            assert_eq!(dec_u64(&enc, 0), (v, 9));
        }
    }

    #[test]
    fn null_sorts_before_strings_and_ints() {
        let null = KeyBuf::new().push_null().as_bytes().to_vec();
        let int = {
            let mut k = KeyBuf::new();
            k.push_i64(i64::MIN);
            k.finish()
        };
        let s = enc_str("");
        assert!(null < int);
        assert!(int < s);
    }

    #[test]
    fn composite_key_order_matches_component_order() {
        // (LeafValue, u64) pairs: value dominates, id breaks ties.
        let mk = |v: Option<&str>, id: u64| {
            let mut k = KeyBuf::new();
            match v {
                None => k.push_null(),
                Some(s) => k.push_str(s),
            };
            k.push_u64(id);
            k.finish()
        };
        let keys = [
            mk(None, 1),
            mk(None, 2),
            mk(Some(""), 0),
            mk(Some("a"), 9),
            mk(Some("a"), 10),
            mk(Some("ab"), 0),
            mk(Some("b"), 0),
        ];
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "{:?} !< {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(read_varint(&buf, 0), (v, buf.len()));
        }
    }

    #[test]
    fn idlist_codecs_roundtrip() {
        let lists: Vec<Vec<u64>> = vec![
            vec![],
            vec![1],
            vec![1, 5, 6, 7],
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
            vec![10, 1_000_000, 1_000_001],
        ];
        for l in lists {
            for codec in [IdListCodec::Delta, IdListCodec::Plain] {
                assert_eq!(decode_idlist(codec, &encode_idlist(codec, &l)), l);
            }
        }
    }

    #[test]
    fn delta_encoding_is_smaller_on_path_idlists() {
        // Parent-child correlated ids: deltas are tiny (paper §4.1 claims
        // "significant savings in space").
        let ids: Vec<u64> = (0..12).map(|i| 100_000 + i * 3).collect();
        let delta = encode_idlist(IdListCodec::Delta, &ids);
        let plain = encode_idlist(IdListCodec::Plain, &ids);
        assert!(delta.len() * 2 < plain.len(), "delta {} vs plain {}", delta.len(), plain.len());
    }

    proptest! {
        #[test]
        fn prop_string_encoding_preserves_order(a in ".{0,24}", b in ".{0,24}") {
            let (ea, eb) = (enc_str(&a), enc_str(&b));
            prop_assert_eq!(a.as_bytes().cmp(b.as_bytes()), ea.cmp(&eb));
        }

        #[test]
        fn prop_i64_encoding_preserves_order(a in any::<i64>(), b in any::<i64>()) {
            let mut ka = KeyBuf::new();
            ka.push_i64(a);
            let mut kb = KeyBuf::new();
            kb.push_i64(b);
            prop_assert_eq!(a.cmp(&b), ka.finish().cmp(&kb.finish()));
        }

        #[test]
        fn prop_idlist_delta_roundtrip(start in 0u64..1_000_000, steps in proptest::collection::vec(1u64..10_000, 0..20)) {
            let mut ids = vec![start];
            for s in steps {
                ids.push(ids.last().unwrap() + s);
            }
            let enc = encode_idlist(IdListCodec::Delta, &ids);
            prop_assert_eq!(decode_idlist(IdListCodec::Delta, &enc), ids);
        }

        #[test]
        fn prop_str_roundtrip(s in ".{0,64}") {
            let enc = enc_str(&s);
            let (dec, next) = dec_str(&enc, 0);
            prop_assert_eq!(dec, s);
            prop_assert_eq!(next, enc.len());
        }
    }
}
