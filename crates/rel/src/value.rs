//! Typed values, tuples, and row serialization.

use std::fmt;

/// Column types used by the reproduction's relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColType {
    /// 64-bit integer (node ids, dictionary ids).
    Int,
    /// UTF-8 string (tag names, leaf values).
    Str,
    /// A list of node ids — the paper's `IdList` attribute.
    IdList,
}

/// A single column value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// SQL NULL (e.g. `LeafValue` of a structural path row).
    Null,
    /// Integer.
    Int(i64),
    /// String.
    Str(String),
    /// Node-id list (the paper's 4-ary relation column).
    IdList(Vec<u64>),
}

impl Value {
    /// Shorthand constructor from a node id.
    pub fn id(v: u64) -> Value {
        Value::Int(v as i64)
    }

    /// The integer, if this is `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The integer as a node id, if this is a non-negative `Int`.
    pub fn as_id(&self) -> Option<u64> {
        match self {
            Value::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The string, if this is `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The id list, if this is `IdList`.
    pub fn as_id_list(&self) -> Option<&[u64]> {
        match self {
            Value::IdList(l) => Some(l),
            _ => None,
        }
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::IdList(l) => {
                write!(f, "[")?;
                for (i, id) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{id}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// A row.
pub type Tuple = Vec<Value>;

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_STR: u8 = 2;
const TAG_IDLIST: u8 = 3;

/// Serializes a tuple to bytes (heap-file row format; *not*
/// order-preserving — see [`crate::codec`] for index keys).
pub fn serialize_tuple(tuple: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 * tuple.len());
    out.extend_from_slice(&(u16::try_from(tuple.len()).expect("tuple too wide")).to_le_bytes());
    for v in tuple {
        match v {
            Value::Null => out.push(TAG_NULL),
            Value::Int(i) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(TAG_STR);
                out.extend_from_slice(
                    &(u32::try_from(s.len()).expect("string too long")).to_le_bytes(),
                );
                out.extend_from_slice(s.as_bytes());
            }
            Value::IdList(l) => {
                out.push(TAG_IDLIST);
                out.extend_from_slice(
                    &(u32::try_from(l.len()).expect("idlist too long")).to_le_bytes(),
                );
                for id in l {
                    out.extend_from_slice(&id.to_le_bytes());
                }
            }
        }
    }
    out
}

/// Deserializes a tuple from [`serialize_tuple`] bytes.
///
/// # Panics
/// Panics on malformed input (heap rows are trusted).
pub fn deserialize_tuple(bytes: &[u8]) -> Tuple {
    let n = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
    let mut out = Vec::with_capacity(n);
    let mut pos = 2usize;
    for _ in 0..n {
        let tag = bytes[pos];
        pos += 1;
        match tag {
            TAG_NULL => out.push(Value::Null),
            TAG_INT => {
                let mut b = [0u8; 8];
                b.copy_from_slice(&bytes[pos..pos + 8]);
                out.push(Value::Int(i64::from_le_bytes(b)));
                pos += 8;
            }
            TAG_STR => {
                let mut lb = [0u8; 4];
                lb.copy_from_slice(&bytes[pos..pos + 4]);
                let len = u32::from_le_bytes(lb) as usize;
                pos += 4;
                let s = std::str::from_utf8(&bytes[pos..pos + len]).expect("corrupt row: utf8");
                out.push(Value::Str(s.to_owned()));
                pos += len;
            }
            TAG_IDLIST => {
                let mut lb = [0u8; 4];
                lb.copy_from_slice(&bytes[pos..pos + 4]);
                let len = u32::from_le_bytes(lb) as usize;
                pos += 4;
                let mut l = Vec::with_capacity(len);
                for _ in 0..len {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&bytes[pos..pos + 8]);
                    l.push(u64::from_le_bytes(b));
                    pos += 8;
                }
                out.push(Value::IdList(l));
            }
            other => panic!("corrupt row: unknown tag {other}"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let tuples: Vec<Tuple> = vec![
            vec![],
            vec![Value::Null],
            vec![Value::Int(0), Value::Int(-1), Value::Int(i64::MAX), Value::Int(i64::MIN)],
            vec![
                Value::Str(String::new()),
                Value::Str("jane".into()),
                Value::Str("ünïcødé 中文".into()),
            ],
            vec![Value::IdList(vec![]), Value::IdList(vec![1, 5, 6, 7])],
            vec![
                Value::Int(1),
                Value::Str("BUAF".into()),
                Value::Str("jane".into()),
                Value::IdList(vec![5, 6, 7]),
            ],
        ];
        for t in tuples {
            assert_eq!(deserialize_tuple(&serialize_tuple(&t)), t);
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_id(), Some(5));
        assert_eq!(Value::Int(-5).as_id(), None);
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::IdList(vec![1]).as_id_list(), Some(&[1u64][..]));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.as_int(), None);
        assert_eq!(Value::id(9), Value::Int(9));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Str("XML".into()).to_string(), "'XML'");
        assert_eq!(Value::IdList(vec![1, 5, 6]).to_string(), "[1,5,6]");
    }
}
