//! Pull-based relational operators.
//!
//! The paper's plans are compositions of index lookups with the three
//! classic joins: sort-merge and hash joins over branch-point ids
//! extracted from IdLists (§3.2), and index-nested-loop joins driven by
//! BoundIndex probes (§3.3, §5.2.3). These operators are the runtime for
//! those plans (and for the Edge/DataGuide/IndexFabric baselines, whose
//! multi-join chains the paper's §5.2.2 experiments measure).

#![allow(clippy::new_ret_no_self)] // constructors intentionally return boxed operators

use crate::value::{Tuple, Value};
use std::collections::HashMap;

/// A pull-based operator.
pub trait Executor {
    /// Produces the next tuple, or `None` when exhausted.
    fn next(&mut self) -> Option<Tuple>;

    /// Drains the operator into a vector.
    fn collect_all(&mut self) -> Vec<Tuple> {
        let mut out = Vec::new();
        while let Some(t) = self.next() {
            out.push(t);
        }
        out
    }
}

/// Boxed operator with a scoped lifetime (operators usually borrow heap
/// files, B+-trees, or the buffer pool).
pub type BoxExec<'a> = Box<dyn Executor + 'a>;

/// A join-key extractor.
pub type KeyFn<'a> = Box<dyn Fn(&Tuple) -> Vec<Value> + 'a>;

/// An index-probe function for INLJ.
pub type ProbeFn<'a> = Box<dyn FnMut(&Tuple) -> Vec<Tuple> + 'a>;

/// Wraps any tuple iterator as an operator (sequential scans, index range
/// scans, literal row sets).
pub struct FromIter<I>(pub I);

impl<I: Iterator<Item = Tuple>> Executor for FromIter<I> {
    fn next(&mut self) -> Option<Tuple> {
        self.0.next()
    }
}

/// Creates an operator from an iterator.
pub fn from_iter<'a, I>(iter: I) -> BoxExec<'a>
where
    I: IntoIterator<Item = Tuple>,
    I::IntoIter: 'a,
{
    Box::new(FromIter(iter.into_iter()))
}

/// Filter (selection).
pub struct Filter<'a> {
    input: BoxExec<'a>,
    pred: Box<dyn FnMut(&Tuple) -> bool + 'a>,
}

impl<'a> Filter<'a> {
    /// Keeps tuples where `pred` holds.
    pub fn new(input: BoxExec<'a>, pred: impl FnMut(&Tuple) -> bool + 'a) -> BoxExec<'a> {
        Box::new(Filter { input, pred: Box::new(pred) })
    }
}

impl Executor for Filter<'_> {
    fn next(&mut self) -> Option<Tuple> {
        loop {
            let t = self.input.next()?;
            if (self.pred)(&t) {
                return Some(t);
            }
        }
    }
}

/// Projection / mapping.
pub struct Project<'a> {
    input: BoxExec<'a>,
    f: Box<dyn FnMut(Tuple) -> Tuple + 'a>,
}

impl<'a> Project<'a> {
    /// Rewrites each tuple with `f`.
    pub fn new(input: BoxExec<'a>, f: impl FnMut(Tuple) -> Tuple + 'a) -> BoxExec<'a> {
        Box::new(Project { input, f: Box::new(f) })
    }
}

impl Executor for Project<'_> {
    fn next(&mut self) -> Option<Tuple> {
        self.input.next().map(&mut self.f)
    }
}

/// Blocking sort by an extracted key.
pub struct Sort {
    sorted: std::vec::IntoIter<Tuple>,
}

impl Sort {
    /// Sorts the entire input by `key`.
    pub fn new<'a>(input: BoxExec<'a>, key: impl Fn(&Tuple) -> Vec<Value> + 'a) -> BoxExec<'a>
    where
        Self: 'a,
    {
        let mut rows = { input }.collect_all();
        rows.sort_by_key(|t| key(t));
        Box::new(Sort { sorted: rows.into_iter() })
    }
}

impl Executor for Sort {
    fn next(&mut self) -> Option<Tuple> {
        self.sorted.next()
    }
}

/// Sort-merge equi-join. Inputs **must already be sorted** on their keys
/// (wrap with [`Sort`] otherwise). Handles duplicate keys on both sides
/// (cross product within a key group). Output = left tuple ++ right tuple.
pub struct MergeJoin<'a> {
    left: std::iter::Peekable<TupleIter<'a>>,
    right: std::iter::Peekable<TupleIter<'a>>,
    left_key: KeyFn<'a>,
    right_key: KeyFn<'a>,
    pending: Vec<Tuple>,
    pending_pos: usize,
}

struct TupleIter<'a>(BoxExec<'a>);

impl Iterator for TupleIter<'_> {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        self.0.next()
    }
}

impl<'a> MergeJoin<'a> {
    /// Creates a merge join over sorted inputs.
    pub fn new(
        left: BoxExec<'a>,
        right: BoxExec<'a>,
        left_key: impl Fn(&Tuple) -> Vec<Value> + 'a,
        right_key: impl Fn(&Tuple) -> Vec<Value> + 'a,
    ) -> BoxExec<'a> {
        Box::new(MergeJoin {
            left: TupleIter(left).peekable(),
            right: TupleIter(right).peekable(),
            left_key: Box::new(left_key),
            right_key: Box::new(right_key),
            pending: Vec::new(),
            pending_pos: 0,
        })
    }

    fn refill(&mut self) -> bool {
        loop {
            let lk = match self.left.peek() {
                Some(t) => (self.left_key)(t),
                None => return false,
            };
            let rk = match self.right.peek() {
                Some(t) => (self.right_key)(t),
                None => return false,
            };
            match lk.cmp(&rk) {
                std::cmp::Ordering::Less => {
                    self.left.next();
                }
                std::cmp::Ordering::Greater => {
                    self.right.next();
                }
                std::cmp::Ordering::Equal => {
                    // Gather both key groups and emit their product.
                    let mut lgroup = Vec::new();
                    while let Some(t) = self.left.peek() {
                        if (self.left_key)(t) == lk {
                            lgroup.push(self.left.next().unwrap());
                        } else {
                            break;
                        }
                    }
                    let mut rgroup = Vec::new();
                    while let Some(t) = self.right.peek() {
                        if (self.right_key)(t) == rk {
                            rgroup.push(self.right.next().unwrap());
                        } else {
                            break;
                        }
                    }
                    self.pending.clear();
                    self.pending_pos = 0;
                    for l in &lgroup {
                        for r in &rgroup {
                            let mut t = l.clone();
                            t.extend(r.iter().cloned());
                            self.pending.push(t);
                        }
                    }
                    return true;
                }
            }
        }
    }
}

impl Executor for MergeJoin<'_> {
    fn next(&mut self) -> Option<Tuple> {
        loop {
            if self.pending_pos < self.pending.len() {
                let t = self.pending[self.pending_pos].clone();
                self.pending_pos += 1;
                return Some(t);
            }
            if !self.refill() {
                return None;
            }
        }
    }
}

/// Hash equi-join (build on right, probe with left). Output = left ++
/// right.
pub struct HashJoin<'a> {
    left: BoxExec<'a>,
    left_key: KeyFn<'a>,
    table: HashMap<Vec<Value>, Vec<Tuple>>,
    pending: Vec<Tuple>,
    pending_pos: usize,
}

impl<'a> HashJoin<'a> {
    /// Builds the hash table from `right` eagerly.
    pub fn new(
        left: BoxExec<'a>,
        right: BoxExec<'a>,
        left_key: impl Fn(&Tuple) -> Vec<Value> + 'a,
        right_key: impl Fn(&Tuple) -> Vec<Value> + 'a,
    ) -> BoxExec<'a> {
        let mut table: HashMap<Vec<Value>, Vec<Tuple>> = HashMap::new();
        let mut right = right;
        while let Some(t) = right.next() {
            table.entry(right_key(&t)).or_default().push(t);
        }
        Box::new(HashJoin {
            left,
            left_key: Box::new(left_key),
            table,
            pending: Vec::new(),
            pending_pos: 0,
        })
    }
}

impl Executor for HashJoin<'_> {
    fn next(&mut self) -> Option<Tuple> {
        loop {
            if self.pending_pos < self.pending.len() {
                let t = self.pending[self.pending_pos].clone();
                self.pending_pos += 1;
                return Some(t);
            }
            let l = self.left.next()?;
            if let Some(matches) = self.table.get(&(self.left_key)(&l)) {
                self.pending.clear();
                self.pending_pos = 0;
                for r in matches {
                    let mut t = l.clone();
                    t.extend(r.iter().cloned());
                    self.pending.push(t);
                }
            }
        }
    }
}

/// Index-nested-loop join: for each outer tuple, `probe` fetches the
/// matching inner tuples (typically a B+-tree prefix probe — the paper's
/// BoundIndex pattern, §2.3). Output = outer ++ inner.
pub struct IndexNestedLoopJoin<'a> {
    outer: BoxExec<'a>,
    probe: ProbeFn<'a>,
    pending: Vec<Tuple>,
    pending_pos: usize,
}

impl<'a> IndexNestedLoopJoin<'a> {
    /// Creates an INLJ with the given probe function.
    pub fn new(outer: BoxExec<'a>, probe: impl FnMut(&Tuple) -> Vec<Tuple> + 'a) -> BoxExec<'a> {
        Box::new(IndexNestedLoopJoin {
            outer,
            probe: Box::new(probe),
            pending: Vec::new(),
            pending_pos: 0,
        })
    }
}

impl Executor for IndexNestedLoopJoin<'_> {
    fn next(&mut self) -> Option<Tuple> {
        loop {
            if self.pending_pos < self.pending.len() {
                let t = self.pending[self.pending_pos].clone();
                self.pending_pos += 1;
                return Some(t);
            }
            let o = self.outer.next()?;
            let inner = (self.probe)(&o);
            self.pending.clear();
            self.pending_pos = 0;
            for i in inner {
                let mut t = o.clone();
                t.extend(i);
                self.pending.push(t);
            }
        }
    }
}

/// Hash-based duplicate elimination over whole tuples.
pub struct Distinct<'a> {
    input: BoxExec<'a>,
    seen: std::collections::HashSet<Tuple>,
}

impl<'a> Distinct<'a> {
    /// Creates a DISTINCT operator.
    pub fn new(input: BoxExec<'a>) -> BoxExec<'a> {
        Box::new(Distinct { input, seen: std::collections::HashSet::new() })
    }
}

impl Executor for Distinct<'_> {
    fn next(&mut self) -> Option<Tuple> {
        loop {
            let t = self.input.next()?;
            if self.seen.insert(t.clone()) {
                return Some(t);
            }
        }
    }
}

/// LIMIT.
pub struct Limit<'a> {
    input: BoxExec<'a>,
    remaining: usize,
}

impl<'a> Limit<'a> {
    /// Passes through at most `n` tuples.
    pub fn new(input: BoxExec<'a>, n: usize) -> BoxExec<'a> {
        Box::new(Limit { input, remaining: n })
    }
}

impl Executor for Limit<'_> {
    fn next(&mut self) -> Option<Tuple> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.input.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(ids: &[(i64, &str)]) -> Vec<Tuple> {
        ids.iter().map(|(i, s)| vec![Value::Int(*i), Value::Str((*s).into())]).collect()
    }

    fn key0(t: &Tuple) -> Vec<Value> {
        vec![t[0].clone()]
    }

    #[test]
    fn filter_project_pipeline() {
        let input = from_iter(rows(&[(1, "a"), (2, "b"), (3, "c"), (4, "d")]));
        let even = Filter::new(input, |t| t[0].as_int().unwrap() % 2 == 0);
        let mut doubled = Project::new(even, |mut t| {
            t[0] = Value::Int(t[0].as_int().unwrap() * 10);
            t
        });
        let out = doubled.collect_all();
        assert_eq!(out, rows(&[(20, "b"), (40, "d")]));
    }

    #[test]
    fn sort_orders_by_key() {
        let input = from_iter(rows(&[(3, "c"), (1, "a"), (2, "b")]));
        let mut sorted = Sort::new(input, key0);
        assert_eq!(sorted.collect_all(), rows(&[(1, "a"), (2, "b"), (3, "c")]));
    }

    #[test]
    fn merge_join_basic() {
        let l = from_iter(rows(&[(1, "l1"), (2, "l2"), (4, "l4")]));
        let r = from_iter(rows(&[(2, "r2"), (3, "r3"), (4, "r4")]));
        let mut j = MergeJoin::new(l, r, key0, key0);
        let out = j.collect_all();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0][1], Value::Str("l2".into()));
        assert_eq!(out[0][3], Value::Str("r2".into()));
        assert_eq!(out[1][1], Value::Str("l4".into()));
    }

    #[test]
    fn merge_join_duplicate_groups() {
        let l = from_iter(rows(&[(1, "a"), (2, "b1"), (2, "b2"), (3, "c")]));
        let r = from_iter(rows(&[(2, "x1"), (2, "x2"), (2, "x3"), (5, "z")]));
        let mut j = MergeJoin::new(l, r, key0, key0);
        assert_eq!(j.collect_all().len(), 6); // 2x3 cross within key 2
    }

    #[test]
    fn hash_join_matches_merge_join() {
        let data_l = rows(&[(1, "a"), (2, "b"), (2, "b2"), (7, "g")]);
        let data_r = rows(&[(2, "x"), (7, "y"), (7, "y2"), (9, "q")]);
        let mut mj =
            MergeJoin::new(from_iter(data_l.clone()), from_iter(data_r.clone()), key0, key0);
        let mut hj = HashJoin::new(from_iter(data_l), from_iter(data_r), key0, key0);
        let mut a = mj.collect_all();
        let mut b = hj.collect_all();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(a.len(), 4); // key 2: 2x1, key 7: 1x2
    }

    #[test]
    fn inlj_probes_per_outer_row() {
        let outer = from_iter(rows(&[(1, "a"), (2, "b"), (3, "c")]));
        let mut probes = 0usize;
        let mut j = IndexNestedLoopJoin::new(outer, |t| {
            probes += 1;
            let id = t[0].as_int().unwrap();
            if id == 2 {
                vec![]
            } else {
                vec![vec![Value::Int(id * 100)], vec![Value::Int(id * 100 + 1)]]
            }
        });
        let out = j.collect_all();
        assert_eq!(out.len(), 4);
        assert_eq!(out[0], vec![Value::Int(1), Value::Str("a".into()), Value::Int(100)]);
        drop(j);
        assert_eq!(probes, 3);
    }

    #[test]
    fn distinct_and_limit() {
        let input = from_iter(rows(&[(1, "a"), (1, "a"), (2, "b"), (1, "a"), (3, "c")]));
        let mut d = Distinct::new(input);
        assert_eq!(d.collect_all().len(), 3);
        let input = from_iter(rows(&[(1, "a"), (2, "b"), (3, "c")]));
        let mut l = Limit::new(input, 2);
        assert_eq!(l.collect_all().len(), 2);
    }

    #[test]
    fn empty_inputs() {
        let empty = || from_iter(Vec::<Tuple>::new());
        assert_eq!(MergeJoin::new(empty(), empty(), key0, key0).collect_all().len(), 0);
        assert_eq!(
            HashJoin::new(empty(), from_iter(rows(&[(1, "x")])), key0, key0).collect_all().len(),
            0
        );
        assert_eq!(IndexNestedLoopJoin::new(empty(), |_| vec![]).collect_all().len(), 0);
    }

    #[test]
    fn three_way_join_composition() {
        // (A join B on id) join C on id — the shape of a twig with three
        // branches joined on a branch-point id.
        let a = from_iter(rows(&[(1, "a1"), (2, "a2"), (3, "a3")]));
        let b = from_iter(rows(&[(2, "b2"), (3, "b3")]));
        let c = from_iter(rows(&[(3, "c3"), (4, "c4")]));
        let ab = MergeJoin::new(a, b, key0, key0);
        let mut abc = MergeJoin::new(ab, c, key0, key0);
        let out = abc.collect_all();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][0], Value::Int(3));
        assert_eq!(out[0].len(), 6);
    }
}
