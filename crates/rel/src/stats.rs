//! Column statistics for selectivity estimation.
//!
//! The paper's experiments hinge on branch selectivity (§5.2.2–5.2.3):
//! DB2's optimizer chooses plans from collected statistics ("we collected
//! detailed statistics on all relations and indices before running our
//! queries", §5.1.1). The twig planner in `xtwig-core` does the same with
//! these summaries: row counts, distinct counts, and most-common values
//! per column.

use crate::value::Value;
use std::collections::HashMap;

/// Statistics for one column.
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    /// Non-null values observed.
    pub count: u64,
    /// Nulls observed.
    pub nulls: u64,
    /// Exact distinct count (datasets here fit the builder pass).
    pub distinct: u64,
    /// Most common values with frequencies, descending.
    pub mcvs: Vec<(Value, u64)>,
}

impl ColumnStats {
    /// Estimated number of rows equal to `v`.
    pub fn eq_cardinality(&self, v: &Value) -> u64 {
        if v.is_null() {
            return self.nulls;
        }
        for (mcv, freq) in &self.mcvs {
            if mcv == v {
                return *freq;
            }
        }
        if self.distinct == 0 {
            return 0;
        }
        // Uniform assumption over the non-MCV remainder.
        let mcv_total: u64 = self.mcvs.iter().map(|(_, f)| f).sum();
        let rest_rows = self.count.saturating_sub(mcv_total);
        let rest_distinct = self.distinct.saturating_sub(self.mcvs.len() as u64).max(1);
        (rest_rows / rest_distinct).max(1)
    }
}

/// One-pass statistics builder.
#[derive(Debug, Default)]
pub struct StatsBuilder {
    counts: HashMap<Value, u64>,
    nulls: u64,
    mcv_limit: usize,
}

impl StatsBuilder {
    /// Builder keeping `mcv_limit` most common values.
    pub fn new(mcv_limit: usize) -> Self {
        StatsBuilder { counts: HashMap::new(), nulls: 0, mcv_limit }
    }

    /// Records one value.
    pub fn add(&mut self, v: &Value) {
        if v.is_null() {
            self.nulls += 1;
        } else {
            *self.counts.entry(v.clone()).or_insert(0) += 1;
        }
    }

    /// Finalizes into [`ColumnStats`].
    pub fn finish(self) -> ColumnStats {
        let count = self.counts.values().sum();
        let distinct = self.counts.len() as u64;
        let mut pairs: Vec<(Value, u64)> = self.counts.into_iter().collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        pairs.truncate(self.mcv_limit);
        ColumnStats { count, nulls: self.nulls, distinct, mcvs: pairs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        Value::Str(s.into())
    }

    #[test]
    fn exact_counts_for_mcvs() {
        let mut b = StatsBuilder::new(2);
        for _ in 0..100 {
            b.add(&v("common"));
        }
        for _ in 0..10 {
            b.add(&v("medium"));
        }
        b.add(&v("rare1"));
        b.add(&v("rare2"));
        b.add(&Value::Null);
        let s = b.finish();
        assert_eq!(s.count, 112);
        assert_eq!(s.nulls, 1);
        assert_eq!(s.distinct, 4);
        assert_eq!(s.eq_cardinality(&v("common")), 100);
        assert_eq!(s.eq_cardinality(&v("medium")), 10);
        assert_eq!(s.eq_cardinality(&Value::Null), 1);
    }

    #[test]
    fn uniform_estimate_for_non_mcvs() {
        let mut b = StatsBuilder::new(1);
        for _ in 0..90 {
            b.add(&v("big"));
        }
        for i in 0..10 {
            b.add(&v(&format!("small{i}")));
        }
        let s = b.finish();
        // 10 remaining rows over 10 remaining distincts -> 1 each.
        assert_eq!(s.eq_cardinality(&v("small3")), 1);
        assert_eq!(s.eq_cardinality(&v("unseen")), 1);
    }

    #[test]
    fn empty_stats() {
        let s = StatsBuilder::new(4).finish();
        assert_eq!(s.count, 0);
        assert_eq!(s.eq_cardinality(&v("x")), 0);
    }

    #[test]
    fn skew_matches_paper_query_profile() {
        // XMark quantity: ~55% "1", ~15% "2", a single "5" (Q1x-Q3x).
        let mut b = StatsBuilder::new(4);
        for _ in 0..11_062 {
            b.add(&v("1"));
        }
        for _ in 0..3_128 {
            b.add(&v("2"));
        }
        b.add(&v("5"));
        for _ in 0..5_000 {
            b.add(&v("3"));
        }
        let s = b.finish();
        assert_eq!(s.eq_cardinality(&v("1")), 11_062);
        assert_eq!(s.eq_cardinality(&v("2")), 3_128);
        assert!(s.eq_cardinality(&v("5")) <= 2, "rare value must estimate tiny");
    }
}
