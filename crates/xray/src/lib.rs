//! xtwig-xray: workspace static analysis for the serving layer's
//! concurrency and error-discipline invariants.
//!
//! The pass walks every `src/` file in the workspace (skipping
//! `target/` and test/fixture directories — fixtures deliberately
//! violate the rules), lexes each with a hand-rolled line/column
//! tracking lexer, and runs five repo-specific rules:
//!
//! * `no-panic` — no `unwrap`/`expect`/`panic!`-family/indexing on
//!   serving paths (scoped crates, outside `#[cfg(test)]`);
//! * `lock-order` — maintenance mutex before epoch lock; no pool
//!   re-acquisition while a frame lock is held;
//! * `typed-errors` — `pub fn` Results in the scoped crates use
//!   crate-local error types (no `String`/`Box<dyn Error>`/`io::Error`);
//! * `untraced-purity` — the untraced executor stays free of timing
//!   and span identifiers;
//! * `safety-comments` — every `unsafe` carries a `// SAFETY:` line.
//!
//! Deliberate exceptions live in `xray.toml` `[[allow]]` entries keyed
//! by (rule, path suffix, line-content substring) with a mandatory
//! justification; entries that match nothing are themselves findings
//! (`stale-allow`), so the allowlist cannot rot.

mod config;
mod lexer;
mod rules;

pub use config::{parse as parse_config, AllowEntry, Config, ConfigError};
pub use rules::{Finding, ALL_RULES, RULE_STALE_ALLOW};

use std::fmt;
use std::path::{Path, PathBuf};

/// The result of one analysis run.
#[derive(Debug)]
pub struct Report {
    /// Findings that survived the allowlist, sorted by (file, line,
    /// col).
    pub findings: Vec<Finding>,
    /// How many files were scanned (sanity signal: a broken walk that
    /// scans nothing must not read as a clean run).
    pub files_scanned: usize,
}

impl Report {
    /// True when the run produced no findings.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders findings one per line as `file:line:col RULE message`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!("{}:{}:{} {} {}\n", f.file, f.line, f.col, f.rule, f.message));
        }
        out
    }
}

/// A failure of the run itself (I/O or config), as opposed to
/// findings, which are the run's *output*.
#[derive(Debug)]
pub enum XrayError {
    /// The config file failed to load or parse.
    Config(ConfigError),
    /// A workspace file could not be read.
    Io { path: PathBuf, error: std::io::Error },
    /// An allow entry references a rule id that does not exist.
    UnknownRule { rule: String },
}

impl fmt::Display for XrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XrayError::Config(e) => write!(f, "{e}"),
            XrayError::Io { path, error } => write!(f, "{}: {error}", path.display()),
            XrayError::UnknownRule { rule } => {
                write!(
                    f,
                    "allow entry references unknown rule {rule:?} (known: {})",
                    ALL_RULES.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for XrayError {}

impl From<ConfigError> for XrayError {
    fn from(e: ConfigError) -> XrayError {
        XrayError::Config(e)
    }
}

/// Loads `xray.toml` from `path` and validates rule references.
pub fn load_config(path: &Path) -> Result<Config, XrayError> {
    let text = std::fs::read_to_string(path)
        .map_err(|error| XrayError::Io { path: path.to_owned(), error })?;
    let cfg = config::parse(&text)?;
    for entry in &cfg.allow {
        if !ALL_RULES.contains(&entry.rule.as_str()) {
            return Err(XrayError::UnknownRule { rule: entry.rule.clone() });
        }
    }
    Ok(cfg)
}

/// Analyzes every workspace `src/` file under `root`. Findings matched
/// by an allow entry are suppressed; allow entries that matched nothing
/// become `stale-allow` findings against the config.
pub fn analyze(root: &Path, cfg: &Config) -> Result<Report, XrayError> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut used = vec![false; cfg.allow.len()];
    let mut findings = Vec::new();
    let files_scanned = files.len();
    for rel in files {
        let abs = root.join(&rel);
        let src = std::fs::read_to_string(&abs)
            .map_err(|error| XrayError::Io { path: abs.clone(), error })?;
        findings.extend(check_source(&rel, &src, cfg, &mut used));
    }
    for (i, entry) in cfg.allow.iter().enumerate() {
        if !used[i] {
            findings.push(Finding {
                rule: RULE_STALE_ALLOW,
                file: "xray.toml".to_owned(),
                line: 1,
                col: 1,
                message: format!(
                    "allow entry (rule {:?}, path {:?}, contains {:?}) matched nothing; remove it",
                    entry.rule, entry.path, entry.contains
                ),
            });
        }
    }
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.col).cmp(&(b.file.as_str(), b.line, b.col)));
    Ok(Report { findings, files_scanned })
}

/// Analyzes a single in-memory source file (fixture tests drive this
/// directly). `rel` is the path the rules see for scoping; allow
/// entries in `cfg` are applied but stale entries are not reported.
pub fn analyze_source(rel: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let mut used = vec![false; cfg.allow.len()];
    check_source(rel, src, cfg, &mut used)
}

fn check_source(rel: &str, src: &str, cfg: &Config, used: &mut [bool]) -> Vec<Finding> {
    let lines: Vec<&str> = src.lines().collect();
    rules::scan_file(rel, src, cfg)
        .into_iter()
        .filter(|f| {
            let line_text = lines.get(f.line as usize - 1).copied().unwrap_or("");
            let mut suppressed = false;
            for (i, entry) in cfg.allow.iter().enumerate() {
                if entry.rule == f.rule
                    && path_suffix_match(rel, &entry.path)
                    && line_text.contains(&entry.contains)
                {
                    used[i] = true;
                    suppressed = true;
                }
            }
            !suppressed
        })
        .collect()
}

/// Allow entries match by path suffix on component boundaries, so
/// `net/src/frame.rs` matches `crates/net/src/frame.rs` but `rame.rs`
/// does not.
fn path_suffix_match(rel: &str, suffix: &str) -> bool {
    rel == suffix || rel.ends_with(&format!("/{suffix}"))
}

/// Recursively collects workspace-relative paths of `.rs` files that
/// live under a `src/` directory. Skips `target`, hidden directories,
/// and anything under a `tests/`, `benches/`, or `fixtures/` directory
/// (fixtures violate the rules on purpose; integration tests are
/// covered by clippy's pass, not xray's serving-path rules).
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), XrayError> {
    let entries =
        std::fs::read_dir(dir).map_err(|error| XrayError::Io { path: dir.to_owned(), error })?;
    for entry in entries {
        let entry = entry.map_err(|error| XrayError::Io { path: dir.to_owned(), error })?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target"
                || name == "tests"
                || name == "benches"
                || name == "fixtures"
                || name.starts_with('.')
            {
                continue;
            }
            collect_rs_files(root, &path, out)?;
            continue;
        }
        if !name.ends_with(".rs") {
            continue;
        }
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        if rel.split('/').any(|seg| seg == "src") {
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests assert; unwrap is the assert
mod tests {
    use super::*;

    fn cfg_with_allow() -> Config {
        let mut cfg = Config { no_panic_paths: vec!["crates/net/src".into()], ..Config::default() };
        cfg.allow.push(AllowEntry {
            rule: "no-panic".into(),
            path: "crates/net/src/a.rs".into(),
            contains: "header[".into(),
            why: "fixed-size stack array".into(),
        });
        cfg
    }

    #[test]
    fn allowlist_suppresses_by_line_content() {
        let cfg = cfg_with_allow();
        let hit = "fn f(header: &[u8]) -> u8 { header[0] }";
        assert!(analyze_source("crates/net/src/a.rs", hit, &cfg).is_empty());
        // Same rule, different line content: still fires.
        let miss = "fn f(body: &[u8]) -> u8 { body[0] }";
        assert_eq!(analyze_source("crates/net/src/a.rs", miss, &cfg).len(), 1);
        // Same content, different file: still fires.
        assert_eq!(analyze_source("crates/net/src/b.rs", hit, &cfg).len(), 1);
    }

    #[test]
    fn suffix_match_respects_component_boundaries() {
        assert!(path_suffix_match("crates/net/src/frame.rs", "net/src/frame.rs"));
        assert!(path_suffix_match("crates/net/src/frame.rs", "crates/net/src/frame.rs"));
        assert!(!path_suffix_match("crates/net/src/frame.rs", "rame.rs"));
    }

    #[test]
    fn render_format_is_stable() {
        let report = Report {
            findings: vec![Finding {
                rule: "no-panic",
                file: "crates/net/src/a.rs".into(),
                line: 3,
                col: 7,
                message: "boom".into(),
            }],
            files_scanned: 1,
        };
        assert_eq!(report.render(), "crates/net/src/a.rs:3:7 no-panic boom\n");
    }
}
