//! Parser for `xray.toml` — rule scoping plus the allowlist.
//!
//! The grammar is a deliberately small TOML subset, read by hand (the
//! workspace is std-only): `[section]` and `[[allow]]` headers,
//! `key = "string"`, `key = ["a", "b"]` (arrays may span lines), and
//! `#` comments. Anything outside that subset is a hard error with a
//! line number — a config typo silently skipping a rule would be worse
//! than the tool refusing to run.

use std::collections::BTreeMap;
use std::fmt;

/// One deliberate exception: a finding is suppressed when its file path
/// ends with `path`, its rule equals `rule`, and the *source line text*
/// contains `contains`. Matching on line content rather than line
/// numbers keeps entries from rotting as files shift.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    pub contains: String,
    /// Human justification; required so every exception carries its
    /// reasoning in the diff that adds it.
    pub why: String,
}

/// Scoping and parameters for the rule set.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Path prefixes (workspace-relative) where `no-panic` applies.
    pub no_panic_paths: Vec<String>,
    /// Path prefixes where `typed-errors` applies to `pub fn` returns.
    pub typed_errors_paths: Vec<String>,
    /// Receiver name of the maintenance `Mutex` (lock-order rule).
    pub maintenance_receiver: String,
    /// Receiver name of the epoch `RwLock` (lock-order rule).
    pub epoch_receiver: String,
    /// Receiver name of the buffer-pool interior mutex (lock-order).
    pub pool_receiver: String,
    /// Receiver name of per-frame data locks (lock-order).
    pub frame_receiver: String,
    /// File containing the untraced executor (purity rule).
    pub purity_file: String,
    /// Function names inside `purity_file` that must stay timing-free.
    pub purity_functions: Vec<String>,
    /// Identifiers forbidden inside those functions.
    pub purity_forbid: Vec<String>,
    /// Path prefixes where `no-blocking-in-handler` applies: request
    /// dispatch code that must not do filesystem work inline.
    pub blocking_paths: Vec<String>,
    /// Identifiers forbidden in those paths (outside `#[cfg(test)]`).
    pub blocking_forbid: Vec<String>,
    /// Deliberate exceptions.
    pub allow: Vec<AllowEntry>,
}

/// A config-file syntax or completeness error, with its line number.
#[derive(Debug)]
pub struct ConfigError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xray.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: u32, message: impl Into<String>) -> ConfigError {
    ConfigError { line, message: message.into() }
}

#[derive(Debug, Clone)]
enum Value {
    Str(String),
    List(Vec<String>),
}

impl Value {
    fn into_str(self, line: u32, key: &str) -> Result<String, ConfigError> {
        match self {
            Value::Str(s) => Ok(s),
            Value::List(_) => Err(err(line, format!("key {key:?} must be a string"))),
        }
    }

    fn into_list(self, line: u32, key: &str) -> Result<Vec<String>, ConfigError> {
        match self {
            Value::List(l) => Ok(l),
            Value::Str(_) => Err(err(line, format!("key {key:?} must be an array"))),
        }
    }
}

/// A `[section]` or one `[[allow]]` instance, as raw key/value pairs.
struct Section {
    name: String,
    header_line: u32,
    entries: BTreeMap<String, (u32, Value)>,
}

/// Parses config text into a [`Config`], validating that every section
/// and key is one the tool knows about.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    let sections = split_sections(text)?;
    let mut cfg = Config::default();
    for mut sec in sections {
        let line = sec.header_line;
        match sec.name.as_str() {
            "rule.no-panic" => {
                cfg.no_panic_paths = take_list(&mut sec, "paths")?;
                finish(sec)?;
            }
            "rule.typed-errors" => {
                cfg.typed_errors_paths = take_list(&mut sec, "paths")?;
                finish(sec)?;
            }
            "rule.lock-order" => {
                cfg.maintenance_receiver = take_str(&mut sec, "maintenance_receiver")?;
                cfg.epoch_receiver = take_str(&mut sec, "epoch_receiver")?;
                cfg.pool_receiver = take_str(&mut sec, "pool_receiver")?;
                cfg.frame_receiver = take_str(&mut sec, "frame_receiver")?;
                finish(sec)?;
            }
            "rule.untraced-purity" => {
                cfg.purity_file = take_str(&mut sec, "file")?;
                cfg.purity_functions = take_list(&mut sec, "functions")?;
                cfg.purity_forbid = take_list(&mut sec, "forbid")?;
                finish(sec)?;
            }
            "rule.no-blocking-in-handler" => {
                cfg.blocking_paths = take_list(&mut sec, "paths")?;
                cfg.blocking_forbid = take_list(&mut sec, "forbid")?;
                finish(sec)?;
            }
            "allow" => {
                let entry = AllowEntry {
                    rule: take_str(&mut sec, "rule")?,
                    path: take_str(&mut sec, "path")?,
                    contains: take_str(&mut sec, "contains")?,
                    why: take_str(&mut sec, "why")?,
                };
                if entry.why.trim().is_empty() {
                    return Err(err(line, "allow entry has an empty `why` justification"));
                }
                finish(sec)?;
                cfg.allow.push(entry);
            }
            other => return Err(err(line, format!("unknown section [{other}]"))),
        }
    }
    Ok(cfg)
}

fn take_str(sec: &mut Section, key: &str) -> Result<String, ConfigError> {
    match sec.entries.remove(key) {
        Some((line, v)) => v.into_str(line, key),
        None => Err(err(sec.header_line, format!("section [{}] is missing key {key:?}", sec.name))),
    }
}

fn take_list(sec: &mut Section, key: &str) -> Result<Vec<String>, ConfigError> {
    match sec.entries.remove(key) {
        Some((line, v)) => v.into_list(line, key),
        None => Err(err(sec.header_line, format!("section [{}] is missing key {key:?}", sec.name))),
    }
}

fn finish(sec: Section) -> Result<(), ConfigError> {
    if let Some((key, (line, _))) = sec.entries.into_iter().next() {
        return Err(err(line, format!("unknown key {key:?} in section [{}]", sec.name)));
    }
    Ok(())
}

fn split_sections(text: &str) -> Result<Vec<Section>, ConfigError> {
    let mut sections: Vec<Section> = Vec::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx as u32 + 1;
        let line = strip_comment(raw).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let name =
                rest.strip_suffix("]]").ok_or_else(|| err(lineno, "malformed [[table]] header"))?;
            sections.push(Section {
                name: name.trim().to_owned(),
                header_line: lineno,
                entries: BTreeMap::new(),
            });
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name =
                rest.strip_suffix(']').ok_or_else(|| err(lineno, "malformed [section] header"))?;
            sections.push(Section {
                name: name.trim().to_owned(),
                header_line: lineno,
                entries: BTreeMap::new(),
            });
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(err(lineno, format!("expected `key = value`, got {line:?}")));
        };
        let key = line[..eq].trim().to_owned();
        let mut value = line[eq + 1..].trim().to_owned();
        // Arrays may span lines: keep consuming until brackets balance.
        while value.starts_with('[') && !array_closed(&value) {
            let Some((_, next)) = lines.next() else {
                return Err(err(lineno, format!("unterminated array for key {key:?}")));
            };
            value.push(' ');
            value.push_str(strip_comment(next).trim());
        }
        let parsed = parse_value(&value, lineno)?;
        let Some(sec) = sections.last_mut() else {
            return Err(err(lineno, format!("key {key:?} appears before any [section]")));
        };
        if sec.entries.insert(key.clone(), (lineno, parsed)).is_some() {
            return Err(err(lineno, format!("duplicate key {key:?} in section [{}]", sec.name)));
        }
    }
    Ok(sections)
}

/// Strips a `#` comment, respecting `#` inside double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escape = false;
    for (i, c) in line.char_indices() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str => escape = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// True once a `[` array literal has its matching `]` outside strings.
fn array_closed(value: &str) -> bool {
    let mut in_str = false;
    let mut escape = false;
    for c in value.chars() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str => escape = true,
            '"' => in_str = !in_str,
            ']' if !in_str => return true,
            _ => {}
        }
    }
    false
}

fn parse_value(value: &str, line: u32) -> Result<Value, ConfigError> {
    if let Some(body) = value.strip_prefix('[') {
        let body =
            body.strip_suffix(']').ok_or_else(|| err(line, "array missing closing bracket"))?;
        let mut items = Vec::new();
        let mut rest = body.trim();
        while !rest.is_empty() {
            if rest.starts_with(',') {
                rest = rest[1..].trim_start();
                continue;
            }
            let (s, remainder) = parse_string(rest, line)?;
            items.push(s);
            rest = remainder.trim_start();
        }
        return Ok(Value::List(items));
    }
    let (s, rest) = parse_string(value, line)?;
    if !rest.trim().is_empty() {
        return Err(err(line, format!("trailing content after string: {rest:?}")));
    }
    Ok(Value::Str(s))
}

/// Parses one double-quoted string off the front of `input`, handling
/// `\"` and `\\` escapes; returns (string, remainder).
fn parse_string(input: &str, line: u32) -> Result<(String, &str), ConfigError> {
    let rest = input
        .strip_prefix('"')
        .ok_or_else(|| err(line, format!("expected a double-quoted string at {input:?}")))?;
    let mut out = String::new();
    let mut escape = false;
    for (i, c) in rest.char_indices() {
        if escape {
            out.push(match c {
                'n' => '\n',
                't' => '\t',
                other => other,
            });
            escape = false;
            continue;
        }
        match c {
            '\\' => escape = true,
            '"' => return Ok((out, &rest[i + 1..])),
            other => out.push(other),
        }
    }
    Err(err(line, "unterminated string"))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests assert; unwrap is the assert
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# scoping for the panic rule
[rule.no-panic]
paths = [
    "crates/net/src",
    "crates/service/src", # serving dispatch
]

[rule.typed-errors]
paths = ["crates/net/src"]

[rule.lock-order]
maintenance_receiver = "maintenance"
epoch_receiver = "epoch"
pool_receiver = "inner"
frame_receiver = "data"

[rule.untraced-purity]
file = "crates/core/src/engine.rs"
functions = ["execute"]
forbid = ["Instant", "Trace"]

[rule.no-blocking-in-handler]
paths = ["crates/net/src/server.rs"]
forbid = ["File", "read_to_string"]

[[allow]]
rule = "no-panic"
path = "crates/net/src/frame.rs"
contains = "header["
why = "fixed-size stack array, constant offsets"
"#;

    #[test]
    fn parses_full_config() {
        let cfg = parse(SAMPLE).unwrap();
        assert_eq!(cfg.no_panic_paths, vec!["crates/net/src", "crates/service/src"]);
        assert_eq!(cfg.maintenance_receiver, "maintenance");
        assert_eq!(cfg.purity_functions, vec!["execute"]);
        assert_eq!(cfg.blocking_paths, vec!["crates/net/src/server.rs"]);
        assert_eq!(cfg.blocking_forbid, vec!["File", "read_to_string"]);
        assert_eq!(cfg.allow.len(), 1);
        assert_eq!(cfg.allow[0].contains, "header[");
    }

    #[test]
    fn rejects_unknown_section_and_key() {
        assert!(parse("[rule.nonsense]\npaths = []\n").is_err());
        let e = parse("[rule.no-panic]\npaths = []\nbogus = \"x\"\n").unwrap_err();
        assert!(e.to_string().contains("bogus"), "{e}");
    }

    #[test]
    fn rejects_empty_justification() {
        let text = "[[allow]]\nrule = \"r\"\npath = \"p\"\ncontains = \"c\"\nwhy = \"  \"\n";
        assert!(parse(text).unwrap_err().to_string().contains("justification"));
    }

    #[test]
    fn hash_inside_strings_is_not_a_comment() {
        let text = "[[allow]]\nrule = \"r\"\npath = \"p\"\ncontains = \"a # b\"\nwhy = \"ok\"\n";
        assert_eq!(parse(text).unwrap().allow[0].contains, "a # b");
    }

    #[test]
    fn missing_key_names_the_section() {
        let e = parse("[rule.lock-order]\nmaintenance_receiver = \"m\"\n").unwrap_err();
        assert!(e.to_string().contains("lock-order"), "{e}");
    }
}
