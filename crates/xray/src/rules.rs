//! The rule engine: walks one file's token stream and reports
//! violations of the serving layer's invariants.
//!
//! Shared machinery lives in [`FileView`]: comment-free token indexing,
//! `#[cfg(test)]` suppression spans, and function-boundary spans (both
//! the lock-order and purity rules are function-scoped, and the
//! typed-errors rule needs signatures). Each rule is then a small pass
//! over that view.

use crate::config::Config;
use crate::lexer::{lex, Token, TokenKind};

/// One rule violation, pinned to a source position.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier (`no-panic`, `lock-order`, …).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Rule identifiers, shared with the renderer and the allowlist.
pub const RULE_NO_PANIC: &str = "no-panic";
pub const RULE_LOCK_ORDER: &str = "lock-order";
pub const RULE_TYPED_ERRORS: &str = "typed-errors";
pub const RULE_UNTRACED_PURITY: &str = "untraced-purity";
pub const RULE_SAFETY_COMMENTS: &str = "safety-comments";
pub const RULE_NO_BLOCKING: &str = "no-blocking-in-handler";
/// Reported against the config file itself when an allow entry matches
/// nothing — stale exceptions are drift, not documentation.
pub const RULE_STALE_ALLOW: &str = "stale-allow";

/// Every rule id the allowlist may reference.
pub const ALL_RULES: &[&str] = &[
    RULE_NO_PANIC,
    RULE_LOCK_ORDER,
    RULE_TYPED_ERRORS,
    RULE_UNTRACED_PURITY,
    RULE_SAFETY_COMMENTS,
    RULE_NO_BLOCKING,
];

/// True when `rel` is `prefix` itself or lies under it as a directory.
fn path_in(rel: &str, prefix: &str) -> bool {
    rel == prefix || (rel.starts_with(prefix) && rel[prefix.len()..].starts_with('/'))
}

fn path_in_any(rel: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| path_in(rel, p))
}

/// A function found in the token stream. Ranges index into
/// [`FileView::code`] (comment-free token positions).
struct FnSpan {
    name: String,
    /// Position of the `fn` keyword.
    fn_ci: usize,
    /// Signature: from after the name up to (exclusive) the body brace
    /// or terminating semicolon.
    sig: (usize, usize),
    /// Body: positions of the `{` and its matching `}`; `None` for
    /// bodyless trait-method declarations.
    body: Option<(usize, usize)>,
}

/// Pre-computed navigation over one file's tokens.
struct FileView<'a> {
    tokens: &'a [Token],
    /// Indices of non-comment tokens, in order.
    code: Vec<usize>,
    /// Ranges over `code` positions covered by a `#[cfg(test)]` item.
    suppressed: Vec<(usize, usize)>,
    fns: Vec<FnSpan>,
}

impl<'a> FileView<'a> {
    fn new(tokens: &'a [Token]) -> FileView<'a> {
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let mut view = FileView { tokens, code, suppressed: Vec::new(), fns: Vec::new() };
        view.suppressed = view.find_cfg_test_spans();
        view.fns = view.find_fns();
        view
    }

    fn tok(&self, ci: usize) -> &Token {
        &self.tokens[self.code[ci]]
    }

    fn len(&self) -> usize {
        self.code.len()
    }

    fn is_ident(&self, ci: usize, text: &str) -> bool {
        ci < self.len() && self.tok(ci).is_ident(text)
    }

    fn is_punct(&self, ci: usize, text: &str) -> bool {
        ci < self.len() && self.tok(ci).is_punct(text)
    }

    fn suppressed(&self, ci: usize) -> bool {
        self.suppressed.iter().any(|&(a, b)| ci >= a && ci <= b)
    }

    /// Finds every `#[cfg(test)]`-attributed item and returns the span
    /// from the attribute through the item's closing `}` (or `;`).
    /// `#[cfg(all(test, …))]` counts too: any `cfg` attribute whose
    /// argument mentions `test` is treated as test-only.
    fn find_cfg_test_spans(&self) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        let mut ci = 0;
        while ci + 1 < self.len() {
            if !(self.is_punct(ci, "#") && self.is_punct(ci + 1, "[")) {
                ci += 1;
                continue;
            }
            let attr_start = ci;
            let Some(attr_end) = self.match_delim(ci + 1, "[", "]") else { break };
            let is_cfg_test = self.is_ident(ci + 2, "cfg")
                && (ci + 2..attr_end).any(|i| self.is_ident(i, "test"));
            ci = attr_end + 1;
            if !is_cfg_test {
                continue;
            }
            // Skip any further attributes stacked on the same item.
            let mut item = ci;
            while self.is_punct(item, "#") && self.is_punct(item + 1, "[") {
                match self.match_delim(item + 1, "[", "]") {
                    Some(end) => item = end + 1,
                    None => return spans,
                }
            }
            // The item ends at its matching `}` — or at `;` before any
            // brace opens (e.g. `use` declarations).
            let mut j = item;
            let end = loop {
                if j >= self.len() {
                    break self.len().saturating_sub(1);
                }
                if self.is_punct(j, ";") {
                    break j;
                }
                if self.is_punct(j, "{") {
                    break self.match_delim(j, "{", "}").unwrap_or(self.len() - 1);
                }
                j += 1;
            };
            spans.push((attr_start, end));
            ci = end + 1;
        }
        spans
    }

    /// Given the position of an opening delimiter, returns the position
    /// of its matching closer.
    fn match_delim(&self, open_ci: usize, open: &str, close: &str) -> Option<usize> {
        let mut depth = 0i32;
        for ci in open_ci..self.len() {
            if self.is_punct(ci, open) {
                depth += 1;
            } else if self.is_punct(ci, close) {
                depth -= 1;
                if depth == 0 {
                    return Some(ci);
                }
            }
        }
        None
    }

    fn find_fns(&self) -> Vec<FnSpan> {
        let mut fns = Vec::new();
        let mut ci = 0;
        while ci + 1 < self.len() {
            if !self.is_ident(ci, "fn") || self.tok(ci + 1).kind != TokenKind::Ident {
                ci += 1;
                continue;
            }
            let name = self.tok(ci + 1).text.clone();
            // The body `{` is the first brace at paren/bracket depth 0
            // after the name; a `;` there instead means no body.
            let mut depth = 0i32;
            let mut j = ci + 2;
            let mut sig_end = None;
            let mut body = None;
            while j < self.len() {
                let t = self.tok(j);
                if t.kind == TokenKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => {
                            sig_end = Some(j);
                            body = self.match_delim(j, "{", "}").map(|end| (j, end));
                            break;
                        }
                        ";" if depth == 0 => {
                            sig_end = Some(j);
                            break;
                        }
                        _ => {}
                    }
                }
                j += 1;
            }
            let sig_end = sig_end.unwrap_or(self.len());
            fns.push(FnSpan { name, fn_ci: ci, sig: (ci + 2, sig_end), body });
            // Continue *inside* the signature/body so nested fns are
            // found too.
            ci += 2;
        }
        fns
    }
}

/// Runs every applicable rule over one file. `rel` is the file's
/// workspace-relative path with forward slashes.
pub fn scan_file(rel: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let tokens = lex(src);
    let view = FileView::new(&tokens);
    let mut findings = Vec::new();
    if path_in_any(rel, &cfg.no_panic_paths) {
        rule_no_panic(rel, &view, &mut findings);
    }
    rule_lock_order(rel, &view, cfg, &mut findings);
    if path_in_any(rel, &cfg.typed_errors_paths) {
        rule_typed_errors(rel, &view, &mut findings);
    }
    if rel == cfg.purity_file {
        rule_untraced_purity(rel, &view, cfg, &mut findings);
    }
    if path_in_any(rel, &cfg.blocking_paths) {
        rule_no_blocking(rel, &view, cfg, &mut findings);
    }
    rule_safety_comments(rel, &view, &mut findings);
    findings.sort_by_key(|f| (f.line, f.col));
    findings
}

fn finding(rule: &'static str, rel: &str, tok: &Token, message: String) -> Finding {
    Finding { rule, file: rel.to_owned(), line: tok.line, col: tok.col, message }
}

/// Keywords that can legitimately precede `[` without it being an
/// indexing expression (slice patterns, array types, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "match", "if", "else", "return", "break", "continue", "move",
    "const", "static", "as", "dyn", "impl", "fn", "where", "use", "pub", "crate", "box", "unsafe",
    "type",
];

/// Rule 1: no panic paths in serving crates. Flags `.unwrap()`,
/// `.expect(…)`, `panic!`/`unreachable!`/`todo!`/`unimplemented!`, and
/// `x[…]` indexing (which can panic out-of-bounds) outside
/// `#[cfg(test)]`.
fn rule_no_panic(rel: &str, view: &FileView<'_>, out: &mut Vec<Finding>) {
    for ci in 0..view.len() {
        if view.suppressed(ci) {
            continue;
        }
        let t = view.tok(ci);
        match t.kind {
            TokenKind::Ident => {
                let callish = ci > 0 && view.is_punct(ci - 1, ".") && view.is_punct(ci + 1, "(");
                if callish && (t.text == "unwrap" || t.text == "expect") {
                    out.push(finding(
                        RULE_NO_PANIC,
                        rel,
                        t,
                        format!(
                            ".{}() can panic on a serving path; return a typed error or recover",
                            t.text
                        ),
                    ));
                }
                let macroish = view.is_punct(ci + 1, "!");
                if macroish
                    && matches!(t.text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
                {
                    out.push(finding(
                        RULE_NO_PANIC,
                        rel,
                        t,
                        format!("{}! aborts the connection thread; return a typed error", t.text),
                    ));
                }
            }
            TokenKind::Punct if t.text == "[" && ci > 0 => {
                let prev = view.tok(ci - 1);
                let indexing = match prev.kind {
                    TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                    TokenKind::Punct => prev.text == ")" || prev.text == "]",
                    _ => false,
                };
                if indexing {
                    out.push(finding(
                        RULE_NO_PANIC,
                        rel,
                        t,
                        "indexing can panic out-of-bounds; use .get()/.get_mut() or slice with care".to_owned(),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// What a lock-site method call means for ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockKind {
    Maintenance,
    Epoch,
    Pool,
    Frame,
}

/// Rule 2: lock acquisition order. The serving layer's documented order
/// is maintenance mutex → epoch RwLock → pool frame locks, and a frame
/// lock must never be held across a second pool-mutex acquisition. The
/// pass walks each function body, tracks `let`-bound guards (a guard
/// consumed in the same expression — e.g. `.read().clone()` — dies at
/// the statement end and is not tracked), and flags acquisitions that
/// invert the order while an earlier guard is live.
fn rule_lock_order(rel: &str, view: &FileView<'_>, cfg: &Config, out: &mut Vec<Finding>) {
    if cfg.maintenance_receiver.is_empty() {
        return; // rule unconfigured
    }
    for f in &view.fns {
        let Some((body_start, body_end)) = f.body else { continue };
        if view.suppressed(f.fn_ci) {
            continue;
        }
        // Live guards: (kind, binding name, brace depth at binding).
        let mut live: Vec<(LockKind, Option<String>, i32)> = Vec::new();
        let mut depth = 0i32;
        for ci in body_start..=body_end {
            let t = view.tok(ci);
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        live.retain(|&(_, _, d)| d <= depth);
                    }
                    _ => {}
                }
                continue;
            }
            // drop(name) releases a guard early.
            if t.is_ident("drop") && view.is_punct(ci + 1, "(") {
                if ci + 2 <= body_end && view.tok(ci + 2).kind == TokenKind::Ident {
                    let name = &view.tok(ci + 2).text;
                    live.retain(|(_, n, _)| n.as_deref() != Some(name.as_str()));
                }
                continue;
            }
            // Lock site: `recv . method ( )` with a configured receiver.
            let Some((kind, site)) = lock_event(view, ci, cfg) else { continue };
            match kind {
                LockKind::Maintenance if live.iter().any(|&(k, _, _)| k == LockKind::Epoch) => {
                    out.push(finding(
                        RULE_LOCK_ORDER,
                        rel,
                        site,
                        format!(
                            "fn {} acquires the maintenance mutex while an epoch guard is live; required order is maintenance -> epoch",
                            f.name
                        ),
                    ));
                }
                LockKind::Pool if live.iter().any(|&(k, _, _)| k == LockKind::Frame) => {
                    out.push(finding(
                        RULE_LOCK_ORDER,
                        rel,
                        site,
                        format!(
                            "fn {} re-acquires the buffer-pool mutex while holding a frame lock; release the frame first",
                            f.name
                        ),
                    ));
                }
                _ => {}
            }
            if let Some(name) = let_binding_for(view, ci, body_start) {
                live.push((kind, Some(name), depth));
            }
        }
    }
}

/// If `ci` starts a `recv.method()` lock acquisition on one of the
/// configured receivers, returns its kind and the receiver token.
fn lock_event<'v>(
    view: &'v FileView<'_>,
    ci: usize,
    cfg: &Config,
) -> Option<(LockKind, &'v Token)> {
    let recv = view.tok(ci);
    if recv.kind != TokenKind::Ident {
        return None;
    }
    if !(view.is_punct(ci + 1, ".") && view.is_punct(ci + 3, "(")) {
        return None;
    }
    let method = view.tok(ci + 2);
    if method.kind != TokenKind::Ident {
        return None;
    }
    let kind = match (recv.text.as_str(), method.text.as_str()) {
        (r, "lock") if r == cfg.maintenance_receiver => LockKind::Maintenance,
        (r, "lock") if r == cfg.pool_receiver => LockKind::Pool,
        (r, "read" | "write") if r == cfg.epoch_receiver => LockKind::Epoch,
        (r, "read" | "write" | "lock") if r == cfg.frame_receiver => LockKind::Frame,
        _ => return None,
    };
    Some((kind, recv))
}

/// If the lock expression at `ci` is the whole right-hand side of a
/// `let` statement (`let g = recv.read();`), returns the binding name.
/// A guard consumed further in the same expression (`.clone()`, a
/// method chain) is a temporary; it dies at the statement end and is
/// not treated as held.
fn let_binding_for(view: &FileView<'_>, recv_ci: usize, body_start: usize) -> Option<String> {
    // Walk right: the call's `)` must be followed by `;`.
    let close = view.match_delim(recv_ci + 3, "(", ")")?;
    if !view.is_punct(close + 1, ";") {
        return None;
    }
    // Walk left over the receiver chain (`self . pool . inner`), then
    // expect `= name [mut] let`.
    let mut ci = recv_ci;
    while ci >= 2 && view.is_punct(ci - 1, ".") && view.tok(ci - 2).kind == TokenKind::Ident {
        ci -= 2;
    }
    if ci == body_start || !view.is_punct(ci - 1, "=") {
        return None;
    }
    let name_ci = ci.checked_sub(2)?;
    let name = view.tok(name_ci);
    if name.kind != TokenKind::Ident {
        return None;
    }
    let mut before = name_ci.checked_sub(1)?;
    if view.is_ident(before, "mut") {
        before = before.checked_sub(1)?;
    }
    if view.is_ident(before, "let") {
        Some(name.text.clone())
    } else {
        None
    }
}

/// Rule 3: typed errors in public signatures. A `pub fn` in the scoped
/// crates returning `Result` must not leak `String`,
/// `Box<dyn Error>`, or `io::Error` as its error type.
fn rule_typed_errors(rel: &str, view: &FileView<'_>, out: &mut Vec<Finding>) {
    for f in &view.fns {
        if view.suppressed(f.fn_ci) {
            continue;
        }
        // Plain `pub fn` only: `pub(crate)` is not a public signature.
        if f.fn_ci == 0 || !view.is_ident(f.fn_ci - 1, "pub") {
            continue;
        }
        let (sig_start, sig_end) = f.sig;
        // Find `->` at paren/bracket depth 0.
        let mut depth = 0i32;
        let mut arrow = None;
        for ci in sig_start..sig_end {
            let t = view.tok(ci);
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "-" if depth == 0 && view.is_punct(ci + 1, ">") => {
                        arrow = Some(ci + 2);
                        break;
                    }
                    _ => {}
                }
            }
        }
        let Some(ret_start) = arrow else { continue };
        // Return type runs to the body brace / `;` or a `where` clause.
        let mut ret_end = sig_end;
        for ci in ret_start..sig_end {
            if view.is_ident(ci, "where") {
                ret_end = ci;
                break;
            }
        }
        check_return_type(rel, view, &f.name, ret_start, ret_end, out);
    }
}

fn check_return_type(
    rel: &str,
    view: &FileView<'_>,
    fn_name: &str,
    ret_start: usize,
    ret_end: usize,
    out: &mut Vec<Finding>,
) {
    // Locate `Result` (if any) in the return type.
    let Some(res_ci) = (ret_start..ret_end).find(|&ci| view.is_ident(ci, "Result")) else {
        return;
    };
    let site = view.tok(res_ci);
    // `io::Result` / `std::io::Result` leak io::Error through an alias.
    if res_ci >= 3 && view.is_ident(res_ci - 3, "io") && view.is_punct(res_ci - 1, ":") {
        out.push(finding(
            RULE_TYPED_ERRORS,
            rel,
            site,
            format!("pub fn {fn_name} returns std::io::Result; define a crate-local error type"),
        ));
        return;
    }
    // Split `Result<..>` generics and inspect the error argument.
    if !view.is_punct(res_ci + 1, "<") {
        return; // bare alias like `ServiceResult` — assumed typed
    }
    let mut depth = 0i32;
    let mut top_comma = None;
    let mut end = ret_end;
    for ci in res_ci + 1..ret_end {
        let t = view.tok(ci);
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    end = ci;
                    break;
                }
            }
            "," if depth == 1 => top_comma = top_comma.or(Some(ci)),
            _ => {}
        }
    }
    let Some(comma) = top_comma else { return }; // single-arg alias
    let err_range = comma + 1..end;
    let bad = (err_range.clone()).find_map(|ci| {
        let t = view.tok(ci);
        if t.is_ident("String") {
            return Some("String");
        }
        if t.is_ident("Box") && view.is_punct(ci + 1, "<") && view.is_ident(ci + 2, "dyn") {
            return Some("Box<dyn Error>");
        }
        if t.is_ident("Error") && ci >= 3 && view.is_ident(ci - 3, "io") {
            return Some("io::Error");
        }
        None
    });
    if let Some(ty) = bad {
        out.push(finding(
            RULE_TYPED_ERRORS,
            rel,
            site,
            format!(
                "pub fn {fn_name} leaks {ty} in its public Result; use a crate-local typed error"
            ),
        ));
    }
}

/// Rule 4: untraced-executor purity. The configured functions must not
/// mention any of the forbidden identifiers (timing, span machinery) —
/// the untraced executor's zero-overhead guarantee is load-bearing for
/// the PR-7 benchmark methodology.
fn rule_untraced_purity(rel: &str, view: &FileView<'_>, cfg: &Config, out: &mut Vec<Finding>) {
    for f in &view.fns {
        if !cfg.purity_functions.contains(&f.name) {
            continue;
        }
        let Some((body_start, body_end)) = f.body else { continue };
        for ci in body_start..=body_end {
            let t = view.tok(ci);
            if t.kind == TokenKind::Ident && cfg.purity_forbid.contains(&t.text) {
                out.push(finding(
                    RULE_UNTRACED_PURITY,
                    rel,
                    t,
                    format!(
                        "untraced executor fn {} must stay instrumentation-free, but mentions `{}`",
                        f.name, t.text
                    ),
                ));
            }
        }
    }
}

/// Rule 6: no blocking filesystem work in request-dispatch code. The
/// configured paths run on connection threads where every millisecond
/// of inline I/O is tail latency for that peer; filesystem access
/// belongs behind the catalog's attach path or in maintenance. Flags
/// any configured identifier outside `#[cfg(test)]`; deliberate
/// exceptions (e.g. catalog open-on-demand) go in the allowlist with a
/// justification.
fn rule_no_blocking(rel: &str, view: &FileView<'_>, cfg: &Config, out: &mut Vec<Finding>) {
    for ci in 0..view.len() {
        if view.suppressed(ci) {
            continue;
        }
        let t = view.tok(ci);
        if t.kind == TokenKind::Ident && cfg.blocking_forbid.contains(&t.text) {
            out.push(finding(
                RULE_NO_BLOCKING,
                rel,
                t,
                format!(
                    "request-dispatch code must not block on the filesystem, but mentions `{}`",
                    t.text
                ),
            ));
        }
    }
}

/// Rule 5: every `unsafe` keyword needs a `// SAFETY:` comment on one
/// of the three lines above it (or its own line). Applies everywhere,
/// tests included — a safety argument is documentation, not overhead.
fn rule_safety_comments(rel: &str, view: &FileView<'_>, out: &mut Vec<Finding>) {
    /// The last source line a comment token touches (block comments
    /// span several).
    fn last_line(t: &Token) -> u32 {
        t.line + t.text.chars().filter(|&c| c == '\n').count() as u32
    }
    // Lines "covered" by a safety comment. A contiguous run of `//`
    // lines counts as one comment: if any line of the run says
    // `SAFETY:`, the whole run covers (the explanation may span
    // several lines between the marker and the unsafe itself). Block
    // comments cover every line they span.
    let mut safety_lines: Vec<u32> = Vec::new();
    let comments: Vec<&Token> = view
        .tokens
        .iter()
        .filter(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    let mut i = 0;
    while i < comments.len() {
        // Group a run of consecutive-line comments.
        let mut j = i;
        while j + 1 < comments.len() && comments[j + 1].line <= last_line(comments[j]) + 1 {
            j += 1;
        }
        if comments[i..=j].iter().any(|t| t.text.to_ascii_lowercase().contains("safety:")) {
            safety_lines.extend(comments[i].line..=last_line(comments[j]));
        }
        i = j + 1;
    }
    for ci in 0..view.len() {
        let t = view.tok(ci);
        if !t.is_ident("unsafe") {
            continue;
        }
        let covered = safety_lines.iter().any(|&l| l <= t.line && l + 3 >= t.line);
        if !covered {
            out.push(finding(
                RULE_SAFETY_COMMENTS,
                rel,
                t,
                "unsafe without a `// SAFETY:` comment explaining why it is sound".to_owned(),
            ));
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests assert; unwrap is the assert
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config {
            no_panic_paths: vec!["crates/net/src".into()],
            typed_errors_paths: vec!["crates/net/src".into()],
            maintenance_receiver: "maintenance".into(),
            epoch_receiver: "epoch".into(),
            pool_receiver: "inner".into(),
            frame_receiver: "data".into(),
            purity_file: "crates/core/src/engine.rs".into(),
            purity_functions: vec!["execute".into()],
            purity_forbid: vec!["Instant".into(), "Trace".into()],
            blocking_paths: vec!["crates/net/src/server.rs".into()],
            blocking_forbid: vec!["File".into(), "read_to_string".into()],
            allow: Vec::new(),
        }
    }

    fn rules_fired(rel: &str, src: &str) -> Vec<&'static str> {
        scan_file(rel, src, &cfg()).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn unwrap_fires_only_in_scoped_paths() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(rules_fired("crates/net/src/a.rs", src), vec![RULE_NO_PANIC]);
        assert!(rules_fired("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_suppresses_no_panic() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { None::<u8>.unwrap(); }\n}";
        assert!(rules_fired("crates/net/src/a.rs", src).is_empty());
    }

    #[test]
    fn blocking_fs_work_fires_only_in_handler_paths_and_not_in_tests() {
        let src = "fn f() -> String { std::fs::read_to_string(\"x\").unwrap_or_default() }";
        assert!(rules_fired("crates/net/src/server.rs", src).contains(&RULE_NO_BLOCKING));
        assert!(!rules_fired("crates/net/src/client.rs", src).contains(&RULE_NO_BLOCKING));
        let test_src = "#[cfg(test)]\nmod tests {\n use std::fs::File;\n}";
        assert!(!rules_fired("crates/net/src/server.rs", test_src).contains(&RULE_NO_BLOCKING));
    }

    #[test]
    fn slice_patterns_do_not_count_as_indexing() {
        let src = "fn f(a: [u8; 2]) -> u8 { let [x, _] = a; x }";
        assert!(rules_fired("crates/net/src/a.rs", src).is_empty());
        let src = "fn f(a: &[u8]) -> u8 { a[0] }";
        assert_eq!(rules_fired("crates/net/src/a.rs", src), vec![RULE_NO_PANIC]);
    }

    #[test]
    fn lock_order_flags_epoch_before_maintenance() {
        let src = "fn f(&self) { let e = self.epoch.read(); let m = self.maintenance.lock(); }";
        assert_eq!(rules_fired("crates/x/src/a.rs", src), vec![RULE_LOCK_ORDER]);
        // Correct order is clean.
        let ok = "fn f(&self) { let m = self.maintenance.lock(); let e = self.epoch.read(); }";
        assert!(rules_fired("crates/x/src/a.rs", ok).is_empty());
    }

    #[test]
    fn lock_order_respects_scopes_and_drop() {
        // Guard dropped before the second acquisition: clean.
        let dropped =
            "fn f(&self) { let e = self.epoch.read(); drop(e); let m = self.maintenance.lock(); }";
        assert!(rules_fired("crates/x/src/a.rs", dropped).is_empty());
        // Guard scoped to an inner block: clean.
        let scoped =
            "fn f(&self) { { let e = self.epoch.read(); } let m = self.maintenance.lock(); }";
        assert!(rules_fired("crates/x/src/a.rs", scoped).is_empty());
        // Momentary pin (`.read().clone()`) is a temporary: clean.
        let pin =
            "fn f(&self) { let s = self.epoch.read().clone(); let m = self.maintenance.lock(); }";
        assert!(rules_fired("crates/x/src/a.rs", pin).is_empty());
    }

    #[test]
    fn frame_across_pool_fires() {
        let src = "fn f(&self) { let g = frame.data.write(); let p = self.inner.lock(); }";
        assert_eq!(rules_fired("crates/x/src/a.rs", src), vec![RULE_LOCK_ORDER]);
    }

    #[test]
    fn typed_errors_flags_leaky_signatures() {
        let bad = "pub fn f() -> Result<u8, String> { Ok(0) }";
        assert_eq!(rules_fired("crates/net/src/a.rs", bad), vec![RULE_TYPED_ERRORS]);
        let io_alias = "pub fn f() -> io::Result<u8> { Ok(0) }";
        assert_eq!(rules_fired("crates/net/src/a.rs", io_alias), vec![RULE_TYPED_ERRORS]);
        let boxed = "pub fn f() -> Result<u8, Box<dyn std::error::Error>> { Ok(0) }";
        assert_eq!(rules_fired("crates/net/src/a.rs", boxed), vec![RULE_TYPED_ERRORS]);
        let typed = "pub fn f() -> Result<u8, FrameError> { Ok(0) }";
        assert!(rules_fired("crates/net/src/a.rs", typed).is_empty());
        // pub(crate) is not a public signature.
        let scoped = "pub(crate) fn f() -> Result<u8, String> { Ok(0) }";
        assert!(rules_fired("crates/net/src/a.rs", scoped).is_empty());
    }

    #[test]
    fn purity_rule_is_function_scoped() {
        let src = "fn execute(&self) { let t = Instant::now(); }\nfn execute_traced(&self) { let t = Instant::now(); }";
        let fired = scan_file("crates/core/src/engine.rs", src, &cfg());
        assert_eq!(fired.len(), 1, "{fired:?}");
        assert_eq!(fired[0].rule, RULE_UNTRACED_PURITY);
        assert_eq!(fired[0].line, 1);
    }

    #[test]
    fn safety_comments_required_for_unsafe() {
        let bad = "unsafe impl Send for X {}";
        assert_eq!(rules_fired("crates/x/src/a.rs", bad), vec![RULE_SAFETY_COMMENTS]);
        let good = "// SAFETY: X owns no thread-bound state.\nunsafe impl Send for X {}";
        assert!(rules_fired("crates/x/src/a.rs", good).is_empty());
        let lowercase = "// Safety: fine.\nunsafe impl Send for X {}";
        assert!(rules_fired("crates/x/src/a.rs", lowercase).is_empty());
    }

    #[test]
    fn long_safety_comment_runs_cover_the_unsafe() {
        let src = "// SAFETY: a long argument\n// that continues\n// and continues\n// and continues\n// further still\nunsafe impl Send for X {}";
        assert!(rules_fired("crates/x/src/a.rs", src).is_empty());
        // An unrelated comment run does not cover.
        let bad = "// a long comment\n// with no marker\nunsafe impl Send for X {}";
        assert_eq!(rules_fired("crates/x/src/a.rs", bad), vec![RULE_SAFETY_COMMENTS]);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = r#"fn f() { let s = "x.unwrap()"; } // and .unwrap() here"#;
        assert!(rules_fired("crates/net/src/a.rs", src).is_empty());
    }
}
