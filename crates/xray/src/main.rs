//! `xtwig-xray` — run the workspace static-analysis pass.
//!
//! Usage: `xtwig-xray [--root DIR] [--config FILE]`
//! Exit codes: 0 clean, 1 findings, 2 config/usage/I-O failure.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--config" => match args.next() {
                Some(v) => config = Some(PathBuf::from(v)),
                None => return usage("--config needs a value"),
            },
            "--help" | "-h" => {
                println!("usage: xtwig-xray [--root DIR] [--config FILE]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let config = config.unwrap_or_else(|| root.join("xray.toml"));
    let cfg = match xtwig_xray::load_config(&config) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("xray: {e}");
            return ExitCode::from(2);
        }
    };
    match xtwig_xray::analyze(&root, &cfg) {
        Ok(report) if report.is_clean() => {
            println!(
                "xray: {} files scanned, 0 findings ({} allow entries in effect)",
                report.files_scanned,
                cfg.allow.len()
            );
            ExitCode::SUCCESS
        }
        Ok(report) => {
            print!("{}", report.render());
            println!(
                "xray: {} files scanned, {} finding(s)",
                report.files_scanned,
                report.findings.len()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xray: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("xray: {message}\nusage: xtwig-xray [--root DIR] [--config FILE]");
    ExitCode::from(2)
}
