//! A hand-rolled Rust lexer with line/column tracking.
//!
//! The rules need exactly what a token stream gives: identifiers,
//! punctuation, literals, and comments, each pinned to a source
//! position — not a full parse tree. Rolling the lexer by hand keeps
//! the crate std-only (no `syn`; the build environment is offline) and
//! keeps comments in the stream, which the `safety-comments` rule
//! reads and every other rule filters out.
//!
//! Correctness notes the rules depend on:
//! * string/char/byte literals are consumed whole, so `"unwrap()"` in a
//!   string can never look like a call;
//! * raw strings honor their `#` fences (`r#"…"#`), so embedded quotes
//!   don't end them early;
//! * block comments nest, as in real Rust;
//! * lifetimes (`'a`) are distinguished from char literals (`'a'`) so a
//!   lifetime never eats the rest of the line as a "string".

/// What a token is; `text` carries the exact source slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `maintenance`, …).
    Ident,
    /// A lifetime such as `'a` (without a closing quote).
    Lifetime,
    /// Any literal: number, string, raw string, char, byte string.
    Literal,
    /// One punctuation character (`.`, `(`, `[`, `!`, …).
    Punct,
    /// `// …` to end of line (text includes the slashes).
    LineComment,
    /// `/* … */`, nesting respected (text includes the delimiters).
    BlockComment,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification (see [`TokenKind`]).
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// True for `Ident` tokens with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True for `Punct` tokens with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Cursor<'a> {
        Cursor { chars: src.chars().peekable(), line: 1, col: 1 }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    /// Peeks one past the next character (clones the cheap iterator).
    fn peek2(&self) -> Option<char> {
        let mut it = self.chars.clone();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a token stream. Never fails: unterminated literals
/// and comments are consumed to end of input (the rules prefer a best-
/// effort stream over refusing a file rustc itself would reject later).
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek2() == Some('/') {
            out.push(lex_line_comment(&mut cur, line, col));
            continue;
        }
        if c == '/' && cur.peek2() == Some('*') {
            out.push(lex_block_comment(&mut cur, line, col));
            continue;
        }
        if c == '"' {
            out.push(lex_string(&mut cur, line, col));
            continue;
        }
        if c == 'r' || c == 'b' {
            if let Some(tok) = try_lex_prefixed_literal(&mut cur, line, col) {
                out.push(tok);
                continue;
            }
        }
        if c == '\'' {
            out.push(lex_quote(&mut cur, line, col));
            continue;
        }
        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(c) = cur.peek() {
                if is_ident_continue(c) {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            out.push(Token { kind: TokenKind::Ident, text, line, col });
            continue;
        }
        if c.is_ascii_digit() {
            out.push(lex_number(&mut cur, line, col));
            continue;
        }
        cur.bump();
        out.push(Token { kind: TokenKind::Punct, text: c.to_string(), line, col });
    }
    out
}

fn lex_line_comment(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Token { kind: TokenKind::LineComment, text, line, col }
}

fn lex_block_comment(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    let mut text = String::new();
    let mut depth = 0u32;
    while let Some(c) = cur.peek() {
        if c == '/' && cur.peek2() == Some('*') {
            depth += 1;
            text.push('/');
            text.push('*');
            cur.bump();
            cur.bump();
            continue;
        }
        if c == '*' && cur.peek2() == Some('/') {
            depth -= 1;
            text.push('*');
            text.push('/');
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
            continue;
        }
        text.push(c);
        cur.bump();
    }
    Token { kind: TokenKind::BlockComment, text, line, col }
}

fn lex_string(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    let mut text = String::new();
    text.push(cur.bump().expect("caller saw an opening quote")); // opening "
    while let Some(c) = cur.bump() {
        text.push(c);
        if c == '\\' {
            if let Some(next) = cur.bump() {
                text.push(next);
            }
            continue;
        }
        if c == '"' {
            break;
        }
    }
    Token { kind: TokenKind::Literal, text, line, col }
}

/// `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, `b'x'` — or `None` when the
/// `r`/`b` starts a plain identifier.
fn try_lex_prefixed_literal(cur: &mut Cursor<'_>, line: u32, col: u32) -> Option<Token> {
    // Look ahead without consuming: prefix chars, optional hashes, then
    // a quote — anything else is an identifier like `raw` or `bytes`.
    let mut it = cur.chars.clone();
    let mut prefix = String::new();
    let first = it.next()?;
    prefix.push(first);
    let mut second = it.next();
    if first == 'b' && second == Some('r') {
        prefix.push('r');
        second = it.next();
    }
    let mut hashes = 0usize;
    while second == Some('#') {
        hashes += 1;
        second = it.next();
    }
    match second {
        Some('"') => {}
        Some('\'') if prefix == "b" && hashes == 0 => {
            // Byte char literal b'x' (escapes included).
            let mut text = String::new();
            text.push(cur.bump()?); // b
            text.push(cur.bump()?); // '
            while let Some(c) = cur.bump() {
                text.push(c);
                if c == '\\' {
                    if let Some(n) = cur.bump() {
                        text.push(n);
                    }
                    continue;
                }
                if c == '\'' {
                    break;
                }
            }
            return Some(Token { kind: TokenKind::Literal, text, line, col });
        }
        _ => return None,
    }
    let raw = prefix.contains('r');
    if !raw && hashes > 0 {
        return None; // `b#` is not a literal prefix
    }
    // Consume prefix + hashes + opening quote for real.
    let mut text = String::new();
    for _ in 0..prefix.len() + hashes + 1 {
        text.push(cur.bump()?);
    }
    if raw {
        // Ends at `"` followed by exactly `hashes` hashes.
        while let Some(c) = cur.bump() {
            text.push(c);
            if c == '"' {
                let mut it = cur.chars.clone();
                if (0..hashes).all(|_| it.next() == Some('#')) {
                    for _ in 0..hashes {
                        text.push(cur.bump()?);
                    }
                    break;
                }
            }
        }
    } else {
        // Escaped string body (b"…").
        while let Some(c) = cur.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(n) = cur.bump() {
                    text.push(n);
                }
                continue;
            }
            if c == '"' {
                break;
            }
        }
    }
    Some(Token { kind: TokenKind::Literal, text, line, col })
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime).
fn lex_quote(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    let mut it = cur.chars.clone();
    it.next(); // the opening quote
    let first = it.next();
    let second = it.next();
    let is_char = match first {
        Some('\\') => true,
        Some(c) if is_ident_start(c) => second == Some('\''),
        Some(_) => true, // '(' , '1' , … are char literals
        None => false,
    };
    if is_char {
        let mut text = String::new();
        text.push(cur.bump().expect("caller saw an opening quote"));
        while let Some(c) = cur.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(n) = cur.bump() {
                    text.push(n);
                }
                continue;
            }
            if c == '\'' {
                break;
            }
        }
        Token { kind: TokenKind::Literal, text, line, col }
    } else {
        let mut text = String::new();
        text.push(cur.bump().expect("caller saw an opening quote"));
        while let Some(c) = cur.peek() {
            if is_ident_continue(c) {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        Token { kind: TokenKind::Lifetime, text, line, col }
    }
}

fn lex_number(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c.is_alphanumeric() || c == '_' {
            text.push(c);
            cur.bump();
        } else if c == '.' {
            // `1.5` continues the number; `1..n` and `x.method()` do not.
            match cur.peek2() {
                Some(d) if d.is_ascii_digit() => {
                    text.push(c);
                    cur.bump();
                }
                _ => break,
            }
        } else {
            break;
        }
    }
    Token { kind: TokenKind::Literal, text, line, col }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests assert; unwrap is the assert
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_positions() {
        let toks = lex("foo.unwrap()\n  bar");
        assert_eq!(toks.len(), 6);
        assert!(toks[0].is_ident("foo"));
        assert!(toks[1].is_punct("."));
        assert!(toks[2].is_ident("unwrap"));
        assert_eq!((toks[2].line, toks[2].col), (1, 5));
        assert_eq!((toks[5].line, toks[5].col), (2, 3));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "x.unwrap()";"#);
        assert!(toks.iter().filter(|(k, _)| *k == TokenKind::Literal).count() == 1);
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn raw_strings_honor_hash_fences() {
        let toks = lex(r##"let s = r#"contains " quote"#; x.unwrap()"##);
        let lit = toks.iter().find(|t| t.kind == TokenKind::Literal).unwrap();
        assert!(lit.text.contains("quote"));
        assert!(toks.iter().any(|t| t.is_ident("unwrap")), "lexing continues after the raw string");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'b' }");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Literal && t == "'b'"));
    }

    #[test]
    fn block_comments_nest() {
        let toks = kinds("/* outer /* inner */ still outer */ ident");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1].1, "ident");
    }

    #[test]
    fn byte_and_raw_byte_literals() {
        let toks = kinds(r#"w.write(b"XTWG"); let c = b'\n'; let r = br"raw";"#);
        let lits: Vec<&String> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Literal).map(|(_, t)| t).collect();
        assert!(lits.iter().any(|t| t.starts_with("b\"")));
        assert!(lits.iter().any(|t| t.starts_with("b'")));
        assert!(lits.iter().any(|t| t.starts_with("br")));
    }

    #[test]
    fn numbers_keep_suffixes_and_stop_at_ranges() {
        let toks = kinds("for i in 0..10u32 { a[i] }");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Literal && t == "0"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Literal && t == "10u32"));
        let floats = kinds("let x = 1.5;");
        assert!(floats.iter().any(|(k, t)| *k == TokenKind::Literal && t == "1.5"));
    }
}
