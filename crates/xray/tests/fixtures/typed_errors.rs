//! Fixture: leaky public Result signatures fire `typed-errors`;
//! crate-local error types and non-public fns stay clean.

pub fn leaks_string() -> Result<u8, String> {
    Ok(0)
}

pub fn leaks_io_alias() -> io::Result<u8> {
    Ok(0)
}

pub fn leaks_boxed() -> Result<u8, Box<dyn std::error::Error>> {
    Ok(0)
}

pub fn typed_is_clean() -> Result<u8, FrameError> {
    Ok(0)
}

pub(crate) fn crate_scoped_is_clean() -> Result<u8, String> {
    Ok(0)
}
