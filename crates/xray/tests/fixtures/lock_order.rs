//! Fixture: two inversions of the documented lock order
//! (maintenance -> epoch -> pool -> frame), plus clean shapes the
//! liveness heuristic must not flag.

impl Shared {
    fn inverted_epoch_then_maintenance(&self) {
        let e = self.epoch.read();
        let m = self.maintenance.lock();
        drop((e, m));
    }

    fn frame_held_across_pool(&self, frame: &Frame) {
        let g = frame.data.write();
        let p = self.inner.lock();
        drop((g, p));
    }

    fn correct_order_is_clean(&self) {
        let m = self.maintenance.lock();
        let e = self.epoch.read();
        drop((m, e));
    }

    fn momentary_pin_is_clean(&self) {
        let snapshot = self.epoch.read().clone();
        let m = self.maintenance.lock();
        drop((snapshot, m));
    }
}
