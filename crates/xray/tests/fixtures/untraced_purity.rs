//! Fixture: the configured untraced executor function must stay free
//! of timing/span identifiers; its traced sibling may use them.

impl QueryEngine {
    fn execute(&self) {
        let started = Instant::now();
        let _ = started;
    }

    fn execute_traced(&self) {
        let started = Instant::now();
        let _ = started;
    }
}
