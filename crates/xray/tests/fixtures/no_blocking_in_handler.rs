//! Fixture: blocking filesystem work inside request-dispatch code.
//! Both production fns fire; the `#[cfg(test)]` block is exempt.

fn handle_debug_dump() -> String {
    std::fs::read_to_string("index.xtwig").unwrap_or_default()
}

fn handle_side_channel() {
    let _ = std::fs::File::create("access.log");
}

#[cfg(test)]
mod tests {
    use std::fs::File;

    fn scratch() {
        let _ = File::create("fixture.tmp");
    }
}
