//! Fixture: each marked line must fire `no-panic` when this file is
//! scanned under a scoped path; the `#[cfg(test)]` block must not.

pub fn unwrap_site(x: Option<u8>) -> u8 {
    x.unwrap()
}

pub fn expect_site(x: Option<u8>) -> u8 {
    x.expect("serving paths must not panic")
}

pub fn panic_site() {
    panic!("connection thread down");
}

pub fn index_site(a: &[u8]) -> u8 {
    a[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        None::<u8>.unwrap();
    }
}
