//! Fixture: an undocumented `unsafe` fires; one carrying a safety
//! argument (even a multi-line one) is clean.

unsafe impl Send for Bare {}

// SAFETY: Documented owns no thread-affine state; every field is
// itself Send, so moving the wrapper between threads is sound.
unsafe impl Send for Documented {}
