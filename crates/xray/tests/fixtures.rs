//! Fixture-driven rule tests: each fixture under `tests/fixtures/`
//! deliberately violates one rule at known lines, and the suite pins
//! the exact (rule, line) set each scan produces — plus the two
//! properties that keep the pass honest in CI: allow entries suppress
//! only what they name, and the real workspace is clean under the
//! checked-in `xray.toml`.

#![allow(clippy::unwrap_used)] // tests assert; unwrap is the assert

use xtwig_xray::{analyze, analyze_source, load_config, AllowEntry, Config, Finding};

/// The scoping the fixtures assume; mirrors the shape of the real
/// `xray.toml` but points the path-scoped rules at the fixtures'
/// pretend locations.
fn fixture_config() -> Config {
    Config {
        no_panic_paths: vec!["crates/net/src".into(), "crates/service/src".into()],
        typed_errors_paths: vec!["crates/net/src".into()],
        maintenance_receiver: "maintenance".into(),
        epoch_receiver: "epoch".into(),
        pool_receiver: "inner".into(),
        frame_receiver: "data".into(),
        purity_file: "crates/core/src/engine.rs".into(),
        purity_functions: vec!["execute".into()],
        purity_forbid: vec!["Instant".into()],
        blocking_paths: vec!["crates/net/src/server.rs".into()],
        blocking_forbid: vec!["File".into(), "read_to_string".into()],
        allow: Vec::new(),
    }
}

fn rule_lines(findings: &[Finding]) -> Vec<(&str, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn no_panic_fixture_fires_at_each_marked_line() {
    let src = include_str!("fixtures/no_panic.rs");
    let findings = analyze_source("crates/net/src/no_panic.rs", src, &fixture_config());
    assert_eq!(
        rule_lines(&findings),
        vec![("no-panic", 5), ("no-panic", 9), ("no-panic", 13), ("no-panic", 17)],
        "{findings:#?}"
    );
    // The same content outside the scoped paths is not xray's business.
    assert!(analyze_source("crates/core/src/no_panic.rs", src, &fixture_config()).is_empty());
}

#[test]
fn lock_order_fixture_fires_on_both_inversions_only() {
    let src = include_str!("fixtures/lock_order.rs");
    let findings = analyze_source("crates/service/src/lock_order.rs", src, &fixture_config());
    assert_eq!(rule_lines(&findings), vec![("lock-order", 8), ("lock-order", 14)], "{findings:#?}");
}

#[test]
fn typed_errors_fixture_flags_the_three_leaky_signatures() {
    let src = include_str!("fixtures/typed_errors.rs");
    let findings = analyze_source("crates/net/src/typed_errors.rs", src, &fixture_config());
    assert_eq!(
        rule_lines(&findings),
        vec![("typed-errors", 4), ("typed-errors", 8), ("typed-errors", 12)],
        "{findings:#?}"
    );
}

#[test]
fn untraced_purity_fixture_fires_only_inside_the_scoped_fn() {
    let src = include_str!("fixtures/untraced_purity.rs");
    // The purity rule is keyed to one file; the fixture plays that role.
    let findings = analyze_source("crates/core/src/engine.rs", src, &fixture_config());
    assert_eq!(rule_lines(&findings), vec![("untraced-purity", 6)], "{findings:#?}");
}

#[test]
fn safety_comments_fixture_fires_on_the_bare_unsafe_only() {
    let src = include_str!("fixtures/safety_comments.rs");
    let findings = analyze_source("crates/misc/src/safety.rs", src, &fixture_config());
    assert_eq!(rule_lines(&findings), vec![("safety-comments", 4)], "{findings:#?}");
}

#[test]
fn no_blocking_fixture_fires_outside_cfg_test_and_scoped_path_only() {
    let src = include_str!("fixtures/no_blocking_in_handler.rs");
    let findings = analyze_source("crates/net/src/server.rs", src, &fixture_config());
    assert_eq!(
        rule_lines(&findings),
        vec![("no-blocking-in-handler", 5), ("no-blocking-in-handler", 9)],
        "{findings:#?}"
    );
    // The same content outside the dispatch paths is not xray's business.
    assert!(analyze_source("crates/net/src/client.rs", src, &fixture_config()).is_empty());
}

#[test]
fn allow_entries_suppress_by_rule_path_and_line_content() {
    let src = include_str!("fixtures/no_panic.rs");
    let mut cfg = fixture_config();
    cfg.allow.push(AllowEntry {
        rule: "no-panic".into(),
        path: "crates/net/src/no_panic.rs".into(),
        contains: "x.unwrap()".into(),
        why: "fixture exercises suppression".into(),
    });
    let findings = analyze_source("crates/net/src/no_panic.rs", src, &cfg);
    // Only the named line disappears; the other three still fire.
    assert_eq!(
        rule_lines(&findings),
        vec![("no-panic", 9), ("no-panic", 13), ("no-panic", 17)],
        "{findings:#?}"
    );
    // The same entry scoped to a different file suppresses nothing.
    let mut other = fixture_config();
    other.allow.push(AllowEntry {
        rule: "no-panic".into(),
        path: "crates/net/src/elsewhere.rs".into(),
        contains: "x.unwrap()".into(),
        why: "wrong file on purpose".into(),
    });
    assert_eq!(analyze_source("crates/net/src/no_panic.rs", src, &other).len(), 4);
}

#[test]
fn the_workspace_is_clean_under_the_checked_in_config() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg = load_config(&root.join("xray.toml")).expect("xray.toml loads");
    let report = analyze(&root, &cfg).expect("workspace scan runs");
    assert!(report.files_scanned > 50, "walk found {} files — broken?", report.files_scanned);
    assert!(report.is_clean(), "xray findings:\n{}", report.render());
}
