//! Engine forking: copy-on-write snapshots for MVCC maintenance.
//!
//! [`QueryEngine::fork`] produces a new engine over the *same* forest
//! whose maintainable structures (ROOTPATHS, DATAPATHS) sit on
//! copy-on-write forks of their buffer pools
//! ([`BufferPool::cow_fork`]): mutating the fork never changes what the
//! original engine reads, so the original can keep serving queries as
//! an immutable snapshot while maintenance runs against the fork. This
//! is the engine-level primitive behind `xtwig-service`'s
//! snapshot-isolated update path — readers pin an engine generation by
//! `Arc`, writers fork the newest generation, apply their update, and
//! publish the fork as the next generation.
//!
//! Cost model: a fork copies **no index pages**. Each maintainable
//! structure gets a fresh (cold) pool whose COW backend shares the
//! sealed base image plus `Arc`-shared overlay pages; the never-mutated
//! comparison structures (Edge, DataGuide, Index Fabric, ASR, Join
//! Indices) reattach over the *same* shared pool, exactly like a
//! persisted catalog reopen — structure shells are rebuilt from their
//! own metadata via the [`crate::persist`] codec, which allocates and
//! builds nothing.

use crate::asr::AccessSupportRelations;
use crate::dataguide::DataGuide;
use crate::datapaths::DataPaths;
use crate::edge::EdgeTable;
use crate::engine::QueryEngine;
use crate::fabric::IndexFabric;
use crate::joinindex::JoinIndices;
use crate::persist::{ByteReader, ByteWriter, FormatError};
use crate::rootpaths::RootPaths;
use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;
use xtwig_storage::BufferPool;
use xtwig_xml::XmlForest;

/// Why a fork was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForkError {
    /// A maintainable structure's pool held dirty pages pinned by an
    /// outstanding write guard: the image could be torn mid-write, so
    /// the fork must wait for that writer. Readers pinning clean pages
    /// never trigger this, but a reader holding a page a concurrent
    /// writer just dirtied can, transiently — retry once guards drop.
    PinnedPages {
        /// The structure whose pool was mid-write.
        structure: &'static str,
        /// Dirty pages the flush had to skip.
        skipped: usize,
    },
}

impl fmt::Display for ForkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForkError::PinnedPages { structure, skipped } => write!(
                f,
                "cannot fork while {structure} has {skipped} pinned dirty page(s) \
                 (concurrent writer?)"
            ),
        }
    }
}

impl std::error::Error for ForkError {}

/// Reattaches a structure shell via its persist-codec metadata over
/// `pool` — the same zero-build reconstruction a catalog open performs.
fn reattach<T>(
    index: &T,
    pool: Arc<BufferPool>,
    write: impl FnOnce(&T, &mut ByteWriter),
    open: impl FnOnce(&mut ByteReader<'_>, Arc<BufferPool>) -> Result<T, FormatError>,
) -> T {
    let mut w = ByteWriter::new();
    write(index, &mut w);
    let bytes = w.finish();
    let mut r = ByteReader::new(&bytes);
    open(&mut r, pool).expect("in-memory metadata roundtrip cannot be malformed")
}

/// Forks one maintainable structure onto a COW sibling of its pool.
fn fork_cow<T>(
    src: &Option<(T, Arc<BufferPool>)>,
    structure: &'static str,
    write: impl FnOnce(&T, &mut ByteWriter),
    open: impl FnOnce(&mut ByteReader<'_>, Arc<BufferPool>) -> Result<T, FormatError>,
) -> Result<Option<(T, Arc<BufferPool>)>, ForkError> {
    let Some((index, pool)) = src else {
        return Ok(None);
    };
    let forked =
        Arc::new(pool.cow_fork().map_err(|skipped| ForkError::PinnedPages { structure, skipped })?);
    Ok(Some((reattach(index, forked.clone(), write, open), forked)))
}

/// Re-shells one immutable structure over its *shared* pool (no fork:
/// nothing ever writes these after build, so every engine generation
/// can read the same pages).
fn share<T>(
    src: &Option<(T, Arc<BufferPool>)>,
    write: impl FnOnce(&T, &mut ByteWriter),
    open: impl FnOnce(&mut ByteReader<'_>, Arc<BufferPool>) -> Result<T, FormatError>,
) -> Option<(T, Arc<BufferPool>)> {
    let (index, pool) = src.as_ref()?;
    Some((reattach(index, pool.clone(), write, open), pool.clone()))
}

impl<F: Borrow<XmlForest> + Clone> QueryEngine<F> {
    /// Forks this engine into an independent copy-on-write sibling.
    ///
    /// The fork answers every query identically to `self` at fork time.
    /// Index maintenance on the fork ([`QueryEngine::rootpaths_mut`] /
    /// [`QueryEngine::datapaths_mut`]) is invisible to `self`, whose
    /// page image is sealed by the fork — which is the point: `self`
    /// keeps serving concurrent readers as a frozen snapshot while the
    /// fork absorbs updates.
    ///
    /// Errs with [`ForkError::PinnedPages`] while a concurrent writer
    /// holds a dirty page guard in ROOTPATHS or DATAPATHS (the only
    /// structures written after build); callers that serialize writers
    /// — as `xtwig-service` does with its maintenance lock — only see
    /// this transiently when a *reader* still pins a freshly dirtied
    /// page, and retry.
    pub fn fork(&self) -> Result<Self, ForkError> {
        let rp = fork_cow(&self.rp, "ROOTPATHS", RootPaths::write_meta, RootPaths::open_meta)?;
        let dp = fork_cow(&self.dp, "DATAPATHS", DataPaths::write_meta, DataPaths::open_meta)?;
        Ok(QueryEngine {
            forest: self.forest.clone(),
            stats: self.stats.clone(),
            rp,
            dp,
            pruned_tags: self.pruned_tags.clone(),
            edge: share(&self.edge, EdgeTable::write_meta, EdgeTable::open_meta),
            dg: share(&self.dg, DataGuide::write_meta, DataGuide::open_meta),
            fab: share(&self.fab, IndexFabric::write_meta, IndexFabric::open_meta),
            asr: share(
                &self.asr,
                AccessSupportRelations::write_meta,
                AccessSupportRelations::open_meta,
            ),
            ji: share(&self.ji, JoinIndices::write_meta, JoinIndices::open_meta),
            structural_ad_joins: self.structural_ad_joins,
            calibration: self.calibration.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineOptions, Strategy};
    use crate::xpath::parse_xpath;
    use xtwig_xml::tree::fig1_book_document;
    use xtwig_xml::TagId;

    fn engine() -> QueryEngine {
        QueryEngine::build(
            Arc::new(fig1_book_document()),
            EngineOptions { pool_pages: 256, ..Default::default() },
        )
    }

    #[test]
    fn fork_answers_identically_across_all_strategies() {
        let base = engine();
        let fork = base.fork().unwrap();
        for q in ["/book[title='XML']//author[fn='jane'][ln='doe']", "//author[fn='john']/ln"] {
            let twig = parse_xpath(q).unwrap();
            for s in Strategy::ALL {
                assert_eq!(base.answer(&twig, s).ids, fork.answer(&twig, s).ids, "{s}: {q}");
            }
        }
    }

    #[test]
    fn maintenance_on_the_fork_is_invisible_to_the_original() {
        let base = engine();
        let mut fork = base.fork().unwrap();
        let tags: Vec<TagId> = ["book", "allauthors", "author", "fn"]
            .iter()
            .map(|t| base.forest().dict().lookup(t).unwrap())
            .collect();
        let rp = fork.rootpaths_mut().unwrap();
        rp.insert_path(&tags[..3], &[1, 5, 900], None);
        rp.insert_path(&tags, &[1, 5, 900, 901], Some("ada"));
        let dp = fork.datapaths_mut().unwrap();
        dp.insert_path(&tags[..3], &[1, 5, 900], None);
        dp.insert_path(&tags, &[1, 5, 900, 901], Some("ada"));
        let twig = parse_xpath("//author[fn='ada']").unwrap();
        for s in [Strategy::RootPaths, Strategy::DataPaths] {
            assert_eq!(
                fork.answer(&twig, s).ids.into_iter().collect::<Vec<_>>(),
                vec![900],
                "{s}: fork sees its own update"
            );
            assert!(base.answer(&twig, s).ids.is_empty(), "{s}: original is a sealed snapshot");
        }
        // The pre-existing data is still fully answerable on both.
        let jane = parse_xpath("//author[fn='jane']").unwrap();
        assert_eq!(base.answer(&jane, Strategy::RootPaths).ids.len(), 2);
        assert_eq!(fork.answer(&jane, Strategy::RootPaths).ids.len(), 2);
    }

    #[test]
    fn fork_chains_accumulate_updates_without_page_copies() {
        let base = engine();
        let tags: Vec<TagId> = ["book", "allauthors", "author", "fn"]
            .iter()
            .map(|t| base.forest().dict().lookup(t).unwrap())
            .collect();
        let mut current = base.fork().unwrap();
        for i in 0..5u64 {
            let mut next = current.fork().unwrap();
            let id = 900 + 2 * i;
            let rp = next.rootpaths_mut().unwrap();
            rp.insert_path(&tags[..3], &[1, 5, id], None);
            rp.insert_path(&tags, &[1, 5, id, id + 1], Some(&format!("v{i}")));
            // Every earlier generation is frozen: generation i sees
            // values 0..i and nothing newer.
            let probe = parse_xpath(&format!("//author[fn='v{i}']")).unwrap();
            assert!(current.answer(&probe, Strategy::RootPaths).ids.is_empty());
            assert_eq!(next.answer(&probe, Strategy::RootPaths).ids.len(), 1);
            current = next;
        }
        for i in 0..5u64 {
            let probe = parse_xpath(&format!("//author[fn='v{i}']")).unwrap();
            assert_eq!(
                current.answer(&probe, Strategy::RootPaths).ids.into_iter().collect::<Vec<_>>(),
                vec![900 + 2 * i]
            );
        }
    }

    #[test]
    fn fork_is_refused_while_a_writer_holds_pages() {
        let base = engine();
        let pool = base.rp.as_ref().unwrap().1.clone();
        let (_pid, guard) = pool.allocate(); // an in-flight writer
        match base.fork() {
            Err(ForkError::PinnedPages { structure, skipped }) => {
                assert_eq!(structure, "ROOTPATHS");
                assert!(skipped >= 1);
            }
            Ok(_) => panic!("fork must refuse a torn image"),
        }
        drop(guard);
        assert!(base.fork().is_ok());
    }
}
